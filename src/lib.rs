//! # satn — self-adjusting single-source tree networks
//!
//! A from-scratch Rust implementation of *Deterministic Self-Adjusting Tree
//! Networks Using Rotor Walks* (Avin, Bienkowski, Salem, Sama, Schmid,
//! Schmidt — ICDCS 2022), including every algorithm the paper studies, the
//! rotor-walk machinery, the workload generators of the empirical section and
//! the analysis toolkit that turns the paper's theorems into executable
//! checks.
//!
//! This facade crate simply re-exports the workspace members:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`tree`] | `satn-tree` | complete-binary-tree substrate: nodes, occupancy, marked swaps, costs |
//! | [`rotor`] | `satn-rotor` | rotor pointers, flips, flip-ranks, rotor-router walks |
//! | [`core`] | `satn-core` | Rotor-Push, Random-Push, Move-Half, Max-Push, static baselines, Move-To-Front |
//! | [`workloads`] | `satn-workloads` | uniform / temporal / Zipf / combined / corpus workload generators |
//! | [`compress`] | `satn-compress` | LZW compressor and the trace complexity map |
//! | [`analysis`] | `satn-analysis` | working-set bounds, MRU reference, credit audits, Lemma 8 adversary |
//! | [`network`] | `satn-network` | multi-source datacenter networks composed of per-source ego-trees |
//! | [`sim`] | `satn-sim` | scenario-simulation engine: declarative grids, batched serving, invariant hooks, replay |
//! | [`exec`] | `satn-exec` | deterministic parallel execution layer: scoped worker pool, order-preserving fan-out |
//! | [`serve`] | `satn-serve` | sharded multi-tree serving engine: transport-agnostic ingestion, wire protocol + `satnd` TCP front door, lock-free snapshot reads, replay fingerprints |
//! | [`obs`] | `satn-obs` | lock-free runtime metrics (atomic counters/gauges/histograms), deterministic handover tracing, wire-pollable snapshots |
//!
//! The most common entry points are also re-exported at the crate root.
//!
//! ## Quickstart
//!
//! ```
//! use satn::{CompleteTree, ElementId, Occupancy, RotorPush, SelfAdjustingTree};
//!
//! // A tree with 1023 nodes (10 levels), elements placed by identity.
//! let tree = CompleteTree::with_nodes(1023)?;
//! let mut network = RotorPush::new(Occupancy::identity(tree));
//!
//! // Serve a few requests; each returns its access + adjustment cost.
//! let mut total = 0;
//! for id in [513u32, 514, 513, 900, 513] {
//!     total += network.serve(ElementId::new(id))?.total();
//! }
//! assert!(total > 0);
//! // The self-adjustment moved the popular element 513 to the root.
//! assert_eq!(network.occupancy().level_of(ElementId::new(513)), 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use satn_analysis as analysis;
pub use satn_compress as compress;
pub use satn_core as core;
pub use satn_exec as exec;
pub use satn_network as network;
pub use satn_obs as obs;
pub use satn_rotor as rotor;
pub use satn_serve as serve;
pub use satn_sim as sim;
pub use satn_tree as tree;
pub use satn_workloads as workloads;

pub use satn_analysis::{
    access_cost_differences, competitive_report, run_lemma8, working_set_bound, Histogram,
    RandomPushAuditor, RotorPushAuditor, WorkingSetTracker,
};
pub use satn_core::{
    AlgorithmKind, MaxPush, MoveHalf, MoveToFront, RandomPush, RotorPush, SelfAdjustingTree,
    StaticOblivious, StaticOpt,
};
pub use satn_exec::{for_each_ordered, ordered_map, ordered_map_mut, Parallelism};
pub use satn_network::{Host, HostPair, SelfAdjustingNetwork};
pub use satn_obs::{EngineMetrics, LatencyHistogram, MetricsSnapshot, TraceRing};
pub use satn_rotor::{RotorState, RotorWalk};
pub use satn_serve::{
    ingest_channel, replay, serve_connections, EngineReport, EngineSnapshot, Frame, Ingest,
    IngestMessage, IngestQueue, IngestSender, LookupAnswer, ServeError, ShardedEngine,
    ShardedEngineConfig, SnapshotReader, SourceShardedEngine, TcpIngest, WireError,
};
pub use satn_sim::{
    Checkpoints, InvariantObserver, Observer, ReshardPlan, ReshardPolicy, ReshardSchedule,
    Scenario, ScenarioGrid, ShardRouter, ShardedReplay, ShardedScenario, SimRunner, WorkloadSpec,
};
pub use satn_tree::{
    CompleteTree, CostSummary, Direction, ElementId, MigrationCost, NodeId, Occupancy, ServeCost,
    TreeError, TreeSnapshot,
};
pub use satn_workloads::{fit_tree_levels, Workload};
