//! Micro-benchmarks of the building blocks: tree substrate operations, rotor
//! machinery, the augmented push-down, per-algorithm serve throughput, and
//! the general-graph rotor walk.
//!
//! These do not correspond to a figure of the paper; they document the cost
//! of the primitives the figure-level experiments are built from.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use satn_core::pushdown::augmented_push_down;
use satn_core::{AlgorithmKind, SelfAdjustingTree};
use satn_rotor::{RotorGraph, RotorState};
use satn_tree::{
    placement, CompleteTree, CostSummary, ElementId, LayoutKind, MarkScratch, MarkedRound, NodeId,
    Occupancy,
};
use satn_workloads::shard::{
    carry_remap, handover, handover_touched, touched_shards, EpochedPartition, Partition,
    ReshardPlan, ShardRouter,
};
use satn_workloads::synthetic;

const LEVELS: u32 = 10; // 1023 nodes
const REQUESTS: usize = 10_000;

fn bench_tree_primitives(c: &mut Criterion) {
    let tree = CompleteTree::with_levels(LEVELS).unwrap();
    let mut group = c.benchmark_group("tree-primitives");

    // The allocating walk vs. the allocation-free iterator over the same
    // nodes: the delta between these two benchmarks is the per-path heap
    // traffic removed from the serve hot path (both fold the path's node
    // indices so neither can cheat via a size shortcut).
    group.bench_function("node-root-path", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for node in tree.nodes() {
                total += black_box(
                    node.path_from_root()
                        .iter()
                        .map(|n| n.usize())
                        .sum::<usize>(),
                );
            }
            total
        })
    });

    group.bench_function("node-ancestors", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for node in tree.nodes() {
                total += black_box(node.ancestors().map(|n| n.usize()).sum::<usize>());
            }
            total
        })
    });

    group.bench_function("occupancy-swap-pairs", |b| {
        let mut occupancy = Occupancy::identity(tree);
        b.iter(|| {
            for index in 0..(tree.num_nodes() - 1) {
                let node = NodeId::new(index + 1);
                occupancy.swap_nodes(node, node.parent().unwrap()).unwrap();
            }
            black_box(occupancy.is_consistent())
        })
    });

    group.bench_function("marked-round-bubble-to-root", |b| {
        let mut occupancy = Occupancy::identity(tree);
        let leaf = NodeId::new(tree.num_nodes() - 1);
        b.iter(|| {
            let element = occupancy.element_at(leaf);
            let mut round = MarkedRound::access(&mut occupancy, element).unwrap();
            let node = round.occupancy().node_of(element);
            round.bubble_to_root(node).unwrap();
            black_box(round.finish())
        })
    });

    // Same round as above but opened through a reused MarkScratch — the
    // allocation-free hot path of the serve loop.
    group.bench_function("marked-round-reused-scratch", |b| {
        let mut occupancy = Occupancy::identity(tree);
        let leaf = NodeId::new(tree.num_nodes() - 1);
        let mut scratch = MarkScratch::new();
        b.iter(|| {
            let element = occupancy.element_at(leaf);
            let mut round =
                MarkedRound::access_reusing(&mut occupancy, element, &mut scratch).unwrap();
            let node = round.occupancy().node_of(element);
            round.bubble_to_root(node).unwrap();
            black_box(round.finish())
        })
    });

    group.finish();
}

fn bench_rotor_machinery(c: &mut Criterion) {
    let tree = CompleteTree::with_levels(LEVELS).unwrap();
    let mut group = c.benchmark_group("rotor-machinery");

    group.bench_function("flip-max-level", |b| {
        let mut rotors = RotorState::new(tree);
        b.iter(|| {
            rotors.flip(tree.max_level());
            black_box(rotors.global_path_node(tree.max_level()))
        })
    });

    group.bench_function("flip-rank-all-leaves", |b| {
        let rotors = RotorState::new(tree);
        b.iter(|| {
            let mut total = 0u64;
            for leaf in tree.leaves() {
                total += black_box(rotors.flip_rank(leaf));
            }
            total
        })
    });

    group.bench_function("graph-rotor-walk-10k-steps", |b| {
        let mut rotor = RotorGraph::complete_binary_tree(LEVELS);
        b.iter(|| black_box(rotor.walk(0, 10_000)))
    });

    group.finish();
}

fn bench_push_down(c: &mut Criterion) {
    let tree = CompleteTree::with_levels(LEVELS).unwrap();
    let mut group = c.benchmark_group("augmented-push-down");
    let leftmost = NodeId::from_level_offset(tree.max_level(), 0);
    let rightmost =
        NodeId::from_level_offset(tree.max_level(), tree.nodes_at_level(tree.max_level()) - 1);

    group.bench_function("leaf-to-opposite-leaf", |b| {
        let mut occupancy = Occupancy::identity(tree);
        b.iter(|| {
            let element = occupancy.element_at(leftmost);
            let mut round = MarkedRound::access(&mut occupancy, element).unwrap();
            let u = round.occupancy().node_of(element);
            augmented_push_down(&mut round, u, rightmost).unwrap();
            black_box(round.finish())
        })
    });

    group.finish();
}

/// The tentpole comparison of the cache-blocked layout: random root-to-leaf
/// walks reading the occupancy along the path — the exact slab access
/// pattern of the serve hot path — under the heap (identity) layout versus
/// the blocked layout, across tree sizes from L1-resident to far beyond LLC.
fn bench_layout_walks(c: &mut Criterion) {
    let mut group = c.benchmark_group("root-to-leaf-walk");
    group.sample_size(20);

    for levels in [10u32, 13, 16, 20] {
        let tree = CompleteTree::with_levels(levels).unwrap();
        let leaves = tree.nodes_at_level(tree.max_level());
        // Pseudorandom leaf targets from a splitmix-style LCG: the identity
        // placement puts element `i` at node `i`, so these double as request
        // elements. Random leaves defeat any cache reuse across walks on the
        // large trees, which is the regime the blocked layout targets.
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let targets: Vec<ElementId> = (0..4096)
            .map(|_| {
                state = state
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1_442_695_040_888_963_407);
                let offset = (state >> 33) as u32 % leaves;
                ElementId::new(NodeId::from_level_offset(tree.max_level(), offset).index())
            })
            .collect();

        for kind in [LayoutKind::Heap, LayoutKind::Blocked] {
            let occupancy = Occupancy::identity_with_layout(tree, kind);
            group.bench_with_input(
                BenchmarkId::new(kind.to_string(), 1u64 << levels),
                &occupancy,
                |b, occupancy| {
                    b.iter(|| {
                        let mut acc = 0u64;
                        for &element in &targets {
                            let node = occupancy.node_of(element);
                            for ancestor in node.ancestors() {
                                acc ^= u64::from(occupancy.element_at(ancestor).index());
                            }
                        }
                        black_box(acc)
                    })
                },
            );
        }
    }

    group.finish();
}

/// The fused batch drain with its prefetch-ahead prologue (`serve_batch`)
/// against the same requests served one `serve` call at a time — the only
/// difference on self-adjusting trees being the batch-local next-request
/// path touch and the per-call dispatch.
fn bench_serve_batch_prefetch(c: &mut Criterion) {
    let tree = CompleteTree::with_levels(16).unwrap();
    let mut rng = StdRng::seed_from_u64(2022);
    let workload = synthetic::combined(tree.num_nodes(), REQUESTS, 1.6, 0.75, &mut rng);
    let mut group = c.benchmark_group("serve-batch-prefetch");
    group.sample_size(10);

    for (name, batched) in [("on-serve-batch", true), ("off-serve-loop", false)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                let initial =
                    placement::random_occupancy(tree, &mut rng).with_layout(LayoutKind::Blocked);
                let mut algorithm = AlgorithmKind::RotorPush
                    .instantiate(initial, 7, workload.requests())
                    .unwrap();
                let mut summary = CostSummary::new();
                if batched {
                    algorithm
                        .serve_batch(workload.requests(), &mut summary)
                        .unwrap();
                } else {
                    for &request in workload.requests() {
                        summary.record(algorithm.serve(request).unwrap());
                    }
                }
                black_box(summary)
            })
        });
    }

    group.finish();
}

fn bench_serve_throughput(c: &mut Criterion) {
    let tree = CompleteTree::with_levels(LEVELS).unwrap();
    let mut rng = StdRng::seed_from_u64(2022);
    let workload = synthetic::combined(tree.num_nodes(), REQUESTS, 1.6, 0.75, &mut rng);
    let mut group = c.benchmark_group("serve-throughput");
    group.sample_size(20);

    for kind in AlgorithmKind::EVALUATED {
        group.bench_with_input(
            BenchmarkId::new("combined-workload", kind.name()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(7);
                    let initial = placement::random_occupancy(tree, &mut rng);
                    let mut algorithm = kind.instantiate(initial, 7, workload.requests()).unwrap();
                    black_box(algorithm.serve_sequence(workload.requests()).unwrap())
                })
            },
        );
    }

    group.finish();
}

/// Cold vs warm reshard handover at growing universe sizes: a plan moving
/// two elements between 2 of S fixed-size shards. The cold path rebuilds
/// every shard's tree from its canonical placement; the warm path rebuilds
/// only the two touched trees (carrying their exported rotor/recency state)
/// and keeps the rest untouched — so warm cost tracks the moved-element
/// count while cold cost tracks the universe size.
fn bench_reshard_handover(c: &mut Criterion) {
    let mut group = c.benchmark_group("reshard-handover");
    group.sample_size(20);
    let kind = AlgorithmKind::RotorPush;

    // The universe grows by adding fixed-size shards (127 elements each),
    // not by deepening a fixed shard set: a cold handover rebuilds every
    // shard so it scales with the universe, while the warm handover only
    // rebuilds the plan's two touched shards — constant work at any size.
    const SHARD_LEVELS: u32 = 7;
    for exponent in [10u32, 14, 18] {
        let shards = 1u32 << (exponent - SHARD_LEVELS);
        let old = Partition::new(
            ShardRouter::Range,
            shards * ((1 << SHARD_LEVELS) - 1),
            shards,
        );
        let mut log = EpochedPartition::from_partition(old.clone());
        let plan = ReshardPlan::new([(ElementId::new(0), 1), (ElementId::new(1), 1)]);
        log.apply(plan).unwrap();
        let new = log.current().clone();
        let touched = touched_shards(&old, &new);

        // Live trees with some served history, so warm carries real state.
        let trees: Vec<_> = (0..shards)
            .map(|shard| {
                let tree = CompleteTree::with_levels(old.shard_levels(shard)).unwrap();
                let mut algorithm = kind
                    .instantiate(Occupancy::identity(tree), u64::from(shard), &[])
                    .unwrap();
                for step in 0..100u32 {
                    let element = ElementId::new((step * 17 + shard) % tree.num_nodes());
                    algorithm.serve(element).unwrap();
                }
                algorithm
            })
            .collect();

        group.bench_with_input(
            BenchmarkId::new("cold", format!("2^{exponent}")),
            &exponent,
            |b, _| {
                b.iter(|| {
                    let occupancies: Vec<&Occupancy> =
                        trees.iter().map(|t| t.occupancy()).collect();
                    let outcome = handover(&old, &new, &occupancies);
                    let rebuilt: Vec<_> = outcome
                        .placements
                        .into_iter()
                        .enumerate()
                        .map(|(shard, placement)| {
                            let levels = (placement.len() + 1).trailing_zeros();
                            let geometry = CompleteTree::with_levels(levels).unwrap();
                            let occupancy = Occupancy::from_placement(geometry, placement).unwrap();
                            kind.instantiate(occupancy, shard as u64, &[]).unwrap()
                        })
                        .collect();
                    black_box(rebuilt)
                })
            },
        );

        group.bench_with_input(
            BenchmarkId::new("warm", format!("2^{exponent}")),
            &exponent,
            |b, _| {
                b.iter(|| {
                    let occupancies: Vec<&Occupancy> =
                        trees.iter().map(|t| t.occupancy()).collect();
                    let outcome = handover_touched(&old, &new, &occupancies, &touched);
                    let rebuilt: Vec<_> = outcome
                        .placements
                        .into_iter()
                        .enumerate()
                        .filter(|(shard, _)| touched[*shard])
                        .map(|(shard, placement)| {
                            let levels = (placement.len() + 1).trailing_zeros();
                            let geometry = CompleteTree::with_levels(levels).unwrap();
                            let occupancy = Occupancy::from_placement(geometry, placement).unwrap();
                            let remap = carry_remap(&old, &new, shard as u32);
                            let state = trees[shard].export_state().carried_into(geometry, &remap);
                            kind.instantiate_warm(occupancy, shard as u64, &[], &state)
                                .unwrap()
                        })
                        .collect();
                    black_box(rebuilt)
                })
            },
        );
    }

    group.finish();
}

fn bench_workload_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload-generation");
    group.sample_size(20);
    let nodes = (1u32 << LEVELS) - 1;

    group.bench_function("zipf", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            black_box(synthetic::zipf(nodes, REQUESTS, 1.9, &mut rng))
        })
    });
    group.bench_function("temporal", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            black_box(synthetic::temporal(nodes, REQUESTS, 0.9, &mut rng))
        })
    });
    group.bench_function("working-set-ranks", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        let workload = synthetic::zipf(nodes, REQUESTS, 1.6, &mut rng);
        b.iter(|| black_box(satn_analysis::working_set_ranks(nodes, workload.requests())))
    });
    group.bench_function("single-request-ids", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for index in 0..nodes {
                total += u64::from(black_box(ElementId::new(index)).index());
            }
            total
        })
    });

    group.finish();
}

criterion_group!(
    benches,
    bench_tree_primitives,
    bench_rotor_machinery,
    bench_push_down,
    bench_layout_walks,
    bench_serve_batch_prefetch,
    bench_serve_throughput,
    bench_reshard_handover,
    bench_workload_generation
);
criterion_main!(benches);
