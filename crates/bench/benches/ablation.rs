//! Ablation benchmark: how much of Rotor-Push's quality comes from actually
//! toggling the rotor pointers?
//!
//! The variants (see `satn_core::ablation`) are run on three workloads — the
//! combined-locality workload of Q4, a uniform workload, and the adversarial
//! round-robin path of Section 1.1 — and Criterion reports the wall-clock
//! time of serving the whole trace. The per-request *cost* comparison (the
//! interesting metric) is produced by
//! `cargo run -p satn-bench --bin experiments -- ablation`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use satn_core::ablation::AblationKind;
use satn_tree::{CompleteTree, Occupancy};
use satn_workloads::synthetic;

const LEVELS: u32 = 10; // 1023 nodes
const REQUESTS: usize = 10_000;

fn bench_ablation_variants(c: &mut Criterion) {
    let tree = CompleteTree::with_levels(LEVELS).unwrap();
    let nodes = tree.num_nodes();
    let mut rng = StdRng::seed_from_u64(2022);
    let workloads = [
        (
            "combined",
            synthetic::combined(nodes, REQUESTS, 1.6, 0.75, &mut rng),
        ),
        ("uniform", synthetic::uniform(nodes, REQUESTS, &mut rng)),
        (
            "round-robin-path",
            synthetic::round_robin_path(nodes, nodes / 2, REQUESTS / LEVELS as usize),
        ),
    ];

    let mut group = c.benchmark_group("rotor-ablation");
    group.sample_size(20);
    for (workload_name, workload) in &workloads {
        for variant in AblationKind::SWEEP {
            group.bench_with_input(
                BenchmarkId::new(*workload_name, variant.label()),
                &variant,
                |b, &variant| {
                    b.iter(|| {
                        let mut algorithm = variant.instantiate(Occupancy::identity(tree), 7);
                        black_box(algorithm.serve_sequence(workload.requests()).unwrap())
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_ablation_variants);
criterion_main!(benches);
