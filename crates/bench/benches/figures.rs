//! Criterion benchmarks, one group per figure/table of the paper.
//!
//! The groups measure the wall-clock time of serving a representative
//! workload with each algorithm (the quantity behind every cost plot), at a
//! reduced scale so that `cargo bench` finishes in minutes. The full-scale
//! measurements (the actual figures) are produced by the `experiments`
//! binary; see EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use satn_bench::{measure_once, ExperimentConfig};
use satn_core::{AlgorithmKind, RotorPush, SelfAdjustingTree};
use satn_tree::{CompleteTree, Occupancy};
use satn_workloads::{corpus, synthetic};
use std::time::Duration;

const NODES: u32 = 2_047; // 11 levels
const REQUESTS: usize = 10_000;

fn bench_config() -> ExperimentConfig {
    ExperimentConfig {
        nodes: NODES,
        requests: REQUESTS,
        repetitions: 1,
        seed: 2022,
        corpus_scale: 0.02,
        output_dir: None,
        parallelism: satn_exec::Parallelism::Auto,
    }
}

fn tree() -> CompleteTree {
    CompleteTree::with_nodes(u64::from(NODES)).unwrap()
}

/// Table 1 / core operation: a single Rotor-Push round at increasing depths.
fn bench_table1_pushdown(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_rotor_push_round");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for levels in [7u32, 11, 15] {
        group.bench_with_input(
            BenchmarkId::from_parameter(levels),
            &levels,
            |b, &levels| {
                let tree = CompleteTree::with_levels(levels).unwrap();
                let requests: Vec<satn_tree::ElementId> = (0..tree.num_nodes())
                    .rev()
                    .take(512)
                    .map(satn_tree::ElementId::new)
                    .collect();
                b.iter(|| {
                    let mut alg = RotorPush::new(Occupancy::identity(tree));
                    alg.serve_sequence(&requests).unwrap()
                });
            },
        );
    }
    group.finish();
}

/// Figure 2 (Q1): the size sweep under high temporal locality.
fn bench_q1_size_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure2_q1_size_sweep");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for nodes in [255u32, 1_023, 4_095] {
        let tree = CompleteTree::with_nodes(u64::from(nodes)).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let workload = synthetic::temporal(nodes, REQUESTS, 0.9, &mut rng);
        group.bench_with_input(BenchmarkId::new("rotor-push", nodes), &nodes, |b, _| {
            b.iter(|| measure_once(AlgorithmKind::RotorPush, tree, &workload, 1, 2));
        });
        group.bench_with_input(
            BenchmarkId::new("static-oblivious", nodes),
            &nodes,
            |b, _| {
                b.iter(|| measure_once(AlgorithmKind::StaticOblivious, tree, &workload, 1, 2));
            },
        );
    }
    group.finish();
}

/// Figure 3 (Q2): every algorithm on a high-temporal-locality workload.
fn bench_q2_temporal(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure3_q2_temporal");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let mut rng = StdRng::seed_from_u64(2);
    let workload = synthetic::temporal(NODES, REQUESTS, 0.75, &mut rng);
    for kind in AlgorithmKind::EVALUATED {
        group.bench_function(kind.name(), |b| {
            b.iter(|| measure_once(kind, tree(), &workload, 3, 4));
        });
    }
    group.finish();
}

/// Figure 4 (Q3): every algorithm on a skewed (Zipf) workload.
fn bench_q3_spatial(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure4_q3_spatial");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let mut rng = StdRng::seed_from_u64(3);
    let workload = synthetic::zipf(NODES, REQUESTS, 1.9, &mut rng);
    for kind in AlgorithmKind::EVALUATED {
        group.bench_function(kind.name(), |b| {
            b.iter(|| measure_once(kind, tree(), &workload, 5, 6));
        });
    }
    group.finish();
}

/// Figure 5a (Q4): Rotor-Push on the combined-locality grid corners.
fn bench_q4_combined(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure5a_q4_combined");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for (p, a) in [(0.0, 1.001), (0.9, 1.001), (0.0, 2.2), (0.9, 2.2)] {
        let mut rng = StdRng::seed_from_u64(4);
        let workload = synthetic::combined(NODES, REQUESTS, a, p, &mut rng);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("p{p}_a{a}")),
            &workload,
            |b, workload| {
                b.iter(|| measure_once(AlgorithmKind::RotorPush, tree(), workload, 7, 8));
            },
        );
    }
    group.finish();
}

/// Figure 5b (Q4): per-request comparison of Rotor-Push and Random-Push.
fn bench_q4_histogram(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure5b_q4_rotor_vs_random");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let mut rng = StdRng::seed_from_u64(5);
    let workload = synthetic::uniform(NODES, REQUESTS, &mut rng);
    group.bench_function("rotor-and-random", |b| {
        b.iter(|| {
            let initial = Occupancy::identity(tree());
            let mut rotor = RotorPush::new(initial.clone());
            let mut random = satn_core::RandomPush::with_seed(initial, 9);
            satn_analysis::access_cost_differences(&mut rotor, &mut random, workload.requests())
                .unwrap()
        });
    });
    group.finish();
}

/// Figures 6 and 7 (Q5): corpus preprocessing, complexity map and serving.
fn bench_q5_corpus(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures6_7_q5_corpus");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let mut rng = StdRng::seed_from_u64(6);
    let text = corpus::MarkovTextGenerator::new().text(5_000, &mut rng);
    group.bench_function("preprocess-3grams", |b| {
        b.iter(|| corpus::from_text("bench", &text));
    });
    let book = corpus::from_text("bench", &text);
    let trace: Vec<u32> = book.requests().iter().map(|e| e.index()).collect();
    group.bench_function("complexity-map", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            satn_compress::complexity_point(&trace, &mut rng)
        });
    });
    let levels = satn_workloads::fit_tree_levels(book.num_elements());
    let corpus_tree = CompleteTree::with_levels(levels).unwrap();
    group.bench_function("rotor-push-on-corpus", |b| {
        b.iter(|| measure_once(AlgorithmKind::RotorPush, corpus_tree, &book, 11, 12));
    });
    group.finish();
}

/// Lemma 8, the amortized audit and the ablation of the rotor mechanism.
fn bench_theory_and_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("theory_and_ablation");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("lemma8-adversary", |b| {
        b.iter(|| satn_analysis::run_lemma8(9, 2_000).unwrap());
    });
    group.bench_function("theorem7-audit", |b| {
        // The audit recomputes an O(n) credit sum per round, so it gets its
        // own small configuration.
        let mut config = bench_config();
        config.nodes = 255;
        config.requests = 2_000;
        b.iter(|| satn_bench::experiments::audit_experiment(&config));
    });
    // Ablation: Rotor-Push with frozen pointers versus the real algorithm on
    // a skewed workload (quantifies what toggling the rotors buys).
    let mut rng = StdRng::seed_from_u64(8);
    let workload = synthetic::zipf(NODES, REQUESTS, 1.6, &mut rng);
    group.bench_function("ablation-rotor-push", |b| {
        b.iter(|| {
            let mut alg = RotorPush::new(Occupancy::identity(tree()));
            alg.serve_sequence(workload.requests()).unwrap()
        });
    });
    group.bench_function("ablation-frozen-rotor", |b| {
        b.iter(|| {
            let mut alg = RotorPush::without_flipping(Occupancy::identity(tree()));
            alg.serve_sequence(workload.requests()).unwrap()
        });
    });
    group.finish();
}

criterion_group!(
    figures,
    bench_table1_pushdown,
    bench_q1_size_sweep,
    bench_q2_temporal,
    bench_q3_spatial,
    bench_q4_combined,
    bench_q4_histogram,
    bench_q5_corpus,
    bench_theory_and_ablation
);
criterion_main!(figures);
