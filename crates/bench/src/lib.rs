//! # satn-bench
//!
//! The experiment harness reproducing every figure and table of the paper's
//! evaluation (Section 6), plus the theory-validation experiments
//! (Lemma 8, Theorems 7 and 11, the Move-To-Front lower bound and Table 1).
//!
//! * Run everything: `cargo run -p satn-bench --release --bin experiments`
//! * Run one experiment: `cargo run -p satn-bench --release --bin experiments -- q2`
//! * Criterion micro-benchmarks: `cargo bench -p satn-bench`
//!
//! The library part exposes the building blocks so that integration tests and
//! the examples can reuse them:
//!
//! * [`ExperimentConfig`] — sizes, repetitions and seeds (`--quick`,
//!   default/standard, `--paper` presets),
//! * [`measure_algorithms`] — run a set of algorithms on a workload with
//!   repetitions and averaged per-request costs; each cell executes as a
//!   `satn-sim` scenario on the engine's batched serving path,
//! * [`experiments`] — one function per figure/table, each returning a
//!   [`FigureResult`] that renders as text or CSV.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod config;
pub mod experiments;
pub mod extensions;
mod histogram;
mod measure;
mod report;

pub use config::ExperimentConfig;
pub use histogram::LatencyHistogram;
pub use measure::{cost_of, measure_algorithms, measure_once, AlgorithmCost};
pub use report::{fmt, FigureResult, TextTable};
