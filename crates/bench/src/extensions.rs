//! Experiments that go beyond the paper's evaluation: the rotor-mechanism
//! ablation, convergence tracking, entropy bounds, and the multi-source
//! network composition. These are the "optional / future work" studies listed
//! in DESIGN.md §7; the paper's own figures live in [`crate::experiments`].

use crate::config::ExperimentConfig;
use crate::measure::{cost_of, measure_algorithms};
use crate::report::{fmt, FigureResult, TextTable};
use rand::rngs::StdRng;
use rand::SeedableRng;
use satn_analysis::{
    entropy, entropy_static_lower_bound, static_optimal_expected_cost, track_convergence,
};
use satn_core::ablation::AblationKind as RotorAblation;
use satn_core::{AlgorithmKind, RotorPush, SelfAdjustingTree, StaticOblivious};
use satn_network::{traffic, SelfAdjustingNetwork};
use satn_tree::{CompleteTree, Occupancy};
use satn_workloads::{nonstationary, synthetic, Workload};

use crate::experiments::ZIPF_A_VALUES;

fn tree_for(nodes: u32) -> CompleteTree {
    CompleteTree::with_nodes(u64::from(nodes)).expect("experiment sizes are complete-tree sizes")
}

/// Ablation of the rotor mechanism: the full algorithm, lazy flipping with
/// several periods, the frozen rotor and the re-randomized rotor, each on a
/// combined-locality workload, a uniform workload and the round-robin path
/// adversary of Section 1.1.
pub fn ablation_experiment(config: &ExperimentConfig) -> FigureResult {
    let nodes = config.nodes.min(4_095);
    let tree = tree_for(nodes);
    let requests = config.requests.min(200_000);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let combined = synthetic::combined(nodes, requests, 1.6, 0.75, &mut rng);
    let uniform = synthetic::uniform(nodes, requests, &mut rng);
    // The leftmost leaf (heap index n/2): with the identity initial placement
    // its root path coincides with the frozen rotor's global path, which is
    // exactly the regime where the missing flips hurt.
    let path = synthetic::round_robin_path(nodes, nodes / 2, requests / tree.num_levels() as usize);

    let mut table = TextTable::new([
        "variant",
        "combined locality (mean total)",
        "uniform (mean total)",
        "round-robin path (mean total)",
    ]);
    for variant in RotorAblation::SWEEP {
        let mut row = vec![variant.label()];
        for workload in [&combined, &uniform, &path] {
            let mut algorithm = variant.instantiate(Occupancy::identity(tree), config.seed);
            let summary = algorithm
                .serve_sequence(workload.requests())
                .expect("workloads fit the tree");
            row.push(fmt(summary.mean_total()));
        }
        table.push_row(row);
    }
    FigureResult::new(
        "extension-ablation",
        "Ablation of the rotor mechanism (lower is better; the frozen rotor degrades on the adversarial path workload)",
        table,
    )
}

/// Convergence of Rotor-Push towards the MRU / frequency-optimal layouts on a
/// phase-shifting workload, compared against the never-adjusting initial
/// tree.
pub fn convergence_experiment(config: &ExperimentConfig) -> FigureResult {
    let nodes = config.nodes.min(4_095);
    let tree = tree_for(nodes);
    let requests = config.requests.min(200_000);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let workload = nonstationary::shifting_hotspot(nodes, requests, 4, 1.9, &mut rng);

    let checkpoints = 8;
    let mut rotor = RotorPush::new(Occupancy::identity(tree));
    let mut oblivious = StaticOblivious::new(Occupancy::identity(tree));
    let rotor_points = track_convergence(&mut rotor, workload.requests(), checkpoints)
        .expect("workload fits the tree");
    let static_points = track_convergence(&mut oblivious, workload.requests(), checkpoints)
        .expect("workload fits the tree");

    let mut table = TextTable::new([
        "requests served",
        "rotor MRU displacement",
        "rotor frequency displacement",
        "rotor window cost",
        "oblivious window cost",
    ]);
    for (rotor_point, static_point) in rotor_points.iter().zip(&static_points) {
        table.push_row([
            rotor_point.requests_served.to_string(),
            fmt(rotor_point.mru_displacement),
            fmt(rotor_point.frequency_displacement),
            fmt(rotor_point.window_mean_cost),
            fmt(static_point.window_mean_cost),
        ]);
    }
    FigureResult::new(
        "extension-convergence",
        "Convergence on a shifting-hotspot workload: distance to the ideal layouts and per-window cost",
        table,
    )
}

/// Entropy bounds versus measured costs for the Zipf workloads of Q3: the
/// workload entropy, the Shannon lower bound for static layouts, the optimal
/// static expected access cost, and the measured costs of Static-Opt and
/// Rotor-Push.
pub fn entropy_experiment(config: &ExperimentConfig) -> FigureResult {
    let nodes = config.nodes;
    let tree = tree_for(nodes);
    let mut table = TextTable::new([
        "zipf a",
        "entropy (bits)",
        "static lower bound",
        "optimal static cost",
        "Static_opt measured access",
        "Rotor measured total",
    ]);
    for &a in &ZIPF_A_VALUES {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let workload: Workload = synthetic::zipf(nodes, config.requests, a, &mut rng);
        let weights = workload.weights();
        let kinds = [AlgorithmKind::StaticOpt, AlgorithmKind::RotorPush];
        let costs = measure_algorithms(&kinds, tree, &workload, config);
        table.push_row([
            a.to_string(),
            fmt(entropy(&weights)),
            fmt(entropy_static_lower_bound(&weights, tree.num_levels())),
            fmt(static_optimal_expected_cost(&weights)),
            fmt(cost_of(&costs, AlgorithmKind::StaticOpt).mean_access),
            fmt(cost_of(&costs, AlgorithmKind::RotorPush).mean_total()),
        ]);
    }
    FigureResult::new(
        "extension-entropy",
        "Entropy lower bounds vs. measured costs on the Q3 Zipf workloads",
        table,
    )
}

/// The multi-source composition: every host runs its own ego-tree and the
/// network serves hotspot traffic. Reports mean route cost and the physical
/// degree statistics per algorithm.
pub fn network_experiment(config: &ExperimentConfig) -> FigureResult {
    let num_hosts = 64u32.min(config.nodes.max(8));
    let pairs = (config.requests / 10).max(2_000);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let demand = traffic::hotspot(num_hosts, pairs, num_hosts as usize / 4, 0.85, &mut rng);

    let kinds = [
        AlgorithmKind::RotorPush,
        AlgorithmKind::RandomPush,
        AlgorithmKind::MoveHalf,
        AlgorithmKind::MaxPush,
        AlgorithmKind::StaticOblivious,
    ];
    let mut table = TextTable::new([
        "algorithm",
        "mean route cost",
        "mean access",
        "mean adjustment",
        "max degree",
        "mean degree",
    ]);
    for kind in kinds {
        let mut network =
            SelfAdjustingNetwork::new(num_hosts, kind, config.seed).expect("valid host count");
        let summary = network
            .serve_trace(demand.pairs())
            .expect("traffic fits the network");
        table.push_row([
            kind.name().to_owned(),
            fmt(summary.mean_total()),
            fmt(summary.mean_access()),
            fmt(summary.mean_adjustment()),
            network.max_degree().to_string(),
            fmt(network.mean_degree()),
        ]);
    }
    FigureResult::new(
        "extension-network",
        "Multi-source composition: 64 ego-trees serving hotspot traffic (route cost and physical degree)",
        table,
    )
}

/// Runs all extension experiments.
pub fn run_extensions(config: &ExperimentConfig) -> Vec<FigureResult> {
    vec![
        ablation_experiment(config),
        convergence_experiment(config),
        entropy_experiment(config),
        network_experiment(config),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ExperimentConfig {
        ExperimentConfig {
            nodes: 255,
            requests: 3_000,
            repetitions: 1,
            seed: 13,
            corpus_scale: 0.02,
            output_dir: None,
            parallelism: satn_exec::Parallelism::Auto,
        }
    }

    #[test]
    fn ablation_covers_every_variant_and_punishes_the_frozen_rotor_on_the_path() {
        let figure = ablation_experiment(&tiny_config());
        assert_eq!(figure.table.num_rows(), RotorAblation::SWEEP.len());
        let column = figure.table.header().len() - 1; // round-robin path column
        let value = |label: &str| -> f64 {
            figure
                .table
                .rows()
                .iter()
                .find(|row| row[0] == label)
                .unwrap()[column]
                .parse()
                .unwrap()
        };
        assert!(value("frozen") > value("rotor"));
    }

    #[test]
    fn convergence_reports_monotone_checkpoints() {
        let figure = convergence_experiment(&tiny_config());
        assert!(figure.table.num_rows() >= 2);
        let served: Vec<u64> = figure
            .table
            .rows()
            .iter()
            .map(|row| row[0].parse().unwrap())
            .collect();
        assert!(served.windows(2).all(|pair| pair[0] < pair[1]));
        assert_eq!(*served.last().unwrap(), 3_000);
    }

    #[test]
    fn entropy_bounds_sandwich_the_measured_static_opt_cost() {
        let figure = entropy_experiment(&tiny_config());
        for row in figure.table.rows() {
            let lower: f64 = row[2].parse().unwrap();
            let optimal: f64 = row[3].parse().unwrap();
            let measured: f64 = row[4].parse().unwrap();
            assert!(optimal + 1e-9 >= lower, "{row:?}");
            // The measured Static-Opt access cost uses the same layout as the
            // analytic optimum, up to the random initial placement of ties.
            assert!((measured - optimal).abs() < 0.75, "{row:?}");
        }
    }

    #[test]
    fn network_experiment_reports_every_algorithm_with_sane_degrees() {
        let figure = network_experiment(&tiny_config());
        assert_eq!(figure.table.num_rows(), 5);
        for row in figure.table.rows() {
            let max_degree: u32 = row[4].parse().unwrap();
            assert!(max_degree >= 1);
        }
        // Self-adjusting networks serve the hotspot traffic cheaper than the
        // oblivious static composition.
        let cost = |name: &str| -> f64 {
            figure
                .table
                .rows()
                .iter()
                .find(|row| row[0] == name)
                .unwrap()[1]
                .parse()
                .unwrap()
        };
        assert!(cost("rotor-push") < cost("static-oblivious"));
    }
}
