//! CI smoke test for the sharded serving engine: every `ShardRouter` policy
//! × a set of algorithms, fed through the channel-based ingestion layer and
//! drained concurrently on the `satn-exec` pool, then verified byte for byte
//! against the epoch-segmented serial reference replay (each epoch's
//! per-shard subsequences served standalone by `satn-sim`'s `SimRunner`,
//! chained through the deterministic handover). With `--reshard-every N` the
//! engines also reshard mid-stream under the load-adaptive `MoveHottest`
//! policy, so the full drain-fence → migrate → epoch-bump handover path is
//! exercised on every push; `--handover warm` runs those handovers in
//! warm-carry mode (untouched shards keep their live trees, touched shards
//! carry rotor/recency state), verified against the warm replay. Also runs
//! the ego-tree-per-source mode against a serial `SelfAdjustingNetwork`
//! replay. Exits non-zero on any divergence.
//!
//! ```text
//! serve-smoke [--shards N] [--threads N|auto|serial] [--requests N] [--seed S]
//!             [--reshard-every N] [--handover cold|warm] [--layout heap|blocked]
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use satn_core::AlgorithmKind;
use satn_network::{Host, HostPair, SelfAdjustingNetwork};
use satn_serve::{
    ingest_channel, replay, HandoverMode, Parallelism, ReshardPolicy, ReshardSchedule,
    ShardedEngineConfig, SourceShardedEngine,
};
use satn_sim::{ShardRouter, ShardedScenario, SimRunner, WorkloadSpec};
use satn_tree::{ElementId, LayoutKind};
use std::process::ExitCode;
use std::time::Instant;

const USAGE: &str = "usage: serve-smoke [--shards N] [--threads N|auto|serial] [--requests N] \
                     [--seed S] [--reshard-every N] [--handover cold|warm] \
                     [--layout heap|blocked]";

fn usage() -> ExitCode {
    eprintln!("{USAGE}");
    ExitCode::FAILURE
}

/// Runs one sharded scenario through the queue-fed engine and verifies it
/// against the epoch-segmented serial reference replay. Returns the
/// wall-clock seconds of the engine run, or `None` on divergence.
fn run_and_verify(scenario: &ShardedScenario, parallelism: Parallelism) -> Option<f64> {
    let mut engine = match ShardedEngineConfig::from_scenario(scenario)
        .parallelism(parallelism)
        .drain_threshold(1_024)
        .build()
    {
        Ok(engine) => engine,
        Err(error) => {
            eprintln!("{}: construction FAILED: {error}", scenario.name());
            return None;
        }
    };
    let requests: Vec<ElementId> = scenario.stream().collect();
    let started = Instant::now();
    let (mut sender, queue) = ingest_channel(16);
    let report = std::thread::scope(|scope| {
        scope.spawn(move || {
            // A closed queue only means the engine failed first; that error
            // is reported below.
            let _ = replay(&mut sender, requests, 512);
        });
        let result = engine.serve_queue(&queue).and_then(|()| engine.finish());
        if result.is_err() {
            // Unblock a producer stuck on the bounded channel so the scope
            // can join and the failure is reported instead of deadlocking.
            while queue.recv().is_some() {}
        }
        result
    });
    let elapsed = started.elapsed().as_secs_f64();
    let report = match report {
        Ok(report) => report,
        Err(error) => {
            eprintln!("{}: serving FAILED: {error}", scenario.name());
            return None;
        }
    };

    let reference = match scenario.epoch_replay(&SimRunner::new()) {
        Ok(reference) => reference,
        Err(error) => {
            eprintln!("{}: reference replay FAILED: {error}", scenario.name());
            return None;
        }
    };
    if let Err(divergence) = report.verify_against(&reference) {
        eprintln!("{}: {divergence}", scenario.name());
        return None;
    }
    Some(elapsed)
}

/// Verifies the ego-tree-per-source mode against a serial
/// `SelfAdjustingNetwork` replay of the same trace.
fn run_and_verify_ego(
    num_hosts: u32,
    shards: u32,
    parallelism: Parallelism,
    requests: usize,
    seed: u64,
) -> bool {
    let mut rng = StdRng::seed_from_u64(seed);
    let trace: Vec<HostPair> = (0..requests)
        .map(|_| loop {
            let source = rng.gen_range(0..num_hosts);
            let destination = rng.gen_range(0..num_hosts);
            if source != destination {
                return HostPair::from((source, destination));
            }
        })
        .collect();
    let kind = AlgorithmKind::RotorPush;
    let mut engine = match SourceShardedEngine::new(num_hosts, shards, kind, seed, parallelism) {
        Ok(engine) => engine,
        Err(error) => {
            eprintln!("ego engine construction FAILED: {error}");
            return false;
        }
    };
    if let Err(error) = engine.submit_trace(&trace) {
        eprintln!("ego engine serving FAILED: {error}");
        return false;
    }
    let report = match engine.finish() {
        Ok(report) => report,
        Err(error) => {
            eprintln!("ego engine finish FAILED: {error}");
            return false;
        }
    };
    let mut reference = SelfAdjustingNetwork::new(num_hosts, kind, seed).unwrap();
    reference.serve_trace(&trace).unwrap();
    if report.merged != *reference.total_cost() {
        eprintln!("ego mode MERGED SUMMARY DIVERGED from the serial network replay");
        return false;
    }
    for shard in 0..shards {
        let mut expected = satn_tree::CostSummary::new();
        for source in (shard..num_hosts).step_by(shards as usize) {
            expected.merge(reference.cost_of_source(Host::new(source)));
        }
        if report.per_shard[shard as usize].summary != expected {
            eprintln!("ego mode shard {shard} COST SUMMARY DIVERGED");
            return false;
        }
    }
    true
}

fn main() -> ExitCode {
    let mut shards = 4u32;
    let mut requests = 20_000usize;
    let mut seed = 2022u64;
    let mut parallelism = Parallelism::Auto;
    let mut reshard_every = 0usize;
    let mut handover = HandoverMode::Cold;
    let mut layout = LayoutKind::default();
    let mut args = std::env::args().skip(1);
    while let Some(argument) = args.next() {
        match argument.as_str() {
            "--shards" => match args.next().and_then(|v| v.parse::<u32>().ok()) {
                Some(value) if value > 0 => shards = value,
                _ => return usage(),
            },
            "--requests" => match args.next().and_then(|v| v.parse().ok()) {
                Some(value) => requests = value,
                None => return usage(),
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(value) => seed = value,
                None => return usage(),
            },
            "--threads" => match args.next().and_then(|v| v.parse().ok()) {
                Some(value) => parallelism = value,
                None => return usage(),
            },
            "--reshard-every" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(value) if value > 0 => reshard_every = value,
                _ => return usage(),
            },
            "--handover" => match args.next().and_then(|v| v.parse().ok()) {
                Some(value) => handover = value,
                None => return usage(),
            },
            "--layout" => match args.next().and_then(|v| v.parse().ok()) {
                Some(value) => layout = value,
                None => return usage(),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }

    let algorithms = [
        AlgorithmKind::RotorPush,
        AlgorithmKind::MaxPush,
        AlgorithmKind::MoveHalf,
        AlgorithmKind::StaticOpt,
    ];
    println!(
        "# serve-smoke — {} routers × {} algorithms, {} shards, {} requests each, {} workers, \
         {layout} layout{}",
        ShardRouter::ALL.len(),
        algorithms.len(),
        shards,
        requests,
        parallelism.threads(),
        if reshard_every > 0 {
            format!(", resharding every {reshard_every} ({handover} handover)")
        } else {
            String::new()
        }
    );

    let mut verified = 0usize;
    for router in ShardRouter::ALL {
        for algorithm in algorithms {
            let mut scenario = ShardedScenario::new(
                algorithm,
                WorkloadSpec::Combined { a: 1.9, p: 0.75 },
                shards,
                6,
                requests,
                seed,
            );
            scenario.router = router;
            scenario.layout = layout;
            // Offline algorithms cannot be rebuilt mid-stream; they keep
            // exercising the static path next to the resharding runs.
            if reshard_every > 0 && algorithm != AlgorithmKind::StaticOpt {
                scenario.reshard = ReshardSchedule::Policy(ReshardPolicy::MoveHottest {
                    every: reshard_every,
                    max_moves: 16,
                });
                scenario.handover = handover;
            }
            let Some(elapsed) = run_and_verify(&scenario, parallelism) else {
                return ExitCode::FAILURE;
            };
            println!(
                "{:<60} {:>10.0} req/s  (oracle ok)",
                scenario.name(),
                requests as f64 / elapsed
            );
            verified += 1;
        }
    }

    if !run_and_verify_ego(32, shards, parallelism, requests.min(10_000), seed) {
        return ExitCode::FAILURE;
    }
    println!("ego-tree-per-source mode                                      (oracle ok)");

    println!(
        "# all {} sharded runs + ego mode matched their serial reference replays byte for byte",
        verified
    );
    ExitCode::SUCCESS
}
