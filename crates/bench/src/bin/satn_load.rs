//! `satn-load` — the TCP load generator for `satnd`.
//!
//! Replays any [`WorkloadSpec`] request stream over the wire protocol
//! through a [`TcpIngest`] connection (the same scenario grammar `satnd`
//! accepts, so client and server agree on the stream byte for byte) and
//! reports per-frame round-trip latency quantiles. A frame's RTT spans from
//! its write to the server's acknowledgement — which the server only sends
//! once the frame is enqueued for the engine, so the tail latencies surface
//! engine backpressure, not just network time.
//!
//! ```text
//! satn-load --addr ADDR [--shards N] [--levels N] [--algorithm A]
//!           [--workload W] [--requests N] [--seed S] [--burst N]
//!           [--window N] [--reads FRACTION] [--reshard-every N]
//!           [--handover cold|warm] [--stats] [--out FILE]
//! ```
//!
//! With `--reads FRACTION` (0 ≤ f < 1) the generator interleaves `Lookup`
//! frames with the write bursts so that lookups make up that fraction of
//! all operations — `--reads 0.99` is the 99:1 read-mostly mix. Lookups
//! probe elements from the burst just written and are answered from the
//! server's published snapshots, so their RTTs measure the lock-free read
//! path, not the write path.
//!
//! With `--reshard-every N` the generator injects a `Reshard` control frame
//! after every `N` requests sent, moving two elements of the latest burst to
//! their next shard (the client tracks its own epoch log, so every plan names
//! real cross-shard moves). `--handover cold|warm` picks the handover mode
//! carried by those frames; each reshard frame's write-to-ack RTT is reported
//! separately, so the client sees exactly what a handover costs the write
//! path under either mode.
//!
//! With `--stats` the generator additionally polls the server's metrics
//! registry over the wire (a `Stats` frame, answered off the write path)
//! roughly every reporting interval, printing the server-side drain latency
//! quantiles, served counts, and migration ledger beside the client RTTs,
//! and embeds the final server snapshot in the JSON report.
//!
//! Writes a JSON report (throughput + p50/p99/p999/max frame RTT, and the
//! same quantiles for lookup RTTs when reads are mixed in) to `--out`, and
//! prints the same summary to stdout. Retries the initial connection for a
//! few seconds so it can be launched alongside `satnd`.

use satn_bench::LatencyHistogram;
use satn_core::AlgorithmKind;
use satn_obs::{names, MetricsSnapshot};
use satn_serve::{
    EpochedPartition, HandoverMode, Ingest, ReshardPlan, ServeError, ShardedScenario, TcpIngest,
    DEFAULT_WINDOW,
};
use satn_sim::WorkloadSpec;
use satn_tree::ElementId;
use std::collections::VecDeque;
use std::process::ExitCode;
use std::time::{Duration, Instant};

const USAGE: &str = "usage: satn-load --addr ADDR [--shards N] [--levels N] [--algorithm A] \
                     [--workload W] [--requests N] [--seed S] [--burst N] [--window N] \
                     [--reads FRACTION] [--reshard-every N] [--handover cold|warm] \
                     [--stats] [--out FILE]";

/// How often `--stats` polls the server registry mid-run.
const STATS_INTERVAL: Duration = Duration::from_millis(250);

fn usage() -> ExitCode {
    eprintln!("{USAGE}");
    ExitCode::FAILURE
}

/// Retries the connection for ~5 seconds: `satn-load` is routinely launched
/// in the same breath as `satnd`, before the listener is up.
fn connect_with_retry(addr: &str) -> Result<TcpIngest, ServeError> {
    let mut last = None;
    for _ in 0..50 {
        match TcpIngest::connect(addr) {
            Ok(client) => return Ok(client),
            Err(error) => last = Some(error),
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    Err(last.expect("fifty attempts leave an error"))
}

struct LoadReport {
    frames: u64,
    requests: usize,
    lookups: u64,
    reshards: u64,
    elapsed: f64,
    histogram: LatencyHistogram,
    lookup_histogram: LatencyHistogram,
    reshard_histogram: LatencyHistogram,
    server: Option<MetricsSnapshot>,
}

/// One interim `--stats` line: the server-side counters and drain quantiles
/// a client can see mid-run, printed beside the client's own RTT numbers.
fn print_stats_line(snapshot: &MetricsSnapshot) {
    let micros = |d: Duration| d.as_secs_f64() * 1e6;
    let counter = |name: &str| snapshot.counter(name).unwrap_or(0);
    let (p50, p99) = snapshot
        .histogram(names::DRAIN_LATENCY)
        .map(|drain| (micros(drain.quantile(0.50)), micros(drain.quantile(0.99))))
        .unwrap_or((0.0, 0.0));
    println!(
        "stats: served={} drains={} drain_us p50={p50:.1} p99={p99:.1} lookups={} \
         queue_depth={} epoch={} touched_units={} rebuilt_nodes={}",
        counter(names::REQUESTS_SERVED),
        counter(names::BATCHES_DRAINED),
        counter(names::LOOKUPS_ANSWERED),
        snapshot.gauge(names::INGEST_QUEUE_DEPTH).unwrap_or(0),
        snapshot.gauge(names::RESHARD_EPOCH).unwrap_or(0),
        counter(names::MIGRATION_TOUCHED_UNITS),
        counter(names::MIGRATION_REBUILT_NODES),
    );
}

/// Replays the scenario stream in bursts, timing each frame from write to
/// acknowledgement. With `reads > 0`, lookups are interleaved after every
/// burst (probing elements the burst just wrote) so they make up `reads`
/// of all operations; each lookup's RTT spans write to `Found`. With
/// `reshard_every > 0`, a `Reshard` frame follows every `reshard_every`-th
/// request: the client applies each plan to its own epoch log, so every
/// plan moves two of the latest burst's elements to their next shard.
#[allow(clippy::too_many_arguments)]
fn run(
    addr: &str,
    scenario: &ShardedScenario,
    burst: usize,
    window: usize,
    reads: f64,
    reshard_every: usize,
    handover: HandoverMode,
    stats: bool,
) -> Result<LoadReport, ServeError> {
    let mut client = connect_with_retry(addr)?.with_window(window);
    let requests: Vec<ElementId> = scenario.stream().collect();
    let mut histogram = LatencyHistogram::new();
    let mut lookup_histogram = LatencyHistogram::new();
    let mut reshard_histogram = LatencyHistogram::new();
    let mut in_flight: VecDeque<(Instant, bool)> = VecDeque::with_capacity(window);
    let mut recorded = 0u64;
    let mut lookups = 0u64;
    let mut reshards = 0u64;
    let mut log = EpochedPartition::from_partition(scenario.partition());
    let shards = scenario.shards;
    let mut sent_requests = 0usize;
    // Lookups owed so the read fraction converges on `reads`: every write
    // earns reads / (1 - reads) of a lookup.
    let mut owed = 0.0f64;
    let started = Instant::now();
    let mut last_poll = started;
    for chunk in requests.chunks(burst) {
        client.send_burst(chunk)?;
        in_flight.push_back((Instant::now(), false));
        sent_requests += chunk.len();
        if reshard_every > 0 && sent_requests / reshard_every > reshards as usize {
            // Move the burst's first two distinct elements one shard over
            // (per the client's own epoch log, so the moves are real).
            let mut moves = Vec::new();
            for &element in chunk {
                if moves.iter().any(|&(seen, _)| seen == element) {
                    continue;
                }
                let from = log.current().shard_of(element).expect("routed elements");
                moves.push((element, (from + 1) % shards));
                if moves.len() == 2 {
                    break;
                }
            }
            let plan = ReshardPlan::new(moves);
            log.apply(plan.clone()).expect("plans move owned elements");
            client.reshard(&plan, handover)?;
            in_flight.push_back((Instant::now(), true));
            reshards += 1;
        }
        owed += chunk.len() as f64 * reads / (1.0 - reads);
        while owed >= 1.0 {
            let probe = chunk[lookups as usize % chunk.len()];
            let asked_at = Instant::now();
            client.lookup(probe)?;
            lookup_histogram.record(asked_at.elapsed());
            lookups += 1;
            owed -= 1.0;
        }
        if stats && last_poll.elapsed() >= STATS_INTERVAL {
            print_stats_line(&client.stats()?);
            last_poll = Instant::now();
        }
        // Every ack the send and lookup loops have absorbed closes one
        // frame's RTT.
        while recorded < client.acked() {
            let (sent_at, was_reshard) = in_flight.pop_front().expect("one send per ack");
            if was_reshard {
                reshard_histogram.record(sent_at.elapsed());
            } else {
                histogram.record(sent_at.elapsed());
            }
            recorded += 1;
        }
    }
    client.drain_acks()?;
    while recorded < client.acked() {
        let (sent_at, was_reshard) = in_flight.pop_front().expect("one send per ack");
        if was_reshard {
            reshard_histogram.record(sent_at.elapsed());
        } else {
            histogram.record(sent_at.elapsed());
        }
        recorded += 1;
    }
    // The final poll happens after every write is acknowledged — i.e.
    // enqueued; the served count can still trail the sent count until the
    // engine's final drain, which only its own shutdown path observes.
    let server = if stats {
        let snapshot = client.stats()?;
        print_stats_line(&snapshot);
        Some(snapshot)
    } else {
        None
    };
    let frames = client.finish()?;
    let elapsed = started.elapsed().as_secs_f64();
    Ok(LoadReport {
        frames,
        requests: requests.len(),
        lookups,
        reshards,
        elapsed,
        histogram,
        lookup_histogram,
        reshard_histogram,
        server,
    })
}

fn json(
    report: &LoadReport,
    scenario: &ShardedScenario,
    burst: usize,
    window: usize,
    reads: f64,
    handover: HandoverMode,
) -> String {
    let micros = |d: Duration| d.as_secs_f64() * 1e6;
    let quantiles = |histogram: &LatencyHistogram| {
        format!(
            "{{\n    \"p50\": {:.1},\n    \"p99\": {:.1},\n    \"p999\": {:.1},\n    \
             \"max\": {:.1}\n  }}",
            micros(histogram.quantile(0.50)),
            micros(histogram.quantile(0.99)),
            micros(histogram.quantile(0.999)),
            micros(histogram.max()),
        )
    };
    let elapsed = report.elapsed.max(f64::MIN_POSITIVE);
    let server = report
        .server
        .as_ref()
        .map(|snapshot| {
            let counter = |name: &str| snapshot.counter(name).unwrap_or(0);
            let drain = snapshot
                .histogram(names::DRAIN_LATENCY)
                .cloned()
                .unwrap_or_default();
            let handover_latency = snapshot
                .histogram(names::HANDOVER_LATENCY)
                .cloned()
                .unwrap_or_default();
            format!(
                "{{\n    \"requests_served\": {},\n    \"batches_drained\": {},\n    \
                 \"lookups_answered\": {},\n    \"migration_units\": {},\n    \
                 \"migration_touched_units\": {},\n    \"migration_rebuilt_nodes\": {},\n    \
                 \"reshard_epoch\": {},\n    \"drain_latency_us\": {{\n      \
                 \"p50\": {:.1},\n      \"p99\": {:.1},\n      \"max\": {:.1}\n    }},\n    \
                 \"handover_latency_us\": {{\n      \
                 \"p50\": {:.1},\n      \"p99\": {:.1},\n      \"max\": {:.1}\n    }}\n  }}",
                counter(names::REQUESTS_SERVED),
                counter(names::BATCHES_DRAINED),
                counter(names::LOOKUPS_ANSWERED),
                counter(names::MIGRATION_UNITS),
                counter(names::MIGRATION_TOUCHED_UNITS),
                counter(names::MIGRATION_REBUILT_NODES),
                snapshot.gauge(names::RESHARD_EPOCH).unwrap_or(0),
                micros(drain.quantile(0.50)),
                micros(drain.quantile(0.99)),
                micros(drain.max()),
                micros(handover_latency.quantile(0.50)),
                micros(handover_latency.quantile(0.99)),
                micros(handover_latency.max()),
            )
        })
        .unwrap_or_else(|| String::from("null"));
    format!(
        "{{\n  \"scenario\": \"{}\",\n  \"requests\": {},\n  \"frames\": {},\n  \
         \"lookups\": {},\n  \"reshards\": {},\n  \"handover\": \"{}\",\n  \
         \"reads\": {:.4},\n  \"burst\": {},\n  \"window\": {},\n  \
         \"elapsed_s\": {:.6},\n  \"throughput_req_per_s\": {:.0},\n  \
         \"throughput_ops_per_s\": {:.0},\n  \"frame_rtt_us\": {},\n  \
         \"lookup_rtt_us\": {},\n  \"reshard_rtt_us\": {},\n  \"server\": {}\n}}\n",
        scenario.name(),
        report.requests,
        report.frames,
        report.lookups,
        report.reshards,
        handover,
        reads,
        burst,
        window,
        report.elapsed,
        report.requests as f64 / elapsed,
        (report.requests as u64 + report.lookups) as f64 / elapsed,
        quantiles(&report.histogram),
        quantiles(&report.lookup_histogram),
        quantiles(&report.reshard_histogram),
        server,
    )
}

fn main() -> ExitCode {
    let mut addr = None;
    let mut shards = 4u32;
    let mut levels = 6u32;
    let mut algorithm = AlgorithmKind::RotorPush;
    let mut workload = WorkloadSpec::Combined { a: 1.9, p: 0.75 };
    let mut requests = 20_000usize;
    let mut seed = 2022u64;
    let mut burst = 512usize;
    let mut window = DEFAULT_WINDOW;
    let mut reads = 0.0f64;
    let mut reshard_every = 0usize;
    let mut handover = HandoverMode::Cold;
    let mut stats = false;
    let mut out = None;

    let mut args = std::env::args().skip(1);
    while let Some(argument) = args.next() {
        match argument.as_str() {
            "--addr" => match args.next() {
                Some(value) => addr = Some(value),
                None => return usage(),
            },
            "--shards" => match args.next().and_then(|v| v.parse::<u32>().ok()) {
                Some(value) if value > 0 => shards = value,
                _ => return usage(),
            },
            "--levels" => match args.next().and_then(|v| v.parse::<u32>().ok()) {
                Some(value) if value > 0 => levels = value,
                _ => return usage(),
            },
            "--algorithm" => match args.next().and_then(|v| v.parse().ok()) {
                Some(value) => algorithm = value,
                None => return usage(),
            },
            "--workload" => match args.next().and_then(|v| v.parse().ok()) {
                Some(value) => workload = value,
                None => return usage(),
            },
            "--requests" => match args.next().and_then(|v| v.parse().ok()) {
                Some(value) => requests = value,
                None => return usage(),
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(value) => seed = value,
                None => return usage(),
            },
            "--burst" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(value) if value > 0 => burst = value,
                _ => return usage(),
            },
            "--window" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(value) if value > 0 => window = value,
                _ => return usage(),
            },
            "--reads" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(value) if (0.0..1.0).contains(&value) => reads = value,
                _ => return usage(),
            },
            "--reshard-every" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(value) if value > 0 => reshard_every = value,
                _ => return usage(),
            },
            "--handover" => match args.next().and_then(|v| v.parse().ok()) {
                Some(value) => handover = value,
                None => return usage(),
            },
            "--stats" => stats = true,
            "--out" => match args.next() {
                Some(value) => out = Some(value),
                None => return usage(),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }
    let Some(addr) = addr else {
        return usage();
    };

    let scenario = ShardedScenario::new(algorithm, workload, shards, levels, requests, seed);
    let report = match run(
        &addr,
        &scenario,
        burst,
        window,
        reads,
        reshard_every,
        handover,
        stats,
    ) {
        Ok(report) => report,
        Err(error) => {
            eprintln!("satn-load: {error}");
            return ExitCode::FAILURE;
        }
    };

    let rendered = json(&report, &scenario, burst, window, reads, handover);
    print!("{rendered}");
    if let Some(path) = out {
        if let Err(error) = std::fs::write(&path, &rendered) {
            eprintln!("satn-load: cannot write {path}: {error}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
