//! Perf-trajectory harness for the parallel execution layer: times the
//! reduced 84-cell sim-smoke grid (7 algorithms × 4 workload families ×
//! 3 tree sizes) serial vs. parallel — median of `--runs` timed runs each —
//! verifies the two modes produce byte-identical results, and adds a
//! **shard-scaling section**: the sharded serving engine at S = 1/2/4/8
//! shards, 1 thread vs. all threads, requests/sec with the per-shard
//! fingerprint oracle checked against the serial run. The data point is
//! written as JSON.
//!
//! ```text
//! bench-report [--requests N] [--runs K] [--threads N|auto|serial] [--out PATH]
//! ```
//!
//! The committed `BENCH_PR*.json` files at the repository root are the data
//! points of this trajectory; rerun on any machine with
//! `cargo run --release -p satn-bench --bin bench-report`. Since PR 8 the
//! report also carries a **layout section**: the grid under the heap vs the
//! cache-blocked storage layout (run concurrently on a
//! [`Parallelism::split`] nested-parallelism budget, with the
//! layout-invariance oracle), the root-to-leaf walk microbench across tree
//! sizes, and the sharded engine's throughput per layout. Since PR 10 it
//! also carries a **handover section**: cold full-rebuild vs warm carried
//! reshard handover for a two-shard plan across universe sizes, showing the
//! warm cost tracks the moved-element count rather than the universe.

use satn_core::{AlgorithmKind, SelfAdjustingTree};
use satn_exec::{ordered_map, Parallelism};
use satn_serve::{EngineReport, ReshardPolicy, ReshardSchedule, ShardedEngineConfig};
use satn_sim::{Checkpoints, ScenarioGrid, ScenarioResult, SimRunner};
use satn_sim::{Scenario, ShardRouter, ShardedScenario, WorkloadSpec};
use satn_tree::{CompleteTree, ElementId, LayoutKind, NodeId, Occupancy};
use satn_workloads::shard::{
    carry_remap, handover, handover_touched, touched_shards, EpochedPartition, Partition,
    ReshardPlan,
};
use std::process::ExitCode;
use std::time::Instant;

fn usage() -> ExitCode {
    eprintln!(
        "usage: bench-report [--requests N] [--runs K] [--threads N|auto|serial] [--out PATH]"
    );
    ExitCode::FAILURE
}

fn median_ms(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        (samples[mid - 1] + samples[mid]) / 2.0
    }
}

fn time_grid(
    runner: &SimRunner,
    grid: &ScenarioGrid,
    runs: usize,
) -> (Vec<f64>, Vec<(Scenario, ScenarioResult)>) {
    let mut samples = Vec::with_capacity(runs);
    let mut last = Vec::new();
    for _ in 0..runs {
        let started = Instant::now();
        last = runner.run_grid(grid, false).unwrap_or_else(|failure| {
            panic!("scenario {} failed: {}", failure.0.name(), failure.1)
        });
        samples.push(started.elapsed().as_secs_f64() * 1_000.0);
    }
    (samples, last)
}

fn json_array(samples: &[f64]) -> String {
    let entries: Vec<String> = samples.iter().map(|ms| format!("{ms:.3}")).collect();
    format!("[{}]", entries.join(", "))
}

/// Times one sharded engine run over a pre-materialized request buffer;
/// returns the wall-clock milliseconds and the final report.
fn time_sharded(
    scenario: &ShardedScenario,
    requests: &[ElementId],
    parallelism: Parallelism,
) -> (f64, EngineReport) {
    let mut engine = ShardedEngineConfig::from_scenario(scenario)
        .parallelism(parallelism)
        .drain_threshold(4_096)
        .build()
        .expect("shard construction cannot fail on a valid scenario");
    let started = Instant::now();
    engine
        .submit_burst(requests)
        .and_then(|()| engine.finish())
        .map(|report| (started.elapsed().as_secs_f64() * 1_000.0, report))
        .unwrap_or_else(|error| panic!("sharded run {} failed: {error}", scenario.name()))
}

/// The shard-scaling sweep: S = 1/2/4/8 shards, serial vs. `threads`
/// workers, median of `runs` timed runs each, with the fingerprint oracle
/// (parallel per-shard reports byte-identical to serial). Returns the JSON
/// fragment, or `None` if the oracle fails.
fn shard_scaling_json(
    requests_per_run: usize,
    runs: usize,
    parallelism: Parallelism,
) -> Option<String> {
    let mut sections = Vec::new();
    for shards in [1u32, 2, 4, 8] {
        let scenario = ShardedScenario::new(
            AlgorithmKind::RotorPush,
            WorkloadSpec::Combined { a: 1.9, p: 0.75 },
            shards,
            8,
            requests_per_run,
            2022,
        );
        let requests: Vec<ElementId> = scenario.stream().collect();

        let mut serial_ms = Vec::with_capacity(runs);
        let mut parallel_ms = Vec::with_capacity(runs);
        let (_, serial_reference) = time_sharded(&scenario, &requests, Parallelism::Serial);
        for _ in 0..runs {
            let (elapsed, report) = time_sharded(&scenario, &requests, Parallelism::Serial);
            if report != serial_reference {
                eprintln!("FATAL: serial sharded replay diverged at S={shards}");
                return None;
            }
            serial_ms.push(elapsed);
            let (elapsed, report) = time_sharded(&scenario, &requests, parallelism);
            if report != serial_reference {
                eprintln!("FATAL: parallel sharded run diverged from serial at S={shards}");
                return None;
            }
            parallel_ms.push(elapsed);
        }
        let serial_median = median_ms(&mut serial_ms);
        let parallel_median = median_ms(&mut parallel_ms);
        let serial_rps = requests_per_run as f64 / (serial_median / 1_000.0);
        let parallel_rps = requests_per_run as f64 / (parallel_median / 1_000.0);
        println!(
            "# shards {shards}: serial {serial_median:.1} ms ({serial_rps:.0} req/s) | parallel {parallel_median:.1} ms ({parallel_rps:.0} req/s) | oracle ok"
        );
        sections.push(format!(
            "    {{ \"shards\": {shards}, \"router\": \"{}\", \"serial_median_ms\": {serial_median:.3}, \"parallel_median_ms\": {parallel_median:.3}, \"serial_requests_per_s\": {serial_rps:.0}, \"parallel_requests_per_s\": {parallel_rps:.0}, \"speedup\": {:.3}, \"deterministic\": true }}",
            ShardRouter::Hash,
            serial_median / parallel_median,
        ));
    }
    Some(format!("[\n{}\n  ]", sections.join(",\n")))
}

/// The largest per-shard share of the served requests: 1/S is perfectly
/// balanced, 1.0 is a single hot shard taking everything.
fn max_shard_share(report: &EngineReport) -> f64 {
    let total = report.requests.max(1) as f64;
    report
        .per_shard
        .iter()
        .map(|shard| shard.summary.requests() as f64 / total)
        .fold(0.0, f64::max)
}

/// The resharding section: a shifting hot-shard stream (every phase hammers
/// one shard; the hot shard moves between phases) served by the static
/// engine vs. the policy-resharded engine. Reports req/s, the max-shard
/// load share, and the migration cost — all in one run — and checks the
/// epoch-segmented fingerprint oracle on the resharded engine. Returns the
/// JSON fragment, or `None` if an oracle fails.
fn reshard_section_json(
    requests_per_run: usize,
    runs: usize,
    parallelism: Parallelism,
) -> Option<String> {
    let shards = 4u32;
    let phases = 12usize;
    let every = (requests_per_run / 40).max(1);
    let static_scenario = ShardedScenario::hot_shard(
        AlgorithmKind::RotorPush,
        shards,
        8,
        requests_per_run,
        2022,
        phases,
        1.9,
    );
    let mut resharded_scenario = static_scenario.clone();
    resharded_scenario.reshard = ReshardSchedule::Policy(ReshardPolicy::MoveHottest {
        every,
        max_moves: 64,
    });

    let requests: Vec<ElementId> = static_scenario.stream().collect();
    let mut static_ms = Vec::with_capacity(runs);
    let mut resharded_ms = Vec::with_capacity(runs);
    let (_, static_reference) = time_sharded(&static_scenario, &requests, Parallelism::Serial);
    let (_, resharded_reference) =
        time_sharded(&resharded_scenario, &requests, Parallelism::Serial);
    for _ in 0..runs {
        let (elapsed, report) = time_sharded(&static_scenario, &requests, parallelism);
        if report != static_reference {
            eprintln!("FATAL: static hot-shard run diverged from its serial reference");
            return None;
        }
        static_ms.push(elapsed);
        let (elapsed, report) = time_sharded(&resharded_scenario, &requests, parallelism);
        if report != resharded_reference {
            eprintln!("FATAL: resharded run diverged from its serial reference");
            return None;
        }
        resharded_ms.push(elapsed);
    }

    // The epoch-segmented replay oracle: boundary fingerprints + ledger.
    let replay = resharded_scenario
        .epoch_replay(&SimRunner::new())
        .expect("the reference replay cannot fail on a valid scenario");
    if resharded_reference.accounting != replay.accounting
        || resharded_reference.boundaries != replay.boundaries
        || (0..replay.epochs()).any(|epoch| {
            (0..shards).any(|shard| {
                resharded_reference.epoch_fingerprints[epoch as usize][shard as usize]
                    != replay.fingerprint(epoch, shard)
            })
        })
    {
        eprintln!("FATAL: resharded engine diverged from the epoch-segmented replay");
        return None;
    }

    let static_median = median_ms(&mut static_ms);
    let resharded_median = median_ms(&mut resharded_ms);
    let static_rps = requests_per_run as f64 / (static_median / 1_000.0);
    let resharded_rps = requests_per_run as f64 / (resharded_median / 1_000.0);
    let static_share = max_shard_share(&static_reference);
    let resharded_share = max_shard_share(&resharded_reference);
    let migration = resharded_reference.migration;
    println!(
        "# resharding: static {static_rps:.0} req/s (max share {static_share:.3}) | resharded {resharded_rps:.0} req/s (max share {resharded_share:.3}, {} epochs, {} moved, {} migration units) | oracle ok",
        resharded_reference.epoch_fingerprints.len(),
        migration.moved,
        migration.total(),
    );
    Some(format!(
        "{{\n    \"workload\": \"{}\", \"shards\": {shards}, \"requests\": {requests_per_run}, \"reshard_every\": {every},\n    \"static\": {{ \"median_ms\": {static_median:.3}, \"requests_per_s\": {static_rps:.0}, \"max_shard_share\": {static_share:.4} }},\n    \"resharded\": {{ \"median_ms\": {resharded_median:.3}, \"requests_per_s\": {resharded_rps:.0}, \"max_shard_share\": {resharded_share:.4}, \"epochs\": {}, \"moved_elements\": {}, \"migration_cost_units\": {} }},\n    \"max_share_reduction\": {:.4},\n    \"deterministic\": true\n  }}",
        static_scenario.workload.label(),
        resharded_reference.epoch_fingerprints.len(),
        migration.moved,
        migration.total(),
        static_share - resharded_share,
    ))
}

/// The warm-handover section: a reshard plan moving two elements between
/// 2 of S fixed-size shards (127 elements each), applied cold (every tree
/// rebuilt and reseeded) vs warm (untouched shards keep their live trees;
/// the two touched trees carry their exported rotor state), at universe
/// sizes 2^10 / 2^14 / 2^18 grown by adding shards. Cold cost is
/// O(universe); warm cost tracks the moved-element count, so the gap must
/// widen with size. Also verifies both modes migrate the same elements at
/// the same priced cost. Returns the JSON fragment, or `None` if an oracle
/// or the expected scaling fails.
fn handover_section_json(runs: usize) -> Option<String> {
    const SHARD_LEVELS: u32 = 7;
    let kind = AlgorithmKind::RotorPush;
    let runs = runs.max(9);
    let mut sections = Vec::new();
    let mut top_speedup = 0.0f64;
    for exponent in [10u32, 14, 18] {
        let shards = 1u32 << (exponent - SHARD_LEVELS);
        let universe = shards * ((1u32 << SHARD_LEVELS) - 1);
        let old = Partition::new(ShardRouter::Range, universe, shards);
        let mut log = EpochedPartition::from_partition(old.clone());
        let plan = ReshardPlan::new([(ElementId::new(0), 1), (ElementId::new(1), 1)]);
        log.apply(plan).expect("the plan moves owned elements");
        let new = log.current().clone();
        let touched = touched_shards(&old, &new);

        // Live trees with served history, so the warm path carries real
        // rotor state rather than the cold-start configuration.
        let trees: Vec<_> = (0..shards)
            .map(|shard| {
                let tree = CompleteTree::with_levels(old.shard_levels(shard))
                    .expect("bench levels are valid");
                let mut algorithm = kind
                    .instantiate(Occupancy::identity(tree), u64::from(shard), &[])
                    .expect("online algorithms instantiate from any occupancy");
                for step in 0..100u32 {
                    let element = ElementId::new((step * 17 + shard) % tree.num_nodes());
                    algorithm.serve(element).expect("served elements are owned");
                }
                algorithm
            })
            .collect();
        let occupancies: Vec<&Occupancy> = trees.iter().map(|t| t.occupancy()).collect();

        // Oracle: the incremental handover prices exactly the full one.
        let full = handover(&old, &new, &occupancies);
        let incremental = handover_touched(&old, &new, &occupancies, &touched);
        if full.migration != incremental.migration {
            eprintln!("FATAL: warm handover repriced the migration at 2^{exponent}");
            return None;
        }

        // Best-of-N timing (fixed small work per sample; see time_walks).
        let mut cold_us = f64::INFINITY;
        let mut warm_us = f64::INFINITY;
        for sample in 0..=runs {
            let started = Instant::now();
            let outcome = handover(&old, &new, &occupancies);
            let rebuilt: Vec<_> = outcome
                .placements
                .into_iter()
                .enumerate()
                .map(|(shard, placement)| {
                    let levels = (placement.len() + 1).trailing_zeros();
                    let geometry = CompleteTree::with_levels(levels).expect("placements are trees");
                    let occupancy = Occupancy::from_placement(geometry, placement)
                        .expect("handover placements are permutations");
                    kind.instantiate(occupancy, shard as u64, &[])
                        .expect("online algorithms instantiate from any occupancy")
                })
                .collect();
            std::hint::black_box(rebuilt);
            if sample > 0 {
                cold_us = cold_us.min(started.elapsed().as_secs_f64() * 1e6);
            }

            let started = Instant::now();
            let outcome = handover_touched(&old, &new, &occupancies, &touched);
            let rebuilt: Vec<_> = outcome
                .placements
                .into_iter()
                .enumerate()
                .filter(|(shard, _)| touched[*shard])
                .map(|(shard, placement)| {
                    let levels = (placement.len() + 1).trailing_zeros();
                    let geometry = CompleteTree::with_levels(levels).expect("placements are trees");
                    let occupancy = Occupancy::from_placement(geometry, placement)
                        .expect("handover placements are permutations");
                    let remap = carry_remap(&old, &new, shard as u32);
                    let state = trees[shard].export_state().carried_into(geometry, &remap);
                    kind.instantiate_warm(occupancy, shard as u64, &[], &state)
                        .expect("warm state fits the rebuilt tree")
                })
                .collect();
            std::hint::black_box(rebuilt);
            if sample > 0 {
                warm_us = warm_us.min(started.elapsed().as_secs_f64() * 1e6);
            }
        }

        let speedup = cold_us / warm_us;
        top_speedup = speedup;
        let touched_count = touched.iter().filter(|&&t| t).count();
        println!(
            "# handover 2^{exponent} universe ({touched_count}/{shards} shards touched, {} moved): cold {cold_us:.1} us | warm {warm_us:.1} us | {speedup:.1}x",
            full.migration.moved,
        );
        sections.push(format!(
            "    {{ \"universe\": {universe}, \"shards\": {shards}, \"touched_shards\": {touched_count}, \"moved_elements\": {}, \"cold_us\": {cold_us:.2}, \"warm_us\": {warm_us:.2}, \"warm_speedup\": {speedup:.2}, \"same_migration_cost\": true }}",
            full.migration.moved,
        ));
    }
    // The headline claim: at the largest universe a 2-shard plan's warm
    // handover must be at least 5x cheaper than the cold rebuild.
    if top_speedup < 5.0 {
        eprintln!("FATAL: warm handover is only {top_speedup:.1}x cheaper than cold at 2^18");
        return None;
    }
    Some(format!("[\n{}\n  ]", sections.join(",\n")))
}

/// Times random root-to-leaf occupancy walks (the serve hot path's slab
/// access pattern) under `kind`, returning the fastest observed nanoseconds
/// per walk. Each sample is only ~0.1–1 ms of work, so the estimator is the
/// minimum over several warm samples — the standard least-noise choice for a
/// fixed-work microloop, immune to scheduler and frequency-scaling spikes
/// that a small-sample median still admits.
fn time_walks(levels: u32, kind: LayoutKind, runs: usize) -> f64 {
    const WALKS: usize = 4_096;
    let runs = runs.max(9);
    let tree = CompleteTree::with_levels(levels).expect("bench levels are valid");
    let leaves = tree.nodes_at_level(tree.max_level());
    // Pseudorandom leaf elements (identity placement: element i sits at
    // node i), so consecutive walks share no cache lines on large trees.
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    let targets: Vec<ElementId> = (0..WALKS)
        .map(|_| {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let offset = (state >> 33) as u32 % leaves;
            ElementId::new(NodeId::from_level_offset(tree.max_level(), offset).index())
        })
        .collect();
    let occupancy = Occupancy::identity_with_layout(tree, kind);
    let mut best = f64::INFINITY;
    for sample in 0..=runs {
        let started = Instant::now();
        let mut acc = 0u64;
        for &element in &targets {
            let node = occupancy.node_of(element);
            for ancestor in node.ancestors() {
                acc ^= u64::from(occupancy.element_at(ancestor).index());
            }
        }
        std::hint::black_box(acc);
        let elapsed = started.elapsed().as_secs_f64() * 1e9 / WALKS as f64;
        if sample > 0 {
            // The first (cold-cache) sample is the warm-up; skip it.
            best = best.min(elapsed);
        }
    }
    best
}

/// The layout section: the full scenario grid under the heap vs the blocked
/// layout — run **concurrently** on a [`Parallelism::split`] budget (two
/// outer grid tasks, each with its own inner worker share) — with the
/// layout-invariance oracle (byte-identical fingerprints and cost
/// summaries), plus the root-to-leaf walk microbench across tree sizes and
/// the sharded engine's end-to-end throughput per layout. Returns the JSON
/// fragment, or `None` if the invariance oracle fails.
fn layout_section_json(
    grid: &ScenarioGrid,
    requests_per_engine_run: usize,
    runs: usize,
    parallelism: Parallelism,
) -> Option<String> {
    type GridTiming = (Vec<f64>, Vec<(Scenario, ScenarioResult)>);
    let kinds = [LayoutKind::Heap, LayoutKind::Blocked];
    let (outer, inner) = parallelism.split(kinds.len());
    let outcomes: Vec<GridTiming> = ordered_map(&kinds, outer, |&kind| {
        let mut grid = grid.clone();
        grid.layout = kind;
        let runner = SimRunner::new().with_parallelism(inner);
        let _ = runner.run_grid(&grid, false); // warm-up
        time_grid(&runner, &grid, runs)
    });
    let [(mut heap_ms, heap_results), (mut blocked_ms, blocked_results)]: [GridTiming; 2] =
        outcomes.try_into().expect("two layout grids were timed");

    // The invariance oracle: same cells, byte-identical results — the
    // layout must never leak into a fingerprint or a cost.
    let invariant = heap_results.len() == blocked_results.len()
        && heap_results.iter().zip(&blocked_results).all(
            |((heap_scenario, heap_result), (blocked_scenario, blocked_result))| {
                heap_scenario.name() == blocked_scenario.name() && heap_result == blocked_result
            },
        );
    if !invariant {
        eprintln!("FATAL: the blocked layout changed a fingerprint or a cost summary");
        return None;
    }
    let heap_median = median_ms(&mut heap_ms);
    let blocked_median = median_ms(&mut blocked_ms);
    println!(
        "# layout grid ({} outer × {} inner workers): heap {heap_median:.1} ms | blocked {blocked_median:.1} ms | fingerprints layout-invariant",
        outer.threads(),
        inner.threads(),
    );

    // The walk microbench: heap vs blocked ns/walk across tree sizes.
    let mut walk_sections = Vec::new();
    for levels in [10u32, 13, 16, 20] {
        let heap_ns = time_walks(levels, LayoutKind::Heap, runs);
        let blocked_ns = time_walks(levels, LayoutKind::Blocked, runs);
        let elements = (1u64 << levels) - 1;
        println!(
            "# layout walk 2^{levels}-1 elements: heap {heap_ns:.1} ns | blocked {blocked_ns:.1} ns | {:.2}x",
            heap_ns / blocked_ns,
        );
        walk_sections.push(format!(
            "      {{ \"elements\": {elements}, \"heap_ns_per_walk\": {heap_ns:.2}, \"blocked_ns_per_walk\": {blocked_ns:.2}, \"blocked_speedup\": {:.4} }}",
            heap_ns / blocked_ns,
        ));
    }

    // End-to-end: the sharded engine under each layout, same stream.
    let mut engine_rps = Vec::new();
    for kind in kinds {
        let mut scenario = ShardedScenario::new(
            AlgorithmKind::RotorPush,
            WorkloadSpec::Combined { a: 1.9, p: 0.75 },
            4,
            10,
            requests_per_engine_run,
            2022,
        );
        scenario.layout = kind;
        let requests: Vec<ElementId> = scenario.stream().collect();
        let mut samples = Vec::with_capacity(runs);
        for _ in 0..runs {
            let (elapsed, _) = time_sharded(&scenario, &requests, parallelism);
            samples.push(elapsed);
        }
        let median = median_ms(&mut samples);
        let rps = requests_per_engine_run as f64 / (median / 1_000.0);
        println!("# layout engine {kind}: {median:.1} ms ({rps:.0} req/s)");
        engine_rps.push(format!("\"{kind}_requests_per_s\": {rps:.0}"));
    }

    Some(format!(
        "{{\n    \"grid\": {{ \"heap_median_ms\": {heap_median:.3}, \"blocked_median_ms\": {blocked_median:.3}, \"outer_workers\": {}, \"inner_workers\": {}, \"fingerprints_layout_invariant\": true }},\n    \"walk\": [\n{}\n    ],\n    \"engine\": {{ {} }}\n  }}",
        outer.threads(),
        inner.threads(),
        walk_sections.join(",\n"),
        engine_rps.join(", "),
    ))
}

fn main() -> ExitCode {
    let mut requests = 5_000usize;
    let mut runs = 5usize;
    let mut parallelism = Parallelism::Auto;
    let mut out = "BENCH_PR10.json".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(argument) = args.next() {
        match argument.as_str() {
            "--requests" => match args.next().and_then(|v| v.parse().ok()) {
                Some(value) => requests = value,
                None => return usage(),
            },
            "--runs" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(value) if value > 0 => runs = value,
                _ => return usage(),
            },
            "--threads" => match args.next().and_then(|v| v.parse().ok()) {
                Some(value) => parallelism = value,
                None => return usage(),
            },
            "--out" => match args.next() {
                Some(path) => out = path,
                None => return usage(),
            },
            "--help" | "-h" => {
                println!(
                    "usage: bench-report [--requests N] [--runs K] [--threads N|auto|serial] [--out PATH]"
                );
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }

    let mut grid = ScenarioGrid::new(
        AlgorithmKind::ALL,
        WorkloadSpec::paper_families(),
        [5u32, 8, 10],
        requests,
        2022,
    );
    grid.checkpoints = Checkpoints::every(requests.div_ceil(4).max(1));
    let threads = parallelism.threads();
    println!(
        "# bench-report — {} cells, {} requests each, serial vs {} workers, median of {} runs",
        grid.len(),
        requests,
        threads,
        runs
    );

    let serial_runner = SimRunner::new().with_parallelism(Parallelism::Serial);
    let parallel_runner = SimRunner::new().with_parallelism(parallelism);

    // Warm-up (untimed) run per mode, then the timed runs.
    let _ = serial_runner.run_grid(&grid, false);
    let (mut serial_ms, serial_results) = time_grid(&serial_runner, &grid, runs);
    let _ = parallel_runner.run_grid(&grid, false);
    let (mut parallel_ms, parallel_results) = time_grid(&parallel_runner, &grid, runs);

    // The determinism oracle: parallel must reproduce serial bit for bit.
    if serial_results != parallel_results {
        eprintln!("FATAL: parallel grid diverged from the serial grid");
        return ExitCode::FAILURE;
    }
    println!("# determinism check passed: parallel fingerprints == serial fingerprints");

    let serial_median = median_ms(&mut serial_ms);
    let parallel_median = median_ms(&mut parallel_ms);
    let speedup = serial_median / parallel_median;
    println!(
        "# serial median {serial_median:.1} ms | parallel median {parallel_median:.1} ms | speedup {speedup:.2}x"
    );

    // Shard-scaling section: the serving engine at S = 1/2/4/8 shards,
    // serial vs. the configured worker budget, per-shard fingerprint oracle.
    let Some(sharded_json) = shard_scaling_json(40 * requests, runs, parallelism) else {
        return ExitCode::FAILURE;
    };

    // Resharding section: static vs. policy-resharded engine under a
    // shifting hot-shard stream, with the epoch-segmented replay oracle.
    let Some(reshard_json) = reshard_section_json(40 * requests, runs, parallelism) else {
        return ExitCode::FAILURE;
    };

    // Layout section: heap vs blocked storage — grid invariance oracle,
    // walk microbench, engine throughput — on a split worker budget.
    let Some(layout_json) = layout_section_json(&grid, 40 * requests, runs, parallelism) else {
        return ExitCode::FAILURE;
    };

    // Handover section: cold full rebuild vs warm carry for a 2-shard plan
    // across universe sizes — warm cost must track moved elements, not size.
    let Some(handover_json) = handover_section_json(runs) else {
        return ExitCode::FAILURE;
    };

    let json = format!(
        "{{\n  \"benchmark\": \"sim-smoke-grid\",\n  \"grid_cells\": {},\n  \"requests_per_cell\": {},\n  \"runs\": {},\n  \"available_threads\": {},\n  \"parallel_workers\": {},\n  \"serial_ms\": {},\n  \"parallel_ms\": {},\n  \"serial_median_ms\": {:.3},\n  \"parallel_median_ms\": {:.3},\n  \"speedup\": {:.3},\n  \"deterministic\": true,\n  \"shard_scaling\": {},\n  \"resharding\": {},\n  \"layout\": {},\n  \"handover\": {}\n}}\n",
        grid.len(),
        requests,
        runs,
        Parallelism::Auto.threads(),
        threads,
        json_array(&serial_ms),
        json_array(&parallel_ms),
        serial_median,
        parallel_median,
        speedup,
        sharded_json,
        reshard_json,
        layout_json,
        handover_json,
    );
    if let Err(error) = std::fs::write(&out, json) {
        eprintln!("failed to write {out}: {error}");
        return ExitCode::FAILURE;
    }
    println!("# wrote {out}");
    ExitCode::SUCCESS
}
