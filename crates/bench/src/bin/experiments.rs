//! Command-line entry point reproducing the paper's evaluation.
//!
//! ```text
//! experiments [--quick | --paper] [--out DIR] [EXPERIMENT ...]
//!
//! EXPERIMENT: all (default), table1, q1, q2, q3, q4, q4b, q5, q5map,
//!             lemma8, audit, mtf,
//!             extensions (= ablation, convergence, entropy, network)
//! ```

use satn_bench::{experiments, extensions, ExperimentConfig, FigureResult};
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: experiments [--quick | --paper] [--out DIR] [--threads N|auto|serial] [all|table1|q1|q2|q3|q4|q4b|q5|q5map|lemma8|audit|mtf|extensions|ablation|convergence|entropy|network ...]"
}

fn main() -> ExitCode {
    let mut config = ExperimentConfig::standard();
    let mut selected: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(argument) = args.next() {
        match argument.as_str() {
            "--quick" => {
                let output = config.output_dir.clone();
                config = ExperimentConfig::quick();
                config.output_dir = output;
            }
            "--paper" => {
                let output = config.output_dir.clone();
                config = ExperimentConfig::paper();
                config.output_dir = output;
            }
            "--out" => match args.next() {
                Some(dir) => config.output_dir = Some(dir.into()),
                None => {
                    eprintln!("--out requires a directory argument\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--threads" => match args.next().and_then(|value| value.parse().ok()) {
                Some(parallelism) => config.parallelism = parallelism,
                None => {
                    eprintln!(
                        "--threads requires a count, \"auto\", or \"serial\"\n{}",
                        usage()
                    );
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown option {other}\n{}", usage());
                return ExitCode::FAILURE;
            }
            other => selected.push(other.to_ascii_lowercase()),
        }
    }
    if selected.is_empty() {
        selected.push("all".to_owned());
    }

    println!(
        "# satn experiments — {} nodes, {} requests, {} repetitions (seed {}), {} workers\n",
        config.nodes,
        config.requests,
        config.repetitions,
        config.seed,
        config.parallelism.threads()
    );

    let mut results: Vec<FigureResult> = Vec::new();
    for name in &selected {
        match name.as_str() {
            "all" => results.extend(experiments::run_all(&config)),
            "table1" => results.push(experiments::table1_properties(&config)),
            "q1" => results.extend(experiments::q1_size_sweep(&config)),
            "q2" => results.push(experiments::q2_temporal(&config)),
            "q3" => results.push(experiments::q3_spatial(&config)),
            "q4" => results.push(experiments::q4_combined_grid(&config)),
            "q4b" => results.push(experiments::q4_rotor_vs_random_histogram(&config)),
            "q5" => results.push(experiments::q5_corpus(&config)),
            "q5map" => results.push(experiments::q5_complexity_map(&config)),
            "lemma8" => results.push(experiments::lemma8_experiment()),
            "audit" => results.push(experiments::audit_experiment(&config)),
            "mtf" => results.push(experiments::mtf_experiment(&config)),
            "extensions" | "ext" => results.extend(extensions::run_extensions(&config)),
            "ablation" => results.push(extensions::ablation_experiment(&config)),
            "convergence" => results.push(extensions::convergence_experiment(&config)),
            "entropy" => results.push(extensions::entropy_experiment(&config)),
            "network" => results.push(extensions::network_experiment(&config)),
            other => {
                eprintln!("unknown experiment {other}\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
    }

    for figure in &results {
        println!("{}", figure.render());
        if let Some(directory) = &config.output_dir {
            if let Err(error) = figure.write_csv(directory) {
                eprintln!("failed to write {}.csv: {error}", figure.id);
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(directory) = &config.output_dir {
        println!("CSV files written to {}", directory.display());
    }
    ExitCode::SUCCESS
}
