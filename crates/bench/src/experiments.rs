//! The experiments of the paper's evaluation (Section 6), one function per
//! figure or table. Every function returns [`FigureResult`]s that the
//! `experiments` binary prints and optionally exports as CSV.
//!
//! Since the `satn-sim` port, every measured cell (Q1–Q5) executes on the
//! [`satn_sim::SimRunner`] engine via [`crate::measure_algorithms`], serving
//! through the algorithms' batched fast paths. The golden-file tests in
//! `tests/golden_experiments.rs` pin the Q1–Q4 outputs from the port
//! onwards, so any later change to the serving pipeline that shifts a
//! number is caught. (The same PR redefined the `temporal`/`combined`
//! generators as collected streams, which changed those request sequences;
//! the goldens therefore pin the stream-era numbers, not the seed repo's.)

use crate::config::ExperimentConfig;
use crate::measure::{cost_of, measure_algorithms};
use crate::report::{fmt, FigureResult, TextTable};
use rand::rngs::StdRng;
use rand::SeedableRng;
use satn_analysis::{
    access_cost_differences, run_lemma8, working_set_ranks, Histogram, RandomPushAuditor,
    RotorPushAuditor,
};
use satn_core::{AlgorithmKind, MoveToFront, RandomPush, RotorPush, SelfAdjustingTree, StaticOpt};
use satn_tree::{placement, CompleteTree, ElementId};
use satn_workloads::{corpus, fit_tree_levels, synthetic, Workload};

/// The temporal-locality levels of Q2 (probability of repeating the previous
/// request).
pub const TEMPORAL_P_VALUES: [f64; 7] = [0.0, 0.15, 0.3, 0.45, 0.6, 0.75, 0.9];
/// The Zipf skewness parameters of Q3.
pub const ZIPF_A_VALUES: [f64; 5] = [1.001, 1.3, 1.6, 1.9, 2.2];
/// The temporal-locality levels of the Q4 grid.
pub const Q4_P_VALUES: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 0.9];

fn tree_for(nodes: u32) -> CompleteTree {
    CompleteTree::with_nodes(u64::from(nodes)).expect("experiment sizes are complete-tree sizes")
}

fn paper_label(kind: AlgorithmKind) -> &'static str {
    match kind {
        AlgorithmKind::RotorPush => "Rotor",
        AlgorithmKind::RandomPush => "Random",
        AlgorithmKind::MoveHalf => "Half",
        AlgorithmKind::MaxPush => "Max",
        AlgorithmKind::StaticOblivious => "Static_oblivious",
        AlgorithmKind::StaticOpt => "Static_opt",
        AlgorithmKind::MoveToFront => "MTF",
        _ => "unknown",
    }
}

/// Q1 / Figure 2: the benefit of self-adjustment as a function of the network
/// size, for high temporal locality (p = 0.9) and high spatial locality
/// (a = 2.2). Reported as the per-request total-cost difference between each
/// self-adjusting algorithm and Static-Oblivious (negative = better).
pub fn q1_size_sweep(config: &ExperimentConfig) -> Vec<FigureResult> {
    let sizes: Vec<u32> = [255u32, 1_023, 4_095, 16_383, 65_535]
        .into_iter()
        .filter(|&n| n <= config.nodes)
        .collect();
    let mut temporal_table = TextTable::new(
        std::iter::once("tree size".to_owned()).chain(
            AlgorithmKind::SELF_ADJUSTING
                .iter()
                .map(|&k| paper_label(k).to_owned()),
        ),
    );
    let mut spatial_table = temporal_table.clone();

    for &nodes in &sizes {
        let tree = tree_for(nodes);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let temporal = synthetic::temporal(nodes, config.requests, 0.9, &mut rng);
        let spatial = synthetic::zipf(nodes, config.requests, 2.2, &mut rng);
        for (workload, table) in [
            (&temporal, &mut temporal_table),
            (&spatial, &mut spatial_table),
        ] {
            let mut kinds = AlgorithmKind::SELF_ADJUSTING.to_vec();
            kinds.push(AlgorithmKind::StaticOblivious);
            let costs = measure_algorithms(&kinds, tree, workload, config);
            let oblivious = cost_of(&costs, AlgorithmKind::StaticOblivious).mean_total();
            let mut row = vec![nodes.to_string()];
            for kind in AlgorithmKind::SELF_ADJUSTING {
                row.push(fmt(cost_of(&costs, kind).mean_total() - oblivious));
            }
            table.push_row(row);
        }
    }
    vec![
        FigureResult::new(
            "figure2a-q1-size-temporal",
            "Per-request total-cost difference vs Static-Oblivious, temporal locality p=0.9",
            temporal_table,
        ),
        FigureResult::new(
            "figure2b-q1-size-spatial",
            "Per-request total-cost difference vs Static-Oblivious, Zipf a=2.2",
            spatial_table,
        ),
    ]
}

fn locality_sweep_table<W>(config: &ExperimentConfig, parameters: &[f64], generate: W) -> TextTable
where
    W: Fn(f64, &mut StdRng) -> Workload,
{
    let tree = tree_for(config.nodes);
    let mut header = vec!["parameter".to_owned(), "entropy".to_owned()];
    for kind in AlgorithmKind::EVALUATED {
        header.push(format!("{}_access", paper_label(kind)));
        header.push(format!("{}_adjust", paper_label(kind)));
    }
    let mut table = TextTable::new(header);
    for &parameter in parameters {
        let mut rng = StdRng::seed_from_u64(config.seed ^ parameter.to_bits());
        let workload = generate(parameter, &mut rng);
        let costs = measure_algorithms(AlgorithmKind::EVALUATED.as_ref(), tree, &workload, config);
        let mut row = vec![format!("{parameter}"), fmt(workload.empirical_entropy())];
        for kind in AlgorithmKind::EVALUATED {
            let cost = cost_of(&costs, kind);
            row.push(fmt(cost.mean_access));
            row.push(fmt(cost.mean_adjustment));
        }
        table.push_row(row);
    }
    table
}

/// Q2 / Figure 3: per-request access and adjustment cost of every algorithm
/// as temporal locality increases.
pub fn q2_temporal(config: &ExperimentConfig) -> FigureResult {
    let nodes = config.nodes;
    let requests = config.requests;
    let table = locality_sweep_table(config, &TEMPORAL_P_VALUES, |p, rng| {
        synthetic::temporal(nodes, requests, p, rng)
    });
    FigureResult::new(
        "figure3-q2-temporal",
        "Per-request cost vs temporal locality p (access and adjustment per algorithm)",
        table,
    )
}

/// Q3 / Figure 4: per-request access and adjustment cost of every algorithm
/// as spatial locality (Zipf skew) increases.
pub fn q3_spatial(config: &ExperimentConfig) -> FigureResult {
    let nodes = config.nodes;
    let requests = config.requests;
    let table = locality_sweep_table(config, &ZIPF_A_VALUES, |a, rng| {
        synthetic::zipf(nodes, requests, a, rng)
    });
    FigureResult::new(
        "figure4-q3-spatial",
        "Per-request cost vs Zipf parameter a (access and adjustment per algorithm)",
        table,
    )
}

/// Q4 / Figure 5a: total-cost difference between Rotor-Push and
/// Static-Oblivious over the combined (temporal, spatial) locality grid.
pub fn q4_combined_grid(config: &ExperimentConfig) -> FigureResult {
    let tree = tree_for(config.nodes);
    let mut header = vec!["p \\ a".to_owned()];
    header.extend(ZIPF_A_VALUES.iter().map(|a| a.to_string()));
    let mut table = TextTable::new(header);
    for &p in &Q4_P_VALUES {
        let mut row = vec![p.to_string()];
        for &a in &ZIPF_A_VALUES {
            let mut rng =
                StdRng::seed_from_u64(config.seed ^ p.to_bits() ^ a.to_bits().rotate_left(17));
            let workload = synthetic::combined(config.nodes, config.requests, a, p, &mut rng);
            let costs = measure_algorithms(
                &[AlgorithmKind::RotorPush, AlgorithmKind::StaticOblivious],
                tree,
                &workload,
                config,
            );
            let difference = cost_of(&costs, AlgorithmKind::RotorPush).mean_total()
                - cost_of(&costs, AlgorithmKind::StaticOblivious).mean_total();
            row.push(fmt(difference));
        }
        table.push_row(row);
    }
    FigureResult::new(
        "figure5a-q4-combined",
        "Rotor-Push minus Static-Oblivious per-request total cost over the (p, a) grid",
        table,
    )
}

/// Q4 / Figure 5b: histogram of the per-request access-cost difference
/// between Rotor-Push and Random-Push on uniform sequences.
pub fn q4_rotor_vs_random_histogram(config: &ExperimentConfig) -> FigureResult {
    let tree = tree_for(config.nodes);
    let mut histogram = Histogram::new(-10, 10);
    let sequences: Vec<usize> = (0..config.repetitions.max(2)).collect();
    // One independent (rotor, random) pair per repetition, fanned out over
    // the pool in worker-sized waves — peak memory stays at one difference
    // vector per worker rather than one per repetition — and recorded in
    // repetition order, so the histogram is identical to the serial loop's.
    let wave = config.parallelism.threads();
    for chunk in sequences.chunks(wave) {
        let per_repetition = satn_exec::ordered_map(chunk, config.parallelism, |&repetition| {
            let seed = config.seed_for(repetition);
            let mut rng = StdRng::seed_from_u64(seed);
            let workload = synthetic::uniform(config.nodes, config.requests, &mut rng);
            let initial = placement::random_occupancy(tree, &mut StdRng::seed_from_u64(seed ^ 1));
            let mut rotor = RotorPush::new(initial.clone());
            let mut random = RandomPush::with_seed(initial, seed ^ 2);
            access_cost_differences(&mut rotor, &mut random, workload.requests())
                .expect("workload fits the tree")
        });
        for differences in per_repetition {
            histogram.record_all(differences);
        }
    }
    let mut table = TextTable::new(["access cost difference", "probability"]);
    for (value, probability) in histogram.probabilities() {
        table.push_row([value.to_string(), format!("{probability:.6}")]);
    }
    table.push_row(["mean".to_owned(), format!("{:.6}", histogram.mean())]);
    FigureResult::new(
        "figure5b-q4-histogram",
        "Distribution of per-request access-cost difference, Rotor-Push minus Random-Push (uniform workloads)",
        table,
    )
}

fn corpus_books(config: &ExperimentConfig) -> Vec<Workload> {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xB00C);
    corpus::synthetic_books(config.corpus_scale, &mut rng)
}

/// Q5 / Figure 6: the complexity-map position of the corpus datasets.
pub fn q5_complexity_map(config: &ExperimentConfig) -> FigureResult {
    let mut table = TextTable::new([
        "dataset",
        "requests",
        "keys",
        "temporal complexity",
        "non-temporal complexity",
    ]);
    for book in corpus_books(config) {
        let trace: Vec<u32> = book.requests().iter().map(|e| e.index()).collect();
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0xC0FFEE);
        let point = satn_compress::complexity_point(&trace, &mut rng).clamped(1.5);
        table.push_row([
            book.name().to_owned(),
            book.len().to_string(),
            book.num_elements().to_string(),
            fmt(point.temporal),
            fmt(point.non_temporal),
        ]);
    }
    FigureResult::new(
        "figure6-q5-complexity-map",
        "Temporal / non-temporal complexity of the corpus datasets",
        table,
    )
}

/// Q5 / Figure 7: per-request cost of every algorithm on the corpus datasets.
pub fn q5_corpus(config: &ExperimentConfig) -> FigureResult {
    let mut header = vec![
        "dataset".to_owned(),
        "keys".to_owned(),
        "requests".to_owned(),
    ];
    for kind in AlgorithmKind::EVALUATED {
        header.push(format!("{}_access", paper_label(kind)));
        header.push(format!("{}_adjust", paper_label(kind)));
    }
    let mut table = TextTable::new(header);
    for book in corpus_books(config) {
        let levels = fit_tree_levels(book.num_elements());
        let tree = CompleteTree::with_levels(levels).expect("corpus fits a complete tree");
        let costs = measure_algorithms(AlgorithmKind::EVALUATED.as_ref(), tree, &book, config);
        let mut row = vec![
            book.name().to_owned(),
            book.num_elements().to_string(),
            book.len().to_string(),
        ];
        for kind in AlgorithmKind::EVALUATED {
            let cost = cost_of(&costs, kind);
            row.push(fmt(cost.mean_access));
            row.push(fmt(cost.mean_adjustment));
        }
        table.push_row(row);
    }
    FigureResult::new(
        "figure7-q5-corpus",
        "Per-request cost of all algorithms on the corpus datasets",
        table,
    )
}

/// Lemma 8: Rotor-Push access cost can be linear in the working-set size.
pub fn lemma8_experiment() -> FigureResult {
    let mut table = TextTable::new([
        "tree levels",
        "|S| (working-set cap)",
        "max access cost",
        "max observed rank",
        "cost / log2(rank)",
    ]);
    for levels in [5u32, 7, 9, 11] {
        let rounds = 4_000usize << (levels.saturating_sub(5));
        let report = run_lemma8(levels, rounds).expect("valid tree sizes");
        table.push_row([
            levels.to_string(),
            report.restricted_set_size.to_string(),
            report.max_access_cost.to_string(),
            report.max_rank.to_string(),
            fmt(report.violation_factor()),
        ]);
    }
    FigureResult::new(
        "lemma8-working-set-violation",
        "Rotor-Push under the Lemma 8 adversary: access cost grows linearly in the working-set size",
        table,
    )
}

/// Theorem 7 / Theorem 11: empirical audit of the amortized analyses.
pub fn audit_experiment(config: &ExperimentConfig) -> FigureResult {
    let nodes = config.nodes.min(1_023);
    let requests = config.requests.min(20_000);
    let tree = tree_for(nodes);
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xA0D1);
    let mut table = TextTable::new([
        "algorithm",
        "workload",
        "per-round inequality",
        "max slack",
        "amortized ratio",
        "proven ratio",
    ]);
    for (label, workload) in [
        ("uniform", synthetic::uniform(nodes, requests, &mut rng)),
        (
            "temporal p=0.9",
            synthetic::temporal(nodes, requests, 0.9, &mut rng),
        ),
        (
            "zipf a=1.9",
            synthetic::zipf(nodes, requests, 1.9, &mut rng),
        ),
    ] {
        let opt = StaticOpt::from_sequence(tree, workload.requests())
            .expect("workload fits the tree")
            .occupancy()
            .clone();
        let initial = placement::random_occupancy(tree, &mut StdRng::seed_from_u64(config.seed));

        let mut rotor = RotorPush::new(initial.clone());
        let rotor_report = RotorPushAuditor::new(opt.clone())
            .audit(&mut rotor, workload.requests())
            .expect("workload fits the tree");
        table.push_row([
            "Rotor-Push".to_owned(),
            label.to_owned(),
            if rotor_report.holds_per_round() {
                "holds"
            } else {
                "VIOLATED"
            }
            .to_owned(),
            fmt(rotor_report.max_slack),
            fmt(rotor_report.amortized_ratio),
            "12".to_owned(),
        ]);

        let mut random = RandomPush::with_seed(initial, config.seed ^ 7);
        let random_report = RandomPushAuditor::new(opt)
            .audit(&mut random, workload.requests())
            .expect("workload fits the tree");
        table.push_row([
            "Random-Push".to_owned(),
            label.to_owned(),
            "(in expectation)".to_owned(),
            fmt(random_report.max_slack),
            fmt(random_report.amortized_ratio),
            "16".to_owned(),
        ]);
    }
    FigureResult::new(
        "theorem7-11-amortized-audit",
        "Empirical audit of the credit-based analyses against a static optimum proxy",
        table,
    )
}

/// The Move-To-Front lower-bound example from Section 1.1.
pub fn mtf_experiment(config: &ExperimentConfig) -> FigureResult {
    let tree = tree_for(config.nodes.min(16_383));
    let leaf = tree.num_nodes() - 1; // rightmost leaf
    let rounds = (config.requests / tree.num_levels() as usize).clamp(100, 20_000);
    let workload = synthetic::round_robin_path(tree.num_nodes(), leaf, rounds);
    let mut table = TextTable::new(["algorithm", "mean access", "mean adjustment", "mean total"]);
    let initial = satn_tree::Occupancy::identity(tree);

    let mut mtf = MoveToFront::new(initial.clone());
    let mut rotor = RotorPush::new(initial.clone());
    let mut max_push = satn_core::MaxPush::new(initial.clone());
    let mut static_opt =
        StaticOpt::from_sequence(tree, workload.requests()).expect("workload fits the tree");
    let algorithms: Vec<&mut dyn SelfAdjustingTree> =
        vec![&mut mtf, &mut rotor, &mut max_push, &mut static_opt];
    for algorithm in algorithms {
        let name = algorithm.name().to_owned();
        let summary = algorithm
            .serve_sequence(workload.requests())
            .expect("workload fits the tree");
        table.push_row([
            name,
            fmt(summary.mean_access()),
            fmt(summary.mean_adjustment()),
            fmt(summary.mean_total()),
        ]);
    }
    FigureResult::new(
        "section1-mtf-lower-bound",
        "Round-robin path requests: the naive Move-To-Front generalisation pays Θ(depth) per request",
        table,
    )
}

/// Table 1: the algorithm property overview, with the analytic entries of the
/// paper plus an empirical working-set check (max and mean access cost
/// relative to `log2(rank) + 1` on a small-working-set adversarial trace).
pub fn table1_properties(config: &ExperimentConfig) -> FigureResult {
    // Build the adversarial trace by running the Lemma 8 adversary against
    // Rotor-Push, then replay the very same (now fixed) trace on every
    // algorithm.
    let levels = config.levels().min(10);
    let tree = CompleteTree::with_levels(levels).expect("valid level count");
    let rounds = 8_000usize;
    let mut rotor = RotorPush::new(satn_tree::Occupancy::identity(tree));
    let adversary = satn_analysis::Lemma8Adversary::new(tree);
    let mut trace: Vec<ElementId> = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let request = adversary.next_request(&rotor);
        rotor
            .serve(request)
            .expect("identity occupancy serves all elements");
        trace.push(request);
    }
    let ranks = working_set_ranks(tree.num_nodes(), &trace);

    let mut table = TextTable::new([
        "algorithm",
        "deterministic",
        "proven competitive ratio",
        "WS property (paper)",
        "max access / log2(rank)+1 (repeat accesses)",
        "mean access / log2(rank)+1 (repeat accesses)",
    ]);
    let analytic: [(AlgorithmKind, &str, &str, &str); 4] = [
        (
            AlgorithmKind::RotorPush,
            "yes",
            "12 (Thm. 7)",
            "no (Lem. 8)",
        ),
        (AlgorithmKind::RandomPush, "no", "16 (Thm. 11)", "yes"),
        (AlgorithmKind::MoveHalf, "yes", "64", "no"),
        (
            AlgorithmKind::MaxPush,
            "yes",
            "unknown swap cost",
            "yes (access)",
        ),
    ];
    for (kind, deterministic, ratio, ws_property) in analytic {
        let mut algorithm = kind
            .instantiate(satn_tree::Occupancy::identity(tree), config.seed, &trace)
            .expect("trace fits the tree");
        // The first access of each element has an ill-defined working set (its
        // rank is 1 regardless of algorithm state), so the working-set check
        // is taken over repeat accesses only — the regime Lemma 8 talks about.
        let mut seen = std::collections::HashSet::new();
        let mut max_factor = 0.0f64;
        let mut factor_sum = 0.0f64;
        let mut repeats = 0usize;
        for (&request, &rank) in trace.iter().zip(&ranks) {
            let cost = algorithm.serve(request).expect("trace fits the tree");
            if seen.insert(request) {
                continue;
            }
            let reference = (rank.max(2) as f64).log2() + 1.0;
            let factor = cost.access as f64 / reference;
            max_factor = max_factor.max(factor);
            factor_sum += factor;
            repeats += 1;
        }
        table.push_row([
            paper_label(kind).to_owned(),
            deterministic.to_owned(),
            ratio.to_owned(),
            ws_property.to_owned(),
            fmt(max_factor),
            fmt(factor_sum / repeats.max(1) as f64),
        ]);
    }
    FigureResult::new(
        "table1-properties",
        "Algorithm properties (analytic entries from the paper, empirical working-set check on the Lemma 8 trace)",
        table,
    )
}

/// Runs every experiment at the given configuration.
pub fn run_all(config: &ExperimentConfig) -> Vec<FigureResult> {
    let mut results = Vec::new();
    results.push(table1_properties(config));
    results.extend(q1_size_sweep(config));
    results.push(q2_temporal(config));
    results.push(q3_spatial(config));
    results.push(q4_combined_grid(config));
    results.push(q4_rotor_vs_random_histogram(config));
    results.push(q5_complexity_map(config));
    results.push(q5_corpus(config));
    results.push(lemma8_experiment());
    results.push(audit_experiment(config));
    results.push(mtf_experiment(config));
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ExperimentConfig {
        ExperimentConfig {
            nodes: 255,
            requests: 3_000,
            repetitions: 1,
            seed: 11,
            corpus_scale: 0.02,
            output_dir: None,
            parallelism: satn_exec::Parallelism::Auto,
        }
    }

    #[test]
    fn q2_table_has_one_row_per_p_value() {
        let figure = q2_temporal(&tiny_config());
        assert_eq!(figure.table.num_rows(), TEMPORAL_P_VALUES.len());
        assert!(figure.render().contains("figure3"));
    }

    #[test]
    fn q3_table_has_one_row_per_a_value() {
        let figure = q3_spatial(&tiny_config());
        assert_eq!(figure.table.num_rows(), ZIPF_A_VALUES.len());
    }

    #[test]
    fn q1_tables_cover_all_sizes_up_to_the_configured_maximum() {
        let figures = q1_size_sweep(&tiny_config());
        assert_eq!(figures.len(), 2);
        assert_eq!(figures[0].table.num_rows(), 1); // only 255 <= 255
    }

    #[test]
    fn q4_grid_is_five_by_five() {
        let figure = q4_combined_grid(&tiny_config());
        assert_eq!(figure.table.num_rows(), Q4_P_VALUES.len());
        assert_eq!(figure.table.header().len(), 1 + ZIPF_A_VALUES.len());
    }

    #[test]
    fn q4_histogram_mean_is_reported_last() {
        let figure = q4_rotor_vs_random_histogram(&tiny_config());
        let last = figure.table.rows().last().unwrap();
        assert_eq!(last[0], "mean");
    }

    #[test]
    fn q5_experiments_cover_five_books() {
        let config = tiny_config();
        assert_eq!(q5_complexity_map(&config).table.num_rows(), 5);
        assert_eq!(q5_corpus(&config).table.num_rows(), 5);
    }

    #[test]
    fn audit_table_reports_both_algorithms() {
        let figure = audit_experiment(&tiny_config());
        assert_eq!(figure.table.num_rows(), 6);
        for row in figure.table.rows() {
            if row[0] == "Rotor-Push" {
                assert_eq!(row[2], "holds", "{row:?}");
            }
        }
    }

    #[test]
    fn mtf_experiment_shows_the_gap() {
        let figure = mtf_experiment(&tiny_config());
        let mean_total = |name: &str| -> f64 {
            figure.table.rows().iter().find(|r| r[0] == name).unwrap()[3]
                .parse()
                .unwrap()
        };
        assert!(mean_total("move-to-front") > mean_total("static-opt"));
        assert!(mean_total("move-to-front") > mean_total("rotor-push"));
    }

    #[test]
    fn table1_reports_the_working_set_violation_only_for_rotor() {
        let figure = table1_properties(&tiny_config());
        let factor = |name: &str| -> f64 {
            figure.table.rows().iter().find(|r| r[0] == name).unwrap()[4]
                .parse()
                .unwrap()
        };
        assert!(factor("Rotor") > factor("Max"));
        assert!(factor("Rotor") > factor("Random"));
    }
}
