//! Measuring algorithm costs on workloads, with repetitions and averaging.
//!
//! Since the `satn-sim` port, every measurement streams its workload through
//! the [`SimRunner`] engine and is served on the algorithms' batched fast
//! paths ([`satn_core::SelfAdjustingTree::serve_batch`]). Seeds derive
//! exactly as the pre-engine harness derived them, so for a fixed workload
//! the engine reproduces the serve-loop numbers (the differential tests in
//! `satn-sim` assert this, and the golden-file tests in
//! `tests/golden_experiments.rs` pin the outputs from this PR forward).

use crate::config::ExperimentConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use satn_core::AlgorithmKind;
use satn_exec::ordered_map;
use satn_sim::{Checkpoints, SimRunner};
use satn_tree::{placement, CompleteTree, CostSummary};
use satn_workloads::Workload;

/// The averaged per-request cost of one algorithm on one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct AlgorithmCost {
    /// Which algorithm was measured.
    pub algorithm: AlgorithmKind,
    /// Mean access cost per request, averaged over repetitions.
    pub mean_access: f64,
    /// Mean adjustment (swap) cost per request, averaged over repetitions.
    pub mean_adjustment: f64,
}

impl AlgorithmCost {
    /// Mean total cost per request.
    pub fn mean_total(&self) -> f64 {
        self.mean_access + self.mean_adjustment
    }
}

/// Measures one algorithm on one workload for a single repetition, starting
/// from the given initial placement seed.
///
/// # Panics
///
/// Panics if the workload does not fit the tree or an element id is invalid
/// (both indicate a configuration bug in the caller).
pub fn measure_once(
    kind: AlgorithmKind,
    tree: CompleteTree,
    workload: &Workload,
    placement_seed: u64,
    algorithm_seed: u64,
) -> CostSummary {
    assert!(
        u64::from(workload.num_elements()) <= u64::from(tree.num_nodes()),
        "workload universe larger than the tree"
    );
    let mut rng = StdRng::seed_from_u64(placement_seed);
    let initial = placement::random_occupancy(tree, &mut rng);
    let mut algorithm = kind
        .instantiate(initial, algorithm_seed, workload.requests())
        .expect("workload elements must fit the tree");
    SimRunner::new()
        .run_stream(
            algorithm.as_mut(),
            workload.iter(),
            workload.len(),
            Checkpoints::final_only(),
            &mut [],
        )
        .expect("workload elements must fit the tree")
}

/// Measures a set of algorithms on one workload, averaging per-request costs
/// over `config.repetitions` repetitions (each with its own random initial
/// placement and algorithm seed), exactly as the paper's methodology
/// prescribes. Every `(algorithm, repetition)` cell executes through the
/// engine via [`measure_once`], streaming the shared workload by reference —
/// no per-cell copies of the request sequence.
///
/// Cells fan out over the `satn-exec` pool (`config.parallelism` workers);
/// each is an independent deterministic run and the averages accumulate in
/// the same fixed `(kind, repetition)` order as the serial loop, so the
/// figures — including the golden CSV snapshots — are bit-identical at any
/// thread count.
pub fn measure_algorithms(
    kinds: &[AlgorithmKind],
    tree: CompleteTree,
    workload: &Workload,
    config: &ExperimentConfig,
) -> Vec<AlgorithmCost> {
    let repetitions = config.repetitions.max(1);
    let cells: Vec<(AlgorithmKind, usize)> = kinds
        .iter()
        .flat_map(|&kind| (0..repetitions).map(move |repetition| (kind, repetition)))
        .collect();
    let summaries = ordered_map(&cells, config.parallelism, |&(kind, repetition)| {
        let seed = config.seed_for(repetition);
        measure_once(
            kind,
            tree,
            workload,
            seed,
            satn_workloads::shard::algorithm_seed(seed),
        )
    });
    kinds
        .iter()
        .enumerate()
        .map(|(kind_index, &kind)| {
            let mut access = 0.0;
            let mut adjustment = 0.0;
            for summary in &summaries[kind_index * repetitions..(kind_index + 1) * repetitions] {
                access += summary.mean_access();
                adjustment += summary.mean_adjustment();
            }
            let reps = repetitions as f64;
            AlgorithmCost {
                algorithm: kind,
                mean_access: access / reps,
                mean_adjustment: adjustment / reps,
            }
        })
        .collect()
}

/// Convenience lookup in a measurement result.
pub fn cost_of(costs: &[AlgorithmCost], kind: AlgorithmKind) -> &AlgorithmCost {
    costs
        .iter()
        .find(|c| c.algorithm == kind)
        .expect("algorithm was measured")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use satn_workloads::synthetic;

    fn quick_config() -> ExperimentConfig {
        ExperimentConfig {
            nodes: 255,
            requests: 2_000,
            repetitions: 2,
            seed: 7,
            corpus_scale: 0.05,
            output_dir: None,
            parallelism: satn_exec::Parallelism::Auto,
        }
    }

    #[test]
    fn measurement_is_reproducible() {
        let config = quick_config();
        let tree = CompleteTree::with_nodes(config.nodes as u64).unwrap();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let workload = synthetic::temporal(config.nodes, config.requests, 0.8, &mut rng);
        let a = measure_algorithms(&AlgorithmKind::EVALUATED, tree, &workload, &config);
        let b = measure_algorithms(&AlgorithmKind::EVALUATED, tree, &workload, &config);
        assert_eq!(a, b);
        assert_eq!(a.len(), 6);
    }

    #[test]
    fn static_algorithms_report_zero_adjustment() {
        let config = quick_config();
        let tree = CompleteTree::with_nodes(config.nodes as u64).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let workload = synthetic::uniform(config.nodes, 1_000, &mut rng);
        let costs = measure_algorithms(&AlgorithmKind::EVALUATED, tree, &workload, &config);
        assert_eq!(
            cost_of(&costs, AlgorithmKind::StaticOpt).mean_adjustment,
            0.0
        );
        assert_eq!(
            cost_of(&costs, AlgorithmKind::StaticOblivious).mean_adjustment,
            0.0
        );
        for cost in &costs {
            assert!(cost.mean_access >= 1.0, "{cost:?}");
            assert!(cost.mean_total() >= cost.mean_access);
        }
    }

    #[test]
    fn high_locality_favours_self_adjusting_algorithms() {
        // With strong temporal locality the push algorithms beat the
        // oblivious static tree — the central observation of the paper.
        let config = quick_config();
        let tree = CompleteTree::with_nodes(config.nodes as u64).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let workload = synthetic::temporal(config.nodes, 8_000, 0.95, &mut rng);
        let costs = measure_algorithms(
            &[AlgorithmKind::RotorPush, AlgorithmKind::StaticOblivious],
            tree,
            &workload,
            &config,
        );
        let rotor = cost_of(&costs, AlgorithmKind::RotorPush).mean_total();
        let oblivious = cost_of(&costs, AlgorithmKind::StaticOblivious).mean_total();
        assert!(rotor < oblivious, "rotor {rotor} vs oblivious {oblivious}");
    }

    #[test]
    fn workloads_larger_than_the_tree_are_rejected() {
        let tree = CompleteTree::with_nodes(15).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let requests = (0..10)
            .map(|_| satn_tree::ElementId::new(rng.gen_range(0..100)))
            .collect();
        let workload = Workload::new("too-big", 100, requests);
        let result = std::panic::catch_unwind(|| {
            measure_once(AlgorithmKind::RotorPush, tree, &workload, 1, 1)
        });
        assert!(result.is_err());
    }
}
