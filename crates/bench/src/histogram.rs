//! A log-bucketed latency histogram for the load generator: constant memory,
//! no allocation per sample, quantiles accurate to ~±9% (8 sub-buckets per
//! octave), which is plenty for p50/p99/p999 tail reporting.

use std::time::Duration;

/// Sub-buckets per power of two of nanoseconds.
const SUB_BUCKETS: usize = 8;
/// The highest octave: 2^39 ns (~9 minutes); larger samples clamp into it.
const MAX_OCTAVE: usize = 39;
/// Indices `0..8` hold exact sub-8ns counts; octaves `3..=MAX_OCTAVE` hold
/// eight sub-buckets each, contiguously.
const NUM_BUCKETS: usize = SUB_BUCKETS + (MAX_OCTAVE - 2) * SUB_BUCKETS;

/// A fixed-size log-bucketed histogram of latencies.
///
/// ```
/// use satn_bench::LatencyHistogram;
/// use std::time::Duration;
///
/// let mut histogram = LatencyHistogram::new();
/// for micros in [10, 20, 30, 40, 1000] {
///     histogram.record(Duration::from_micros(micros));
/// }
/// assert_eq!(histogram.samples(), 5);
/// assert!(histogram.quantile(0.99) >= Duration::from_micros(900));
/// ```
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    samples: u64,
    max: u64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: vec![0; NUM_BUCKETS],
            samples: 0,
            max: 0,
        }
    }

    fn bucket_of(nanos: u64) -> usize {
        if nanos < SUB_BUCKETS as u64 {
            return nanos as usize;
        }
        let octave = (63 - nanos.leading_zeros() as usize).min(MAX_OCTAVE);
        // Position within the octave, scaled to SUB_BUCKETS slots.
        let offset = ((nanos >> (octave - 3)) & (SUB_BUCKETS as u64 - 1)) as usize;
        SUB_BUCKETS + (octave - 3) * SUB_BUCKETS + offset
    }

    /// The representative (upper-edge) latency of bucket `index`.
    fn bucket_value(index: usize) -> u64 {
        if index < SUB_BUCKETS {
            return index as u64;
        }
        let octave = index / SUB_BUCKETS + 2;
        let offset = (index % SUB_BUCKETS) as u64;
        (1u64 << octave) + ((offset + 1) << (octave - 3))
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Duration) {
        let nanos = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        self.buckets[Self::bucket_of(nanos)] += 1;
        self.samples += 1;
        self.max = self.max.max(nanos);
    }

    /// The number of recorded samples.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The largest recorded sample (exact, not bucketed).
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max)
    }

    /// The latency at quantile `q` (0.0 ..= 1.0): the upper edge of the
    /// bucket containing the `ceil(q * samples)`-th smallest sample, clamped
    /// to the exact observed maximum. Zero if nothing was recorded.
    pub fn quantile(&self, q: f64) -> Duration {
        if self.samples == 0 {
            return Duration::ZERO;
        }
        let rank = ((q * self.samples as f64).ceil() as u64).clamp(1, self.samples);
        let mut seen = 0u64;
        for (index, &count) in self.buckets.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Duration::from_nanos(Self::bucket_value(index).min(self.max));
            }
        }
        Duration::from_nanos(self.max)
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_bracket_the_recorded_range() {
        let mut histogram = LatencyHistogram::new();
        for micros in 1..=1_000u64 {
            histogram.record(Duration::from_micros(micros));
        }
        assert_eq!(histogram.samples(), 1_000);
        let p50 = histogram.quantile(0.50);
        let p99 = histogram.quantile(0.99);
        let p999 = histogram.quantile(0.999);
        assert!(p50 >= Duration::from_micros(400) && p50 <= Duration::from_micros(640));
        assert!(p99 >= Duration::from_micros(850) && p99 <= Duration::from_micros(1_130));
        assert!(p999 >= p99);
        assert_eq!(histogram.max(), Duration::from_micros(1_000));
        assert!(histogram.quantile(1.0) <= histogram.max());
    }

    #[test]
    fn empty_histograms_report_zero() {
        let histogram = LatencyHistogram::new();
        assert_eq!(histogram.samples(), 0);
        assert_eq!(histogram.quantile(0.99), Duration::ZERO);
    }

    #[test]
    fn tiny_latencies_use_exact_buckets() {
        let mut histogram = LatencyHistogram::new();
        histogram.record(Duration::from_nanos(3));
        assert_eq!(histogram.quantile(1.0), Duration::from_nanos(3));
    }

    #[test]
    fn buckets_are_monotonic() {
        let mut previous = 0;
        for index in 0..NUM_BUCKETS {
            let value = LatencyHistogram::bucket_value(index);
            assert!(value >= previous, "bucket {index} regressed");
            previous = value;
        }
        // And the mapping itself never regresses: growing latencies land in
        // non-decreasing buckets.
        let mut previous = 0;
        for shift in 0..50u64 {
            let bucket = LatencyHistogram::bucket_of(1u64 << shift);
            assert!(bucket >= previous, "nanos 2^{shift} regressed");
            previous = bucket;
        }
    }

    #[test]
    fn recording_is_order_insensitive() {
        let mut forward = LatencyHistogram::new();
        let mut backward = LatencyHistogram::new();
        for micros in 1..=100u64 {
            forward.record(Duration::from_micros(micros));
            backward.record(Duration::from_micros(101 - micros));
        }
        for q in [0.5, 0.9, 0.99] {
            assert_eq!(forward.quantile(q), backward.quantile(q));
        }
    }
}
