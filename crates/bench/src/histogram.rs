//! The log-bucketed latency histogram the load generator reports tail
//! quantiles with. The implementation now lives in `satn-obs` — it is the
//! same histogram the engine records drain latencies into and ships back in
//! a `MetricsSnapshot`, where it gained a lock-free [`AtomicHistogram`]
//! recording front and a deterministic [`LatencyHistogram::merge`] — so this
//! module is a re-export keeping `satn_bench::LatencyHistogram` working.
//!
//! [`AtomicHistogram`]: satn_obs::AtomicHistogram
//! [`LatencyHistogram::merge`]: satn_obs::LatencyHistogram::merge

pub use satn_obs::LatencyHistogram;
