//! Experiment configuration: sizes, repetitions, seeds and output handling.

use satn_exec::Parallelism;
use std::path::PathBuf;

/// Scale and reproducibility settings shared by all experiments.
///
/// The paper's evaluation uses trees of 65,535 nodes, 10⁶ requests and ten
/// repetitions per data point. The same code runs at that scale
/// ([`ExperimentConfig::paper`]), but the default
/// ([`ExperimentConfig::standard`]) is a reduced configuration that finishes
/// in minutes while preserving every qualitative shape; the quick preset is
/// for smoke tests and CI.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Number of tree nodes (must be 2^L − 1).
    pub nodes: u32,
    /// Number of requests per generated sequence.
    pub requests: usize,
    /// Number of repetitions (different initial placements / seeds) averaged
    /// per data point.
    pub repetitions: usize,
    /// Base random seed; every repetition derives its own seed from it.
    pub seed: u64,
    /// Scale factor for the synthetic corpus books of Q5 (1.0 = book-sized).
    pub corpus_scale: f64,
    /// Directory for CSV output (`None` disables file output).
    pub output_dir: Option<PathBuf>,
    /// Worker budget for the measurement pool: every `(algorithm,
    /// repetition)` cell is an independent deterministic run, so this only
    /// changes wall-clock time, never a number in a figure.
    pub parallelism: Parallelism,
}

impl ExperimentConfig {
    /// The paper's full scale: 65,535 nodes, 10⁶ requests, 10 repetitions.
    pub fn paper() -> Self {
        ExperimentConfig {
            nodes: 65_535,
            requests: 1_000_000,
            repetitions: 10,
            seed: 2022,
            corpus_scale: 1.0,
            output_dir: None,
            parallelism: Parallelism::Auto,
        }
    }

    /// The default scale: 4,095 nodes, 200k requests, 3 repetitions.
    pub fn standard() -> Self {
        ExperimentConfig {
            nodes: 4_095,
            requests: 200_000,
            repetitions: 3,
            seed: 2022,
            corpus_scale: 0.2,
            output_dir: None,
            parallelism: Parallelism::Auto,
        }
    }

    /// A smoke-test scale: 1,023 nodes, 20k requests, 2 repetitions.
    pub fn quick() -> Self {
        ExperimentConfig {
            nodes: 1_023,
            requests: 20_000,
            repetitions: 2,
            seed: 2022,
            corpus_scale: 0.05,
            output_dir: None,
            parallelism: Parallelism::Auto,
        }
    }

    /// Number of tree levels implied by `nodes`.
    pub fn levels(&self) -> u32 {
        let mut levels = 1;
        while ((1u64 << levels) - 1) < u64::from(self.nodes) {
            levels += 1;
        }
        levels
    }

    /// Sets the output directory (builder style).
    pub fn with_output_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.output_dir = Some(dir.into());
        self
    }

    /// Derives the seed of a given repetition.
    pub fn seed_for(&self, repetition: usize) -> u64 {
        self.seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(repetition as u64)
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_complete_tree_sizes() {
        for config in [
            ExperimentConfig::paper(),
            ExperimentConfig::standard(),
            ExperimentConfig::quick(),
        ] {
            let levels = config.levels();
            assert_eq!((1u64 << levels) - 1, u64::from(config.nodes));
        }
        assert_eq!(ExperimentConfig::paper().levels(), 16);
        assert_eq!(ExperimentConfig::standard().levels(), 12);
    }

    #[test]
    fn seeds_differ_per_repetition_and_are_deterministic() {
        let config = ExperimentConfig::quick();
        assert_ne!(config.seed_for(0), config.seed_for(1));
        assert_eq!(config.seed_for(3), config.seed_for(3));
    }

    #[test]
    fn builder_sets_output_dir() {
        let config = ExperimentConfig::quick().with_output_dir("/tmp/results");
        assert_eq!(config.output_dir, Some(PathBuf::from("/tmp/results")));
        assert_eq!(ExperimentConfig::default(), ExperimentConfig::standard());
    }
}
