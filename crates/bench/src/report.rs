//! Plain-text and CSV rendering of experiment results.

use std::fmt::Write as _;
use std::path::Path;

/// A simple column-aligned table used to print every figure/table of the
/// paper as text and to export it as CSV.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded or truncated to the header width).
    pub fn push_row<I, S>(&mut self, row: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut cells: Vec<String> = row.into_iter().map(Into::into).collect();
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// The column headers.
    pub fn header(&self) -> &[String] {
        &self.header
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:width$}  ", cell, width = widths[i]);
            }
            out.push('\n');
        };
        write_row(&self.header, &mut out);
        let separator: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        write_row(&separator, &mut out);
        for row in &self.rows {
            write_row(row, &mut out);
        }
        out
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        };
        let mut out = String::new();
        let write_row = |cells: &[String], out: &mut String| {
            let line: Vec<String> = cells.iter().map(|c| escape(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        write_row(&self.header, &mut out);
        for row in &self.rows {
            write_row(row, &mut out);
        }
        out
    }
}

/// One reproduced figure or table: an identifier (matching DESIGN.md's
/// per-experiment index), a human-readable title, and the data.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureResult {
    /// Experiment identifier, e.g. `"figure3-q2-temporal"`.
    pub id: String,
    /// Human-readable description of what is shown.
    pub title: String,
    /// The data table.
    pub table: TextTable,
}

impl FigureResult {
    /// Creates a figure result.
    pub fn new(id: impl Into<String>, title: impl Into<String>, table: TextTable) -> Self {
        FigureResult {
            id: id.into(),
            title: title.into(),
            table,
        }
    }

    /// Renders the figure as a titled text block.
    pub fn render(&self) -> String {
        format!("## {} — {}\n\n{}", self.id, self.title, self.table.render())
    }

    /// Writes the figure as `<id>.csv` into `directory`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv(&self, directory: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(directory)?;
        std::fs::write(
            directory.join(format!("{}.csv", self.id)),
            self.table.to_csv(),
        )
    }
}

/// Formats a float with three decimals (the precision used in all reports).
pub fn fmt(value: f64) -> String {
    format!("{value:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut table = TextTable::new(["alg", "cost"]);
        table.push_row(["rotor-push", "3.14"]);
        table.push_row(["x", "10"]);
        let text = table.render();
        assert!(text.contains("alg"));
        assert!(text.contains("rotor-push"));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(table.num_rows(), 2);
        assert_eq!(table.header().len(), 2);
        assert_eq!(table.rows().len(), 2);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut table = TextTable::new(["name", "value"]);
        table.push_row(["a,b", "say \"hi\""]);
        let csv = table.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn rows_are_padded_to_header_width() {
        let mut table = TextTable::new(["a", "b", "c"]);
        table.push_row(["only-one"]);
        assert_eq!(table.rows()[0].len(), 3);
    }

    #[test]
    fn figure_result_renders_and_writes_csv() {
        let mut table = TextTable::new(["x", "y"]);
        table.push_row(["1", "2"]);
        let figure = FigureResult::new("figure-test", "A test figure", table);
        assert!(figure.render().contains("figure-test"));
        let dir = std::env::temp_dir().join("satn-report-test");
        figure.write_csv(&dir).unwrap();
        let written = std::fs::read_to_string(dir.join("figure-test.csv")).unwrap();
        assert!(written.starts_with("x,y"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fmt_uses_three_decimals() {
        assert_eq!(fmt(1.23456), "1.235");
        assert_eq!(fmt(2.0), "2.000");
    }
}
