//! Golden-file regression test for the experiments harness: a small
//! deterministic Q1–Q4 configuration runs through the `satn-sim` engine and
//! its CSV output must match the checked-in snapshots under `tests/golden/`,
//! so any change to the serving pipeline, the seed derivations, or the
//! workload streams that shifts a reported number is caught. The snapshots
//! pin the outputs as of the engine port (which also redefined the
//! `temporal`/`combined` generators as collected streams).
//!
//! To regenerate after an intentional change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p satn-bench --test golden_experiments
//! ```

use satn_bench::{experiments, ExperimentConfig, FigureResult};
use std::path::PathBuf;

fn golden_config() -> ExperimentConfig {
    ExperimentConfig {
        nodes: 255,
        requests: 2_000,
        repetitions: 2,
        seed: 11,
        corpus_scale: 0.02,
        output_dir: None,
        parallelism: satn_exec::Parallelism::Auto,
    }
}

fn golden_figures() -> Vec<FigureResult> {
    let config = golden_config();
    let mut figures = experiments::q1_size_sweep(&config);
    figures.push(experiments::q2_temporal(&config));
    figures.push(experiments::q3_spatial(&config));
    figures.push(experiments::q4_combined_grid(&config));
    figures.push(experiments::q4_rotor_vs_random_histogram(&config));
    figures
}

fn golden_path(id: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{id}.csv"))
}

#[test]
fn q1_to_q4_match_their_golden_csv_snapshots() {
    let figures = golden_figures();
    assert_eq!(figures.len(), 6, "Q1 (two figures) + Q2 + Q3 + Q4 + Q4b");

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_path("x").parent().unwrap()).unwrap();
        for figure in &figures {
            std::fs::write(golden_path(&figure.id), figure.table.to_csv()).unwrap();
        }
        return;
    }

    for figure in &figures {
        let path = golden_path(&figure.id);
        let expected = std::fs::read_to_string(&path).unwrap_or_else(|_| {
            panic!(
                "missing golden snapshot {}; run with UPDATE_GOLDEN=1 to create it",
                path.display()
            )
        });
        assert_eq!(
            figure.table.to_csv(),
            expected,
            "{} diverged from its golden snapshot; if the change is intentional, \
             regenerate with UPDATE_GOLDEN=1",
            figure.id
        );
    }
}
