//! The [`Workload`] container: a named request sequence over a fixed element
//! universe, plus the statistics the paper reports about it.

use satn_tree::ElementId;

/// A request sequence over an element universe of known size, together with a
/// human-readable name. This is the unit every experiment consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    name: String,
    num_elements: u32,
    requests: Vec<ElementId>,
}

impl Workload {
    /// Creates a workload from its parts.
    ///
    /// # Panics
    ///
    /// Panics if a request refers to an element outside the universe.
    pub fn new(name: impl Into<String>, num_elements: u32, requests: Vec<ElementId>) -> Self {
        let name = name.into();
        assert!(
            requests.iter().all(|e| e.index() < num_elements),
            "workload {name:?} contains requests outside the element universe"
        );
        Workload {
            name,
            num_elements,
            requests,
        }
    }

    /// The workload's name (used in experiment output).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Size of the element universe the requests are drawn from.
    pub fn num_elements(&self) -> u32 {
        self.num_elements
    }

    /// The request sequence.
    pub fn requests(&self) -> &[ElementId] {
        &self.requests
    }

    /// The streaming form of a materialized workload: an iterator over its
    /// requests, usable wherever a generator stream is expected.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = ElementId> + '_ {
        self.requests.iter().copied()
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Returns `true` if the workload contains no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Per-element request counts, indexed by element id.
    pub fn frequencies(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.num_elements as usize];
        for request in &self.requests {
            counts[request.usize()] += 1;
        }
        counts
    }

    /// Per-element request frequencies as weights summing to 1 (all zeros for
    /// an empty workload).
    pub fn weights(&self) -> Vec<f64> {
        let counts = self.frequencies();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return vec![0.0; counts.len()];
        }
        counts.iter().map(|&c| c as f64 / total as f64).collect()
    }

    /// The empirical entropy of the sequence in bits,
    /// `Σ_e f(e) · log2(1 / f(e))` over relative frequencies `f(e)`
    /// (Section 6.1, footnote 6).
    pub fn empirical_entropy(&self) -> f64 {
        let total = self.requests.len() as f64;
        if total == 0.0 {
            return 0.0;
        }
        self.frequencies()
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / total;
                -p * p.log2()
            })
            .sum()
    }

    /// Fraction of requests that repeat their immediate predecessor — the
    /// empirical counterpart of the temporal-locality parameter `p`.
    pub fn repeat_fraction(&self) -> f64 {
        if self.requests.len() < 2 {
            return 0.0;
        }
        let repeats = self
            .requests
            .windows(2)
            .filter(|pair| pair[0] == pair[1])
            .count();
        repeats as f64 / (self.requests.len() - 1) as f64
    }

    /// Number of distinct elements that are actually requested.
    pub fn distinct_requested(&self) -> usize {
        self.frequencies().iter().filter(|&&c| c > 0).count()
    }

    /// Renames the workload (builder-style), keeping requests and universe.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }
}

impl<'a> IntoIterator for &'a Workload {
    type Item = ElementId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, ElementId>>;

    fn into_iter(self) -> Self::IntoIter {
        self.requests.iter().copied()
    }
}

/// Returns the smallest number of complete-tree levels whose node count can
/// host `num_keys` distinct elements (minimum one level).
pub fn fit_tree_levels(num_keys: u32) -> u32 {
    let mut levels = 1;
    while ((1u64 << levels) - 1) < u64::from(num_keys) {
        levels += 1;
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload(requests: &[u32], n: u32) -> Workload {
        Workload::new(
            "test",
            n,
            requests.iter().map(|&i| ElementId::new(i)).collect(),
        )
    }

    #[test]
    fn basic_accessors() {
        let w = workload(&[0, 1, 1, 2], 4);
        assert_eq!(w.name(), "test");
        assert_eq!(w.num_elements(), 4);
        assert_eq!(w.len(), 4);
        assert!(!w.is_empty());
        assert_eq!(w.requests().len(), 4);
        assert_eq!(w.distinct_requested(), 3);
        let renamed = w.with_name("other");
        assert_eq!(renamed.name(), "other");
    }

    #[test]
    #[should_panic(expected = "outside the element universe")]
    fn rejects_out_of_range_requests() {
        workload(&[0, 9], 4);
    }

    #[test]
    fn frequencies_and_weights() {
        let w = workload(&[0, 1, 1, 3], 4);
        assert_eq!(w.frequencies(), vec![1, 2, 0, 1]);
        let weights = w.weights();
        assert!((weights[1] - 0.5).abs() < 1e-12);
        assert!((weights.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_of_uniform_and_constant_sequences() {
        let uniform = workload(&[0, 1, 2, 3], 4);
        assert!((uniform.empirical_entropy() - 2.0).abs() < 1e-12);
        let constant = workload(&[2, 2, 2, 2], 4);
        assert_eq!(constant.empirical_entropy(), 0.0);
        let empty = workload(&[], 4);
        assert_eq!(empty.empirical_entropy(), 0.0);
    }

    #[test]
    fn repeat_fraction_counts_adjacent_duplicates() {
        let w = workload(&[0, 0, 1, 1, 1, 2], 4);
        assert!((w.repeat_fraction() - 3.0 / 5.0).abs() < 1e-12);
        assert_eq!(workload(&[5], 6).repeat_fraction(), 0.0);
        assert_eq!(workload(&[], 6).repeat_fraction(), 0.0);
    }

    #[test]
    fn fit_tree_levels_rounds_up_to_complete_sizes() {
        assert_eq!(fit_tree_levels(0), 1);
        assert_eq!(fit_tree_levels(1), 1);
        assert_eq!(fit_tree_levels(2), 2);
        assert_eq!(fit_tree_levels(3), 2);
        assert_eq!(fit_tree_levels(4), 3);
        assert_eq!(fit_tree_levels(7), 3);
        assert_eq!(fit_tree_levels(8), 4);
        assert_eq!(fit_tree_levels(7218), 13);
        assert_eq!(fit_tree_levels(65535), 16);
    }
}
