//! Partitioning a request stream across shards.
//!
//! The sharded serving engine (`satn-serve`) splits the element universe
//! across `S` independent per-shard trees. This module holds the pieces of
//! that split that belong with the workloads: the routing *policy*
//! ([`ShardRouter`]), the materialized element-to-shard assignment it induces
//! ([`Partition`]), and the stream adapters that turn one global request
//! stream into per-shard subsequences — all deterministic, so a sharded run
//! can be replayed shard by shard on standalone trees and compared byte for
//! byte.

use crate::workload::fit_tree_levels;
use satn_tree::{ElementId, MigrationCost, NodeId, Occupancy};
use std::fmt;
use std::str::FromStr;

/// How requests (and hence elements) are assigned to shards.
///
/// Every policy is a pure function of the request and the shard count, so the
/// same stream always partitions the same way. `Hash` and `Range` are
/// *ownership* policies: they fix which shard's tree stores which element.
/// `SourceAffinity` keys on the request's source instead — the policy of the
/// ego-tree-per-source serving mode, where each source's requests must land
/// on the shard holding that source's tree. Applied to a plain element
/// stream (where the element is its own source) it degenerates to striping
/// `element mod shards`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum ShardRouter {
    /// Scatter by a Fibonacci multiplicative hash of the element id: shards
    /// receive pseudo-random, size-balanced-in-expectation element sets.
    #[default]
    Hash,
    /// Contiguous balanced ranges: element `e` of a universe of `U` elements
    /// goes to shard `e · S / U`. Preserves key locality within a shard.
    Range,
    /// Route by the request's source id (`source mod shards`), so all
    /// requests of one source land on one shard.
    SourceAffinity,
}

/// The Fibonacci multiplicative hash (Knuth §6.4): deterministic, fast, and
/// well-scattering for consecutive keys.
#[inline]
fn fibonacci_hash(key: u32) -> u64 {
    u64::from(key)
        .wrapping_add(1)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        >> 31
}

impl ShardRouter {
    /// Every routing policy, in a stable order (used by sweeps and tests).
    pub const ALL: [ShardRouter; 3] = [
        ShardRouter::Hash,
        ShardRouter::Range,
        ShardRouter::SourceAffinity,
    ];

    /// A short stable label used in reports and scenario names.
    pub fn label(self) -> &'static str {
        match self {
            ShardRouter::Hash => "hash",
            ShardRouter::Range => "range",
            ShardRouter::SourceAffinity => "source-affinity",
        }
    }

    /// The shard an element of a `universe`-element universe is routed to,
    /// for a request whose source is the element itself.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or `element` is outside the universe.
    pub fn shard_of(self, element: ElementId, universe: u32, shards: u32) -> u32 {
        assert!(shards > 0, "a partition needs at least one shard");
        assert!(
            element.index() < universe,
            "element {element} outside the {universe}-element universe"
        );
        match self {
            ShardRouter::Hash => (fibonacci_hash(element.index()) % u64::from(shards)) as u32,
            ShardRouter::Range => {
                ((u64::from(element.index()) * u64::from(shards)) / u64::from(universe)) as u32
            }
            ShardRouter::SourceAffinity => element.index() % shards,
        }
    }

    /// The shard a request from `source` is routed to under source-affinity
    /// routing (the other policies ignore the source and this method).
    pub fn shard_of_source(self, source: u32, shards: u32) -> u32 {
        assert!(shards > 0, "a partition needs at least one shard");
        source % shards
    }
}

impl fmt::Display for ShardRouter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Error returned when parsing an unknown router policy name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRouterError {
    input: String,
}

impl fmt::Display for ParseRouterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown shard router {:?} (expected \"hash\", \"range\", or \"source-affinity\")",
            self.input
        )
    }
}

impl std::error::Error for ParseRouterError {}

impl FromStr for ShardRouter {
    type Err = ParseRouterError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "hash" => Ok(ShardRouter::Hash),
            "range" => Ok(ShardRouter::Range),
            "source-affinity" | "source" | "affinity" => Ok(ShardRouter::SourceAffinity),
            _ => Err(ParseRouterError {
                input: s.to_owned(),
            }),
        }
    }
}

/// The materialized element-to-shard assignment of a routing policy over a
/// fixed universe: global id ⇄ `(shard, local id)` lookup tables.
///
/// Local ids are assigned per shard in increasing global-id order, so the
/// mapping is a bijection between the global universe and the disjoint union
/// of the shard-local universes — every global request stream partitions into
/// per-shard streams of local ids and back without loss.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    router: ShardRouter,
    universe: u32,
    shard_of: Vec<u32>,
    local_of: Vec<u32>,
    owned: Vec<Vec<ElementId>>,
}

impl Partition {
    /// Materializes the assignment of `router` over `universe` elements and
    /// `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `universe` is zero.
    pub fn new(router: ShardRouter, universe: u32, shards: u32) -> Self {
        assert!(universe > 0, "a partition needs a non-empty universe");
        let assignment = (0..universe)
            .map(|global| router.shard_of(ElementId::new(global), universe, shards))
            .collect();
        Partition::from_assignment(router, shards, assignment)
    }

    /// Materializes a partition from an explicit element-to-shard assignment
    /// (`assignment[global] = shard`). Local ids are re-derived canonically:
    /// per shard in increasing global-id order, exactly as in
    /// [`Partition::new`]. This is how every epoch after the initial one is
    /// built — `router` is carried along as the originating policy label.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero, the assignment is empty, or any entry
    /// names a shard out of range.
    pub fn from_assignment(router: ShardRouter, shards: u32, assignment: Vec<u32>) -> Self {
        assert!(shards > 0, "a partition needs at least one shard");
        assert!(
            !assignment.is_empty(),
            "a partition needs a non-empty universe"
        );
        let mut local_of = Vec::with_capacity(assignment.len());
        let mut owned: Vec<Vec<ElementId>> = vec![Vec::new(); shards as usize];
        for (global, &shard) in assignment.iter().enumerate() {
            assert!(
                shard < shards,
                "element {global} is assigned to shard {shard} of {shards}"
            );
            local_of.push(owned[shard as usize].len() as u32);
            owned[shard as usize].push(ElementId::new(global as u32));
        }
        Partition {
            router,
            universe: assignment.len() as u32,
            shard_of: assignment,
            local_of,
            owned,
        }
    }

    /// Applies a reshard plan, producing the next epoch's partition: the
    /// moved elements change owners, and every shard's local ids are
    /// re-derived canonically (increasing global-id order).
    ///
    /// Moves that name an element's current shard are no-ops and are
    /// ignored.
    ///
    /// # Errors
    ///
    /// Returns [`ReshardError`] if a move names an element outside the
    /// universe or a shard out of range; the partition is not changed.
    pub fn apply(&self, plan: &ReshardPlan) -> Result<Partition, ReshardError> {
        let shards = self.shards();
        for &(element, to) in plan.moves() {
            if element.index() >= self.universe {
                return Err(ReshardError::ElementOutOfUniverse {
                    element,
                    universe: self.universe,
                });
            }
            if to >= shards {
                return Err(ReshardError::ShardOutOfRange { shard: to, shards });
            }
        }
        let mut assignment = self.shard_of.clone();
        for &(element, to) in plan.moves() {
            assignment[element.usize()] = to;
        }
        Ok(Partition::from_assignment(self.router, shards, assignment))
    }

    /// The elements owned by a different shard in `newer`, as
    /// `(element, from, to)` triples in canonical (increasing element id)
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if the two partitions cover different universes.
    pub fn diff(&self, newer: &Partition) -> Vec<(ElementId, u32, u32)> {
        assert_eq!(
            self.universe, newer.universe,
            "partitions of different universes cannot be diffed"
        );
        self.shard_of
            .iter()
            .zip(&newer.shard_of)
            .enumerate()
            .filter(|(_, (from, to))| from != to)
            .map(|(global, (&from, &to))| (ElementId::new(global as u32), from, to))
            .collect()
    }

    /// The element-to-shard assignment as a slice indexed by global id.
    pub fn assignment(&self) -> &[u32] {
        &self.shard_of
    }

    /// The routing policy this partition originally materialized. After a
    /// reshard the assignment no longer coincides with the policy's pure
    /// function — the label identifies the epoch-0 ancestry.
    pub fn router(&self) -> ShardRouter {
        self.router
    }

    /// Size of the global element universe.
    pub fn universe(&self) -> u32 {
        self.universe
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.owned.len() as u32
    }

    /// The shard owning a global element, or `None` outside the universe.
    pub fn shard_of(&self, element: ElementId) -> Option<u32> {
        self.shard_of.get(element.usize()).copied()
    }

    /// Translates a global element into its `(shard, local id)` coordinates,
    /// or `None` outside the universe.
    pub fn localize(&self, element: ElementId) -> Option<(u32, ElementId)> {
        let shard = self.shard_of(element)?;
        Some((shard, ElementId::new(self.local_of[element.usize()])))
    }

    /// Translates `(shard, local id)` coordinates back into the global
    /// element.
    ///
    /// # Panics
    ///
    /// Panics if the shard or local id is out of range.
    pub fn globalize(&self, shard: u32, local: ElementId) -> ElementId {
        self.owned[shard as usize][local.usize()]
    }

    /// The global elements owned by `shard`, in increasing id order (= local
    /// id order).
    ///
    /// # Panics
    ///
    /// Panics if the shard is out of range.
    pub fn owned(&self, shard: u32) -> &[ElementId] {
        &self.owned[shard as usize]
    }

    /// The tree depth (in levels) the shard's local universe needs: the
    /// smallest complete tree fitting the owned element count. Local ids
    /// beyond the owned count are padding that is never requested.
    ///
    /// # Panics
    ///
    /// Panics if the shard is out of range.
    pub fn shard_levels(&self, shard: u32) -> u32 {
        fit_tree_levels(self.owned[shard as usize].len() as u32)
    }

    /// Routes a global request stream, yielding each request as its
    /// `(shard, local id)` coordinates in stream order — the streaming
    /// adapter between one global workload and the per-shard trees.
    ///
    /// # Panics
    ///
    /// The returned iterator panics on a request outside the universe.
    pub fn route_stream<'p, I>(&'p self, stream: I) -> impl Iterator<Item = (u32, ElementId)> + 'p
    where
        I: Iterator<Item = ElementId> + 'p,
    {
        stream.map(move |element| {
            self.localize(element).unwrap_or_else(|| {
                panic!(
                    "request {element} outside the {}-element universe",
                    self.universe
                )
            })
        })
    }

    /// Splits a global request stream into the per-shard subsequences of
    /// local ids, preserving the relative order within every shard — exactly
    /// the sequences a standalone per-shard tree would serve.
    ///
    /// # Panics
    ///
    /// Panics on a request outside the universe.
    pub fn split_stream<I>(&self, stream: I) -> Vec<Vec<ElementId>>
    where
        I: Iterator<Item = ElementId>,
    {
        let mut split: Vec<Vec<ElementId>> = vec![Vec::new(); self.owned.len()];
        for (shard, local) in self.route_stream(stream) {
            split[shard as usize].push(local);
        }
        split
    }
}

/// The workspace-wide derivation of an algorithm's internal-randomness seed
/// from a scenario's base seed (matching the historical bench-harness
/// derivation, so ported experiments keep their numbers).
///
/// This is the single definition both sides of the reshard determinism
/// contract rely on: the serving engine rebuilds post-handover trees with
/// `algorithm_seed(shard_epoch_seed(base, shard, epoch))`, and the
/// reference replay's per-epoch scenarios derive exactly the same value —
/// change it here and both move together.
pub fn algorithm_seed(base: u64) -> u64 {
    base ^ 0x5DEECE66D
}

/// The derived base seed of one `(shard, epoch)` pair: decorrelated so shard
/// trees never share placement or algorithm randomness — across shards *or*
/// across the fresh per-epoch instances a reshard handover builds — yet
/// fully determined by the base seed. Epoch 0 reproduces the historical
/// per-shard derivation exactly.
pub fn shard_epoch_seed(base: u64, shard: u32, epoch: u32) -> u64 {
    base.wrapping_add(
        u64::from(shard)
            .wrapping_add(1)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15),
    )
    .wrapping_add(u64::from(epoch).wrapping_mul(0xD1B5_4A32_D192_ED03))
}

/// Error returned for a reshard plan that does not fit its partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ReshardError {
    /// A move names an element outside the partition's universe.
    ElementOutOfUniverse {
        /// The offending element.
        element: ElementId,
        /// Size of the partition's universe.
        universe: u32,
    },
    /// A move names a destination shard the partition does not have.
    ShardOutOfRange {
        /// The offending destination shard.
        shard: u32,
        /// Number of shards in the partition.
        shards: u32,
    },
}

impl fmt::Display for ReshardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReshardError::ElementOutOfUniverse { element, universe } => write!(
                f,
                "reshard plan moves element {element}, outside the {universe}-element universe"
            ),
            ReshardError::ShardOutOfRange { shard, shards } => write!(
                f,
                "reshard plan targets shard {shard}, but the partition has {shards} shards"
            ),
        }
    }
}

impl std::error::Error for ReshardError {}

/// A deterministic set of ownership changes applied at one epoch boundary:
/// each entry moves one element to a new owning shard.
///
/// Plans are canonical by construction — moves are stored sorted by element
/// id — so two plans describing the same change compare equal and every
/// consumer (the serving engine's handover, the reference replay's epoch
/// segmentation) walks the moves in the same order.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct ReshardPlan {
    moves: Vec<(ElementId, u32)>,
}

impl ReshardPlan {
    /// Builds a plan from `(element, destination shard)` moves, normalizing
    /// to canonical (increasing element id) order.
    ///
    /// # Panics
    ///
    /// Panics if the same element is moved more than once.
    pub fn new(moves: impl IntoIterator<Item = (ElementId, u32)>) -> Self {
        match ReshardPlan::try_new(moves) {
            Ok(plan) => plan,
            Err(element) => panic!("a reshard plan may move element {element} at most once"),
        }
    }

    /// Non-panicking [`ReshardPlan::new`]: builds the canonical plan, or
    /// reports the first element moved more than once. This is the entry
    /// point for untrusted input (e.g. decoding reshard frames off a wire),
    /// where a malformed plan must surface as an error, not a panic.
    ///
    /// # Errors
    ///
    /// Returns the smallest element id that appears in more than one move.
    pub fn try_new(moves: impl IntoIterator<Item = (ElementId, u32)>) -> Result<Self, ElementId> {
        let mut moves: Vec<(ElementId, u32)> = moves.into_iter().collect();
        moves.sort_unstable_by_key(|&(element, _)| element);
        for pair in moves.windows(2) {
            if pair[0].0 == pair[1].0 {
                return Err(pair[0].0);
            }
        }
        Ok(ReshardPlan { moves })
    }

    /// An empty plan (the plan "entering" epoch 0).
    pub fn empty() -> Self {
        ReshardPlan::default()
    }

    /// The moves, in canonical (increasing element id) order.
    pub fn moves(&self) -> &[(ElementId, u32)] {
        &self.moves
    }

    /// Number of moves in the plan.
    pub fn len(&self) -> usize {
        self.moves.len()
    }

    /// Whether the plan moves nothing.
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }
}

/// A reshard event within a stream: after `at` global requests have been
/// served, `plan` is applied and the next epoch begins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReshardEvent {
    /// Number of global requests served before the handover (the boundary
    /// position: request `at` is the first of the new epoch).
    pub at: usize,
    /// The ownership changes of the handover.
    pub plan: ReshardPlan,
}

/// One entry of the epoch log: an epoch index, the partition current during
/// that epoch, and the plan whose handover entered it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionEpoch {
    epoch: u32,
    partition: Partition,
    plan: ReshardPlan,
}

impl PartitionEpoch {
    /// The epoch index (0 = the initial assignment).
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// The element-to-shard assignment current during this epoch.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// The plan whose handover entered this epoch (empty for epoch 0).
    pub fn plan(&self) -> &ReshardPlan {
        &self.plan
    }
}

/// The epoch-versioned partition: an append-only log of [`PartitionEpoch`]s.
/// Epoch 0 is the initial assignment of a routing policy; every later epoch
/// is produced by applying a deterministic [`ReshardPlan`] to its
/// predecessor. The log is the single source of truth for "which shard owned
/// element `e` during epoch `k`" — the serving engine and the reference
/// replay both read the same log, which is what keeps a resharded run
/// byte-for-byte replayable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochedPartition {
    epochs: Vec<PartitionEpoch>,
}

impl EpochedPartition {
    /// Starts a log at epoch 0 with the materialized assignment of `router`.
    ///
    /// # Panics
    ///
    /// Panics under the conditions of [`Partition::new`].
    pub fn new(router: ShardRouter, universe: u32, shards: u32) -> Self {
        EpochedPartition::from_partition(Partition::new(router, universe, shards))
    }

    /// Starts a log at epoch 0 from an already-materialized partition.
    pub fn from_partition(initial: Partition) -> Self {
        EpochedPartition {
            epochs: vec![PartitionEpoch {
                epoch: 0,
                partition: initial,
                plan: ReshardPlan::empty(),
            }],
        }
    }

    /// Applies a plan to the current partition, appending (and returning)
    /// the next epoch.
    ///
    /// # Errors
    ///
    /// Returns [`ReshardError`] if the plan does not fit the partition; the
    /// log is not changed.
    pub fn apply(&mut self, plan: ReshardPlan) -> Result<&PartitionEpoch, ReshardError> {
        let partition = self.current().apply(&plan)?;
        let epoch = self.epochs.len() as u32;
        self.epochs.push(PartitionEpoch {
            epoch,
            partition,
            plan,
        });
        Ok(self.epochs.last().expect("just pushed"))
    }

    /// The partition of the latest epoch.
    pub fn current(&self) -> &Partition {
        &self
            .epochs
            .last()
            .expect("the log is never empty")
            .partition
    }

    /// The latest epoch index.
    pub fn current_epoch(&self) -> u32 {
        (self.epochs.len() - 1) as u32
    }

    /// Every epoch, oldest first (never empty).
    pub fn epochs(&self) -> &[PartitionEpoch] {
        &self.epochs
    }

    /// One epoch of the log.
    ///
    /// # Panics
    ///
    /// Panics if the epoch is out of range.
    pub fn epoch(&self, epoch: u32) -> &PartitionEpoch {
        &self.epochs[epoch as usize]
    }

    /// Number of epochs in the log.
    pub fn len(&self) -> usize {
        self.epochs.len()
    }

    /// Always `false`: the log holds at least epoch 0.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Epoch-aware stream splitting: routes a global request stream through
    /// the log, localizing each request under the partition of the epoch it
    /// falls in. `boundaries[k]` is the number of global requests served
    /// before epoch `k + 1` begins (one entry per epoch after the first,
    /// nondecreasing). Returns per-epoch, per-shard subsequences of local
    /// ids — exactly the sequences the per-epoch standalone reference trees
    /// serve.
    ///
    /// # Panics
    ///
    /// Panics if the boundary count does not match the log, boundaries
    /// decrease, or a request falls outside the universe.
    pub fn split_stream_epochs<I>(
        &self,
        boundaries: &[usize],
        stream: I,
    ) -> Vec<Vec<Vec<ElementId>>>
    where
        I: Iterator<Item = ElementId>,
    {
        assert_eq!(
            boundaries.len() + 1,
            self.epochs.len(),
            "one boundary per epoch after the first is required"
        );
        assert!(
            boundaries.windows(2).all(|pair| pair[0] <= pair[1]),
            "epoch boundaries must be nondecreasing"
        );
        let shards = self.current().shards() as usize;
        let mut split: Vec<Vec<Vec<ElementId>>> = vec![vec![Vec::new(); shards]; self.epochs.len()];
        let mut epoch = 0usize;
        for (position, element) in stream.enumerate() {
            while epoch < boundaries.len() && position >= boundaries[epoch] {
                epoch += 1;
            }
            let partition = &self.epochs[epoch].partition;
            let (shard, local) = partition.localize(element).unwrap_or_else(|| {
                panic!(
                    "request {element} outside the {}-element universe",
                    partition.universe()
                )
            });
            split[epoch][shard as usize].push(local);
        }
        split
    }
}

/// How a reshard handover reconstitutes the per-shard trees.
///
/// The placements are identical either way — the handover protocol is a
/// pure function of `(old, new, occupancies)` — the modes differ only in
/// how much work reaches them and which internal state the new trees start
/// from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum HandoverMode {
    /// Every shard tree is rebuilt from scratch from the post-handover
    /// placement, its internal state reseeded per `(shard, epoch)`:
    /// O(total elements) per handover regardless of how little the plan
    /// moves.
    #[default]
    Cold,
    /// Untouched shards keep their live trees verbatim (zero work); touched
    /// shards carry their exported warm state (rotor pointers, recency,
    /// generator position) across the canonical delete/re-insert: the
    /// handover cost scales with the moved elements, not the universe.
    Warm,
}

impl HandoverMode {
    /// Both modes, in a stable order (cold first — the historical default).
    pub const ALL: [HandoverMode; 2] = [HandoverMode::Cold, HandoverMode::Warm];

    /// A short stable label used in reports, flags, and scenario names.
    pub fn label(self) -> &'static str {
        match self {
            HandoverMode::Cold => "cold",
            HandoverMode::Warm => "warm",
        }
    }
}

impl fmt::Display for HandoverMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Error returned when parsing an unknown handover mode name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseHandoverError {
    input: String,
}

impl fmt::Display for ParseHandoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown handover mode {:?} (expected \"cold\" or \"warm\")",
            self.input
        )
    }
}

impl std::error::Error for ParseHandoverError {}

impl FromStr for HandoverMode {
    type Err = ParseHandoverError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "cold" => Ok(HandoverMode::Cold),
            "warm" => Ok(HandoverMode::Warm),
            _ => Err(ParseHandoverError {
                input: s.to_owned(),
            }),
        }
    }
}

/// The shards a reshard actually touches: `touched[s]` is `true` iff some
/// element leaves or enters shard `s` between the two partitions. An
/// untouched shard's owned set, tree size, and every real element's node
/// are all unchanged across the handover, which is what lets a warm
/// handover skip it entirely and keep the live tree.
///
/// # Panics
///
/// Panics if the partitions disagree on universe or shard count.
pub fn touched_shards(old: &Partition, new: &Partition) -> Vec<bool> {
    assert_eq!(
        old.shards(),
        new.shards(),
        "shard count changed mid-handover"
    );
    let mut touched = vec![false; old.shards() as usize];
    for (_, from, to) in old.diff(new) {
        touched[from as usize] = true;
        touched[to as usize] = true;
    }
    touched
}

/// The warm-state element remap of one shard across a handover:
/// `remap[new_local]` is the element's local id *before* the handover, or
/// `None` for elements that just arrived and for padding ids. The vector
/// covers the shard's full new tree (one entry per node), ready for
/// `WarmState::carried_into`. For an untouched shard the remap is the
/// identity on its owned prefix.
///
/// # Panics
///
/// Panics if the partitions disagree on universe or shard count, or the
/// shard is out of range.
pub fn carry_remap(old: &Partition, new: &Partition, shard: u32) -> Vec<Option<u32>> {
    assert_eq!(
        old.universe(),
        new.universe(),
        "universe changed mid-handover"
    );
    assert_eq!(
        old.shards(),
        new.shards(),
        "shard count changed mid-handover"
    );
    let new_nodes = ((1u64 << new.shard_levels(shard)) - 1) as usize;
    let mut remap = Vec::with_capacity(new_nodes);
    for &global in new.owned(shard) {
        remap.push(match old.localize(global) {
            Some((old_shard, old_local)) if old_shard == shard => Some(old_local.index()),
            _ => None,
        });
    }
    remap.resize(new_nodes, None);
    remap
}

/// The outcome of a deterministic handover: the next epoch's initial
/// placements plus the migration cost of the moved elements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Handover {
    /// Per shard, the new epoch's initial placement: the local element id
    /// stored at every node of the shard's (possibly resized) tree, in heap
    /// order — ready for `Occupancy::from_placement`.
    pub placements: Vec<Vec<ElementId>>,
    /// The delete/re-insert cost of every cross-shard move.
    pub migration: MigrationCost,
}

/// Computes the deterministic handover from partition `old` to partition
/// `new`, given each shard's pre-handover occupancy.
///
/// The protocol, per shard:
///
/// 1. **Delete**: elements leaving the shard vacate their nodes, each paying
///    its access cost there (`level + 1`).
/// 2. **Carry**: elements staying keep their exact nodes (so an untouched
///    shard's real-element placement is preserved bit for bit). If the
///    shard's tree shrinks, staying elements stranded beyond the new size
///    relocate first, in old node order — a free compaction, like the
///    initial placement.
/// 3. **Insert**: arriving elements, in canonical (increasing global id)
///    order, fill the free nodes in increasing node order — shallowest slot
///    first — each paying the access cost of the slot it lands in.
/// 4. **Padding**: unowned local ids fill the remaining nodes in increasing
///    order.
///
/// Every step is a pure function of `(old, new, occupancies)`, so the
/// serving engine and the reference replay derive byte-identical
/// post-handover states without ever exchanging them.
///
/// # Panics
///
/// Panics if the partitions disagree on universe or shard count, or if an
/// occupancy is smaller than its shard's owned set.
pub fn handover(old: &Partition, new: &Partition, occupancies: &[&Occupancy]) -> Handover {
    handover_filtered(old, new, occupancies, None)
}

/// The incremental variant of [`handover`]: computes placements only for the
/// shards marked in `touched` (see [`touched_shards`]); an untouched shard's
/// entry in `placements` is left empty, signalling "keep the live tree".
/// Note that keeping the live tree is *not* byte-identical to the full
/// handover's placement: the full handover re-packs padding ids into free
/// nodes in canonical order, while the live tree keeps padding wherever
/// push-downs drifted it. A warm replay must therefore seed untouched
/// shards from the live occupancy (real elements agree either way; only
/// padding differs).
///
/// The migration cost is identical to the full handover's: every moved
/// element's source and destination shard is touched by definition, so no
/// priced work is skipped.
///
/// # Panics
///
/// Panics under the conditions of [`handover`], or if `touched` does not
/// have one entry per shard, or if a shard whose owned set changed is
/// marked untouched.
pub fn handover_touched(
    old: &Partition,
    new: &Partition,
    occupancies: &[&Occupancy],
    touched: &[bool],
) -> Handover {
    assert_eq!(
        touched.len(),
        old.shards() as usize,
        "one touched flag per shard is required"
    );
    handover_filtered(old, new, occupancies, Some(touched))
}

fn handover_filtered(
    old: &Partition,
    new: &Partition,
    occupancies: &[&Occupancy],
    touched: Option<&[bool]>,
) -> Handover {
    assert_eq!(
        old.universe(),
        new.universe(),
        "universe changed mid-handover"
    );
    assert_eq!(
        old.shards(),
        new.shards(),
        "shard count changed mid-handover"
    );
    assert_eq!(
        occupancies.len(),
        old.shards() as usize,
        "one occupancy per shard is required"
    );

    let mut migration = MigrationCost::ZERO;
    // Delete: each moved element pays its access cost on the source shard.
    for (element, from, _) in old.diff(new) {
        let (_, local) = old.localize(element).expect("diffed elements are owned");
        let occupancy = occupancies[from as usize];
        migration.moved += 1;
        migration.delete += u64::from(occupancy.node_of(local).level()) + 1;
    }

    let shards = old.shards();
    let mut placements = Vec::with_capacity(shards as usize);
    for shard in 0..shards {
        if let Some(touched) = touched {
            if !touched[shard as usize] {
                assert_eq!(
                    old.owned(shard),
                    new.owned(shard),
                    "shard {shard} marked untouched but its owned set changed"
                );
                placements.push(Vec::new());
                continue;
            }
        }
        let occupancy = occupancies[shard as usize];
        let old_owned = old.owned(shard);
        let new_owned = new.owned(shard);
        assert!(
            occupancy.num_elements() as usize >= old_owned.len(),
            "shard {shard}: occupancy smaller than its owned set"
        );
        let old_nodes = occupancy.num_elements() as usize;
        let new_nodes = ((1u64 << new.shard_levels(shard)) - 1) as usize;

        // Carry: staying elements keep their nodes (translated to the new
        // epoch's local ids); stranded ones relocate in old node order.
        let mut placement: Vec<Option<ElementId>> = vec![None; new_nodes];
        let mut stranded: Vec<ElementId> = Vec::new();
        for node_index in 0..old_nodes {
            let local = occupancy.element_at(NodeId::new(node_index as u32));
            if local.usize() >= old_owned.len() {
                continue; // Padding never carries over.
            }
            let global = old_owned[local.usize()];
            let Some((new_shard, new_local)) = new.localize(global) else {
                continue;
            };
            if new_shard != shard {
                continue; // Deleted above; the slot stays free.
            }
            if node_index < new_nodes {
                placement[node_index] = Some(new_local);
            } else {
                stranded.push(new_local);
            }
        }

        // Insert: arrivals in canonical order (new_owned is sorted by global
        // id), after any stranded carries, into free nodes shallowest-first.
        let arrivals = new_owned
            .iter()
            .filter(|&&global| old.shard_of(global) != Some(shard))
            .map(|&global| {
                let (_, new_local) = new.localize(global).expect("owned by this shard");
                (new_local, true)
            });
        let mut incoming = stranded
            .into_iter()
            .map(|local| (local, false))
            .chain(arrivals);
        let mut next = incoming.next();
        let mut padding = new_owned.len() as u32..new_nodes as u32;
        for (node_index, slot) in placement.iter_mut().enumerate() {
            if slot.is_some() {
                continue;
            }
            if let Some((local, is_arrival)) = next {
                if is_arrival {
                    migration.insert += u64::from(NodeId::new(node_index as u32).level()) + 1;
                }
                *slot = Some(local);
                next = incoming.next();
            } else {
                let local = padding.next().expect("enough padding ids for free nodes");
                *slot = Some(ElementId::new(local));
            }
        }
        assert!(next.is_none(), "more elements than nodes on shard {shard}");
        placements.push(
            placement
                .into_iter()
                .map(|slot| slot.expect("every node is filled"))
                .collect(),
        );
    }
    Handover {
        placements,
        migration,
    }
}

/// A deterministic load-adaptive resharding policy: a pure function from a
/// window of observed per-shard load to the next [`ReshardPlan`]. The
/// serving engine applies it online; the reference replay derives the same
/// schedule from the raw stream ([`derive_schedule`]) — neither side ever
/// has to trust the other's epochs.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ReshardPolicy {
    /// Every `every` requests, move the hottest elements (window request
    /// counts, ties broken by lower element id) off the most loaded shard to
    /// the least loaded shard, until half the load gap between the two has
    /// been transferred or `max_moves` elements are in the plan. Elements
    /// with no requests in the window never move.
    MoveHottest {
        /// The reshard cadence, in global requests.
        every: usize,
        /// Upper bound on moves per handover.
        max_moves: u32,
    },
}

impl ReshardPolicy {
    /// The policy's reshard cadence, in global requests.
    pub fn every(&self) -> usize {
        match self {
            ReshardPolicy::MoveHottest { every, .. } => *every,
        }
    }

    /// Derives the plan for one window: `window[e]` is the number of
    /// requests element `e` received since the last boundary. Returns an
    /// empty plan when the window gives no reason to move (perfectly
    /// balanced, or nothing hot to transfer).
    ///
    /// # Panics
    ///
    /// Panics if the window length differs from the partition's universe.
    pub fn plan(&self, partition: &Partition, window: &[u64]) -> ReshardPlan {
        assert_eq!(
            window.len(),
            partition.universe() as usize,
            "one window count per universe element is required"
        );
        let ReshardPolicy::MoveHottest { max_moves, .. } = self;
        let shards = partition.shards();
        let mut load = vec![0u64; shards as usize];
        for (element, &count) in window.iter().enumerate() {
            let shard = partition.assignment()[element];
            load[shard as usize] += count;
        }
        // Most and least loaded shard, ties to the lower index.
        let from = (0..shards).max_by_key(|&s| (load[s as usize], u32::MAX - s));
        let to = (0..shards).min_by_key(|&s| (load[s as usize], s));
        let (Some(from), Some(to)) = (from, to) else {
            return ReshardPlan::empty();
        };
        if from == to || load[from as usize] == load[to as usize] {
            return ReshardPlan::empty();
        }
        let gap = load[from as usize] - load[to as usize];
        let target = gap / 2;

        // Hottest owned elements of the overloaded shard, hottest first,
        // ties to the lower element id (owned order is increasing id).
        let mut hot: Vec<ElementId> = partition
            .owned(from)
            .iter()
            .copied()
            .filter(|element| window[element.usize()] > 0)
            .collect();
        hot.sort_by_key(|element| (u64::MAX - window[element.usize()], element.index()));

        let mut moves = Vec::new();
        let mut transferred = 0u64;
        for element in hot {
            if transferred >= target || moves.len() as u32 >= *max_moves {
                break;
            }
            transferred += window[element.usize()];
            moves.push((element, to));
        }
        ReshardPlan::new(moves)
    }
}

/// Observes a routed request stream and fires the policy at its cadence —
/// the shared driver of policy-triggered resharding. The serving engine
/// feeds it each submitted request; [`derive_schedule`] feeds it the raw
/// stream. Same inputs, same pure policy, same epochs.
#[derive(Debug, Clone)]
pub struct PolicyDriver {
    policy: ReshardPolicy,
    window: Vec<u64>,
    since: usize,
}

impl PolicyDriver {
    /// Creates a driver for a `universe`-element stream.
    ///
    /// # Panics
    ///
    /// Panics if the policy's cadence is zero.
    pub fn new(policy: ReshardPolicy, universe: u32) -> Self {
        assert!(policy.every() > 0, "the reshard cadence must be positive");
        PolicyDriver {
            policy,
            window: vec![0; universe as usize],
            since: 0,
        }
    }

    /// Counts one request. At every `every`-th request the policy derives a
    /// plan from the window (which then resets); a non-empty plan is
    /// returned and the caller reshards — an empty plan stays in the current
    /// epoch.
    ///
    /// # Panics
    ///
    /// Panics if the element is outside the driver's universe.
    pub fn observe(&mut self, element: ElementId, partition: &Partition) -> Option<ReshardPlan> {
        self.window[element.usize()] += 1;
        self.since += 1;
        if self.since < self.policy.every() {
            return None;
        }
        self.since = 0;
        let plan = self.policy.plan(partition, &self.window);
        self.window.fill(0);
        (!plan.is_empty()).then_some(plan)
    }
}

/// Derives the full epoch log and boundary positions a policy produces over
/// a stream — the pure offline counterpart of the serving engine's online
/// policy application, and the input of the epoch-segmented reference
/// replay.
pub fn derive_schedule<I>(
    policy: &ReshardPolicy,
    initial: Partition,
    stream: I,
) -> (EpochedPartition, Vec<usize>)
where
    I: Iterator<Item = ElementId>,
{
    let mut log = EpochedPartition::from_partition(initial);
    let mut driver = PolicyDriver::new(policy.clone(), log.current().universe());
    let mut boundaries = Vec::new();
    for (position, element) in stream.enumerate() {
        if let Some(plan) = driver.observe(element, log.current()) {
            log.apply(plan).expect("policy plans always fit");
            boundaries.push(position + 1);
        }
    }
    (log, boundaries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_policy_partitions_the_universe_into_a_bijection() {
        for router in ShardRouter::ALL {
            for shards in [1u32, 2, 3, 8] {
                let universe = 96;
                let partition = Partition::new(router, universe, shards);
                assert_eq!(partition.shards(), shards);
                assert_eq!(partition.universe(), universe);
                let total: usize = (0..shards).map(|s| partition.owned(s).len()).sum();
                assert_eq!(total, universe as usize, "{router}/{shards}");
                for global in (0..universe).map(ElementId::new) {
                    let (shard, local) = partition.localize(global).unwrap();
                    assert!(shard < shards);
                    assert_eq!(partition.globalize(shard, local), global, "{router}");
                    assert_eq!(partition.shard_of(global), Some(shard));
                }
            }
        }
    }

    #[test]
    fn range_routing_keeps_contiguous_balanced_blocks() {
        let partition = Partition::new(ShardRouter::Range, 28, 4);
        for shard in 0..4 {
            let owned = partition.owned(shard);
            assert_eq!(owned.len(), 7);
            // Contiguous: consecutive ids.
            for pair in owned.windows(2) {
                assert_eq!(pair[1].index(), pair[0].index() + 1);
            }
            assert_eq!(owned[0].index(), shard * 7);
        }
    }

    #[test]
    fn source_affinity_stripes_elements_and_groups_sources() {
        let partition = Partition::new(ShardRouter::SourceAffinity, 12, 3);
        for global in (0..12u32).map(ElementId::new) {
            assert_eq!(partition.shard_of(global), Some(global.index() % 3));
        }
        assert_eq!(ShardRouter::SourceAffinity.shard_of_source(7, 3), 1);
    }

    #[test]
    fn hash_routing_is_reasonably_balanced() {
        let partition = Partition::new(ShardRouter::Hash, 1 << 12, 8);
        for shard in 0..8 {
            let size = partition.owned(shard).len();
            // Expected 512 per shard; allow a generous spread.
            assert!((256..=768).contains(&size), "shard {shard}: {size}");
        }
    }

    #[test]
    fn shard_levels_fit_the_owned_count() {
        let partition = Partition::new(ShardRouter::Range, 4 * 31, 4);
        for shard in 0..4 {
            assert_eq!(partition.shard_levels(shard), 5); // 31 elements => 5 levels
        }
        let skewed = Partition::new(ShardRouter::Hash, 100, 3);
        for shard in 0..3 {
            let owned = skewed.owned(shard).len() as u32;
            let capacity = (1u32 << skewed.shard_levels(shard)) - 1;
            assert!(capacity >= owned);
            assert!(shard == 0 || capacity < 2 * owned.max(1));
        }
    }

    #[test]
    fn split_stream_preserves_per_shard_order_and_roundtrips() {
        let partition = Partition::new(ShardRouter::Hash, 64, 4);
        let stream: Vec<ElementId> = (0..500u32).map(|i| ElementId::new((i * 13) % 64)).collect();
        let split = partition.split_stream(stream.iter().copied());
        // Rebuild the per-shard global subsequences independently and compare.
        for shard in 0..4 {
            let expected: Vec<ElementId> = stream
                .iter()
                .copied()
                .filter(|&e| partition.shard_of(e) == Some(shard))
                .collect();
            let globalized: Vec<ElementId> = split[shard as usize]
                .iter()
                .map(|&local| partition.globalize(shard, local))
                .collect();
            assert_eq!(globalized, expected, "shard {shard}");
        }
        let total: usize = split.iter().map(Vec::len).sum();
        assert_eq!(total, stream.len());
    }

    #[test]
    fn routed_stream_agrees_with_localize() {
        let partition = Partition::new(ShardRouter::Range, 21, 3);
        let requests = [5u32, 20, 0, 13, 13].map(ElementId::new);
        let routed: Vec<(u32, ElementId)> =
            partition.route_stream(requests.iter().copied()).collect();
        for (&request, &(shard, local)) in requests.iter().zip(&routed) {
            assert_eq!(partition.localize(request), Some((shard, local)));
        }
    }

    #[test]
    fn router_labels_roundtrip_through_fromstr() {
        for router in ShardRouter::ALL {
            let parsed: ShardRouter = router.label().parse().unwrap();
            assert_eq!(parsed, router);
            assert_eq!(router.to_string(), router.label());
        }
        assert!("consistent".parse::<ShardRouter>().is_err());
        assert_eq!(ShardRouter::default(), ShardRouter::Hash);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_are_rejected() {
        Partition::new(ShardRouter::Hash, 10, 0);
    }

    #[test]
    fn out_of_universe_lookups_return_none() {
        let partition = Partition::new(ShardRouter::Hash, 7, 2);
        assert_eq!(partition.shard_of(ElementId::new(7)), None);
        assert_eq!(partition.localize(ElementId::new(99)), None);
    }

    #[test]
    fn reshard_plans_are_canonical() {
        let plan = ReshardPlan::new([
            (ElementId::new(9), 1),
            (ElementId::new(2), 0),
            (ElementId::new(5), 1),
        ]);
        let ids: Vec<u32> = plan.moves().iter().map(|&(e, _)| e.index()).collect();
        assert_eq!(ids, vec![2, 5, 9]);
        assert_eq!(plan.len(), 3);
        assert!(!plan.is_empty());
        assert_eq!(
            plan,
            ReshardPlan::new([
                (ElementId::new(5), 1),
                (ElementId::new(2), 0),
                (ElementId::new(9), 1),
            ])
        );
        assert!(ReshardPlan::empty().is_empty());
    }

    #[test]
    #[should_panic(expected = "at most once")]
    fn duplicate_moves_are_rejected() {
        ReshardPlan::new([(ElementId::new(3), 0), (ElementId::new(3), 1)]);
    }

    #[test]
    fn apply_moves_ownership_and_renumbers_canonically() {
        let partition = Partition::new(ShardRouter::Range, 12, 3); // 0-3 | 4-7 | 8-11
        let plan = ReshardPlan::new([
            (ElementId::new(0), 2),
            (ElementId::new(5), 0),
            (ElementId::new(8), 2), // no-op: already on shard 2
        ]);
        let next = partition.apply(&plan).unwrap();
        assert_eq!(next.universe(), 12);
        assert_eq!(next.shards(), 3);
        assert_eq!(next.shard_of(ElementId::new(0)), Some(2));
        assert_eq!(next.shard_of(ElementId::new(5)), Some(0));
        // Canonical local ids: shard 0 now owns {1, 2, 3, 5} in id order.
        let owned0: Vec<u32> = next.owned(0).iter().map(|e| e.index()).collect();
        assert_eq!(owned0, vec![1, 2, 3, 5]);
        assert_eq!(
            next.localize(ElementId::new(5)),
            Some((0, ElementId::new(3)))
        );
        // Round-trip still a bijection.
        let total: usize = (0..3).map(|s| next.owned(s).len()).sum();
        assert_eq!(total, 12);
        // Diff reports exactly the effective moves, in canonical order.
        assert_eq!(
            partition.diff(&next),
            vec![(ElementId::new(0), 0, 2), (ElementId::new(5), 1, 0)]
        );
    }

    #[test]
    fn apply_rejects_foreign_elements_and_shards() {
        let partition = Partition::new(ShardRouter::Hash, 8, 2);
        assert_eq!(
            partition.apply(&ReshardPlan::new([(ElementId::new(8), 0)])),
            Err(ReshardError::ElementOutOfUniverse {
                element: ElementId::new(8),
                universe: 8
            })
        );
        let err = partition
            .apply(&ReshardPlan::new([(ElementId::new(1), 2)]))
            .unwrap_err();
        assert_eq!(
            err,
            ReshardError::ShardOutOfRange {
                shard: 2,
                shards: 2
            }
        );
        assert!(err.to_string().contains("2 shards"));
    }

    #[test]
    fn epoch_log_grows_and_splits_streams_per_epoch() {
        let mut log = EpochedPartition::new(ShardRouter::Range, 8, 2); // 0-3 | 4-7
        assert_eq!(log.current_epoch(), 0);
        assert!(!log.is_empty());
        log.apply(ReshardPlan::new([(ElementId::new(0), 1)]))
            .unwrap();
        assert_eq!(log.current_epoch(), 1);
        assert_eq!(log.len(), 2);
        assert_eq!(log.epoch(1).plan().len(), 1);
        assert_eq!(
            log.epoch(0).partition().shard_of(ElementId::new(0)),
            Some(0)
        );
        assert_eq!(log.current().shard_of(ElementId::new(0)), Some(1));

        // Requests 0..4 fall in epoch 0, requests 4.. in epoch 1.
        let stream = [0u32, 4, 0, 5, 0, 4, 6, 1].map(ElementId::new);
        let split = log.split_stream_epochs(&[4], stream.iter().copied());
        assert_eq!(split.len(), 2);
        // Epoch 0: shard 0 sees locals of globals {0, 0}, shard 1 {4, 5}.
        assert_eq!(split[0][0], vec![ElementId::new(0), ElementId::new(0)]);
        assert_eq!(split[0][1], vec![ElementId::new(0), ElementId::new(1)]);
        // Epoch 1: global 0 now lives on shard 1 with local id 0 (owned set
        // of shard 1 is {0, 4, 5, 6, 7} in id order).
        assert_eq!(split[1][0], vec![ElementId::new(0)]); // global 1, local 0
        assert_eq!(
            split[1][1],
            vec![ElementId::new(0), ElementId::new(1), ElementId::new(3)]
        );
    }

    #[test]
    fn handover_preserves_untouched_shards_and_prices_moves() {
        use satn_tree::CompleteTree;

        let old = Partition::new(ShardRouter::Range, 21, 3); // 7 each, 3 levels
        let plan = ReshardPlan::new([(ElementId::new(0), 1)]);
        let new = old.apply(&plan).unwrap();

        let tree = CompleteTree::with_levels(3).unwrap();
        let occupancies: Vec<Occupancy> = (0..3).map(|_| Occupancy::identity(tree)).collect();
        let refs: Vec<&Occupancy> = occupancies.iter().collect();
        let result = handover(&old, &new, &refs);

        // Shard 2 is untouched: placement is its identity occupancy.
        let identity: Vec<ElementId> = (0..7).map(ElementId::new).collect();
        assert_eq!(result.placements[2], identity);

        // Shard 0 lost global 0 (local 0, at the root). Its remaining six
        // elements keep their nodes; the freed root takes the first padding
        // id (6 elements owned, 7 nodes).
        assert_eq!(result.placements[0][0], ElementId::new(6));
        for node in 1..7 {
            // Globals 1..=6 had old locals 1..=6 and keep nodes 1..=6; their
            // new locals are 0..=5.
            assert_eq!(result.placements[0][node], ElementId::new(node as u32 - 1));
        }

        // Shard 1 gained global 0: arrivals fill the shallowest free node.
        // Shard 1 still fits in 3 levels (8 elements > 7? no: 7 + 1 = 8 =>
        // needs 4 levels), so the tree grew to 15 nodes.
        assert_eq!(result.placements[1].len(), 15);
        // Old nodes keep their elements: old local i (global 7 + i) becomes
        // new local i + 1 (global 0 is the new local 0).
        for node in 0..7 {
            assert_eq!(result.placements[1][node], ElementId::new(node as u32 + 1));
        }
        // The arrival (new local 0) lands at the shallowest free node: 7.
        assert_eq!(result.placements[1][7], ElementId::new(0));

        // Migration cost: delete at the old root (level 0 -> cost 1),
        // insert at node 7 (level 3 -> cost 4).
        assert_eq!(
            result.migration,
            MigrationCost {
                moved: 1,
                delete: 1,
                insert: 4
            }
        );

        // Every placement is a valid bijection for its tree size.
        for placement in result.placements {
            let levels = (placement.len() + 1).trailing_zeros();
            let tree = CompleteTree::with_levels(levels).unwrap();
            Occupancy::from_placement(tree, placement).unwrap();
        }
    }

    #[test]
    fn touched_shards_follow_the_diff_and_gate_the_incremental_handover() {
        use satn_tree::CompleteTree;

        let old = Partition::new(ShardRouter::Range, 21, 3); // 7 each, 3 levels
        let plan = ReshardPlan::new([(ElementId::new(0), 1)]);
        let new = old.apply(&plan).unwrap();

        let touched = touched_shards(&old, &new);
        assert_eq!(touched, vec![true, true, false]);
        assert!(touched_shards(&old, &old).iter().all(|&t| !t));

        let tree = CompleteTree::with_levels(3).unwrap();
        let occupancies: Vec<Occupancy> = (0..3).map(|_| Occupancy::identity(tree)).collect();
        let refs: Vec<&Occupancy> = occupancies.iter().collect();
        let full = handover(&old, &new, &refs);
        let incremental = handover_touched(&old, &new, &refs, &touched);

        // Identical migration cost, identical placements on touched shards,
        // and an explicit keep-the-live-tree marker on the untouched one.
        assert_eq!(incremental.migration, full.migration);
        assert_eq!(incremental.placements[0], full.placements[0]);
        assert_eq!(incremental.placements[1], full.placements[1]);
        assert!(incremental.placements[2].is_empty());
    }

    #[test]
    fn carry_remap_is_identity_on_untouched_shards_and_tracks_moves() {
        let old = Partition::new(ShardRouter::Range, 21, 3); // 0-6 | 7-13 | 14-20
        let plan = ReshardPlan::new([(ElementId::new(0), 1)]);
        let new = old.apply(&plan).unwrap();

        // Untouched shard 2: identity on the owned prefix, None on padding.
        let remap = carry_remap(&old, &new, 2);
        assert_eq!(remap.len(), 7);
        for (local, slot) in remap.iter().enumerate() {
            assert_eq!(*slot, Some(local as u32));
        }

        // Source shard 0: lost global 0 (old local 0); survivors shift down.
        let remap = carry_remap(&old, &new, 0);
        assert_eq!(remap.len(), 7); // 6 owned + 1 padding, still 3 levels
        assert_eq!(
            &remap[..6],
            &[Some(1), Some(2), Some(3), Some(4), Some(5), Some(6)]
        );
        assert_eq!(remap[6], None);

        // Destination shard 1: global 0 arrives as new local 0 (None); the
        // old elements 7..=13 (old locals 0..=6) become new locals 1..=7.
        // 8 owned elements need 4 levels = 15 nodes.
        let remap = carry_remap(&old, &new, 1);
        assert_eq!(remap.len(), 15);
        assert_eq!(remap[0], None);
        for local in 1..8 {
            assert_eq!(remap[local], Some(local as u32 - 1));
        }
        assert!(remap[8..].iter().all(Option::is_none));
    }

    #[test]
    fn handover_mode_labels_roundtrip() {
        for mode in HandoverMode::ALL {
            let parsed: HandoverMode = mode.label().parse().unwrap();
            assert_eq!(parsed, mode);
            assert_eq!(mode.to_string(), mode.label());
        }
        assert_eq!(HandoverMode::default(), HandoverMode::Cold);
        assert!("lukewarm".parse::<HandoverMode>().is_err());
    }

    #[test]
    fn move_hottest_transfers_half_the_gap() {
        let partition = Partition::new(ShardRouter::Range, 8, 2); // 0-3 | 4-7
        let mut window = vec![0u64; 8];
        window[0] = 50;
        window[1] = 30;
        window[2] = 6;
        window[4] = 10;
        let policy = ReshardPolicy::MoveHottest {
            every: 96,
            max_moves: 8,
        };
        // Gap = 86 - 10 = 76, target 38: element 0 (50 >= 38) suffices.
        let plan = policy.plan(&partition, &window);
        assert_eq!(plan.moves(), &[(ElementId::new(0), 1)]);

        // A max_moves cap of 0 yields an empty plan.
        let capped = ReshardPolicy::MoveHottest {
            every: 96,
            max_moves: 0,
        };
        assert!(capped.plan(&partition, &window).is_empty());

        // A balanced window yields an empty plan.
        let balanced = vec![1u64; 8];
        assert!(policy.plan(&partition, &balanced).is_empty());
    }

    #[test]
    fn policy_driver_fires_at_its_cadence_and_matches_derive_schedule() {
        let partition = Partition::new(ShardRouter::Range, 8, 2);
        let policy = ReshardPolicy::MoveHottest {
            every: 4,
            max_moves: 2,
        };
        // A stream hammering shard 0.
        let stream: Vec<ElementId> = (0..16).map(|i| ElementId::new(i % 3)).collect();

        let mut driver = PolicyDriver::new(policy.clone(), 8);
        let mut log = EpochedPartition::from_partition(partition.clone());
        let mut boundaries = Vec::new();
        for (position, &element) in stream.iter().enumerate() {
            if let Some(plan) = driver.observe(element, log.current()) {
                log.apply(plan).unwrap();
                boundaries.push(position + 1);
            }
        }
        assert!(!boundaries.is_empty());
        for boundary in &boundaries {
            assert_eq!(boundary % 4, 0, "fires only at the cadence");
        }

        let (derived_log, derived_boundaries) =
            derive_schedule(&policy, partition, stream.iter().copied());
        assert_eq!(derived_log, log);
        assert_eq!(derived_boundaries, boundaries);
    }

    #[test]
    fn shard_epoch_seeds_are_distinct() {
        let mut seeds: Vec<u64> = (0..4)
            .flat_map(|shard| (0..4).map(move |epoch| shard_epoch_seed(7, shard, epoch)))
            .collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 16);
    }
}
