//! Partitioning a request stream across shards.
//!
//! The sharded serving engine (`satn-serve`) splits the element universe
//! across `S` independent per-shard trees. This module holds the pieces of
//! that split that belong with the workloads: the routing *policy*
//! ([`ShardRouter`]), the materialized element-to-shard assignment it induces
//! ([`Partition`]), and the stream adapters that turn one global request
//! stream into per-shard subsequences — all deterministic, so a sharded run
//! can be replayed shard by shard on standalone trees and compared byte for
//! byte.

use crate::workload::fit_tree_levels;
use satn_tree::ElementId;
use std::fmt;
use std::str::FromStr;

/// How requests (and hence elements) are assigned to shards.
///
/// Every policy is a pure function of the request and the shard count, so the
/// same stream always partitions the same way. `Hash` and `Range` are
/// *ownership* policies: they fix which shard's tree stores which element.
/// `SourceAffinity` keys on the request's source instead — the policy of the
/// ego-tree-per-source serving mode, where each source's requests must land
/// on the shard holding that source's tree. Applied to a plain element
/// stream (where the element is its own source) it degenerates to striping
/// `element mod shards`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum ShardRouter {
    /// Scatter by a Fibonacci multiplicative hash of the element id: shards
    /// receive pseudo-random, size-balanced-in-expectation element sets.
    #[default]
    Hash,
    /// Contiguous balanced ranges: element `e` of a universe of `U` elements
    /// goes to shard `e · S / U`. Preserves key locality within a shard.
    Range,
    /// Route by the request's source id (`source mod shards`), so all
    /// requests of one source land on one shard.
    SourceAffinity,
}

/// The Fibonacci multiplicative hash (Knuth §6.4): deterministic, fast, and
/// well-scattering for consecutive keys.
#[inline]
fn fibonacci_hash(key: u32) -> u64 {
    u64::from(key)
        .wrapping_add(1)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        >> 31
}

impl ShardRouter {
    /// Every routing policy, in a stable order (used by sweeps and tests).
    pub const ALL: [ShardRouter; 3] = [
        ShardRouter::Hash,
        ShardRouter::Range,
        ShardRouter::SourceAffinity,
    ];

    /// A short stable label used in reports and scenario names.
    pub fn label(self) -> &'static str {
        match self {
            ShardRouter::Hash => "hash",
            ShardRouter::Range => "range",
            ShardRouter::SourceAffinity => "source-affinity",
        }
    }

    /// The shard an element of a `universe`-element universe is routed to,
    /// for a request whose source is the element itself.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or `element` is outside the universe.
    pub fn shard_of(self, element: ElementId, universe: u32, shards: u32) -> u32 {
        assert!(shards > 0, "a partition needs at least one shard");
        assert!(
            element.index() < universe,
            "element {element} outside the {universe}-element universe"
        );
        match self {
            ShardRouter::Hash => (fibonacci_hash(element.index()) % u64::from(shards)) as u32,
            ShardRouter::Range => {
                ((u64::from(element.index()) * u64::from(shards)) / u64::from(universe)) as u32
            }
            ShardRouter::SourceAffinity => element.index() % shards,
        }
    }

    /// The shard a request from `source` is routed to under source-affinity
    /// routing (the other policies ignore the source and this method).
    pub fn shard_of_source(self, source: u32, shards: u32) -> u32 {
        assert!(shards > 0, "a partition needs at least one shard");
        source % shards
    }
}

impl fmt::Display for ShardRouter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Error returned when parsing an unknown router policy name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRouterError {
    input: String,
}

impl fmt::Display for ParseRouterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown shard router {:?} (expected \"hash\", \"range\", or \"source-affinity\")",
            self.input
        )
    }
}

impl std::error::Error for ParseRouterError {}

impl FromStr for ShardRouter {
    type Err = ParseRouterError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "hash" => Ok(ShardRouter::Hash),
            "range" => Ok(ShardRouter::Range),
            "source-affinity" | "source" | "affinity" => Ok(ShardRouter::SourceAffinity),
            _ => Err(ParseRouterError {
                input: s.to_owned(),
            }),
        }
    }
}

/// The materialized element-to-shard assignment of a routing policy over a
/// fixed universe: global id ⇄ `(shard, local id)` lookup tables.
///
/// Local ids are assigned per shard in increasing global-id order, so the
/// mapping is a bijection between the global universe and the disjoint union
/// of the shard-local universes — every global request stream partitions into
/// per-shard streams of local ids and back without loss.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    router: ShardRouter,
    universe: u32,
    shard_of: Vec<u32>,
    local_of: Vec<u32>,
    owned: Vec<Vec<ElementId>>,
}

impl Partition {
    /// Materializes the assignment of `router` over `universe` elements and
    /// `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `universe` is zero.
    pub fn new(router: ShardRouter, universe: u32, shards: u32) -> Self {
        assert!(shards > 0, "a partition needs at least one shard");
        assert!(universe > 0, "a partition needs a non-empty universe");
        let mut shard_of = Vec::with_capacity(universe as usize);
        let mut local_of = Vec::with_capacity(universe as usize);
        let mut owned: Vec<Vec<ElementId>> = vec![Vec::new(); shards as usize];
        for global in 0..universe {
            let shard = router.shard_of(ElementId::new(global), universe, shards);
            shard_of.push(shard);
            local_of.push(owned[shard as usize].len() as u32);
            owned[shard as usize].push(ElementId::new(global));
        }
        Partition {
            router,
            universe,
            shard_of,
            local_of,
            owned,
        }
    }

    /// The routing policy this partition materializes.
    pub fn router(&self) -> ShardRouter {
        self.router
    }

    /// Size of the global element universe.
    pub fn universe(&self) -> u32 {
        self.universe
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.owned.len() as u32
    }

    /// The shard owning a global element, or `None` outside the universe.
    pub fn shard_of(&self, element: ElementId) -> Option<u32> {
        self.shard_of.get(element.usize()).copied()
    }

    /// Translates a global element into its `(shard, local id)` coordinates,
    /// or `None` outside the universe.
    pub fn localize(&self, element: ElementId) -> Option<(u32, ElementId)> {
        let shard = self.shard_of(element)?;
        Some((shard, ElementId::new(self.local_of[element.usize()])))
    }

    /// Translates `(shard, local id)` coordinates back into the global
    /// element.
    ///
    /// # Panics
    ///
    /// Panics if the shard or local id is out of range.
    pub fn globalize(&self, shard: u32, local: ElementId) -> ElementId {
        self.owned[shard as usize][local.usize()]
    }

    /// The global elements owned by `shard`, in increasing id order (= local
    /// id order).
    ///
    /// # Panics
    ///
    /// Panics if the shard is out of range.
    pub fn owned(&self, shard: u32) -> &[ElementId] {
        &self.owned[shard as usize]
    }

    /// The tree depth (in levels) the shard's local universe needs: the
    /// smallest complete tree fitting the owned element count. Local ids
    /// beyond the owned count are padding that is never requested.
    ///
    /// # Panics
    ///
    /// Panics if the shard is out of range.
    pub fn shard_levels(&self, shard: u32) -> u32 {
        fit_tree_levels(self.owned[shard as usize].len() as u32)
    }

    /// Routes a global request stream, yielding each request as its
    /// `(shard, local id)` coordinates in stream order — the streaming
    /// adapter between one global workload and the per-shard trees.
    ///
    /// # Panics
    ///
    /// The returned iterator panics on a request outside the universe.
    pub fn route_stream<'p, I>(&'p self, stream: I) -> impl Iterator<Item = (u32, ElementId)> + 'p
    where
        I: Iterator<Item = ElementId> + 'p,
    {
        stream.map(move |element| {
            self.localize(element).unwrap_or_else(|| {
                panic!(
                    "request {element} outside the {}-element universe",
                    self.universe
                )
            })
        })
    }

    /// Splits a global request stream into the per-shard subsequences of
    /// local ids, preserving the relative order within every shard — exactly
    /// the sequences a standalone per-shard tree would serve.
    ///
    /// # Panics
    ///
    /// Panics on a request outside the universe.
    pub fn split_stream<I>(&self, stream: I) -> Vec<Vec<ElementId>>
    where
        I: Iterator<Item = ElementId>,
    {
        let mut split: Vec<Vec<ElementId>> = vec![Vec::new(); self.owned.len()];
        for (shard, local) in self.route_stream(stream) {
            split[shard as usize].push(local);
        }
        split
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_policy_partitions_the_universe_into_a_bijection() {
        for router in ShardRouter::ALL {
            for shards in [1u32, 2, 3, 8] {
                let universe = 96;
                let partition = Partition::new(router, universe, shards);
                assert_eq!(partition.shards(), shards);
                assert_eq!(partition.universe(), universe);
                let total: usize = (0..shards).map(|s| partition.owned(s).len()).sum();
                assert_eq!(total, universe as usize, "{router}/{shards}");
                for global in (0..universe).map(ElementId::new) {
                    let (shard, local) = partition.localize(global).unwrap();
                    assert!(shard < shards);
                    assert_eq!(partition.globalize(shard, local), global, "{router}");
                    assert_eq!(partition.shard_of(global), Some(shard));
                }
            }
        }
    }

    #[test]
    fn range_routing_keeps_contiguous_balanced_blocks() {
        let partition = Partition::new(ShardRouter::Range, 28, 4);
        for shard in 0..4 {
            let owned = partition.owned(shard);
            assert_eq!(owned.len(), 7);
            // Contiguous: consecutive ids.
            for pair in owned.windows(2) {
                assert_eq!(pair[1].index(), pair[0].index() + 1);
            }
            assert_eq!(owned[0].index(), shard * 7);
        }
    }

    #[test]
    fn source_affinity_stripes_elements_and_groups_sources() {
        let partition = Partition::new(ShardRouter::SourceAffinity, 12, 3);
        for global in (0..12u32).map(ElementId::new) {
            assert_eq!(partition.shard_of(global), Some(global.index() % 3));
        }
        assert_eq!(ShardRouter::SourceAffinity.shard_of_source(7, 3), 1);
    }

    #[test]
    fn hash_routing_is_reasonably_balanced() {
        let partition = Partition::new(ShardRouter::Hash, 1 << 12, 8);
        for shard in 0..8 {
            let size = partition.owned(shard).len();
            // Expected 512 per shard; allow a generous spread.
            assert!((256..=768).contains(&size), "shard {shard}: {size}");
        }
    }

    #[test]
    fn shard_levels_fit_the_owned_count() {
        let partition = Partition::new(ShardRouter::Range, 4 * 31, 4);
        for shard in 0..4 {
            assert_eq!(partition.shard_levels(shard), 5); // 31 elements => 5 levels
        }
        let skewed = Partition::new(ShardRouter::Hash, 100, 3);
        for shard in 0..3 {
            let owned = skewed.owned(shard).len() as u32;
            let capacity = (1u32 << skewed.shard_levels(shard)) - 1;
            assert!(capacity >= owned);
            assert!(shard == 0 || capacity < 2 * owned.max(1));
        }
    }

    #[test]
    fn split_stream_preserves_per_shard_order_and_roundtrips() {
        let partition = Partition::new(ShardRouter::Hash, 64, 4);
        let stream: Vec<ElementId> = (0..500u32).map(|i| ElementId::new((i * 13) % 64)).collect();
        let split = partition.split_stream(stream.iter().copied());
        // Rebuild the per-shard global subsequences independently and compare.
        for shard in 0..4 {
            let expected: Vec<ElementId> = stream
                .iter()
                .copied()
                .filter(|&e| partition.shard_of(e) == Some(shard))
                .collect();
            let globalized: Vec<ElementId> = split[shard as usize]
                .iter()
                .map(|&local| partition.globalize(shard, local))
                .collect();
            assert_eq!(globalized, expected, "shard {shard}");
        }
        let total: usize = split.iter().map(Vec::len).sum();
        assert_eq!(total, stream.len());
    }

    #[test]
    fn routed_stream_agrees_with_localize() {
        let partition = Partition::new(ShardRouter::Range, 21, 3);
        let requests = [5u32, 20, 0, 13, 13].map(ElementId::new);
        let routed: Vec<(u32, ElementId)> =
            partition.route_stream(requests.iter().copied()).collect();
        for (&request, &(shard, local)) in requests.iter().zip(&routed) {
            assert_eq!(partition.localize(request), Some((shard, local)));
        }
    }

    #[test]
    fn router_labels_roundtrip_through_fromstr() {
        for router in ShardRouter::ALL {
            let parsed: ShardRouter = router.label().parse().unwrap();
            assert_eq!(parsed, router);
            assert_eq!(router.to_string(), router.label());
        }
        assert!("consistent".parse::<ShardRouter>().is_err());
        assert_eq!(ShardRouter::default(), ShardRouter::Hash);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_are_rejected() {
        Partition::new(ShardRouter::Hash, 10, 0);
    }

    #[test]
    fn out_of_universe_lookups_return_none() {
        let partition = Partition::new(ShardRouter::Hash, 7, 2);
        assert_eq!(partition.shard_of(ElementId::new(7)), None);
        assert_eq!(partition.localize(ElementId::new(99)), None);
    }
}
