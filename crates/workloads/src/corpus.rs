//! Corpus-style workloads (the paper's Q5).
//!
//! The paper extracts request sequences from the five largest books of the
//! Canterbury corpus by sliding a three-letter window over the text (one
//! character at a time); every distinct letter triple becomes an element.
//! The corpus files themselves are not redistributable here, so this module
//! provides two equivalent paths:
//!
//! * [`from_text`] applies exactly the paper's preprocessing to any text the
//!   user supplies (drop in the real Canterbury books to reproduce Q5
//!   verbatim), and
//! * [`MarkovTextGenerator`] synthesises English-like text from a letter-level
//!   Markov chain, producing datasets whose complexity-map position (moderate
//!   temporal, high non-temporal complexity) matches the paper's corpus
//!   datasets — the substitution documented in DESIGN.md.

use crate::workload::Workload;
use rand::Rng;
use satn_tree::ElementId;
use std::collections::HashMap;

/// Builds a corpus workload from raw text using the paper's preprocessing:
/// the text is lower-cased, every run of non-alphabetic characters becomes a
/// single space, and a sliding window of three characters (sliding by one)
/// yields the requests; each distinct triple is an element, numbered in order
/// of first appearance.
pub fn from_text(name: impl Into<String>, text: &str) -> Workload {
    let mut stream = TripleStream::new(text);
    let requests: Vec<ElementId> = stream.by_ref().collect();
    let num_elements = stream.distinct_keys().max(1);
    Workload::new(name, num_elements, requests)
}

/// The streaming form of [`from_text`]: a lazy iterator over the 3-gram
/// requests of a text, assigning element ids in order of first appearance.
///
/// After (or during) iteration, [`TripleStream::distinct_keys`] reports how
/// many distinct triples — i.e. elements — have been seen so far.
#[derive(Debug, Clone)]
pub struct TripleStream {
    characters: Vec<char>,
    position: usize,
    key_of_triple: HashMap<[char; 3], u32>,
}

impl TripleStream {
    /// Creates the stream over `text` (normalised exactly like
    /// [`from_text`]).
    pub fn new(text: &str) -> Self {
        TripleStream {
            characters: normalize(text).chars().collect(),
            position: 0,
            key_of_triple: HashMap::new(),
        }
    }

    /// The number of distinct triples seen so far.
    pub fn distinct_keys(&self) -> u32 {
        self.key_of_triple.len() as u32
    }
}

impl Iterator for TripleStream {
    type Item = ElementId;

    fn next(&mut self) -> Option<ElementId> {
        let window = self.characters.get(self.position..self.position + 3)?;
        let triple = [window[0], window[1], window[2]];
        self.position += 1;
        let next_id = self.key_of_triple.len() as u32;
        let id = *self.key_of_triple.entry(triple).or_insert(next_id);
        Some(ElementId::new(id))
    }
}

/// Normalises text the way the corpus experiment expects: lowercase letters
/// with single spaces between words.
fn normalize(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut last_was_space = true;
    for c in text.chars() {
        if c.is_ascii_alphabetic() {
            out.push(c.to_ascii_lowercase());
            last_was_space = false;
        } else if !last_was_space {
            out.push(' ');
            last_was_space = true;
        }
    }
    if out.ends_with(' ') {
        out.pop();
    }
    out
}

/// A letter-level Markov chain with English-like digram statistics, used to
/// synthesise book-sized texts when the real corpus is unavailable.
///
/// The chain distinguishes vowels, common consonants and rare consonants and
/// biases transitions towards vowel/consonant alternation, common digrams
/// (`th`, `he`, `er`, …) and realistic word lengths, which is enough to give
/// the derived 3-gram request streams the skewed frequency profile and
/// moderate temporal locality of natural text.
#[derive(Debug, Clone)]
pub struct MarkovTextGenerator {
    mean_word_length: f64,
}

const VOWELS: &[char] = &['a', 'e', 'i', 'o', 'u'];
const COMMON_CONSONANTS: &[char] = &['t', 'n', 's', 'h', 'r', 'd', 'l', 'c', 'm'];
const RARE_CONSONANTS: &[char] = &['w', 'f', 'g', 'y', 'p', 'b', 'v', 'k', 'j', 'x', 'q', 'z'];

impl MarkovTextGenerator {
    /// Creates a generator with the default mean word length of 4.7 letters
    /// (roughly English).
    pub fn new() -> Self {
        MarkovTextGenerator {
            mean_word_length: 4.7,
        }
    }

    /// Overrides the mean word length.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not at least 1.
    pub fn with_mean_word_length(mean: f64) -> Self {
        assert!(mean >= 1.0, "mean word length must be at least 1");
        MarkovTextGenerator {
            mean_word_length: mean,
        }
    }

    fn next_letter<R: Rng + ?Sized>(&self, previous: Option<char>, rng: &mut R) -> char {
        let pick = |set: &[char], rng: &mut R| set[rng.gen_range(0..set.len())];
        match previous {
            Some(p) if VOWELS.contains(&p) => {
                // After a vowel: mostly consonants, sometimes another vowel.
                if rng.gen_bool(0.75) {
                    if rng.gen_bool(0.8) {
                        pick(COMMON_CONSONANTS, rng)
                    } else {
                        pick(RARE_CONSONANTS, rng)
                    }
                } else {
                    pick(VOWELS, rng)
                }
            }
            Some('t') if rng.gen_bool(0.3) => 'h', // the classic "th"
            Some(_) => {
                // After a consonant: mostly vowels.
                if rng.gen_bool(0.7) {
                    pick(VOWELS, rng)
                } else if rng.gen_bool(0.8) {
                    pick(COMMON_CONSONANTS, rng)
                } else {
                    pick(RARE_CONSONANTS, rng)
                }
            }
            None => {
                // Word-initial letter.
                if rng.gen_bool(0.35) {
                    pick(VOWELS, rng)
                } else if rng.gen_bool(0.75) {
                    pick(COMMON_CONSONANTS, rng)
                } else {
                    pick(RARE_CONSONANTS, rng)
                }
            }
        }
    }

    /// Generates one word.
    pub fn word<R: Rng + ?Sized>(&self, rng: &mut R) -> String {
        // Geometric-ish word length around the configured mean, at least 1.
        let mut length = 1;
        while length < 12 && rng.gen_bool(1.0 - 1.0 / self.mean_word_length) {
            length += 1;
        }
        let mut word = String::with_capacity(length);
        let mut previous = None;
        for _ in 0..length {
            let letter = self.next_letter(previous, rng);
            word.push(letter);
            previous = Some(letter);
        }
        word
    }

    /// Generates a text of `num_words` words separated by single spaces.
    pub fn text<R: Rng + ?Sized>(&self, num_words: usize, rng: &mut R) -> String {
        let mut text = String::new();
        for i in 0..num_words {
            if i > 0 {
                text.push(' ');
            }
            text.push_str(&self.word(rng));
        }
        text
    }
}

impl Default for MarkovTextGenerator {
    fn default() -> Self {
        Self::new()
    }
}

/// Generates the five synthetic "books" standing in for the five largest
/// Canterbury-corpus books, already preprocessed into 3-gram workloads.
///
/// `scale` multiplies the number of words per book: `1.0` produces books with
/// 50k–200k words (corpus-like but manageable); smaller values are useful for
/// tests and the quick experiment mode.
pub fn synthetic_books<R: Rng + ?Sized>(scale: f64, rng: &mut R) -> Vec<Workload> {
    let base_words = [200_000usize, 60_000, 50_000, 55_000, 150_000];
    let generator = MarkovTextGenerator::new();
    base_words
        .iter()
        .enumerate()
        .map(|(index, &words)| {
            let words = ((words as f64 * scale).round() as usize).max(16);
            let text = generator.text(words, rng);
            from_text(format!("book{}", index + 1), &text)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normalize_collapses_non_letters() {
        assert_eq!(normalize("Hello,  World! 42"), "hello world");
        assert_eq!(normalize("  a  "), "a");
        assert_eq!(normalize(""), "");
    }

    #[test]
    fn from_text_counts_triples_in_order_of_first_appearance() {
        let w = from_text("tiny", "abcabc");
        // normalized "abcabc": triples abc, bca, cab, abc
        assert_eq!(w.len(), 4);
        assert_eq!(w.num_elements(), 3);
        assert_eq!(w.requests()[0], ElementId::new(0));
        assert_eq!(w.requests()[3], ElementId::new(0));
    }

    #[test]
    fn from_text_handles_short_inputs() {
        let w = from_text("empty", "a!");
        assert!(w.is_empty());
        assert_eq!(w.num_elements(), 1);
    }

    #[test]
    fn markov_words_look_like_words() {
        let mut rng = StdRng::seed_from_u64(11);
        let generator = MarkovTextGenerator::new();
        let mut total_length = 0usize;
        for _ in 0..500 {
            let word = generator.word(&mut rng);
            assert!(!word.is_empty() && word.len() <= 12);
            assert!(word.chars().all(|c| c.is_ascii_lowercase()));
            total_length += word.len();
        }
        let mean = total_length as f64 / 500.0;
        assert!((2.5..8.0).contains(&mean), "mean word length {mean}");
    }

    #[test]
    fn synthetic_books_have_realistic_shape() {
        let mut rng = StdRng::seed_from_u64(3);
        let books = synthetic_books(0.02, &mut rng);
        assert_eq!(books.len(), 5);
        for book in &books {
            // Thousands of requests over hundreds-to-thousands of keys.
            assert!(
                book.len() > 1_000,
                "{} too short: {}",
                book.name(),
                book.len()
            );
            assert!(
                book.num_elements() > 200,
                "{}: {}",
                book.name(),
                book.num_elements()
            );
            // Natural-text 3-grams are skewed: entropy below the uniform
            // maximum log2(num_elements), and the hottest triple is requested
            // far more often than the average one.
            let uniform_entropy = f64::from(book.num_elements()).log2();
            assert!(book.empirical_entropy() < 0.97 * uniform_entropy);
            let frequencies = book.frequencies();
            let max = *frequencies.iter().max().unwrap() as f64;
            let mean = book.len() as f64 / book.distinct_requested() as f64;
            assert!(max > 4.0 * mean, "max {max} vs mean {mean}");
            // Adjacent windows overlap in two characters, but exact repeats
            // are rare (only for runs like "aaa"): temporal locality is modest.
            assert!(book.repeat_fraction() < 0.2);
        }
    }

    #[test]
    fn generator_is_seed_deterministic() {
        let generator = MarkovTextGenerator::new();
        let a = generator.text(100, &mut StdRng::seed_from_u64(5));
        let b = generator.text(100, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn generator_rejects_tiny_word_length() {
        MarkovTextGenerator::with_mean_word_length(0.2);
    }
}
