//! Synthetic workload generators used throughout Section 6 of the paper:
//! uniform sequences, temporal locality (repeat probability `p`), spatial
//! locality (Zipf parameter `a`) and their combination.

use crate::stream::{CombinedStream, RoundRobinPathStream, TemporalStream, UniformStream};
use crate::workload::Workload;
use rand::Rng;
use satn_tree::ElementId;

/// Generates a sequence of `length` requests drawn uniformly at random from
/// `num_elements` elements.
///
/// This is the materialized form of
/// [`UniformStream`]; the two produce identical
/// sequences for the same generator state.
pub fn uniform<R: Rng + ?Sized>(num_elements: u32, length: usize, rng: &mut R) -> Workload {
    let requests = UniformStream::new(num_elements, rng).take(length).collect();
    Workload::new(format!("uniform(n={num_elements})"), num_elements, requests)
}

/// Post-processes a sequence for temporal locality as in Section 6.1: for
/// every position `i ≥ 1`, with probability `repeat_probability` the request
/// is replaced by its predecessor.
///
/// Note: [`temporal`] and [`combined`] no longer go through this
/// post-processing pass — they draw interleaved via the streaming generators
/// — so `with_temporal_locality(&uniform(...))` and `temporal(...)` yield
/// *different* sequences for the same generator state (the distribution is
/// the same). This function remains for overlaying temporal locality onto
/// arbitrary pre-recorded workloads (corpus books, loaded traces).
///
/// # Panics
///
/// Panics if `repeat_probability` is not in `[0, 1]`.
pub fn with_temporal_locality<R: Rng + ?Sized>(
    workload: &Workload,
    repeat_probability: f64,
    rng: &mut R,
) -> Workload {
    assert!(
        (0.0..=1.0).contains(&repeat_probability),
        "repeat probability must be within [0, 1]"
    );
    let mut requests = workload.requests().to_vec();
    for i in 1..requests.len() {
        if rng.gen_bool(repeat_probability) {
            requests[i] = requests[i - 1];
        }
    }
    Workload::new(
        format!("{}+temporal(p={repeat_probability})", workload.name()),
        workload.num_elements(),
        requests,
    )
}

/// Generates a sequence with temporal locality: each request after the first
/// repeats its predecessor with probability `p` and otherwise draws a fresh
/// uniform element (the paper's Q2 workload).
///
/// This is the materialized form of
/// [`TemporalStream`]; the two produce
/// identical sequences for the same generator state.
pub fn temporal<R: Rng + ?Sized>(
    num_elements: u32,
    length: usize,
    repeat_probability: f64,
    rng: &mut R,
) -> Workload {
    let requests = TemporalStream::new(num_elements, repeat_probability, rng)
        .take(length)
        .collect();
    Workload::new(
        format!("temporal(p={repeat_probability},n={num_elements})"),
        num_elements,
        requests,
    )
}

/// A sampler for the Zipf distribution over `num_elements` elements with
/// skewness parameter `a`: element `i` (0-based) has weight `(i + 1)^{-a}`.
///
/// Used for the spatial-locality workloads of Q3/Q4. Sampling is by binary
/// search over the precomputed cumulative distribution, `O(log n)` per draw.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cumulative: Vec<f64>,
    exponent: f64,
}

impl ZipfSampler {
    /// Creates a sampler for `num_elements` elements with exponent `a`.
    ///
    /// # Panics
    ///
    /// Panics if `num_elements` is zero or `a` is not finite and positive.
    pub fn new(num_elements: u32, a: f64) -> Self {
        assert!(num_elements > 0, "the element universe must not be empty");
        assert!(
            a.is_finite() && a > 0.0,
            "the Zipf exponent must be positive"
        );
        let mut cumulative = Vec::with_capacity(num_elements as usize);
        let mut sum = 0.0;
        for i in 0..num_elements {
            sum += 1.0 / f64::from(i + 1).powf(a);
            cumulative.push(sum);
        }
        let total = sum;
        for value in &mut cumulative {
            *value /= total;
        }
        ZipfSampler {
            cumulative,
            exponent: a,
        }
    }

    /// The skewness exponent `a`.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Number of elements the sampler draws from.
    pub fn num_elements(&self) -> u32 {
        self.cumulative.len() as u32
    }

    /// The probability of element `i`.
    pub fn probability(&self, element: ElementId) -> f64 {
        let i = element.usize();
        let low = if i == 0 { 0.0 } else { self.cumulative[i - 1] };
        self.cumulative[i] - low
    }

    /// Draws one element.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> ElementId {
        let x: f64 = rng.gen();
        let index = match self
            .cumulative
            .binary_search_by(|probe| probe.partial_cmp(&x).expect("finite probabilities"))
        {
            Ok(exact) => exact,
            Err(insertion) => insertion,
        };
        ElementId::new(index.min(self.cumulative.len() - 1) as u32)
    }

    /// The full probability vector, indexed by element id.
    pub fn probabilities(&self) -> Vec<f64> {
        (0..self.num_elements())
            .map(|i| self.probability(ElementId::new(i)))
            .collect()
    }
}

/// Generates a Zipf-distributed sequence (the paper's Q3 workload).
///
/// This is the materialized form of
/// [`ZipfStream`](crate::stream::ZipfStream); the two produce identical
/// sequences for the same generator state.
pub fn zipf<R: Rng + ?Sized>(num_elements: u32, length: usize, a: f64, rng: &mut R) -> Workload {
    let sampler = ZipfSampler::new(num_elements, a);
    let requests = crate::stream::ZipfStream::from_sampler(sampler, rng)
        .take(length)
        .collect();
    Workload::new(
        format!("zipf(a={a},n={num_elements})"),
        num_elements,
        requests,
    )
}

/// Generates the combined workload of Q4: Zipf-distributed fresh draws with
/// the previous request repeated with probability `p`.
///
/// This is the materialized form of
/// [`CombinedStream`]; the two produce
/// identical sequences for the same generator state.
pub fn combined<R: Rng + ?Sized>(
    num_elements: u32,
    length: usize,
    a: f64,
    repeat_probability: f64,
    rng: &mut R,
) -> Workload {
    let requests = CombinedStream::new(num_elements, a, repeat_probability, rng)
        .take(length)
        .collect();
    Workload::new(
        format!("combined(a={a},p={repeat_probability},n={num_elements})"),
        num_elements,
        requests,
    )
}

/// Generates the round-robin root-to-leaf path workload used by the
/// Move-To-Front lower-bound example (Section 1.1): the elements initially
/// stored on the path to `leaf_node_index` are requested in round-robin order.
pub fn round_robin_path(num_elements: u32, leaf_node_index: u32, rounds: usize) -> Workload {
    let stream = RoundRobinPathStream::new(leaf_node_index);
    let length = rounds * stream.period();
    let requests = stream.take(length).collect();
    Workload::new(
        format!("round-robin-path(leaf={leaf_node_index})"),
        num_elements,
        requests,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn uniform_covers_the_universe_roughly_evenly() {
        let w = uniform(64, 64_000, &mut rng(1));
        assert_eq!(w.len(), 64_000);
        let frequencies = w.frequencies();
        assert_eq!(frequencies.len(), 64);
        for &count in &frequencies {
            assert!((700..1300).contains(&count), "count {count} far from 1000");
        }
        assert!(w.empirical_entropy() > 5.9);
    }

    #[test]
    fn uniform_is_seed_deterministic() {
        assert_eq!(
            uniform(32, 1000, &mut rng(7)),
            uniform(32, 1000, &mut rng(7))
        );
        assert_ne!(
            uniform(32, 1000, &mut rng(7)),
            uniform(32, 1000, &mut rng(8))
        );
    }

    #[test]
    fn temporal_locality_raises_repeat_fraction_and_lowers_nothing_at_p0() {
        let p0 = temporal(255, 20_000, 0.0, &mut rng(2));
        let p9 = temporal(255, 20_000, 0.9, &mut rng(2));
        assert!(p0.repeat_fraction() < 0.02);
        assert!((p9.repeat_fraction() - 0.9).abs() < 0.03);
        // Entropy decreases only mildly (the paper reports 15.95 -> 15.16 for
        // depth-15 trees); for this size we only check the direction.
        assert!(p9.empirical_entropy() <= p0.empirical_entropy() + 0.05);
    }

    #[test]
    fn with_temporal_locality_validates_probability() {
        let base = uniform(8, 10, &mut rng(3));
        let result = std::panic::catch_unwind(|| {
            with_temporal_locality(&base, 1.5, &mut rng(3));
        });
        assert!(result.is_err());
    }

    #[test]
    fn zipf_probabilities_sum_to_one_and_decay() {
        let sampler = ZipfSampler::new(1000, 1.3);
        let probabilities = sampler.probabilities();
        assert!((probabilities.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for pair in probabilities.windows(2) {
            assert!(pair[0] >= pair[1] - 1e-15);
        }
        assert_eq!(sampler.num_elements(), 1000);
        assert!((sampler.exponent() - 1.3).abs() < 1e-12);
    }

    #[test]
    fn zipf_entropy_decreases_with_skewness() {
        // The paper reports entropies (11.07, 6.47, 3.88, 2.63, 1.92) for
        // a in (1.001, 1.3, 1.6, 1.9, 2.2) over 65,535 elements. We check the
        // monotone trend on a smaller universe.
        let entropies: Vec<f64> = [1.001, 1.3, 1.6, 1.9, 2.2]
            .iter()
            .map(|&a| zipf(4095, 50_000, a, &mut rng(4)).empirical_entropy())
            .collect();
        for pair in entropies.windows(2) {
            assert!(pair[0] > pair[1], "entropies not decreasing: {entropies:?}");
        }
    }

    #[test]
    fn zipf_empirical_frequencies_match_probabilities() {
        let sampler = ZipfSampler::new(50, 1.6);
        let mut counts = vec![0u64; 50];
        let mut r = rng(5);
        let draws = 200_000;
        for _ in 0..draws {
            counts[sampler.sample(&mut r).usize()] += 1;
        }
        for i in [0usize, 1, 5, 20] {
            let expected = sampler.probability(ElementId::new(i as u32));
            let observed = counts[i] as f64 / draws as f64;
            assert!(
                (expected - observed).abs() < 0.01,
                "element {i}: expected {expected}, observed {observed}"
            );
        }
    }

    #[test]
    fn combined_workload_has_both_kinds_of_locality() {
        let w = combined(1023, 50_000, 1.9, 0.75, &mut rng(6));
        assert!(w.repeat_fraction() > 0.7);
        // Skewed base distribution keeps the entropy low even before repeats.
        assert!(w.empirical_entropy() < 4.0);
        assert!(w.name().contains("combined"));
    }

    #[test]
    fn round_robin_path_repeats_the_path_elements() {
        let w = round_robin_path(127, 126, 3);
        assert_eq!(w.len(), 3 * 7);
        assert_eq!(w.distinct_requested(), 7);
        assert_eq!(w.requests()[0], ElementId::new(0));
        assert_eq!(w.requests()[6], ElementId::new(126));
        assert_eq!(w.requests()[7], ElementId::new(0));
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn zipf_rejects_empty_universe() {
        ZipfSampler::new(0, 1.1);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zipf_rejects_non_positive_exponent() {
        ZipfSampler::new(10, 0.0);
    }
}
