//! LRU stack-distance analysis of request sequences.
//!
//! The stack distance (or reuse distance) of a request is the number of
//! distinct elements accessed since the previous access to the same element,
//! counting the element itself — the same quantity the paper calls the
//! *working-set rank*. The distribution of stack distances is the standard
//! way to characterise the temporal locality of a trace independently of any
//! algorithm: a workload with many small distances rewards self-adjustment, a
//! workload dominated by first accesses or large distances does not. The
//! profile also yields the classic LRU hit-ratio curve, which gives a quick
//! intuition for "how much structure is there to exploit".

use crate::workload::Workload;
use satn_tree::ElementId;

/// The distribution of stack distances of a request sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StackDistanceProfile {
    /// `histogram[d]` counts requests with stack distance `d` (index 0 is
    /// unused; distances start at 1 for an immediate repeat).
    histogram: Vec<u64>,
    /// The number of first-ever accesses (infinite stack distance).
    cold_misses: u64,
    /// Total number of requests profiled.
    requests: u64,
}

impl StackDistanceProfile {
    /// Computes the profile of a request sequence.
    pub fn new(requests: &[ElementId]) -> Self {
        Self::from_stream(requests.iter().copied())
    }

    /// Computes the profile of a streaming request source without
    /// materializing it.
    pub fn from_stream(requests: impl Iterator<Item = ElementId>) -> Self {
        // LRU stack as a vector of element ids, most recently used first. The
        // naive O(m·s) maintenance (s = stack size) is fine for the trace
        // sizes used in the experiments.
        let mut stack: Vec<ElementId> = Vec::new();
        let mut histogram: Vec<u64> = Vec::new();
        let mut cold_misses = 0u64;
        let mut total = 0u64;
        for request in requests {
            total += 1;
            match stack.iter().position(|&e| e == request) {
                Some(position) => {
                    let distance = position + 1;
                    if histogram.len() <= distance {
                        histogram.resize(distance + 1, 0);
                    }
                    histogram[distance] += 1;
                    stack.remove(position);
                }
                None => cold_misses += 1,
            }
            stack.insert(0, request);
        }
        StackDistanceProfile {
            histogram,
            cold_misses,
            requests: total,
        }
    }

    /// Computes the profile of a whole workload.
    pub fn of_workload(workload: &Workload) -> Self {
        StackDistanceProfile::new(workload.requests())
    }

    /// The number of requests profiled.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// The number of first-ever accesses (infinite distance).
    pub fn cold_misses(&self) -> u64 {
        self.cold_misses
    }

    /// How many requests had stack distance exactly `distance`.
    pub fn count(&self, distance: usize) -> u64 {
        self.histogram.get(distance).copied().unwrap_or(0)
    }

    /// The largest observed stack distance (0 if every access was a cold
    /// miss).
    pub fn max_distance(&self) -> usize {
        self.histogram
            .iter()
            .rposition(|&count| count > 0)
            .unwrap_or(0)
    }

    /// The mean stack distance over re-accesses (ignoring cold misses);
    /// `None` if every access was a cold miss.
    pub fn mean_distance(&self) -> Option<f64> {
        let reaccesses: u64 = self.histogram.iter().sum();
        if reaccesses == 0 {
            return None;
        }
        let total: u64 = self
            .histogram
            .iter()
            .enumerate()
            .map(|(distance, &count)| distance as u64 * count)
            .sum();
        Some(total as f64 / reaccesses as f64)
    }

    /// The fraction of requests an LRU cache of `capacity` elements would
    /// serve as hits (cold misses always miss).
    pub fn lru_hit_ratio(&self, capacity: usize) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        let hits: u64 = self.histogram.iter().take(capacity + 1).sum();
        hits as f64 / self.requests as f64
    }

    /// The smallest LRU cache capacity achieving at least the given hit
    /// ratio, or `None` if even a cache holding every element falls short
    /// (because of cold misses).
    pub fn capacity_for_hit_ratio(&self, target: f64) -> Option<usize> {
        (0..=self.max_distance()).find(|&capacity| self.lru_hit_ratio(capacity) >= target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ids(raw: &[u32]) -> Vec<ElementId> {
        raw.iter().map(|&i| ElementId::new(i)).collect()
    }

    #[test]
    fn distances_match_a_hand_checked_example() {
        // a b a c b a
        let profile = StackDistanceProfile::new(&ids(&[0, 1, 0, 2, 1, 0]));
        assert_eq!(profile.cold_misses(), 3);
        assert_eq!(profile.count(2), 1); // the second `a` (distinct since: b, a)
        assert_eq!(profile.count(3), 2); // the second `b` and the final `a`
        assert_eq!(profile.requests(), 6);
        assert_eq!(profile.max_distance(), 3);
        assert_eq!(profile.mean_distance(), Some((2.0 + 3.0 + 3.0) / 3.0));
    }

    #[test]
    fn immediate_repeats_have_distance_one() {
        let profile = StackDistanceProfile::new(&ids(&[4, 4, 4, 4]));
        assert_eq!(profile.cold_misses(), 1);
        assert_eq!(profile.count(1), 3);
        assert_eq!(profile.lru_hit_ratio(1), 0.75);
    }

    #[test]
    fn hit_ratio_is_monotone_in_the_cache_size() {
        let mut rng = StdRng::seed_from_u64(9);
        let workload = synthetic::zipf(255, 20_000, 1.5, &mut rng);
        let profile = StackDistanceProfile::of_workload(&workload);
        let mut previous = 0.0;
        for capacity in [0usize, 1, 2, 4, 8, 16, 32, 64, 128, 255] {
            let ratio = profile.lru_hit_ratio(capacity);
            assert!(ratio + 1e-12 >= previous);
            assert!((0.0..=1.0).contains(&ratio));
            previous = ratio;
        }
        // A cache holding the whole universe only misses on cold misses.
        let full = profile.lru_hit_ratio(255);
        let expected = 1.0 - profile.cold_misses() as f64 / profile.requests() as f64;
        assert!((full - expected).abs() < 1e-12);
    }

    #[test]
    fn temporal_locality_shrinks_the_cache_needed_for_high_hit_ratios() {
        let mut rng_low = StdRng::seed_from_u64(4);
        let mut rng_high = StdRng::seed_from_u64(4);
        let uniform = synthetic::temporal(511, 20_000, 0.0, &mut rng_low);
        let local = synthetic::temporal(511, 20_000, 0.9, &mut rng_high);
        let uniform_profile = StackDistanceProfile::of_workload(&uniform);
        let local_profile = StackDistanceProfile::of_workload(&local);
        assert!(local_profile.lru_hit_ratio(8) > uniform_profile.lru_hit_ratio(8) + 0.3);
        let local_capacity = local_profile.capacity_for_hit_ratio(0.5).unwrap();
        assert!(local_capacity <= 8);
    }

    #[test]
    fn degenerate_profiles_behave() {
        let empty = StackDistanceProfile::new(&[]);
        assert_eq!(empty.requests(), 0);
        assert_eq!(empty.lru_hit_ratio(10), 0.0);
        assert_eq!(empty.mean_distance(), None);
        assert_eq!(empty.capacity_for_hit_ratio(0.1), None);

        let cold_only = StackDistanceProfile::new(&ids(&[0, 1, 2, 3]));
        assert_eq!(cold_only.cold_misses(), 4);
        assert_eq!(cold_only.mean_distance(), None);
        assert_eq!(cold_only.capacity_for_hit_ratio(0.5), None);
    }
}
