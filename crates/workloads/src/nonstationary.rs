//! Non-stationary workloads: bursty and phase-shifting request sequences.
//!
//! The paper's synthetic workloads (Section 6.1) are *stationary*: the
//! temporal-locality parameter `p` and the Zipf skew `a` are fixed for the
//! whole sequence. Self-adjusting networks are most interesting when the
//! demand changes over time, so this module adds two non-stationary
//! generators used by the convergence and ablation experiments:
//!
//! * [`markov_bursty`] — a two-state (calm / burst) Markov-modulated source:
//!   in the burst state requests come from a small hot set, in the calm state
//!   they are uniform,
//! * [`shifting_hotspot`] — the sequence is split into phases and every phase
//!   draws from a Zipf distribution over a *freshly shuffled* popularity
//!   ranking, so the hot set moves and static layouts go stale.

use crate::stream::{MarkovBurstyStream, ShiftingHotspotStream};
use crate::workload::Workload;
use rand::Rng;

/// A two-state Markov-modulated workload.
///
/// The generator alternates between a *calm* state (uniform requests over all
/// `num_elements` elements) and a *burst* state (uniform requests over a
/// random hot set of `hot_set_size` elements). After every request it stays
/// in the burst state with probability `burst_persistence` and enters it from
/// the calm state with probability `burst_entry`.
///
/// # Panics
///
/// Panics if `num_elements < 2`, `hot_set_size` is zero or larger than the
/// universe, or the probabilities are outside `[0, 1]`.
/// This is the materialized form of
/// [`MarkovBurstyStream`]; the two produce
/// identical sequences for the same generator state.
pub fn markov_bursty<R: Rng + ?Sized>(
    num_elements: u32,
    length: usize,
    hot_set_size: u32,
    burst_entry: f64,
    burst_persistence: f64,
    rng: &mut R,
) -> Workload {
    let requests = MarkovBurstyStream::new(
        num_elements,
        hot_set_size,
        burst_entry,
        burst_persistence,
        rng,
    )
    .take(length)
    .collect();
    Workload::new(
        format!("markov-bursty-h{hot_set_size}"),
        num_elements,
        requests,
    )
}

/// A phase-shifting Zipf workload: the sequence is divided into `phases`
/// equally long segments and each segment uses a Zipf(`a`) distribution over a
/// freshly shuffled ranking of the elements.
///
/// # Panics
///
/// Panics if `num_elements < 2`, `phases` is zero, or `a <= 1`.
/// This is the materialized form of
/// [`ShiftingHotspotStream`]; the two
/// produce identical sequences for the same generator state.
pub fn shifting_hotspot<R: Rng + ?Sized>(
    num_elements: u32,
    length: usize,
    phases: usize,
    a: f64,
    rng: &mut R,
) -> Workload {
    let requests = ShiftingHotspotStream::new(num_elements, length, phases, a, rng).collect();
    Workload::new(
        format!("shifting-hotspot-{phases}x-a{a}"),
        num_elements,
        requests,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn bursty_workloads_have_the_requested_shape() {
        let workload = markov_bursty(255, 5_000, 8, 0.05, 0.95, &mut rng(1));
        assert_eq!(workload.len(), 5_000);
        assert_eq!(workload.num_elements(), 255);
        assert!(workload.requests().iter().all(|e| e.index() < 255));
    }

    #[test]
    fn persistent_bursts_concentrate_the_distribution() {
        // Long bursts over a small hot set ⇒ much lower entropy than a
        // uniform sequence of the same length.
        let bursty = markov_bursty(511, 20_000, 4, 0.02, 0.995, &mut rng(2));
        let calm = markov_bursty(511, 20_000, 4, 0.0, 0.0, &mut rng(2));
        assert!(bursty.empirical_entropy() < calm.empirical_entropy() - 1.0);
    }

    #[test]
    fn shifting_hotspot_changes_its_hot_set_between_phases() {
        let workload = shifting_hotspot(1023, 30_000, 3, 2.0, &mut rng(3));
        assert_eq!(workload.len(), 30_000);
        // Identify the most frequent element of each third of the sequence;
        // with overwhelming probability the phases disagree.
        let phase_top: Vec<u32> = workload
            .requests()
            .chunks(10_000)
            .map(|chunk| {
                let mut counts = std::collections::HashMap::new();
                for request in chunk {
                    *counts.entry(request.index()).or_insert(0u64) += 1;
                }
                counts
                    .into_iter()
                    .max_by_key(|&(_, count)| count)
                    .unwrap()
                    .0
            })
            .collect();
        assert_eq!(phase_top.len(), 3);
        assert!(phase_top[0] != phase_top[1] || phase_top[1] != phase_top[2]);
    }

    #[test]
    fn shifting_hotspot_is_skewed_within_a_phase() {
        let workload = shifting_hotspot(1023, 10_000, 1, 2.2, &mut rng(4));
        // A single phase is just a Zipf(2.2) sample: low entropy.
        assert!(workload.empirical_entropy() < 4.0);
    }

    #[test]
    #[should_panic(expected = "hot set")]
    fn oversized_hot_sets_are_rejected() {
        markov_bursty(8, 100, 9, 0.1, 0.9, &mut rng(0));
    }

    #[test]
    #[should_panic(expected = "exceed 1")]
    fn flat_zipf_exponent_is_rejected() {
        shifting_hotspot(8, 100, 2, 1.0, &mut rng(0));
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn zero_phases_are_rejected() {
        shifting_hotspot(8, 100, 0, 2.0, &mut rng(0));
    }
}
