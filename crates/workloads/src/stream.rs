//! Streaming request sources: every generator of this crate in
//! `Iterator<Item = ElementId>` form.
//!
//! The materialized [`Workload`](crate::Workload) container is convenient for
//! offline statistics (entropy, frequencies) but forces the whole request
//! sequence into memory before the first request is served. The simulation
//! engine (`satn-sim`) instead drives algorithms from *streams*: lazy
//! iterators that draw one request at a time. Every materialized generator in
//! [`crate::synthetic`] and [`crate::nonstationary`] is defined as the
//! `collect` of the corresponding stream, so the two forms are byte-identical
//! by construction (asserted by the tests in this module).
//!
//! Streams that draw randomness own their generator (`R: Rng`), which may be
//! an owned `StdRng` or a `&mut` borrow — both satisfy the bound, so a caller
//! can thread one generator through several successive streams exactly like
//! the materialized API does.
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use satn_workloads::stream::UniformStream;
//! use satn_workloads::synthetic;
//!
//! let stream: Vec<_> = UniformStream::new(255, StdRng::seed_from_u64(7))
//!     .take(1_000)
//!     .collect();
//! let materialized = synthetic::uniform(255, 1_000, &mut StdRng::seed_from_u64(7));
//! assert_eq!(stream.as_slice(), materialized.requests());
//! ```

use crate::synthetic::ZipfSampler;
use rand::Rng;
use satn_tree::{ElementId, NodeId};

/// An endless stream of uniform requests over `num_elements` elements.
#[derive(Debug, Clone)]
pub struct UniformStream<R> {
    num_elements: u32,
    rng: R,
}

impl<R: Rng> UniformStream<R> {
    /// Creates the stream.
    ///
    /// # Panics
    ///
    /// Panics if `num_elements` is zero.
    pub fn new(num_elements: u32, rng: R) -> Self {
        assert!(num_elements > 0, "the element universe must not be empty");
        UniformStream { num_elements, rng }
    }
}

impl<R: Rng> Iterator for UniformStream<R> {
    type Item = ElementId;

    fn next(&mut self) -> Option<ElementId> {
        Some(ElementId::new(self.rng.gen_range(0..self.num_elements)))
    }
}

/// An endless stream with temporal locality: each request after the first
/// repeats its predecessor with probability `p`, and otherwise draws a fresh
/// uniform element.
#[derive(Debug, Clone)]
pub struct TemporalStream<R> {
    num_elements: u32,
    repeat_probability: f64,
    rng: R,
    last: Option<ElementId>,
}

impl<R: Rng> TemporalStream<R> {
    /// Creates the stream.
    ///
    /// # Panics
    ///
    /// Panics if `num_elements` is zero or `repeat_probability` is outside
    /// `[0, 1]`.
    pub fn new(num_elements: u32, repeat_probability: f64, rng: R) -> Self {
        assert!(num_elements > 0, "the element universe must not be empty");
        assert!(
            (0.0..=1.0).contains(&repeat_probability),
            "repeat probability must be within [0, 1]"
        );
        TemporalStream {
            num_elements,
            repeat_probability,
            rng,
            last: None,
        }
    }
}

impl<R: Rng> Iterator for TemporalStream<R> {
    type Item = ElementId;

    fn next(&mut self) -> Option<ElementId> {
        let next = match self.last {
            Some(last) if self.rng.gen_bool(self.repeat_probability) => last,
            _ => ElementId::new(self.rng.gen_range(0..self.num_elements)),
        };
        self.last = Some(next);
        Some(next)
    }
}

/// An endless stream of Zipf-distributed requests.
#[derive(Debug, Clone)]
pub struct ZipfStream<R> {
    sampler: ZipfSampler,
    rng: R,
}

impl<R: Rng> ZipfStream<R> {
    /// Creates the stream (`a` is the Zipf exponent).
    ///
    /// # Panics
    ///
    /// Panics under the conditions of [`ZipfSampler::new`].
    pub fn new(num_elements: u32, a: f64, rng: R) -> Self {
        ZipfStream {
            sampler: ZipfSampler::new(num_elements, a),
            rng,
        }
    }

    /// Creates the stream from a prebuilt sampler.
    pub fn from_sampler(sampler: ZipfSampler, rng: R) -> Self {
        ZipfStream { sampler, rng }
    }
}

impl<R: Rng> Iterator for ZipfStream<R> {
    type Item = ElementId;

    fn next(&mut self) -> Option<ElementId> {
        Some(self.sampler.sample(&mut self.rng))
    }
}

/// An endless stream combining spatial and temporal locality (the Q4
/// workload): Zipf-distributed fresh draws, with the previous request
/// repeated with probability `p`.
#[derive(Debug, Clone)]
pub struct CombinedStream<R> {
    sampler: ZipfSampler,
    repeat_probability: f64,
    rng: R,
    last: Option<ElementId>,
}

impl<R: Rng> CombinedStream<R> {
    /// Creates the stream.
    ///
    /// # Panics
    ///
    /// Panics under the conditions of [`ZipfSampler::new`], or if
    /// `repeat_probability` is outside `[0, 1]`.
    pub fn new(num_elements: u32, a: f64, repeat_probability: f64, rng: R) -> Self {
        assert!(
            (0.0..=1.0).contains(&repeat_probability),
            "repeat probability must be within [0, 1]"
        );
        CombinedStream {
            sampler: ZipfSampler::new(num_elements, a),
            repeat_probability,
            rng,
            last: None,
        }
    }
}

impl<R: Rng> Iterator for CombinedStream<R> {
    type Item = ElementId;

    fn next(&mut self) -> Option<ElementId> {
        let next = match self.last {
            Some(last) if self.rng.gen_bool(self.repeat_probability) => last,
            _ => self.sampler.sample(&mut self.rng),
        };
        self.last = Some(next);
        Some(next)
    }
}

/// An endless deterministic stream cycling through the elements initially
/// stored on the root-to-leaf path of `leaf_node_index` (the Move-To-Front
/// lower-bound sequence).
#[derive(Debug, Clone)]
pub struct RoundRobinPathStream {
    path: Vec<NodeId>,
    position: usize,
}

impl RoundRobinPathStream {
    /// Creates the stream for the path ending at `leaf_node_index`.
    pub fn new(leaf_node_index: u32) -> Self {
        RoundRobinPathStream {
            path: NodeId::new(leaf_node_index).path_from_root(),
            position: 0,
        }
    }

    /// The number of elements on the path (the stream's period).
    pub fn period(&self) -> usize {
        self.path.len()
    }
}

impl Iterator for RoundRobinPathStream {
    type Item = ElementId;

    fn next(&mut self) -> Option<ElementId> {
        let node = self.path[self.position];
        self.position = (self.position + 1) % self.path.len();
        Some(ElementId::new(node.index()))
    }
}

/// An endless two-state (calm / burst) Markov-modulated stream; see
/// [`crate::nonstationary::markov_bursty`] for the model.
#[derive(Debug, Clone)]
pub struct MarkovBurstyStream<R> {
    num_elements: u32,
    hot: Vec<u32>,
    burst_entry: f64,
    burst_persistence: f64,
    bursting: bool,
    rng: R,
}

impl<R: Rng> MarkovBurstyStream<R> {
    /// Creates the stream; the random hot set is drawn from `rng` up front.
    ///
    /// # Panics
    ///
    /// Panics under the conditions of
    /// [`crate::nonstationary::markov_bursty`].
    pub fn new(
        num_elements: u32,
        hot_set_size: u32,
        burst_entry: f64,
        burst_persistence: f64,
        mut rng: R,
    ) -> Self {
        assert!(num_elements >= 2, "need at least two elements");
        assert!(
            hot_set_size >= 1 && hot_set_size <= num_elements,
            "hot set must be non-empty and fit the universe"
        );
        assert!(
            (0.0..=1.0).contains(&burst_entry),
            "probability out of range"
        );
        assert!(
            (0.0..=1.0).contains(&burst_persistence),
            "probability out of range"
        );
        let mut universe: Vec<u32> = (0..num_elements).collect();
        for i in (1..universe.len()).rev() {
            universe.swap(i, rng.gen_range(0..=i));
        }
        universe.truncate(hot_set_size as usize);
        MarkovBurstyStream {
            num_elements,
            hot: universe,
            burst_entry,
            burst_persistence,
            bursting: false,
            rng,
        }
    }
}

impl<R: Rng> Iterator for MarkovBurstyStream<R> {
    type Item = ElementId;

    fn next(&mut self) -> Option<ElementId> {
        self.bursting = if self.bursting {
            self.rng.gen_bool(self.burst_persistence)
        } else {
            self.rng.gen_bool(self.burst_entry)
        };
        let element = if self.bursting {
            self.hot[self.rng.gen_range(0..self.hot.len())]
        } else {
            self.rng.gen_range(0..self.num_elements)
        };
        Some(ElementId::new(element))
    }
}

/// A finite phase-shifting Zipf stream of `length` requests split into
/// `phases` segments, each over a freshly shuffled popularity ranking; see
/// [`crate::nonstationary::shifting_hotspot`] for the model.
///
/// Unlike the other streams this one is finite, because the phase length is
/// defined in terms of the total sequence length.
#[derive(Debug, Clone)]
pub struct ShiftingHotspotStream<R> {
    sampler: ZipfSampler,
    ranking: Vec<u32>,
    phase_length: usize,
    remaining: usize,
    until_reshuffle: usize,
    rng: R,
}

impl<R: Rng> ShiftingHotspotStream<R> {
    /// Creates the stream.
    ///
    /// # Panics
    ///
    /// Panics under the conditions of
    /// [`crate::nonstationary::shifting_hotspot`].
    pub fn new(num_elements: u32, length: usize, phases: usize, a: f64, rng: R) -> Self {
        assert!(num_elements >= 2, "need at least two elements");
        assert!(phases >= 1, "need at least one phase");
        assert!(a > 1.0, "the Zipf exponent must exceed 1");
        ShiftingHotspotStream {
            sampler: ZipfSampler::new(num_elements, a),
            ranking: (0..num_elements).collect(),
            phase_length: length.div_ceil(phases),
            remaining: length,
            until_reshuffle: 0,
            rng,
        }
    }
}

impl<R: Rng> Iterator for ShiftingHotspotStream<R> {
    type Item = ElementId;

    fn next(&mut self) -> Option<ElementId> {
        if self.remaining == 0 {
            return None;
        }
        if self.until_reshuffle == 0 {
            for i in (1..self.ranking.len()).rev() {
                self.ranking.swap(i, self.rng.gen_range(0..=i));
            }
            self.until_reshuffle = self.phase_length;
        }
        self.until_reshuffle -= 1;
        self.remaining -= 1;
        let rank = self.sampler.sample(&mut self.rng);
        Some(ElementId::new(self.ranking[rank.usize()]))
    }
}

/// A hot-*shard* stream: the [`ShiftingHotspotStream`] phase structure with
/// each phase's entire Zipf distribution confined to one contiguous block of
/// the universe, the hot block re-drawn per phase.
///
/// Split the universe into `blocks` equal contiguous blocks (a tail
/// remainder shorter than a block stays cold). Each phase picks a block
/// uniformly at random and draws all of its requests from an inner
/// shifting-hotspot stream over block-local ids, offset into the hot block.
/// Under range routing with `blocks` equal to the shard count, whole shards
/// run hot one at a time and the hot shard moves between phases — the
/// adversarial workload dynamic resharding exists to absorb.
#[derive(Debug, Clone)]
pub struct HotBlockStream<R> {
    inner: ShiftingHotspotStream<rand::rngs::StdRng>,
    blocks: u32,
    block_size: u32,
    phase_length: usize,
    remaining: usize,
    until_shift: usize,
    offset: u32,
    rng: R,
}

impl<R: Rng> HotBlockStream<R> {
    /// Creates the stream.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is zero, a block would hold fewer than two
    /// elements, or under the conditions of [`ShiftingHotspotStream::new`].
    pub fn new(
        num_elements: u32,
        length: usize,
        phases: usize,
        a: f64,
        blocks: u32,
        mut rng: R,
    ) -> Self {
        assert!(blocks > 0, "need at least one block");
        let block_size = num_elements / blocks;
        assert!(
            block_size >= 2,
            "each block needs at least two elements ({num_elements} elements / {blocks} blocks)"
        );
        // The within-block ranking shuffles come from a derived generator so
        // the block schedule and the rank draws stay decorrelated.
        let inner_rng = rand::SeedableRng::seed_from_u64(rng.gen());
        HotBlockStream {
            inner: ShiftingHotspotStream::new(block_size, length, phases, a, inner_rng),
            blocks,
            block_size,
            phase_length: length.div_ceil(phases.max(1)),
            remaining: length,
            until_shift: 0,
            offset: 0,
            rng,
        }
    }
}

impl<R: Rng> Iterator for HotBlockStream<R> {
    type Item = ElementId;

    fn next(&mut self) -> Option<ElementId> {
        if self.remaining == 0 {
            return None;
        }
        if self.until_shift == 0 {
            self.offset = self.rng.gen_range(0..self.blocks) * self.block_size;
            self.until_shift = self.phase_length;
        }
        self.until_shift -= 1;
        self.remaining -= 1;
        let local = self.inner.next()?;
        Some(ElementId::new(self.offset + local.index()))
    }
}

// Scenario cells build their request streams inside `satn-exec` worker
// threads; every generative stream must therefore stay `Send + 'static`
// (with the concrete `StdRng` driver used across the workspace).
#[allow(dead_code)]
fn _assert_parallel_safe() {
    use rand::rngs::StdRng;
    fn assert_send<T: Send + 'static>() {}
    assert_send::<UniformStream<StdRng>>();
    assert_send::<TemporalStream<StdRng>>();
    assert_send::<ZipfStream<StdRng>>();
    assert_send::<CombinedStream<StdRng>>();
    assert_send::<RoundRobinPathStream>();
    assert_send::<MarkovBurstyStream<StdRng>>();
    assert_send::<ShiftingHotspotStream<StdRng>>();
    assert_send::<HotBlockStream<StdRng>>();
    assert_send::<crate::corpus::TripleStream>();
    assert_send::<crate::Workload>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{nonstationary, synthetic};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    /// The acceptance criterion of the streaming refactor: every stream
    /// produces a byte-identical sequence to its materialized counterpart.
    #[test]
    fn streams_match_materialized_generators_exactly() {
        let n = 255;
        let len = 4_000;

        let stream: Vec<ElementId> = UniformStream::new(n, rng(1)).take(len).collect();
        assert_eq!(stream, synthetic::uniform(n, len, &mut rng(1)).requests());

        let stream: Vec<ElementId> = TemporalStream::new(n, 0.8, rng(2)).take(len).collect();
        assert_eq!(
            stream,
            synthetic::temporal(n, len, 0.8, &mut rng(2)).requests()
        );

        let stream: Vec<ElementId> = ZipfStream::new(n, 1.6, rng(3)).take(len).collect();
        assert_eq!(stream, synthetic::zipf(n, len, 1.6, &mut rng(3)).requests());

        let stream: Vec<ElementId> = CombinedStream::new(n, 1.9, 0.6, rng(4)).take(len).collect();
        assert_eq!(
            stream,
            synthetic::combined(n, len, 1.9, 0.6, &mut rng(4)).requests()
        );

        let stream: Vec<ElementId> = RoundRobinPathStream::new(126).take(21).collect();
        assert_eq!(stream, synthetic::round_robin_path(127, 126, 3).requests());

        let stream: Vec<ElementId> = MarkovBurstyStream::new(n, 8, 0.05, 0.95, rng(5))
            .take(len)
            .collect();
        assert_eq!(
            stream,
            nonstationary::markov_bursty(n, len, 8, 0.05, 0.95, &mut rng(5)).requests()
        );

        let stream: Vec<ElementId> = ShiftingHotspotStream::new(n, len, 3, 2.0, rng(6)).collect();
        assert_eq!(
            stream,
            nonstationary::shifting_hotspot(n, len, 3, 2.0, &mut rng(6)).requests()
        );
    }

    #[test]
    fn streams_accept_borrowed_generators() {
        // A single generator threaded through two successive streams, exactly
        // like the materialized API allows.
        let mut shared = rng(9);
        let first: Vec<ElementId> = UniformStream::new(15, &mut shared).take(10).collect();
        let second: Vec<ElementId> = ZipfStream::new(15, 1.5, &mut shared).take(10).collect();
        assert_eq!(first.len(), 10);
        assert_eq!(second.len(), 10);
    }

    #[test]
    fn temporal_stream_first_request_never_consults_the_repeat_coin() {
        // With p = 1 every request after the first repeats the first draw.
        let requests: Vec<ElementId> = TemporalStream::new(64, 1.0, rng(11)).take(50).collect();
        assert!(requests.iter().all(|&e| e == requests[0]));
    }

    #[test]
    fn shifting_hotspot_stream_is_finite() {
        let stream = ShiftingHotspotStream::new(31, 100, 4, 2.0, rng(12));
        assert_eq!(stream.count(), 100);
    }

    #[test]
    fn round_robin_stream_reports_its_period() {
        let stream = RoundRobinPathStream::new(14);
        assert_eq!(stream.period(), 4);
    }

    #[test]
    fn hot_block_stream_confines_each_phase_to_one_block() {
        let blocks = 4u32;
        let block_size = 15u32;
        let length = 2_000;
        let phases = 8;
        let stream: Vec<ElementId> =
            HotBlockStream::new(blocks * block_size, length, phases, 2.0, blocks, rng(5)).collect();
        assert_eq!(stream.len(), length);
        let phase_length = length.div_ceil(phases);
        let mut hot_blocks = Vec::new();
        for phase in stream.chunks(phase_length) {
            let block = phase[0].index() / block_size;
            assert!(
                phase.iter().all(|e| e.index() / block_size == block),
                "a phase leaked outside its hot block"
            );
            hot_blocks.push(block);
        }
        // The hot block actually moves across phases.
        hot_blocks.sort_unstable();
        hot_blocks.dedup();
        assert!(hot_blocks.len() > 1, "the hot block never shifted");

        // Deterministic in the seed.
        let replay: Vec<ElementId> =
            HotBlockStream::new(blocks * block_size, length, phases, 2.0, blocks, rng(5)).collect();
        assert_eq!(stream, replay);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn uniform_stream_rejects_empty_universe() {
        UniformStream::new(0, rng(0));
    }
}
