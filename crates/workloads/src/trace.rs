//! Saving and loading request traces.
//!
//! The experiment harness writes every generated workload to a small CSV
//! format so runs are exactly reproducible and traces can be exchanged with
//! other tools (including the authors' original Python artefacts). The format
//! is one header line `# name=<name> num_elements=<n>` followed by one
//! element index per line.

use crate::workload::Workload;
use satn_tree::ElementId;
use std::fmt;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors produced while reading a trace.
#[derive(Debug)]
#[non_exhaustive]
pub enum TraceError {
    /// An I/O error from the underlying reader or writer.
    Io(std::io::Error),
    /// The header line is missing or malformed.
    MissingHeader,
    /// A request line is not a valid element index.
    InvalidRequest {
        /// The 1-based line number of the offending line.
        line: usize,
        /// The raw line content.
        content: String,
    },
    /// A request refers to an element outside the declared universe.
    RequestOutOfRange {
        /// The 1-based line number of the offending line.
        line: usize,
        /// The parsed element index.
        element: u32,
        /// The declared number of elements.
        num_elements: u32,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(err) => write!(f, "i/o error: {err}"),
            TraceError::MissingHeader => {
                write!(
                    f,
                    "missing trace header (expected `# name=... num_elements=...`)"
                )
            }
            TraceError::InvalidRequest { line, content } => {
                write!(f, "line {line}: {content:?} is not a valid element index")
            }
            TraceError::RequestOutOfRange {
                line,
                element,
                num_elements,
            } => write!(
                f,
                "line {line}: element {element} is outside the universe of {num_elements} elements"
            ),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(err: std::io::Error) -> Self {
        TraceError::Io(err)
    }
}

/// Writes a workload to `writer` in the trace format.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_trace<W: Write>(workload: &Workload, mut writer: W) -> Result<(), TraceError> {
    writeln!(
        writer,
        "# name={} num_elements={}",
        workload.name().replace(char::is_whitespace, "_"),
        workload.num_elements()
    )?;
    for request in workload.requests() {
        writeln!(writer, "{}", request.index())?;
    }
    Ok(())
}

/// Reads a workload from `reader`.
///
/// # Errors
///
/// Returns [`TraceError::MissingHeader`] if the first line is not a valid
/// header, [`TraceError::InvalidRequest`] / [`TraceError::RequestOutOfRange`]
/// for malformed request lines, and [`TraceError::Io`] for reader failures.
pub fn read_trace<R: Read>(reader: R) -> Result<Workload, TraceError> {
    let mut stream = TraceStream::new(reader)?;
    let mut requests = Vec::new();
    for request in stream.by_ref() {
        requests.push(request?);
    }
    Ok(Workload::new(
        stream.name().to_owned(),
        stream.num_elements(),
        requests,
    ))
}

/// The streaming form of [`read_trace`]: parses the header eagerly, then
/// yields one request per trace line without materializing the sequence.
///
/// Each item is a `Result`, so malformed lines surface exactly where they
/// occur instead of aborting a whole bulk load.
#[derive(Debug)]
pub struct TraceStream<R> {
    lines: std::io::Lines<BufReader<R>>,
    name: String,
    num_elements: u32,
    line_number: usize,
}

impl<R: Read> TraceStream<R> {
    /// Opens a stream over `reader`, parsing the header line.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::MissingHeader`] if the first line is not a valid
    /// header and [`TraceError::Io`] for reader failures.
    pub fn new(reader: R) -> Result<Self, TraceError> {
        let mut lines = BufReader::new(reader).lines();
        let header = lines.next().ok_or(TraceError::MissingHeader)??;
        let (name, num_elements) = parse_header(&header).ok_or(TraceError::MissingHeader)?;
        Ok(TraceStream {
            lines,
            name,
            num_elements,
            line_number: 1,
        })
    }

    /// The workload name declared in the header.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The universe size declared in the header.
    pub fn num_elements(&self) -> u32 {
        self.num_elements
    }
}

impl<R: Read> Iterator for TraceStream<R> {
    type Item = Result<ElementId, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let line = match self.lines.next()? {
                Ok(line) => line,
                Err(err) => return Some(Err(TraceError::Io(err))),
            };
            self.line_number += 1;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let element: u32 = match trimmed.parse() {
                Ok(element) => element,
                Err(_) => {
                    return Some(Err(TraceError::InvalidRequest {
                        line: self.line_number,
                        content: trimmed.to_owned(),
                    }))
                }
            };
            if element >= self.num_elements {
                return Some(Err(TraceError::RequestOutOfRange {
                    line: self.line_number,
                    element,
                    num_elements: self.num_elements,
                }));
            }
            return Some(Ok(ElementId::new(element)));
        }
    }
}

fn parse_header(header: &str) -> Option<(String, u32)> {
    let header = header.strip_prefix('#')?.trim();
    let mut name = None;
    let mut num_elements = None;
    for token in header.split_whitespace() {
        if let Some(value) = token.strip_prefix("name=") {
            name = Some(value.to_owned());
        } else if let Some(value) = token.strip_prefix("num_elements=") {
            num_elements = value.parse().ok();
        }
    }
    Some((name?, num_elements?))
}

/// Writes a workload to the file at `path`.
///
/// # Errors
///
/// Propagates file-creation and write errors.
pub fn save_trace(workload: &Workload, path: impl AsRef<Path>) -> Result<(), TraceError> {
    let file = File::create(path)?;
    write_trace(workload, BufWriter::new(file))
}

/// Loads a workload from the file at `path`.
///
/// # Errors
///
/// Propagates file-open errors and the parse errors of [`read_trace`].
pub fn load_trace(path: impl AsRef<Path>) -> Result<Workload, TraceError> {
    read_trace(File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_workload() -> Workload {
        let mut rng = StdRng::seed_from_u64(5);
        crate::synthetic::zipf(255, 500, 1.4, &mut rng).with_name("zipf sample")
    }

    #[test]
    fn traces_roundtrip_through_memory() {
        let workload = sample_workload();
        let mut buffer = Vec::new();
        write_trace(&workload, &mut buffer).unwrap();
        let restored = read_trace(buffer.as_slice()).unwrap();
        assert_eq!(restored.num_elements(), workload.num_elements());
        assert_eq!(restored.requests(), workload.requests());
        // Whitespace in the name is normalised to keep the header one line.
        assert_eq!(restored.name(), "zipf_sample");
    }

    #[test]
    fn traces_roundtrip_through_files() {
        let workload = sample_workload();
        let dir = std::env::temp_dir().join("satn-trace-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.trace");
        save_trace(&workload, &path).unwrap();
        let restored = load_trace(&path).unwrap();
        assert_eq!(restored.requests(), workload.requests());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn blank_lines_and_comments_are_ignored() {
        let text = "# name=tiny num_elements=7\n0\n\n# a comment\n3\n6\n";
        let workload = read_trace(text.as_bytes()).unwrap();
        assert_eq!(workload.len(), 3);
        assert_eq!(workload.requests()[1], ElementId::new(3));
    }

    #[test]
    fn missing_or_malformed_headers_are_rejected() {
        assert!(matches!(
            read_trace("0\n1\n".as_bytes()),
            Err(TraceError::MissingHeader)
        ));
        assert!(matches!(
            read_trace("# nothing useful\n0\n".as_bytes()),
            Err(TraceError::MissingHeader)
        ));
        assert!(matches!(
            read_trace("".as_bytes()),
            Err(TraceError::MissingHeader)
        ));
    }

    #[test]
    fn invalid_requests_are_reported_with_line_numbers() {
        let err = read_trace("# name=t num_elements=4\n1\npotato\n".as_bytes()).unwrap_err();
        match err {
            TraceError::InvalidRequest { line, content } => {
                assert_eq!(line, 3);
                assert_eq!(content, "potato");
            }
            other => panic!("unexpected error {other:?}"),
        }
        let err = read_trace("# name=t num_elements=4\n9\n".as_bytes()).unwrap_err();
        assert!(matches!(
            err,
            TraceError::RequestOutOfRange {
                element: 9,
                num_elements: 4,
                ..
            }
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let err = read_trace("# name=t num_elements=4\n9\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("outside the universe"));
        assert!(TraceError::MissingHeader.to_string().contains("header"));
    }
}
