//! Lock-free runtime observability for the self-adjusting tree engine.
//!
//! The serving stack (PRs 3–8) proved its hot paths clean: zero allocations
//! per steady-state request, no locks on the drain path. This crate adds
//! eyes to that machine without dirtying it. Three layers:
//!
//! - **Primitives** ([`Counter`], [`Gauge`], [`TaskGauges`],
//!   [`AtomicHistogram`]): single `AtomicU64` cells (or a preallocated
//!   array of them) updated with relaxed read-modify-writes — no lock, no
//!   allocation, wait-free on every architecture Rust targets.
//! - **Registry** ([`EngineMetrics`] → [`MetricsSnapshot`]): the static,
//!   named set of metrics one engine exposes, frozen on demand into a
//!   snapshot with a canonical binary encoding (carried by the `Stats`
//!   wire frames) and a Prometheus-style text rendering.
//! - **Tracer** ([`TraceRing`]): a bounded ring of drain / snapshot /
//!   reshard-handover events whose [`TraceStamp`]s (epoch + served-count
//!   sequence numbers) are replay-deterministic; wall-clock offsets ride
//!   along as advisory data only.
//!
//! # Determinism contract
//!
//! Counters mirroring the cost ledger (requests served, access/adjustment
//! cost, migration units, drains, reshard epoch) are updated only at drain
//! boundaries on the engine thread, so a snapshot taken at a drain boundary
//! equals the serial-replay totals **exactly** — `satnd --verify` and the
//! serve-side tests assert this. Timing data (histograms, trace wall
//! clocks) and transport counters (wire frames/bytes, connections) are
//! advisory: useful, monotone, but not oracle-checked.
//!
//! The crate is std-only and `#![forbid(unsafe_code)]`; lock-freedom comes
//! from `std::sync::atomic`, not hand-rolled memory games.

#![forbid(unsafe_code)]

mod histogram;
mod metrics;
mod registry;
mod trace;

pub use histogram::{AtomicHistogram, LatencyHistogram};
pub use metrics::{Counter, Gauge, TaskGauges};
pub use registry::{names, EngineMetrics, MetricsCodecError, MetricsSnapshot, WIRE_TAG_COUNT};
pub use trace::{TraceEvent, TraceKind, TraceRing, TraceStamp, DEFAULT_TRACE_CAPACITY};

#[cfg(test)]
mod proptests {
    use super::LatencyHistogram;
    use proptest::prelude::*;
    use std::time::Duration;

    fn build(samples: &[u64]) -> LatencyHistogram {
        let mut histogram = LatencyHistogram::new();
        for &nanos in samples {
            histogram.record(Duration::from_nanos(nanos));
        }
        histogram
    }

    proptest! {
        /// merge is associative: (a ∪ b) ∪ c == a ∪ (b ∪ c).
        #[test]
        fn merge_is_associative(
            a in proptest::collection::vec(0u64..1 << 44, 0..40),
            b in proptest::collection::vec(0u64..1 << 44, 0..40),
            c in proptest::collection::vec(0u64..1 << 44, 0..40),
        ) {
            let (ha, hb, hc) = (build(&a), build(&b), build(&c));
            let mut left = ha.clone();
            left.merge(&hb);
            left.merge(&hc);
            let mut bc = hb.clone();
            bc.merge(&hc);
            let mut right = ha.clone();
            right.merge(&bc);
            prop_assert_eq!(left, right);
        }

        /// merge is commutative and equals recording the union directly.
        #[test]
        fn merge_matches_the_union(
            a in proptest::collection::vec(0u64..1 << 44, 0..60),
            b in proptest::collection::vec(0u64..1 << 44, 0..60),
        ) {
            let mut merged = build(&a);
            merged.merge(&build(&b));
            let mut flipped = build(&b);
            flipped.merge(&build(&a));
            let union: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
            prop_assert_eq!(&merged, &build(&union));
            prop_assert_eq!(&merged, &flipped);
        }

        /// Quantiles are monotone in q and bounded by the recorded extremes.
        #[test]
        fn quantiles_are_monotone_and_bounded(
            samples in proptest::collection::vec(0u64..1 << 44, 1..80),
            qs in proptest::collection::vec(0.0f64..=1.0, 2..8),
        ) {
            let histogram = build(&samples);
            let mut sorted = qs.clone();
            sorted.sort_by(|x, y| x.partial_cmp(y).expect("qs are finite"));
            let values: Vec<Duration> =
                sorted.iter().map(|&q| histogram.quantile(q)).collect();
            for pair in values.windows(2) {
                prop_assert!(pair[0] <= pair[1], "quantiles must be monotone in q");
            }
            let max = Duration::from_nanos(*samples.iter().max().expect("non-empty"));
            for value in &values {
                prop_assert!(*value <= max, "quantiles never exceed the exact max");
            }
            prop_assert_eq!(histogram.quantile(1.0), max);
        }
    }
}
