//! The static engine metric registry and its wire-encodable snapshot.
//!
//! [`EngineMetrics`] is the fixed set of named metrics one serving engine
//! exposes: every field is an atomic primitive from [`crate::metrics`] (or
//! the lock-free [`AtomicHistogram`]), so the hot paths that feed it pay one
//! relaxed read-modify-write per event — no lock, no allocation.
//! [`EngineMetrics::snapshot`] freezes the registry into a
//! [`MetricsSnapshot`]: an ordered list of `(name, value)` pairs plus the
//! latency histograms, with a canonical binary encoding (for the `Stats`
//! wire frames) and a Prometheus-style text rendering (for
//! `satnd --metrics-dump`).
//!
//! **Determinism contract:** the counters that mirror the cost ledger
//! (requests served, batch cost totals, migration units, drains) are updated
//! only from the engine thread at drain boundaries, so a snapshot taken at a
//! drain boundary equals the serial-replay totals exactly — that is the
//! oracle `satnd --verify` and the serve-side tests assert. Timing data (the
//! drain- and handover-latency histograms) and transport-side counters are
//! advisory.

use crate::histogram::{AtomicHistogram, LatencyHistogram, NUM_BUCKETS};
use crate::metrics::{Counter, Gauge, TaskGauges};
use std::fmt;
use std::fmt::Write as _;

/// Number of distinct wire-frame tags the per-tag counters cover (tags
/// `0..=8`: request, burst, flush, reshard, ack, lookup, found, stats,
/// stats-reply).
pub const WIRE_TAG_COUNT: usize = 9;

/// The canonical metric names, shared by the registry, the tests, and every
/// consumer that looks values up in a [`MetricsSnapshot`].
pub mod names {
    /// Requests served and accounted (counter; oracle-checked).
    pub const REQUESTS_SERVED: &str = "satn_requests_served_total";
    /// Batch drains performed (counter; oracle-checked).
    pub const BATCHES_DRAINED: &str = "satn_batches_drained_total";
    /// Accumulated access cost over all served requests (counter;
    /// oracle-checked).
    pub const ACCESS_COST: &str = "satn_access_cost_total";
    /// Accumulated adjustment cost over all served requests (counter;
    /// oracle-checked).
    pub const ADJUSTMENT_COST: &str = "satn_adjustment_cost_total";
    /// Accumulated migration cost units over all reshard handovers
    /// (counter; oracle-checked).
    pub const MIGRATION_UNITS: &str = "satn_migration_units_total";
    /// The touched term of the migration ledger: delete/re-insert cost
    /// units spent on shards a reshard plan actually touched (counter;
    /// oracle-checked). Scales with moved elements, never with universe
    /// size.
    pub const MIGRATION_TOUCHED_UNITS: &str = "satn_migration_touched_units_total";
    /// The rebuilt term of the migration ledger: tree nodes reconstructed
    /// across all handovers (counter; oracle-checked). Under a cold
    /// handover every shard's nodes count; under a warm handover only the
    /// touched shards' do — the difference is exactly the work warm
    /// handovers skip.
    pub const MIGRATION_REBUILT_NODES: &str = "satn_migration_rebuilt_nodes_total";
    /// Snapshots published to the read side (counter).
    pub const SNAPSHOT_PUBLISHES: &str = "satn_snapshot_publishes_total";
    /// Lookups answered from published snapshots (counter).
    pub const LOOKUPS_ANSWERED: &str = "satn_lookups_answered_total";
    /// Connections accepted since startup (counter).
    pub const CONNECTIONS_TOTAL: &str = "satn_connections_total";
    /// Pool tasks completed (counter).
    pub const POOL_COMPLETED: &str = "satn_pool_tasks_completed_total";
    /// Protocol messages currently queued in the ingest channel (gauge).
    pub const INGEST_QUEUE_DEPTH: &str = "satn_ingest_queue_depth";
    /// The engine's current reshard epoch (gauge; oracle-checked).
    pub const RESHARD_EPOCH: &str = "satn_reshard_epoch";
    /// The read side's current snapshot version (gauge).
    pub const SNAPSHOT_VERSION: &str = "satn_snapshot_version";
    /// Connections currently being served (gauge).
    pub const CONNECTIONS_ACTIVE: &str = "satn_connections_active";
    /// Pool tasks spawned but not yet running (gauge).
    pub const POOL_QUEUED: &str = "satn_pool_tasks_queued";
    /// Pool tasks currently running (gauge).
    pub const POOL_RUNNING: &str = "satn_pool_tasks_running";
    /// Drain wall-clock latency in nanoseconds (histogram; advisory).
    pub const DRAIN_LATENCY: &str = "satn_drain_latency_nanos";
    /// Reshard-handover wall-clock latency in nanoseconds, one sample per
    /// completed handover, drain fence excluded (histogram; advisory).
    pub const HANDOVER_LATENCY: &str = "satn_handover_latency_nanos";

    /// The labelled per-shard buffered-requests gauge name.
    pub fn shard_buffered(shard: u32) -> String {
        format!("satn_shard_buffered_requests{{shard=\"{shard}\"}}")
    }

    /// The labelled per-tag wire-frame counter name.
    pub fn wire_frames(tag: usize) -> String {
        format!("satn_wire_frames_total{{tag=\"{tag}\"}}")
    }

    /// The labelled per-tag wire-byte counter name.
    pub fn wire_bytes(tag: usize) -> String {
        format!("satn_wire_bytes_total{{tag=\"{tag}\"}}")
    }
}

/// The static metric registry of one serving engine. Fields are public: the
/// hot paths update them directly (`metrics.requests_served.add(n)`), with
/// no name lookup and no indirection.
#[derive(Debug)]
pub struct EngineMetrics {
    /// Requests served and accounted — equals the cost ledger's request
    /// total at every drain boundary (oracle-checked).
    pub requests_served: Counter,
    /// Batch drains performed (matches the engine's drain counter).
    pub batches_drained: Counter,
    /// Accumulated access cost over all served requests.
    pub access_cost: Counter,
    /// Accumulated adjustment cost over all served requests.
    pub adjustment_cost: Counter,
    /// Accumulated migration cost units over all reshard handovers.
    pub migration_units: Counter,
    /// Migration cost units spent on touched shards (the moved-element
    /// delete/re-insert work; equals the migration total, split out so the
    /// ledger separates moving work from rebuilding work).
    pub migration_touched_units: Counter,
    /// Tree nodes reconstructed across all handovers (every shard under a
    /// cold handover, only touched shards under a warm one).
    pub migration_rebuilt_nodes: Counter,
    /// Snapshots published through the hub.
    pub snapshot_publishes: Counter,
    /// Lookups answered from published snapshots (all readers combined).
    pub lookups_answered: Counter,
    /// Connections accepted since startup.
    pub connections_total: Counter,
    /// Protocol messages currently queued in the ingest channel.
    pub ingest_queue_depth: Gauge,
    /// The engine's current reshard epoch.
    pub reshard_epoch: Gauge,
    /// The read side's current snapshot version.
    pub snapshot_version: Gauge,
    /// Connections currently being served.
    pub connections_active: Gauge,
    /// Requests buffered per shard, awaiting the next drain.
    pub shard_buffered: Vec<Gauge>,
    /// Wire frames seen, by frame tag (received and sent combined).
    pub wire_frames: [Counter; WIRE_TAG_COUNT],
    /// Wire bytes seen, by frame tag (length prefix included).
    pub wire_bytes: [Counter; WIRE_TAG_COUNT],
    /// Connection-pool task gauges.
    pub pool: TaskGauges,
    /// Wall-clock latency of each drain (advisory: never oracle-checked).
    pub drain_latency: AtomicHistogram,
    /// Wall-clock latency of each reshard handover, drain fence excluded
    /// (advisory: never oracle-checked).
    pub handover_latency: AtomicHistogram,
}

impl EngineMetrics {
    /// A fresh registry for an engine with `shards` shards, all zeros.
    pub fn new(shards: u32) -> Self {
        EngineMetrics {
            requests_served: Counter::new(),
            batches_drained: Counter::new(),
            access_cost: Counter::new(),
            adjustment_cost: Counter::new(),
            migration_units: Counter::new(),
            migration_touched_units: Counter::new(),
            migration_rebuilt_nodes: Counter::new(),
            snapshot_publishes: Counter::new(),
            lookups_answered: Counter::new(),
            connections_total: Counter::new(),
            ingest_queue_depth: Gauge::new(),
            reshard_epoch: Gauge::new(),
            snapshot_version: Gauge::new(),
            connections_active: Gauge::new(),
            shard_buffered: (0..shards).map(|_| Gauge::new()).collect(),
            wire_frames: std::array::from_fn(|_| Counter::new()),
            wire_bytes: std::array::from_fn(|_| Counter::new()),
            pool: TaskGauges::new(),
            drain_latency: AtomicHistogram::new(),
            handover_latency: AtomicHistogram::new(),
        }
    }

    /// Number of shards the per-shard gauges cover.
    pub fn shards(&self) -> u32 {
        self.shard_buffered.len() as u32
    }

    /// Counts one wire frame of `frame_bytes` total bytes (length prefix
    /// included) under its tag. Unknown tags are ignored — the codec rejects
    /// them separately, and a counter slot per garbage byte would be an
    /// amplification vector.
    #[inline]
    pub fn note_wire_frame(&self, tag: u8, frame_bytes: usize) {
        if let Some(frames) = self.wire_frames.get(tag as usize) {
            frames.inc();
            self.wire_bytes[tag as usize].add(frame_bytes as u64);
        }
    }

    /// Freezes every metric into an ordered, wire-encodable
    /// [`MetricsSnapshot`]. Allocates — call it from polling paths (the
    /// `Stats` frame handler, dump-at-exit), never from the hot path.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters = vec![
            (
                names::REQUESTS_SERVED.to_owned(),
                self.requests_served.get(),
            ),
            (
                names::BATCHES_DRAINED.to_owned(),
                self.batches_drained.get(),
            ),
            (names::ACCESS_COST.to_owned(), self.access_cost.get()),
            (
                names::ADJUSTMENT_COST.to_owned(),
                self.adjustment_cost.get(),
            ),
            (
                names::MIGRATION_UNITS.to_owned(),
                self.migration_units.get(),
            ),
            (
                names::MIGRATION_TOUCHED_UNITS.to_owned(),
                self.migration_touched_units.get(),
            ),
            (
                names::MIGRATION_REBUILT_NODES.to_owned(),
                self.migration_rebuilt_nodes.get(),
            ),
            (
                names::SNAPSHOT_PUBLISHES.to_owned(),
                self.snapshot_publishes.get(),
            ),
            (
                names::LOOKUPS_ANSWERED.to_owned(),
                self.lookups_answered.get(),
            ),
            (
                names::CONNECTIONS_TOTAL.to_owned(),
                self.connections_total.get(),
            ),
            (names::POOL_COMPLETED.to_owned(), self.pool.completed.get()),
        ];
        for (tag, counter) in self.wire_frames.iter().enumerate() {
            counters.push((names::wire_frames(tag), counter.get()));
        }
        for (tag, counter) in self.wire_bytes.iter().enumerate() {
            counters.push((names::wire_bytes(tag), counter.get()));
        }
        let mut gauges = vec![
            (
                names::INGEST_QUEUE_DEPTH.to_owned(),
                self.ingest_queue_depth.get(),
            ),
            (names::RESHARD_EPOCH.to_owned(), self.reshard_epoch.get()),
            (
                names::SNAPSHOT_VERSION.to_owned(),
                self.snapshot_version.get(),
            ),
            (
                names::CONNECTIONS_ACTIVE.to_owned(),
                self.connections_active.get(),
            ),
            (names::POOL_QUEUED.to_owned(), self.pool.queued.get()),
            (names::POOL_RUNNING.to_owned(), self.pool.running.get()),
        ];
        for (shard, gauge) in self.shard_buffered.iter().enumerate() {
            gauges.push((names::shard_buffered(shard as u32), gauge.get()));
        }
        let histograms = vec![
            (
                names::DRAIN_LATENCY.to_owned(),
                self.drain_latency.snapshot(),
            ),
            (
                names::HANDOVER_LATENCY.to_owned(),
                self.handover_latency.snapshot(),
            ),
        ];
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// A malformed [`MetricsSnapshot`] wire encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum MetricsCodecError {
    /// The payload ended inside a field.
    Truncated,
    /// A metric name was not valid UTF-8.
    BadName,
    /// A histogram's sparse bucket list was out of contract.
    BadHistogram {
        /// What was wrong.
        reason: &'static str,
    },
    /// Bytes remained after the last section.
    TrailingBytes,
    /// A section count implied more data than the payload holds.
    Oversized,
}

impl fmt::Display for MetricsCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricsCodecError::Truncated => f.write_str("metrics payload ended inside a field"),
            MetricsCodecError::BadName => f.write_str("metric name is not valid UTF-8"),
            MetricsCodecError::BadHistogram { reason } => {
                write!(f, "malformed histogram encoding: {reason}")
            }
            MetricsCodecError::TrailingBytes => {
                f.write_str("trailing bytes after the metrics payload")
            }
            MetricsCodecError::Oversized => {
                f.write_str("metrics section count exceeds the payload")
            }
        }
    }
}

impl std::error::Error for MetricsCodecError {}

/// A frozen, ordered view of an [`EngineMetrics`] registry: what the `Stats`
/// wire reply carries and what `satn-load --stats` renders.
///
/// The order of entries is the registry's canonical order, so two snapshots
/// of the same registry are comparable field by field, and the binary
/// encoding is canonical (one encoding per snapshot value).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, u64)>,
    histograms: Vec<(String, LatencyHistogram)>,
}

impl MetricsSnapshot {
    /// The counters, in registry order.
    pub fn counters(&self) -> &[(String, u64)] {
        &self.counters
    }

    /// The gauges, in registry order.
    pub fn gauges(&self) -> &[(String, u64)] {
        &self.gauges
    }

    /// The histograms, in registry order.
    pub fn histograms(&self) -> &[(String, LatencyHistogram)] {
        &self.histograms
    }

    /// Looks up a counter by its canonical name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, value)| value)
    }

    /// Looks up a gauge by its canonical name.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, value)| value)
    }

    /// Looks up a histogram by its canonical name.
    pub fn histogram(&self, name: &str) -> Option<&LatencyHistogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, histogram)| histogram)
    }

    /// Appends the canonical binary encoding to `buf` (all integers
    /// little-endian): three sections — counters, gauges, histograms — each
    /// a `u32` entry count followed by its entries. Counter/gauge entries
    /// are `u16` name length + name bytes + `u64` value; histogram entries
    /// are `u16` name length + name bytes + `u64` exact max + `u32` pair
    /// count + ascending `(u16 bucket index, u64 count)` pairs over the
    /// non-empty buckets only.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        fn push_name(buf: &mut Vec<u8>, name: &str) {
            let len = u16::try_from(name.len()).expect("metric names are short");
            buf.extend_from_slice(&len.to_le_bytes());
            buf.extend_from_slice(name.as_bytes());
        }
        buf.extend_from_slice(&(self.counters.len() as u32).to_le_bytes());
        for (name, value) in &self.counters {
            push_name(buf, name);
            buf.extend_from_slice(&value.to_le_bytes());
        }
        buf.extend_from_slice(&(self.gauges.len() as u32).to_le_bytes());
        for (name, value) in &self.gauges {
            push_name(buf, name);
            buf.extend_from_slice(&value.to_le_bytes());
        }
        buf.extend_from_slice(&(self.histograms.len() as u32).to_le_bytes());
        for (name, histogram) in &self.histograms {
            push_name(buf, name);
            buf.extend_from_slice(&histogram.max_nanos().to_le_bytes());
            let pairs: Vec<(usize, u64)> = histogram.nonzero_buckets().collect();
            buf.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
            for (index, count) in pairs {
                buf.extend_from_slice(&(index as u16).to_le_bytes());
                buf.extend_from_slice(&count.to_le_bytes());
            }
        }
    }

    /// Decodes a payload produced by [`MetricsSnapshot::encode_into`],
    /// validating the full contract: exact field lengths, UTF-8 names,
    /// strictly ascending in-range non-zero histogram buckets, and no
    /// trailing bytes.
    ///
    /// # Errors
    ///
    /// [`MetricsCodecError`] describing the first violation.
    pub fn decode(mut payload: &[u8]) -> Result<Self, MetricsCodecError> {
        let bytes = &mut payload;
        let counters = decode_values(bytes)?;
        let gauges = decode_values(bytes)?;
        let histogram_count = take_u32(bytes)?;
        check_count(histogram_count, bytes.len(), 11)?;
        let mut histograms = Vec::with_capacity(histogram_count as usize);
        for _ in 0..histogram_count {
            let name = take_name(bytes)?;
            let max = take_u64(bytes)?;
            let pair_count = take_u32(bytes)?;
            check_count(pair_count, bytes.len(), 10)?;
            let mut pairs = Vec::with_capacity(pair_count as usize);
            let mut previous: Option<usize> = None;
            for _ in 0..pair_count {
                let index = take_u16(bytes)? as usize;
                let count = take_u64(bytes)?;
                if index >= NUM_BUCKETS {
                    return Err(MetricsCodecError::BadHistogram {
                        reason: "bucket index out of range",
                    });
                }
                if previous.is_some_and(|p| index <= p) {
                    return Err(MetricsCodecError::BadHistogram {
                        reason: "bucket indices must be strictly ascending",
                    });
                }
                if count == 0 {
                    return Err(MetricsCodecError::BadHistogram {
                        reason: "empty buckets must be omitted",
                    });
                }
                previous = Some(index);
                pairs.push((index, count));
            }
            histograms.push((name, LatencyHistogram::from_sparse(max, &pairs)));
        }
        if !payload.is_empty() {
            return Err(MetricsCodecError::TrailingBytes);
        }
        Ok(MetricsSnapshot {
            counters,
            gauges,
            histograms,
        })
    }

    /// Renders the snapshot as Prometheus-style exposition text: one
    /// `name value` line per counter and gauge, and per histogram the
    /// interpolated p50/p90/p99/p999 quantiles (as `{quantile="…"}` labels)
    /// plus `_count` and `_max` lines.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, histogram) in &self.histograms {
            for (label, q) in [("0.5", 0.5), ("0.9", 0.9), ("0.99", 0.99), ("0.999", 0.999)] {
                let _ = writeln!(
                    out,
                    "{name}{{quantile=\"{label}\"}} {}",
                    histogram.quantile(q).as_nanos()
                );
            }
            let _ = writeln!(out, "{name}_count {}", histogram.samples());
            let _ = writeln!(out, "{name}_max {}", histogram.max().as_nanos());
        }
        out
    }
}

fn take_u16(bytes: &mut &[u8]) -> Result<u16, MetricsCodecError> {
    let (head, rest) = bytes
        .split_at_checked(2)
        .ok_or(MetricsCodecError::Truncated)?;
    *bytes = rest;
    Ok(u16::from_le_bytes(head.try_into().expect("2-byte split")))
}

fn take_u32(bytes: &mut &[u8]) -> Result<u32, MetricsCodecError> {
    let (head, rest) = bytes
        .split_at_checked(4)
        .ok_or(MetricsCodecError::Truncated)?;
    *bytes = rest;
    Ok(u32::from_le_bytes(head.try_into().expect("4-byte split")))
}

fn take_u64(bytes: &mut &[u8]) -> Result<u64, MetricsCodecError> {
    let (head, rest) = bytes
        .split_at_checked(8)
        .ok_or(MetricsCodecError::Truncated)?;
    *bytes = rest;
    Ok(u64::from_le_bytes(head.try_into().expect("8-byte split")))
}

fn take_name(bytes: &mut &[u8]) -> Result<String, MetricsCodecError> {
    let len = take_u16(bytes)? as usize;
    let (name, rest) = bytes
        .split_at_checked(len)
        .ok_or(MetricsCodecError::Truncated)?;
    *bytes = rest;
    String::from_utf8(name.to_vec()).map_err(|_| MetricsCodecError::BadName)
}

/// Rejects a section count whose minimum possible byte footprint already
/// exceeds the remaining payload — so a hostile count cannot reserve
/// gigabytes before the per-entry reads catch the truncation.
fn check_count(
    count: u32,
    remaining: usize,
    min_entry_bytes: usize,
) -> Result<(), MetricsCodecError> {
    if (count as u64).saturating_mul(min_entry_bytes as u64) > remaining as u64 {
        return Err(MetricsCodecError::Oversized);
    }
    Ok(())
}

fn decode_values(bytes: &mut &[u8]) -> Result<Vec<(String, u64)>, MetricsCodecError> {
    let count = take_u32(bytes)?;
    check_count(count, bytes.len(), 10)?;
    let mut values = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let name = take_name(bytes)?;
        let value = take_u64(bytes)?;
        values.push((name, value));
    }
    Ok(values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn sample_registry() -> EngineMetrics {
        let metrics = EngineMetrics::new(3);
        metrics.requests_served.add(1_000);
        metrics.batches_drained.add(4);
        metrics.access_cost.add(3_456);
        metrics.adjustment_cost.add(789);
        metrics.reshard_epoch.set(2);
        metrics.shard_buffered[1].set(17);
        metrics.note_wire_frame(1, 4096);
        metrics.note_wire_frame(1, 128);
        metrics.note_wire_frame(4, 13);
        metrics.drain_latency.record(Duration::from_micros(250));
        metrics.drain_latency.record(Duration::from_micros(90));
        metrics
    }

    #[test]
    fn snapshots_carry_every_registered_metric() {
        let snapshot = sample_registry().snapshot();
        assert_eq!(snapshot.counter(names::REQUESTS_SERVED), Some(1_000));
        assert_eq!(snapshot.counter(names::BATCHES_DRAINED), Some(4));
        assert_eq!(snapshot.counter(names::ACCESS_COST), Some(3_456));
        assert_eq!(snapshot.counter(&names::wire_frames(1)), Some(2));
        assert_eq!(snapshot.counter(&names::wire_bytes(1)), Some(4_224));
        assert_eq!(snapshot.counter(&names::wire_frames(4)), Some(1));
        assert_eq!(snapshot.gauge(names::RESHARD_EPOCH), Some(2));
        assert_eq!(snapshot.gauge(&names::shard_buffered(1)), Some(17));
        assert_eq!(snapshot.gauge(&names::shard_buffered(0)), Some(0));
        assert_eq!(snapshot.counter("no_such_metric"), None);
        let drain = snapshot.histogram(names::DRAIN_LATENCY).unwrap();
        assert_eq!(drain.samples(), 2);
        assert_eq!(drain.max(), Duration::from_micros(250));
    }

    #[test]
    fn wire_frame_counts_ignore_unknown_tags() {
        let metrics = EngineMetrics::new(1);
        metrics.note_wire_frame(200, 1_000_000);
        let snapshot = metrics.snapshot();
        for tag in 0..WIRE_TAG_COUNT {
            assert_eq!(snapshot.counter(&names::wire_frames(tag)), Some(0));
        }
    }

    #[test]
    fn encode_decode_roundtrips() {
        let snapshot = sample_registry().snapshot();
        let mut buf = Vec::new();
        snapshot.encode_into(&mut buf);
        let decoded = MetricsSnapshot::decode(&buf).unwrap();
        assert_eq!(decoded, snapshot);
    }

    #[test]
    fn empty_snapshots_roundtrip() {
        let snapshot = MetricsSnapshot::default();
        let mut buf = Vec::new();
        snapshot.encode_into(&mut buf);
        assert_eq!(MetricsSnapshot::decode(&buf).unwrap(), snapshot);
    }

    #[test]
    fn truncation_and_trailing_bytes_are_rejected() {
        let snapshot = sample_registry().snapshot();
        let mut buf = Vec::new();
        snapshot.encode_into(&mut buf);
        for cut in [1, 5, buf.len() / 2, buf.len() - 1] {
            assert!(
                MetricsSnapshot::decode(&buf[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
        let mut extended = buf.clone();
        extended.push(0);
        assert_eq!(
            MetricsSnapshot::decode(&extended),
            Err(MetricsCodecError::TrailingBytes)
        );
    }

    #[test]
    fn hostile_section_counts_fail_before_reserving_memory() {
        // A payload claiming u32::MAX counters but holding none.
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            MetricsSnapshot::decode(&buf),
            Err(MetricsCodecError::Oversized)
        );
    }

    #[test]
    fn malformed_histogram_buckets_are_rejected() {
        fn encode_with_pairs(pairs: &[(u16, u64)]) -> Vec<u8> {
            let mut buf = Vec::new();
            buf.extend_from_slice(&0u32.to_le_bytes()); // counters
            buf.extend_from_slice(&0u32.to_le_bytes()); // gauges
            buf.extend_from_slice(&1u32.to_le_bytes()); // one histogram
            buf.extend_from_slice(&1u16.to_le_bytes());
            buf.push(b'h');
            buf.extend_from_slice(&100u64.to_le_bytes()); // max
            buf.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
            for &(index, count) in pairs {
                buf.extend_from_slice(&index.to_le_bytes());
                buf.extend_from_slice(&count.to_le_bytes());
            }
            buf
        }
        // Out-of-range bucket index.
        assert!(matches!(
            MetricsSnapshot::decode(&encode_with_pairs(&[(u16::MAX, 1)])),
            Err(MetricsCodecError::BadHistogram { .. })
        ));
        // Non-ascending indices.
        assert!(matches!(
            MetricsSnapshot::decode(&encode_with_pairs(&[(5, 1), (5, 2)])),
            Err(MetricsCodecError::BadHistogram { .. })
        ));
        // Explicit zero count.
        assert!(matches!(
            MetricsSnapshot::decode(&encode_with_pairs(&[(5, 0)])),
            Err(MetricsCodecError::BadHistogram { .. })
        ));
        // A valid single pair decodes.
        let decoded = MetricsSnapshot::decode(&encode_with_pairs(&[(5, 3)])).unwrap();
        assert_eq!(decoded.histogram("h").unwrap().samples(), 3);
    }

    #[test]
    fn invalid_utf8_names_are_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&1u32.to_le_bytes()); // one counter
        buf.extend_from_slice(&2u16.to_le_bytes());
        buf.extend_from_slice(&[0xFF, 0xFE]); // not UTF-8
        buf.extend_from_slice(&7u64.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        assert_eq!(
            MetricsSnapshot::decode(&buf),
            Err(MetricsCodecError::BadName)
        );
    }

    #[test]
    fn prometheus_rendering_lists_names_and_quantiles() {
        let text = sample_registry().snapshot().to_prometheus();
        assert!(text.contains("satn_requests_served_total 1000"));
        assert!(text.contains("satn_reshard_epoch 2"));
        assert!(text.contains("satn_shard_buffered_requests{shard=\"1\"} 17"));
        assert!(text.contains("satn_wire_frames_total{tag=\"1\"} 2"));
        assert!(text.contains("satn_drain_latency_nanos{quantile=\"0.5\"}"));
        assert!(text.contains("satn_drain_latency_nanos_count 2"));
        assert!(text.contains("satn_drain_latency_nanos_max 250000"));
    }
}
