//! Log-bucketed latency histograms: constant memory, no allocation per
//! sample, quantiles accurate to ~±9% (8 sub-buckets per octave).
//!
//! [`LatencyHistogram`] is the single-writer form (moved here from
//! `satn-bench`, which re-exports it for its existing callers);
//! [`AtomicHistogram`] shares the exact same bucket geometry but records
//! lock-free from any thread, and freezes into a `LatencyHistogram` via
//! [`AtomicHistogram::snapshot`]. Merging is deterministic — element-wise
//! bucket addition — so per-shard histograms combine associatively and
//! commutatively into one, independent of merge order.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Sub-buckets per power of two of nanoseconds.
const SUB_BUCKETS: usize = 8;
/// The highest octave: 2^39 ns (~9 minutes); larger samples clamp into it.
const MAX_OCTAVE: usize = 39;
/// Indices `0..8` hold exact sub-8ns counts; octaves `3..=MAX_OCTAVE` hold
/// eight sub-buckets each, contiguously.
pub(crate) const NUM_BUCKETS: usize = SUB_BUCKETS + (MAX_OCTAVE - 2) * SUB_BUCKETS;

fn bucket_of(nanos: u64) -> usize {
    if nanos < SUB_BUCKETS as u64 {
        return nanos as usize;
    }
    let octave = (63 - nanos.leading_zeros() as usize).min(MAX_OCTAVE);
    // Position within the octave, scaled to SUB_BUCKETS slots.
    let offset = ((nanos >> (octave - 3)) & (SUB_BUCKETS as u64 - 1)) as usize;
    SUB_BUCKETS + (octave - 3) * SUB_BUCKETS + offset
}

/// The inclusive lower edge of bucket `index` (every sample in the bucket is
/// `>=` this).
fn bucket_lower(index: usize) -> u64 {
    if index < SUB_BUCKETS {
        return index as u64;
    }
    let octave = index / SUB_BUCKETS + 2;
    let offset = (index % SUB_BUCKETS) as u64;
    (1u64 << octave) + (offset << (octave - 3))
}

/// The exclusive upper edge of bucket `index` — equal to the next bucket's
/// lower edge within an octave and at every octave boundary, so the edges
/// tile the axis without gaps (what makes interpolated quantiles globally
/// monotone).
fn bucket_upper(index: usize) -> u64 {
    if index < SUB_BUCKETS {
        // Exact buckets hold a single integer value.
        return index as u64;
    }
    let octave = index / SUB_BUCKETS + 2;
    let offset = (index % SUB_BUCKETS) as u64;
    (1u64 << octave) + ((offset + 1) << (octave - 3))
}

/// A fixed-size log-bucketed histogram of latencies.
///
/// ```
/// use satn_obs::LatencyHistogram;
/// use std::time::Duration;
///
/// let mut histogram = LatencyHistogram::new();
/// for micros in [10, 20, 30, 40, 1000] {
///     histogram.record(Duration::from_micros(micros));
/// }
/// assert_eq!(histogram.samples(), 5);
/// assert!(histogram.quantile(0.99) >= Duration::from_micros(900));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    samples: u64,
    max: u64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: vec![0; NUM_BUCKETS],
            samples: 0,
            max: 0,
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Duration) {
        let nanos = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        self.buckets[bucket_of(nanos)] += 1;
        self.samples += 1;
        self.max = self.max.max(nanos);
    }

    /// The number of recorded samples.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The largest recorded sample (exact, not bucketed).
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max)
    }

    /// Folds `other` into `self`: element-wise bucket addition, sample-count
    /// addition, max of maxes. Associative and commutative (the buckets form
    /// a vector sum), so any merge tree over the same histograms yields the
    /// same result — per-shard histograms can be combined in shard order, in
    /// arrival order, or pairwise, identically.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.samples += other.samples;
        self.max = self.max.max(other.max);
    }

    /// The latency at quantile `q` (0.0 ..= 1.0), linearly interpolated
    /// within the bucket containing the `ceil(q * samples)`-th smallest
    /// sample and clamped to the exact observed maximum. Zero if nothing was
    /// recorded.
    ///
    /// Interpolation treats a bucket's `count` samples as evenly spaced over
    /// `(lower, upper]`; because bucket edges tile the axis (a bucket's
    /// upper edge is the next bucket's lower edge, across octave boundaries
    /// too), the result is monotone in `q` with no plateaus-then-jumps at
    /// bucket boundaries, and `quantile(1.0)` is exactly [`Self::max`].
    pub fn quantile(&self, q: f64) -> Duration {
        if self.samples == 0 {
            return Duration::ZERO;
        }
        let rank = ((q * self.samples as f64).ceil() as u64).clamp(1, self.samples);
        if rank == self.samples {
            // The top-ranked sample is known exactly; interpolating would
            // undershoot whenever it clamped into the last octave (≥ 2^40 ns),
            // whose upper edge sits below the true value.
            return Duration::from_nanos(self.max);
        }
        let mut seen = 0u64;
        for (index, &count) in self.buckets.iter().enumerate() {
            if count == 0 {
                continue;
            }
            if seen + count >= rank {
                let lower = bucket_lower(index);
                let width = bucket_upper(index) - lower;
                let into = rank - seen; // 1 ..= count
                let value = lower + width.saturating_mul(into) / count;
                return Duration::from_nanos(value.min(self.max));
            }
            seen += count;
        }
        Duration::from_nanos(self.max)
    }

    /// The non-empty buckets as `(bucket index, count)` pairs in ascending
    /// index order — the sparse form the wire codec serializes.
    pub(crate) fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &count)| count > 0)
            .map(|(index, &count)| (index, count))
    }

    /// The exact observed maximum in nanoseconds (the codec's stamp).
    pub(crate) fn max_nanos(&self) -> u64 {
        self.max
    }

    /// Rebuilds a histogram from its sparse form. Used by the wire decoder;
    /// `pairs` must be ascending, in range, and non-zero (validated there).
    pub(crate) fn from_sparse(max: u64, pairs: &[(usize, u64)]) -> Self {
        let mut histogram = LatencyHistogram::new();
        for &(index, count) in pairs {
            histogram.buckets[index] = count;
            histogram.samples += count;
        }
        histogram.max = max;
        histogram
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

/// The lock-free sibling of [`LatencyHistogram`]: same bucket geometry, but
/// every bucket is an `AtomicU64`, so any number of threads can
/// [`AtomicHistogram::record`] concurrently without a lock or an allocation.
///
/// [`AtomicHistogram::snapshot`] freezes the current contents into a plain
/// [`LatencyHistogram`]. The freeze reads buckets one by one, so a snapshot
/// raced by writers may split a concurrent sample across the read point —
/// fine for the advisory timing data this records (the determinism oracle
/// checks *counters*, never timings), and exact whenever the writer is
/// quiescent (drain boundaries, end of run).
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: Box<[AtomicU64]>,
    max: AtomicU64,
}

impl AtomicHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        AtomicHistogram {
            buckets: buckets.into_boxed_slice(),
            max: AtomicU64::new(0),
        }
    }

    /// Records one latency sample: two relaxed atomic updates, no lock, no
    /// allocation.
    pub fn record(&self, latency: Duration) {
        let nanos = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        self.buckets[bucket_of(nanos)].fetch_add(1, Ordering::Relaxed);
        self.max.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Samples recorded so far (sums the buckets).
    pub fn samples(&self) -> u64 {
        self.buckets
            .iter()
            .map(|bucket| bucket.load(Ordering::Relaxed))
            .sum()
    }

    /// Freezes the current contents into an owned [`LatencyHistogram`].
    pub fn snapshot(&self) -> LatencyHistogram {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|bucket| bucket.load(Ordering::Relaxed))
            .collect();
        let samples = buckets.iter().sum();
        LatencyHistogram {
            buckets,
            samples,
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_bracket_the_recorded_range() {
        let mut histogram = LatencyHistogram::new();
        for micros in 1..=1_000u64 {
            histogram.record(Duration::from_micros(micros));
        }
        assert_eq!(histogram.samples(), 1_000);
        let p50 = histogram.quantile(0.50);
        let p99 = histogram.quantile(0.99);
        let p999 = histogram.quantile(0.999);
        assert!(p50 >= Duration::from_micros(400) && p50 <= Duration::from_micros(640));
        assert!(p99 >= Duration::from_micros(850) && p99 <= Duration::from_micros(1_130));
        assert!(p999 >= p99);
        assert_eq!(histogram.max(), Duration::from_micros(1_000));
        assert!(histogram.quantile(1.0) <= histogram.max());
    }

    #[test]
    fn empty_histograms_report_zero() {
        let histogram = LatencyHistogram::new();
        assert_eq!(histogram.samples(), 0);
        assert_eq!(histogram.quantile(0.99), Duration::ZERO);
    }

    #[test]
    fn tiny_latencies_use_exact_buckets() {
        let mut histogram = LatencyHistogram::new();
        histogram.record(Duration::from_nanos(3));
        assert_eq!(histogram.quantile(1.0), Duration::from_nanos(3));
    }

    #[test]
    fn bucket_edges_tile_the_axis() {
        // A bucket's upper edge is the next bucket's lower edge (with the
        // one benign +1 step out of the exact-integer range), so
        // interpolated quantiles cannot jump backwards at any boundary.
        for index in 0..NUM_BUCKETS {
            assert!(
                bucket_lower(index) <= bucket_upper(index),
                "bucket {index} inverted"
            );
            if index + 1 < NUM_BUCKETS {
                assert!(
                    bucket_upper(index) <= bucket_lower(index + 1),
                    "gap inversion after bucket {index}"
                );
            }
        }
        // And the mapping itself never regresses: growing latencies land in
        // non-decreasing buckets.
        let mut previous = 0;
        for shift in 0..50u64 {
            let bucket = bucket_of(1u64 << shift);
            assert!(bucket >= previous, "nanos 2^{shift} regressed");
            previous = bucket;
        }
    }

    #[test]
    fn samples_fall_inside_their_bucket_edges() {
        // Stay below 2^40: larger samples deliberately clamp into the last
        // octave, where the upper edge no longer bounds them.
        for nanos in (0..10_000u64).chain((0..40).map(|shift| (1u64 << shift) + 13)) {
            let index = bucket_of(nanos);
            assert!(nanos >= bucket_lower(index), "nanos {nanos} below bucket");
            if (SUB_BUCKETS..NUM_BUCKETS - 1).contains(&index) {
                assert!(nanos < bucket_upper(index), "nanos {nanos} above bucket");
            }
        }
    }

    #[test]
    fn recording_is_order_insensitive() {
        let mut forward = LatencyHistogram::new();
        let mut backward = LatencyHistogram::new();
        for micros in 1..=100u64 {
            forward.record(Duration::from_micros(micros));
            backward.record(Duration::from_micros(101 - micros));
        }
        for q in [0.5, 0.9, 0.99] {
            assert_eq!(forward.quantile(q), backward.quantile(q));
        }
        assert_eq!(forward, backward);
    }

    #[test]
    fn merge_equals_recording_the_union() {
        let mut left = LatencyHistogram::new();
        let mut right = LatencyHistogram::new();
        let mut both = LatencyHistogram::new();
        for micros in 1..=500u64 {
            left.record(Duration::from_micros(micros));
            both.record(Duration::from_micros(micros));
        }
        for micros in 400..=900u64 {
            right.record(Duration::from_micros(micros));
            both.record(Duration::from_micros(micros));
        }
        left.merge(&right);
        assert_eq!(left, both);
        assert_eq!(left.samples(), 500 + 501);
        assert_eq!(left.max(), Duration::from_micros(900));
    }

    #[test]
    fn merging_an_empty_histogram_is_the_identity() {
        let mut histogram = LatencyHistogram::new();
        histogram.record(Duration::from_micros(17));
        let before = histogram.clone();
        histogram.merge(&LatencyHistogram::new());
        assert_eq!(histogram, before);
    }

    #[test]
    fn quantile_of_one_is_exactly_the_max() {
        let mut histogram = LatencyHistogram::new();
        for nanos in [3u64, 900, 123_456, 77_000_001] {
            histogram.record(Duration::from_nanos(nanos));
        }
        assert_eq!(histogram.quantile(1.0), histogram.max());
        assert_eq!(histogram.max(), Duration::from_nanos(77_000_001));
    }

    #[test]
    fn interpolation_moves_within_a_bucket() {
        // 1000 identical-bucket samples: quantiles interpolate across the
        // bucket instead of all collapsing onto the upper edge.
        let mut histogram = LatencyHistogram::new();
        for _ in 0..1_000 {
            histogram.record(Duration::from_nanos(1_000_000));
        }
        let p10 = histogram.quantile(0.10);
        let p90 = histogram.quantile(0.90);
        assert!(p10 <= p90);
        assert!(p90 <= histogram.max());
        // The bucket containing 1_000_000 ns spans less than ±9%.
        assert!(p10 >= Duration::from_nanos(900_000));
    }

    #[test]
    fn atomic_histogram_matches_the_single_writer_form() {
        let atomic = AtomicHistogram::new();
        let mut plain = LatencyHistogram::new();
        for micros in 1..=1_000u64 {
            atomic.record(Duration::from_micros(micros));
            plain.record(Duration::from_micros(micros));
        }
        assert_eq!(atomic.samples(), 1_000);
        assert_eq!(atomic.snapshot(), plain);
    }

    #[test]
    fn atomic_histogram_concurrent_records_all_land() {
        let atomic = AtomicHistogram::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for micros in 1..=250u64 {
                        atomic.record(Duration::from_micros(micros));
                    }
                });
            }
        });
        let snapshot = atomic.snapshot();
        assert_eq!(snapshot.samples(), 1_000);
        assert_eq!(snapshot.max(), Duration::from_micros(250));
    }

    #[test]
    fn sparse_roundtrip_preserves_the_histogram() {
        let mut histogram = LatencyHistogram::new();
        for nanos in [0u64, 5, 42, 900, 1 << 20, u64::MAX / 2] {
            histogram.record(Duration::from_nanos(nanos));
        }
        let pairs: Vec<(usize, u64)> = histogram.nonzero_buckets().collect();
        let rebuilt = LatencyHistogram::from_sparse(histogram.max_nanos(), &pairs);
        assert_eq!(rebuilt, histogram);
    }
}
