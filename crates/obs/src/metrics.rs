//! The atomic metric primitives: [`Counter`], [`Gauge`], and the pool
//! [`TaskGauges`] bundle.
//!
//! Every primitive is one `AtomicU64` updated with relaxed read-modify-write
//! operations — no lock, no allocation, safe to hammer from any number of
//! threads. Relaxed ordering is deliberate: metrics are *reported*, never
//! used for synchronization, and the determinism oracle only ever reads them
//! at drain boundaries where the engine thread's own program order already
//! fixes their values.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing counter (requests served, frames decoded, …).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `delta`.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that moves both ways (queue depth, buffered requests, epoch).
///
/// [`Gauge::dec`] saturates at zero instead of wrapping: paired
/// increment/decrement sites on different threads can transiently race, and
/// a `u64::MAX` queue depth in a metrics dump would be strictly worse than
/// an off-by-one that the next update corrects.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge starting at zero.
    pub const fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Sets the value outright.
    #[inline]
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one, saturating at zero.
    #[inline]
    pub fn dec(&self) {
        let mut current = self.0.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_sub(1);
            match self
                .0
                .compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Task-lifecycle gauges for a worker pool: spawned tasks move
/// `queued → running → completed`.
#[derive(Debug, Default)]
pub struct TaskGauges {
    /// Tasks spawned but not yet picked up by a worker.
    pub queued: Gauge,
    /// Tasks currently executing on a worker.
    pub running: Gauge,
    /// Tasks finished since the gauges were created.
    pub completed: Counter,
}

impl TaskGauges {
    /// Fresh gauges, all zero.
    pub const fn new() -> Self {
        TaskGauges {
            queued: Gauge::new(),
            running: Gauge::new(),
            completed: Counter::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let counter = Counter::new();
        counter.inc();
        counter.add(41);
        assert_eq!(counter.get(), 42);
    }

    #[test]
    fn gauges_move_both_ways_and_saturate() {
        let gauge = Gauge::new();
        gauge.inc();
        gauge.inc();
        gauge.dec();
        assert_eq!(gauge.get(), 1);
        gauge.dec();
        gauge.dec(); // Below zero: saturates instead of wrapping.
        assert_eq!(gauge.get(), 0);
        gauge.set(7);
        assert_eq!(gauge.get(), 7);
    }

    #[test]
    fn concurrent_updates_never_lose_increments() {
        let counter = Counter::new();
        let gauge = Gauge::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..10_000 {
                        counter.inc();
                        gauge.inc();
                        gauge.dec();
                    }
                });
            }
        });
        assert_eq!(counter.get(), 40_000);
        assert_eq!(gauge.get(), 0);
    }

    #[test]
    fn task_gauges_model_the_lifecycle() {
        let gauges = TaskGauges::new();
        gauges.queued.inc();
        gauges.queued.dec();
        gauges.running.inc();
        gauges.running.dec();
        gauges.completed.inc();
        assert_eq!(gauges.queued.get(), 0);
        assert_eq!(gauges.running.get(), 0);
        assert_eq!(gauges.completed.get(), 1);
    }
}
