//! A bounded ring-buffer event tracer for drain and reshard-handover spans.
//!
//! Every trace carries a deterministic [`TraceStamp`] — event kind, reshard
//! epoch, cumulative served-request count, plus one kind-specific detail
//! value — and an advisory wall-clock offset measured from ring creation.
//! The stamp sequence produced by a run is a pure function of the workload
//! (the engine records stamps only at drain boundaries and reshard phases,
//! both of which are replay-deterministic); the wall-clock column is the
//! only part that varies between runs, and nothing oracle-checked ever
//! reads it.
//!
//! Reshard handovers appear as three-phase spans:
//! [`TraceKind::ReshardFence`] (the epoch being closed, detail = planned
//! moves) → [`TraceKind::ReshardMigrate`] (the new epoch, detail = number
//! of shards the plan touched) → [`TraceKind::ReshardEpochBump`] (detail =
//! keys actually moved). Matching the three by their shared served-count
//! locates one handover in a trace dump; the migration's cost units live in
//! the metric registry, not here.
//!
//! The ring holds the most recent [`TraceRing::capacity`] events; older
//! events are dropped and counted, never reallocated over. Recording takes
//! a short mutex critical section (push + pop on a preallocated deque) —
//! traces are emitted at drain/reshard cadence, not per request, so the
//! lock is uncontended by construction and the hot path never sees it.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Default event capacity of an engine's [`TraceRing`].
pub const DEFAULT_TRACE_CAPACITY: usize = 1024;

/// What kind of engine event a trace records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A batch drain completed; detail = requests served by this drain.
    Drain,
    /// A snapshot was published; detail = its version number.
    SnapshotPublish,
    /// Reshard phase 1 — the outgoing epoch is fenced; detail = planned
    /// moves, epoch = the epoch being closed.
    ReshardFence,
    /// Reshard phase 2 — keys migrated; detail = number of shards the plan
    /// touched (sources and destinations), epoch = the new epoch.
    ReshardMigrate,
    /// Reshard phase 3 — the epoch counter advanced; detail = keys moved.
    ReshardEpochBump,
}

/// The deterministic portion of a trace: identical across replays of the
/// same workload at any thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStamp {
    /// Event kind.
    pub kind: TraceKind,
    /// The reshard epoch the event belongs to.
    pub epoch: u32,
    /// Cumulative requests served when the event fired — the deterministic
    /// sequence number ordering events within and across epochs.
    pub served: u64,
    /// Kind-specific payload (see [`TraceKind`]).
    pub detail: u64,
}

/// One recorded event: a deterministic stamp plus advisory timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Position in the full event stream (monotonic from 0, counting
    /// dropped events too).
    pub seq: u64,
    /// The deterministic stamp.
    pub stamp: TraceStamp,
    /// Wall-clock offset from ring creation. Advisory only: never
    /// oracle-checked, varies between runs.
    pub wall: Duration,
}

#[derive(Debug)]
struct RingState {
    events: VecDeque<TraceEvent>,
    next_seq: u64,
}

/// A bounded, preallocated ring of [`TraceEvent`]s.
#[derive(Debug)]
pub struct TraceRing {
    started: Instant,
    capacity: usize,
    dropped: AtomicU64,
    inner: Mutex<RingState>,
}

impl TraceRing {
    /// A ring holding at most `capacity` events. The backing storage is
    /// allocated up front; recording never allocates.
    pub fn new(capacity: usize) -> Self {
        TraceRing {
            started: Instant::now(),
            capacity,
            dropped: AtomicU64::new(0),
            inner: Mutex::new(RingState {
                events: VecDeque::with_capacity(capacity),
                next_seq: 0,
            }),
        }
    }

    /// A ring with [`DEFAULT_TRACE_CAPACITY`].
    pub fn with_default_capacity() -> Self {
        TraceRing::new(DEFAULT_TRACE_CAPACITY)
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records one event, evicting the oldest if the ring is full.
    pub fn record(&self, stamp: TraceStamp) {
        let wall = self.started.elapsed();
        let mut state = self.inner.lock().expect("trace ring poisoned");
        if self.capacity == 0 {
            state.next_seq += 1;
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if state.events.len() == self.capacity {
            state.events.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        let seq = state.next_seq;
        state.next_seq += 1;
        state.events.push_back(TraceEvent { seq, stamp, wall });
    }

    /// The retained events, oldest first.
    pub fn recent(&self) -> Vec<TraceEvent> {
        let state = self.inner.lock().expect("trace ring poisoned");
        state.events.iter().copied().collect()
    }

    /// The retained deterministic stamps, oldest first — the view tests
    /// compare across replays.
    pub fn stamps(&self) -> Vec<TraceStamp> {
        self.recent().into_iter().map(|event| event.stamp).collect()
    }

    /// Total events ever recorded (retained + dropped).
    pub fn recorded(&self) -> u64 {
        let state = self.inner.lock().expect("trace ring poisoned");
        state.next_seq
    }

    /// Events evicted (or discarded by a zero-capacity ring).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stamp(kind: TraceKind, served: u64) -> TraceStamp {
        TraceStamp {
            kind,
            epoch: 1,
            served,
            detail: served * 10,
        }
    }

    #[test]
    fn records_in_order_with_monotonic_sequence_numbers() {
        let ring = TraceRing::new(8);
        for served in 0..5 {
            ring.record(stamp(TraceKind::Drain, served));
        }
        let events = ring.recent();
        assert_eq!(events.len(), 5);
        for (index, event) in events.iter().enumerate() {
            assert_eq!(event.seq, index as u64);
            assert_eq!(event.stamp.served, index as u64);
        }
        assert_eq!(ring.recorded(), 5);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn full_ring_evicts_the_oldest_and_counts_drops() {
        let ring = TraceRing::new(3);
        for served in 0..10 {
            ring.record(stamp(TraceKind::Drain, served));
        }
        let events = ring.recent();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events.iter().map(|e| e.stamp.served).collect::<Vec<_>>(),
            vec![7, 8, 9]
        );
        assert_eq!(events[0].seq, 7);
        assert_eq!(ring.recorded(), 10);
        assert_eq!(ring.dropped(), 7);
    }

    #[test]
    fn zero_capacity_ring_drops_everything_but_keeps_counting() {
        let ring = TraceRing::new(0);
        ring.record(stamp(TraceKind::Drain, 1));
        ring.record(stamp(TraceKind::SnapshotPublish, 2));
        assert!(ring.recent().is_empty());
        assert_eq!(ring.recorded(), 2);
        assert_eq!(ring.dropped(), 2);
    }

    #[test]
    fn stamps_strip_the_advisory_timing() {
        let ring = TraceRing::new(4);
        let fence = TraceStamp {
            kind: TraceKind::ReshardFence,
            epoch: 0,
            served: 100,
            detail: 3,
        };
        let migrate = TraceStamp {
            kind: TraceKind::ReshardMigrate,
            epoch: 1,
            served: 100,
            detail: 42,
        };
        let bump = TraceStamp {
            kind: TraceKind::ReshardEpochBump,
            epoch: 1,
            served: 100,
            detail: 7,
        };
        ring.record(fence);
        ring.record(migrate);
        ring.record(bump);
        assert_eq!(ring.stamps(), vec![fence, migrate, bump]);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let ring = TraceRing::new(10_000);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for served in 0..1_000 {
                        ring.record(stamp(TraceKind::Drain, served));
                    }
                });
            }
        });
        assert_eq!(ring.recorded(), 4_000);
        assert_eq!(ring.recent().len(), 4_000);
        assert_eq!(ring.dropped(), 0);
    }
}
