//! Traffic generators and traffic statistics for the multi-source network.
//!
//! The generators mirror the locality knobs of the paper's single-source
//! evaluation (Section 6.1), lifted to source–destination pairs: uniform
//! traffic, skewed (Zipf) destination popularity, hotspot pairs, and temporal
//! locality via pair repetition.

use crate::host::{Host, HostPair};
use rand::Rng;
use satn_workloads::synthetic::ZipfSampler;

/// A named sequence of source–destination requests plus basic statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Traffic {
    name: String,
    num_hosts: u32,
    pairs: Vec<HostPair>,
}

impl Traffic {
    /// Wraps an explicit pair sequence.
    ///
    /// # Panics
    ///
    /// Panics if a pair mentions a host outside `0..num_hosts` or is a
    /// self-loop.
    pub fn new(name: impl Into<String>, num_hosts: u32, pairs: Vec<HostPair>) -> Self {
        for pair in &pairs {
            assert!(
                pair.source.index() < num_hosts && pair.destination.index() < num_hosts,
                "pair {pair} outside a network of {num_hosts} hosts"
            );
            assert!(!pair.is_self_loop(), "self-loop {pair} in traffic");
        }
        Traffic {
            name: name.into(),
            num_hosts,
            pairs,
        }
    }

    /// The human-readable name of the traffic pattern.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The number of hosts the pairs are drawn from.
    pub fn num_hosts(&self) -> u32 {
        self.num_hosts
    }

    /// The request pairs, in order.
    pub fn pairs(&self) -> &[HostPair] {
        &self.pairs
    }

    /// The number of requests.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the traffic is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The fraction of requests that repeat the immediately preceding pair.
    pub fn repeat_fraction(&self) -> f64 {
        if self.pairs.len() < 2 {
            return 0.0;
        }
        let repeats = self
            .pairs
            .windows(2)
            .filter(|window| window[0] == window[1])
            .count();
        repeats as f64 / (self.pairs.len() - 1) as f64
    }

    /// The number of distinct pairs requested.
    pub fn distinct_pairs(&self) -> usize {
        let mut seen: Vec<(u32, u32)> = self
            .pairs
            .iter()
            .map(|p| (p.source.index(), p.destination.index()))
            .collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// Per-pair request counts, keyed by `(source, destination)` indices —
    /// the shared basis of [`Traffic::empirical_entropy`] and
    /// [`Traffic::top_pairs`].
    pub fn pair_counts(&self) -> std::collections::HashMap<(u32, u32), u64> {
        let mut counts = std::collections::HashMap::new();
        for pair in &self.pairs {
            *counts
                .entry((pair.source.index(), pair.destination.index()))
                .or_insert(0) += 1;
        }
        counts
    }

    /// The empirical entropy (bits) of the pair distribution.
    pub fn empirical_entropy(&self) -> f64 {
        if self.pairs.is_empty() {
            return 0.0;
        }
        let total = self.pairs.len() as f64;
        self.pair_counts()
            .values()
            .map(|&count| {
                let p = count as f64 / total;
                -p * p.log2()
            })
            .sum()
    }

    /// The traffic matrix: `matrix[s][d]` counts requests from host `s` to
    /// host `d`.
    pub fn matrix(&self) -> Vec<Vec<u64>> {
        let n = self.num_hosts as usize;
        let mut matrix = vec![vec![0u64; n]; n];
        for pair in &self.pairs {
            matrix[pair.source.usize()][pair.destination.usize()] += 1;
        }
        matrix
    }

    /// The `k` most frequent pairs, most frequent first.
    pub fn top_pairs(&self, k: usize) -> Vec<(HostPair, u64)> {
        let mut ranked: Vec<(HostPair, u64)> = self
            .pair_counts()
            .into_iter()
            .map(|((s, d), count)| (HostPair::from((s, d)), count))
            .collect();
        ranked.sort_by(|a, b| {
            b.1.cmp(&a.1).then_with(|| {
                (a.0.source.index(), a.0.destination.index())
                    .cmp(&(b.0.source.index(), b.0.destination.index()))
            })
        });
        ranked.truncate(k);
        ranked
    }

    /// Renames the traffic (builder style).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }
}

fn random_destination<R: Rng + ?Sized>(num_hosts: u32, source: Host, rng: &mut R) -> Host {
    loop {
        let destination = Host::new(rng.gen_range(0..num_hosts));
        if destination != source {
            return destination;
        }
    }
}

/// Uniform traffic: both endpoints of every request are drawn uniformly at
/// random (self-loops excluded).
pub fn uniform<R: Rng + ?Sized>(num_hosts: u32, length: usize, rng: &mut R) -> Traffic {
    assert!(num_hosts >= 2, "need at least two hosts");
    let pairs = (0..length)
        .map(|_| {
            let source = Host::new(rng.gen_range(0..num_hosts));
            HostPair::new(source, random_destination(num_hosts, source, rng))
        })
        .collect();
    Traffic::new("uniform", num_hosts, pairs)
}

/// Skewed traffic: sources are uniform, destinations follow a Zipf
/// distribution with exponent `a` over a per-run random popularity ranking.
pub fn zipf_destinations<R: Rng + ?Sized>(
    num_hosts: u32,
    length: usize,
    a: f64,
    rng: &mut R,
) -> Traffic {
    assert!(num_hosts >= 2, "need at least two hosts");
    let sampler = ZipfSampler::new(num_hosts, a);
    // A random identity for each Zipf rank, so the popular hosts differ
    // between runs with different RNG states.
    let mut ranking: Vec<u32> = (0..num_hosts).collect();
    for i in (1..ranking.len()).rev() {
        ranking.swap(i, rng.gen_range(0..=i));
    }
    let pairs = (0..length)
        .map(|_| {
            let source = Host::new(rng.gen_range(0..num_hosts));
            loop {
                let destination = Host::new(ranking[sampler.sample(rng).usize()]);
                if destination != source {
                    break HostPair::new(source, destination);
                }
            }
        })
        .collect();
    Traffic::new(format!("zipf-a{a}"), num_hosts, pairs)
}

/// Hotspot traffic: with probability `hot_probability` the request is drawn
/// from a fixed set of `num_hot_pairs` random "elephant" pairs, otherwise both
/// endpoints are uniform.
pub fn hotspot<R: Rng + ?Sized>(
    num_hosts: u32,
    length: usize,
    num_hot_pairs: usize,
    hot_probability: f64,
    rng: &mut R,
) -> Traffic {
    assert!(num_hosts >= 2, "need at least two hosts");
    assert!(
        (0.0..=1.0).contains(&hot_probability),
        "probability out of range"
    );
    assert!(num_hot_pairs >= 1, "need at least one hot pair");
    let hot: Vec<HostPair> = (0..num_hot_pairs)
        .map(|_| {
            let source = Host::new(rng.gen_range(0..num_hosts));
            HostPair::new(source, random_destination(num_hosts, source, rng))
        })
        .collect();
    let pairs = (0..length)
        .map(|_| {
            if rng.gen_bool(hot_probability) {
                hot[rng.gen_range(0..hot.len())]
            } else {
                let source = Host::new(rng.gen_range(0..num_hosts));
                HostPair::new(source, random_destination(num_hosts, source, rng))
            }
        })
        .collect();
    Traffic::new(
        format!("hotspot-{num_hot_pairs}x{hot_probability}"),
        num_hosts,
        pairs,
    )
}

/// Temporal traffic: the previous pair is repeated with probability `p`,
/// otherwise a fresh uniform pair is drawn (the pair analogue of the paper's
/// temporal-locality sequences).
pub fn temporal<R: Rng + ?Sized>(num_hosts: u32, length: usize, p: f64, rng: &mut R) -> Traffic {
    assert!(num_hosts >= 2, "need at least two hosts");
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    let mut pairs: Vec<HostPair> = Vec::with_capacity(length);
    for i in 0..length {
        if i > 0 && rng.gen_bool(p) {
            pairs.push(pairs[i - 1]);
        } else {
            let source = Host::new(rng.gen_range(0..num_hosts));
            pairs.push(HostPair::new(
                source,
                random_destination(num_hosts, source, rng),
            ));
        }
    }
    Traffic::new(format!("temporal-p{p}"), num_hosts, pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn generators_produce_valid_pairs_of_the_requested_length() {
        let mut r = rng(1);
        for traffic in [
            uniform(12, 500, &mut r),
            zipf_destinations(12, 500, 1.6, &mut r),
            hotspot(12, 500, 4, 0.8, &mut r),
            temporal(12, 500, 0.7, &mut r),
        ] {
            assert_eq!(traffic.len(), 500);
            assert_eq!(traffic.num_hosts(), 12);
            assert!(!traffic.is_empty());
            assert!(traffic
                .pairs()
                .iter()
                .all(|p| p.source.index() < 12 && p.destination.index() < 12 && !p.is_self_loop()));
        }
    }

    #[test]
    fn temporal_repetition_increases_the_repeat_fraction() {
        let low = temporal(20, 4_000, 0.05, &mut rng(7));
        let high = temporal(20, 4_000, 0.9, &mut rng(7));
        assert!(high.repeat_fraction() > low.repeat_fraction());
        assert!(high.repeat_fraction() > 0.8);
    }

    #[test]
    fn zipf_skew_lowers_entropy() {
        let mild = zipf_destinations(64, 20_000, 1.001, &mut rng(3));
        let strong = zipf_destinations(64, 20_000, 2.2, &mut rng(3));
        assert!(strong.empirical_entropy() < mild.empirical_entropy());
    }

    #[test]
    fn hotspot_pairs_dominate_the_top_of_the_ranking() {
        let traffic = hotspot(32, 10_000, 2, 0.9, &mut rng(11));
        let top = traffic.top_pairs(2);
        assert_eq!(top.len(), 2);
        let hot_requests: u64 = top.iter().map(|&(_, count)| count).sum();
        assert!(hot_requests as f64 > 0.8 * traffic.len() as f64);
    }

    #[test]
    fn pair_counts_back_both_entropy_and_top_pairs() {
        let traffic = hotspot(16, 5_000, 3, 0.7, &mut rng(21));
        let counts = traffic.pair_counts();
        // The helper agrees with the traffic matrix on every cell…
        let matrix = traffic.matrix();
        for (&(s, d), &count) in &counts {
            assert_eq!(matrix[s as usize][d as usize], count);
        }
        assert_eq!(counts.values().sum::<u64>(), traffic.len() as u64);
        assert_eq!(counts.len(), traffic.distinct_pairs());
        // …and both call sites derive from it consistently: top_pairs ranks
        // the helper's counts, entropy sums over exactly its distribution.
        let top = traffic.top_pairs(counts.len());
        assert_eq!(top.len(), counts.len());
        for (pair, count) in &top {
            assert_eq!(
                counts[&(pair.source.index(), pair.destination.index())],
                *count
            );
        }
        let entropy_from_counts: f64 = counts
            .values()
            .map(|&c| {
                let p = c as f64 / traffic.len() as f64;
                -p * p.log2()
            })
            .sum();
        assert!((traffic.empirical_entropy() - entropy_from_counts).abs() < 1e-12);
    }

    #[test]
    fn matrix_row_sums_match_request_counts() {
        let traffic = uniform(10, 2_000, &mut rng(5));
        let matrix = traffic.matrix();
        let total: u64 = matrix.iter().flatten().sum();
        assert_eq!(total, 2_000);
        for (source, row) in matrix.iter().enumerate() {
            assert_eq!(row[source], 0, "no self-loops on the diagonal");
        }
    }

    #[test]
    fn distinct_pairs_and_entropy_agree_on_degenerate_traffic() {
        let pairs = vec![HostPair::from((0u32, 1u32)); 50];
        let traffic = Traffic::new("constant", 2, pairs).with_name("renamed");
        assert_eq!(traffic.name(), "renamed");
        assert_eq!(traffic.distinct_pairs(), 1);
        assert_eq!(traffic.empirical_entropy(), 0.0);
        assert_eq!(traffic.repeat_fraction(), 1.0);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loops_are_rejected() {
        Traffic::new("bad", 4, vec![HostPair::from((2u32, 2u32))]);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_hosts_are_rejected() {
        Traffic::new("bad", 4, vec![HostPair::from((1u32, 9u32))]);
    }
}
