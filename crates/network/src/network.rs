//! The composed multi-source self-adjusting network.

use crate::egotree::EgoTree;
use crate::error::NetworkError;
use crate::host::{Host, HostPair};
use satn_core::AlgorithmKind;
use satn_tree::{CostSummary, NodeId, ServeCost};
use std::fmt;

/// A reconfigurable network of `n` hosts in which every host maintains its
/// own self-adjusting *ego-tree* over the other `n − 1` hosts.
///
/// This is the composition sketched in the paper's introduction: single-source
/// tree networks are the building block of demand-aware, bounded-degree
/// reconfigurable topologies (Avin et al., DISC 2017 / APOCS 2021). A request
/// `(s, d)` is served on `s`'s ego-tree at the usual cost (depth of `d` plus
/// one, plus the adjustment swaps); the physical degree of a host is the
/// number of links it participates in across all ego-trees.
///
/// # Examples
///
/// ```
/// use satn_core::AlgorithmKind;
/// use satn_network::{Host, SelfAdjustingNetwork};
///
/// let mut network = SelfAdjustingNetwork::new(16, AlgorithmKind::RotorPush, 7)?;
/// // A skewed pair keeps getting cheaper as the ego-tree adapts.
/// let first = network.serve(Host::new(3), Host::new(12))?;
/// let second = network.serve(Host::new(3), Host::new(12))?;
/// assert!(second.total() <= first.total());
/// # Ok::<(), satn_network::NetworkError>(())
/// ```
pub struct SelfAdjustingNetwork {
    egotrees: Vec<EgoTree>,
    per_source: Vec<CostSummary>,
    total: CostSummary,
    kind: AlgorithmKind,
}

impl SelfAdjustingNetwork {
    /// Builds a network of `num_hosts` hosts whose ego-trees are all managed
    /// by `kind`. Randomized algorithms are seeded per source with
    /// `seed + source index`.
    ///
    /// # Errors
    ///
    /// * [`NetworkError::TooFewHosts`] if `num_hosts < 2`,
    /// * [`NetworkError::TraceRequired`] for offline algorithms — use
    ///   [`SelfAdjustingNetwork::with_trace`].
    pub fn new(num_hosts: u32, kind: AlgorithmKind, seed: u64) -> Result<Self, NetworkError> {
        if num_hosts < 2 {
            return Err(NetworkError::TooFewHosts { num_hosts });
        }
        let mut egotrees = Vec::with_capacity(num_hosts as usize);
        for source in 0..num_hosts {
            egotrees.push(EgoTree::new(
                Host::new(source),
                num_hosts,
                kind,
                seed.wrapping_add(u64::from(source)),
            )?);
        }
        Ok(SelfAdjustingNetwork {
            egotrees,
            per_source: vec![CostSummary::new(); num_hosts as usize],
            total: CostSummary::new(),
            kind,
        })
    }

    /// Builds a network, handing every source the sub-trace of destinations it
    /// will request (required by the offline [`AlgorithmKind::StaticOpt`]
    /// baseline, harmless for the online algorithms).
    ///
    /// # Errors
    ///
    /// Construction errors of [`SelfAdjustingNetwork::new`], plus
    /// [`NetworkError::UnknownHost`] / [`NetworkError::SelfLoop`] if the trace
    /// contains invalid pairs.
    pub fn with_trace(
        num_hosts: u32,
        kind: AlgorithmKind,
        seed: u64,
        trace: &[HostPair],
    ) -> Result<Self, NetworkError> {
        if num_hosts < 2 {
            return Err(NetworkError::TooFewHosts { num_hosts });
        }
        let mut per_source_destinations: Vec<Vec<Host>> = vec![Vec::new(); num_hosts as usize];
        for pair in trace {
            if pair.source.index() >= num_hosts {
                return Err(NetworkError::UnknownHost {
                    host: pair.source,
                    num_hosts,
                });
            }
            per_source_destinations[pair.source.usize()].push(pair.destination);
        }
        let mut egotrees = Vec::with_capacity(num_hosts as usize);
        for source in 0..num_hosts {
            egotrees.push(EgoTree::with_trace(
                Host::new(source),
                num_hosts,
                kind,
                seed.wrapping_add(u64::from(source)),
                &per_source_destinations[source as usize],
            )?);
        }
        Ok(SelfAdjustingNetwork {
            egotrees,
            per_source: vec![CostSummary::new(); num_hosts as usize],
            total: CostSummary::new(),
            kind,
        })
    }

    /// The number of hosts.
    pub fn num_hosts(&self) -> u32 {
        self.egotrees.len() as u32
    }

    /// The algorithm managing every ego-tree.
    pub fn algorithm_kind(&self) -> AlgorithmKind {
        self.kind
    }

    /// The ego-tree of `source`.
    ///
    /// # Panics
    ///
    /// Panics if `source` is outside the network.
    pub fn ego_tree(&self, source: Host) -> &EgoTree {
        &self.egotrees[source.usize()]
    }

    /// Serves one request from `source` to `destination`.
    ///
    /// # Errors
    ///
    /// * [`NetworkError::UnknownHost`] if either endpoint is outside the
    ///   network,
    /// * [`NetworkError::SelfLoop`] if they coincide.
    pub fn serve(&mut self, source: Host, destination: Host) -> Result<ServeCost, NetworkError> {
        if source.index() >= self.num_hosts() {
            return Err(NetworkError::UnknownHost {
                host: source,
                num_hosts: self.num_hosts(),
            });
        }
        let cost = self.egotrees[source.usize()].serve(destination)?;
        self.per_source[source.usize()].record(cost);
        self.total.record(cost);
        Ok(cost)
    }

    /// Serves a whole trace of host pairs and returns the aggregate cost of
    /// just that trace.
    ///
    /// # Errors
    ///
    /// Returns the first error produced by [`SelfAdjustingNetwork::serve`].
    pub fn serve_trace(&mut self, trace: &[HostPair]) -> Result<CostSummary, NetworkError> {
        let mut summary = CostSummary::new();
        for pair in trace {
            summary.record(self.serve(pair.source, pair.destination)?);
        }
        Ok(summary)
    }

    /// The cost accumulated by requests issued by `source` since construction.
    ///
    /// # Panics
    ///
    /// Panics if `source` is outside the network.
    pub fn cost_of_source(&self, source: Host) -> &CostSummary {
        &self.per_source[source.usize()]
    }

    /// The total cost accumulated since construction.
    pub fn total_cost(&self) -> &CostSummary {
        &self.total
    }

    /// The current routing distance from `source` to `destination` (depth of
    /// the destination in the source's ego-tree plus one), without serving a
    /// request.
    ///
    /// # Errors
    ///
    /// Same as [`SelfAdjustingNetwork::serve`], but nothing is modified.
    pub fn route_length(&self, source: Host, destination: Host) -> Result<u64, NetworkError> {
        if source.index() >= self.num_hosts() {
            return Err(NetworkError::UnknownHost {
                host: source,
                num_hosts: self.num_hosts(),
            });
        }
        Ok(u64::from(self.egotrees[source.usize()].depth_of(destination)?) + 1)
    }

    /// The current physical degree of `host`: the number of links it
    /// participates in across all ego-trees (its link to the root of its own
    /// ego-tree, its link to a source whenever it currently sits at the root
    /// of that source's tree, and its tree links to other *real* hosts).
    ///
    /// # Panics
    ///
    /// Panics if `host` is outside the network.
    pub fn physical_degree(&self, host: Host) -> u32 {
        let mut degree = 1; // link from `host` to the root of its own ego-tree
        for ego in &self.egotrees {
            if ego.source() == host {
                continue;
            }
            let occupancy = ego.occupancy();
            let tree = occupancy.tree();
            // Find the node currently holding `host` in this ego-tree; padding
            // means `host` is always present as a destination element.
            let Some(node) = tree.nodes().find(|&node| ego.host_at(node) == Some(host)) else {
                continue;
            };
            if node == NodeId::ROOT {
                degree += 1; // link to the source attached to this root
            }
            if let Some(parent) = node.parent() {
                if ego.host_at(parent).is_some() {
                    degree += 1;
                }
            }
            for child in [node.left_child(), node.right_child()] {
                if tree.contains(child) && ego.host_at(child).is_some() {
                    degree += 1;
                }
            }
        }
        degree
    }

    /// The maximum physical degree over all hosts.
    pub fn max_degree(&self) -> u32 {
        (0..self.num_hosts())
            .map(|h| self.physical_degree(Host::new(h)))
            .max()
            .unwrap_or(0)
    }

    /// The average physical degree over all hosts.
    pub fn mean_degree(&self) -> f64 {
        let total: u64 = (0..self.num_hosts())
            .map(|h| u64::from(self.physical_degree(Host::new(h))))
            .sum();
        total as f64 / f64::from(self.num_hosts())
    }
}

impl fmt::Debug for SelfAdjustingNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SelfAdjustingNetwork")
            .field("num_hosts", &self.num_hosts())
            .field("algorithm", &self.kind)
            .field("total_cost", &self.total)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_pairs_become_cheap_under_rotor_push() {
        let mut network = SelfAdjustingNetwork::new(32, AlgorithmKind::RotorPush, 3).unwrap();
        let pair = HostPair::from((5u32, 29u32));
        let first = network.serve(pair.source, pair.destination).unwrap();
        for _ in 0..5 {
            network.serve(pair.source, pair.destination).unwrap();
        }
        let later = network.serve(pair.source, pair.destination).unwrap();
        assert!(later.total() < first.total());
        assert_eq!(
            network.route_length(pair.source, pair.destination).unwrap(),
            1
        );
    }

    #[test]
    fn per_source_and_total_costs_add_up() {
        let mut network = SelfAdjustingNetwork::new(8, AlgorithmKind::MoveHalf, 0).unwrap();
        let trace: Vec<HostPair> = vec![
            (0u32, 3u32).into(),
            (0u32, 5u32).into(),
            (4u32, 1u32).into(),
            (7u32, 0u32).into(),
        ];
        let summary = network.serve_trace(&trace).unwrap();
        assert_eq!(summary.requests(), 4);
        assert_eq!(network.total_cost().requests(), 4);
        assert_eq!(network.cost_of_source(Host::new(0)).requests(), 2);
        assert_eq!(network.cost_of_source(Host::new(4)).requests(), 1);
        assert_eq!(network.cost_of_source(Host::new(2)).requests(), 0);
        let per_source_total: u64 = (0..8)
            .map(|h| network.cost_of_source(Host::new(h)).total().total())
            .sum();
        assert_eq!(per_source_total, network.total_cost().total().total());
    }

    #[test]
    fn degrees_are_bounded_by_the_ego_tree_structure() {
        let network = SelfAdjustingNetwork::new(10, AlgorithmKind::RotorPush, 0).unwrap();
        // Every host appears in 9 foreign ego-trees with at most 3 tree links
        // each, plus at most 1 root link per tree and 1 own-tree link.
        let upper = 1 + 9 * 4;
        for host in (0..10).map(Host::new) {
            let degree = network.physical_degree(host);
            assert!(degree >= 1);
            assert!(degree <= upper, "host {host}: degree {degree}");
        }
        assert!(network.max_degree() <= upper);
        assert!(network.mean_degree() >= 1.0);
    }

    #[test]
    fn with_trace_supports_static_opt_and_beats_oblivious_on_skew() {
        let mut trace = Vec::new();
        for _ in 0..50 {
            trace.push(HostPair::from((1u32, 14u32)));
            trace.push(HostPair::from((1u32, 2u32)));
        }
        let mut opt =
            SelfAdjustingNetwork::with_trace(16, AlgorithmKind::StaticOpt, 0, &trace).unwrap();
        let mut oblivious =
            SelfAdjustingNetwork::new(16, AlgorithmKind::StaticOblivious, 0).unwrap();
        let opt_cost = opt.serve_trace(&trace).unwrap().total().total();
        let oblivious_cost = oblivious.serve_trace(&trace).unwrap().total().total();
        assert!(opt_cost < oblivious_cost);
    }

    #[test]
    fn invalid_requests_are_rejected_and_leave_no_trace() {
        let mut network = SelfAdjustingNetwork::new(4, AlgorithmKind::RotorPush, 0).unwrap();
        assert!(matches!(
            network.serve(Host::new(9), Host::new(1)),
            Err(NetworkError::UnknownHost { .. })
        ));
        assert!(matches!(
            network.serve(Host::new(1), Host::new(1)),
            Err(NetworkError::SelfLoop { .. })
        ));
        assert_eq!(network.total_cost().requests(), 0);
    }

    #[test]
    fn debug_output_mentions_the_algorithm() {
        let network = SelfAdjustingNetwork::new(4, AlgorithmKind::MaxPush, 0).unwrap();
        let rendered = format!("{network:?}");
        assert!(rendered.contains("MaxPush"));
        assert!(rendered.contains("num_hosts"));
    }
}
