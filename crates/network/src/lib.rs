//! # satn-network
//!
//! Multi-source self-adjusting networks built from the paper's single-source
//! tree networks.
//!
//! *Deterministic Self-Adjusting Tree Networks Using Rotor Walks* (ICDCS
//! 2022) studies a single source attached to the root of one self-adjusting
//! tree. Its introduction motivates the model through reconfigurable optical
//! datacenter networks, where "single-source tree networks can be combined to
//! form self-adjusting networks which serve multiple sources and whose
//! topology can be an arbitrary degree-bounded graph". This crate provides
//! that composition:
//!
//! * [`Host`] / [`HostPair`] — the network-level request model,
//! * [`EgoTree`] — one source's self-adjusting tree over all other hosts,
//!   managed by any of the paper's algorithms ([`satn_core::AlgorithmKind`]),
//! * [`SelfAdjustingNetwork`] — `n` ego-trees composed into one reconfigurable
//!   topology, with per-source cost accounting and physical-degree tracking,
//! * [`traffic`] — pair-level workload generators mirroring the locality
//!   knobs of the paper's evaluation (uniform, Zipf, hotspot, temporal).
//!
//! ```
//! use rand::SeedableRng;
//! use satn_core::AlgorithmKind;
//! use satn_network::{traffic, SelfAdjustingNetwork};
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let demand = traffic::hotspot(32, 2_000, 4, 0.9, &mut rng);
//! let mut network = SelfAdjustingNetwork::new(32, AlgorithmKind::RotorPush, 1)?;
//! let cost = network.serve_trace(demand.pairs())?;
//! assert_eq!(cost.requests(), 2_000);
//! # Ok::<(), satn_network::NetworkError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod egotree;
mod error;
mod host;
mod network;
pub mod traffic;

pub use egotree::EgoTree;
pub use error::NetworkError;
pub use host::{Host, HostPair};
pub use network::SelfAdjustingNetwork;
pub use traffic::Traffic;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use satn_core::AlgorithmKind;

    fn arb_traffic() -> impl Strategy<Value = Traffic> {
        (4u32..=24, 1usize..300, any::<u64>(), 0.0f64..=0.95).prop_map(
            |(hosts, length, seed, p)| {
                let mut rng = StdRng::seed_from_u64(seed);
                traffic::temporal(hosts, length, p, &mut rng)
            },
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn every_algorithm_serves_arbitrary_traffic(traffic in arb_traffic(), seed in any::<u64>()) {
            for kind in [
                AlgorithmKind::RotorPush,
                AlgorithmKind::RandomPush,
                AlgorithmKind::MoveHalf,
                AlgorithmKind::MaxPush,
                AlgorithmKind::StaticOblivious,
            ] {
                let mut network =
                    SelfAdjustingNetwork::new(traffic.num_hosts(), kind, seed).unwrap();
                let summary = network.serve_trace(traffic.pairs()).unwrap();
                prop_assert_eq!(summary.requests(), traffic.len() as u64);
                // Every ego-tree still holds a valid bijection.
                for host in 0..traffic.num_hosts() {
                    prop_assert!(network
                        .ego_tree(Host::new(host))
                        .occupancy()
                        .is_consistent());
                }
            }
        }

        #[test]
        fn route_lengths_are_within_the_tree_depth(traffic in arb_traffic(), seed in any::<u64>()) {
            let mut network =
                SelfAdjustingNetwork::new(traffic.num_hosts(), AlgorithmKind::RotorPush, seed)
                    .unwrap();
            network.serve_trace(traffic.pairs()).unwrap();
            let depth = network
                .ego_tree(Host::new(0))
                .occupancy()
                .tree()
                .max_level() as u64;
            for source in 0..traffic.num_hosts() {
                for destination in 0..traffic.num_hosts() {
                    if source == destination {
                        continue;
                    }
                    let length = network
                        .route_length(Host::new(source), Host::new(destination))
                        .unwrap();
                    prop_assert!(length >= 1 && length <= depth + 1);
                }
            }
        }

        #[test]
        fn serving_a_trace_twice_never_increases_the_second_pass_cost_for_static_opt(
            traffic in arb_traffic(),
        ) {
            // Static-Opt is a static tree laid out for the trace frequencies:
            // replaying the same trace must cost exactly the same again.
            let mut network = SelfAdjustingNetwork::with_trace(
                traffic.num_hosts(),
                AlgorithmKind::StaticOpt,
                0,
                traffic.pairs(),
            )
            .unwrap();
            let first = network.serve_trace(traffic.pairs()).unwrap();
            let second = network.serve_trace(traffic.pairs()).unwrap();
            prop_assert_eq!(first.total(), second.total());
        }
    }
}
