//! One source's self-adjusting tree over all other hosts.

use crate::error::NetworkError;
use crate::host::Host;
use satn_core::{AlgorithmKind, SelfAdjustingTree};
use satn_tree::{CompleteTree, ElementId, NodeId, Occupancy, ServeCost};

/// The *ego-tree* of one source host: a complete binary tree whose elements
/// are the other hosts of the network, reorganised by one of the paper's
/// single-source algorithms.
///
/// The source itself is attached to the root of the tree; a request from the
/// source to destination `d` costs the current depth of `d` plus one (the
/// access cost of the underlying model) plus whatever swaps the algorithm
/// performs. Because a network with `n` hosts has `n − 1` possible
/// destinations, which is usually not of the form `2^L − 1`, the tree is
/// padded with *placeholder* elements that are never requested.
///
/// # Examples
///
/// ```
/// use satn_core::AlgorithmKind;
/// use satn_network::{EgoTree, Host};
///
/// let mut ego = EgoTree::new(Host::new(0), 16, AlgorithmKind::RotorPush, 1)?;
/// let cost = ego.serve(Host::new(9))?;
/// assert!(cost.access >= 1);
/// // The destination was pulled to the root of the ego-tree.
/// assert_eq!(ego.depth_of(Host::new(9))?, 0);
/// # Ok::<(), satn_network::NetworkError>(())
/// ```
pub struct EgoTree {
    source: Host,
    num_hosts: u32,
    algorithm: Box<dyn SelfAdjustingTree + Send>,
    kind: AlgorithmKind,
}

impl std::fmt::Debug for EgoTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EgoTree")
            .field("source", &self.source)
            .field("num_hosts", &self.num_hosts)
            .field("algorithm", &self.kind)
            .finish_non_exhaustive()
    }
}

impl EgoTree {
    /// Creates the ego-tree of `source` in a network of `num_hosts` hosts,
    /// managed by the given algorithm. `seed` feeds the randomized algorithms
    /// and is ignored by the deterministic ones.
    ///
    /// # Errors
    ///
    /// * [`NetworkError::TooFewHosts`] if `num_hosts < 2`,
    /// * [`NetworkError::UnknownHost`] if `source` is outside the network,
    /// * [`NetworkError::TraceRequired`] for offline algorithms
    ///   ([`AlgorithmKind::StaticOpt`]) — use [`EgoTree::with_trace`] instead.
    pub fn new(
        source: Host,
        num_hosts: u32,
        kind: AlgorithmKind,
        seed: u64,
    ) -> Result<Self, NetworkError> {
        EgoTree::build(source, num_hosts, kind, seed, None)
    }

    /// Creates the ego-tree of `source`, giving offline algorithms the full
    /// sequence of destinations this source will request.
    ///
    /// # Errors
    ///
    /// Same as [`EgoTree::new`], plus [`NetworkError::UnknownHost`] /
    /// [`NetworkError::SelfLoop`] if the trace mentions an invalid
    /// destination.
    pub fn with_trace(
        source: Host,
        num_hosts: u32,
        kind: AlgorithmKind,
        seed: u64,
        destinations: &[Host],
    ) -> Result<Self, NetworkError> {
        EgoTree::build(source, num_hosts, kind, seed, Some(destinations))
    }

    fn build(
        source: Host,
        num_hosts: u32,
        kind: AlgorithmKind,
        seed: u64,
        destinations: Option<&[Host]>,
    ) -> Result<Self, NetworkError> {
        if num_hosts < 2 {
            return Err(NetworkError::TooFewHosts { num_hosts });
        }
        if source.index() >= num_hosts {
            return Err(NetworkError::UnknownHost {
                host: source,
                num_hosts,
            });
        }
        let levels = levels_for(num_hosts - 1);
        let tree = CompleteTree::with_levels(levels)?;
        let sequence = match destinations {
            Some(destinations) => {
                let mut sequence = Vec::with_capacity(destinations.len());
                for &destination in destinations {
                    sequence.push(element_of(source, num_hosts, destination)?);
                }
                sequence
            }
            None => {
                if kind == AlgorithmKind::StaticOpt {
                    return Err(NetworkError::TraceRequired {
                        algorithm: kind.name(),
                    });
                }
                Vec::new()
            }
        };
        let algorithm = kind.instantiate(Occupancy::identity(tree), seed, &sequence)?;
        Ok(EgoTree {
            source,
            num_hosts,
            algorithm,
            kind,
        })
    }

    /// The source host this ego-tree belongs to.
    pub fn source(&self) -> Host {
        self.source
    }

    /// The number of hosts in the surrounding network.
    pub fn num_hosts(&self) -> u32 {
        self.num_hosts
    }

    /// The algorithm managing this tree.
    pub fn algorithm_kind(&self) -> AlgorithmKind {
        self.kind
    }

    /// The current element-to-node mapping of the underlying tree.
    pub fn occupancy(&self) -> &Occupancy {
        self.algorithm.occupancy()
    }

    /// The number of placeholder elements padding the tree (never requested).
    pub fn num_placeholders(&self) -> u32 {
        self.occupancy().num_elements() - (self.num_hosts - 1)
    }

    /// Serves a request from the source to `destination`.
    ///
    /// # Errors
    ///
    /// * [`NetworkError::SelfLoop`] if `destination` equals the source,
    /// * [`NetworkError::UnknownHost`] if `destination` is outside the
    ///   network.
    pub fn serve(&mut self, destination: Host) -> Result<ServeCost, NetworkError> {
        let element = element_of(self.source, self.num_hosts, destination)?;
        Ok(self.algorithm.serve(element)?)
    }

    /// The current depth of `destination` in this ego-tree (0 = root).
    ///
    /// # Errors
    ///
    /// Same as [`EgoTree::serve`], but the tree is not modified.
    pub fn depth_of(&self, destination: Host) -> Result<u32, NetworkError> {
        let element = element_of(self.source, self.num_hosts, destination)?;
        Ok(self.occupancy().level_of(element))
    }

    /// The host currently stored at tree node `node`, or `None` for
    /// placeholder elements.
    pub fn host_at(&self, node: NodeId) -> Option<Host> {
        host_of(
            self.source,
            self.num_hosts,
            self.occupancy().element_at(node),
        )
    }
}

/// The number of tree levels needed to store `destinations` elements.
fn levels_for(destinations: u32) -> u32 {
    let mut levels = 1u32;
    while (1u64 << levels) - 1 < u64::from(destinations) {
        levels += 1;
    }
    levels
}

/// Maps a destination host to its element id in `source`'s ego-tree.
fn element_of(source: Host, num_hosts: u32, destination: Host) -> Result<ElementId, NetworkError> {
    if destination.index() >= num_hosts {
        return Err(NetworkError::UnknownHost {
            host: destination,
            num_hosts,
        });
    }
    if destination == source {
        return Err(NetworkError::SelfLoop { host: source });
    }
    let index = if destination.index() < source.index() {
        destination.index()
    } else {
        destination.index() - 1
    };
    Ok(ElementId::new(index))
}

/// Maps an element id back to the destination host, or `None` for
/// placeholders.
fn host_of(source: Host, num_hosts: u32, element: ElementId) -> Option<Host> {
    if element.index() >= num_hosts - 1 {
        return None;
    }
    let host = if element.index() < source.index() {
        element.index()
    } else {
        element.index() + 1
    };
    Some(Host::new(host))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_cover_the_destination_count() {
        assert_eq!(levels_for(1), 1);
        assert_eq!(levels_for(3), 2);
        assert_eq!(levels_for(4), 3);
        assert_eq!(levels_for(7), 3);
        assert_eq!(levels_for(8), 4);
        assert_eq!(levels_for(1023), 10);
        assert_eq!(levels_for(1024), 11);
    }

    #[test]
    fn element_mapping_skips_the_source_and_roundtrips() {
        let source = Host::new(3);
        let num_hosts = 8;
        let mut seen = Vec::new();
        for destination in (0..num_hosts).map(Host::new) {
            if destination == source {
                assert!(matches!(
                    element_of(source, num_hosts, destination),
                    Err(NetworkError::SelfLoop { .. })
                ));
                continue;
            }
            let element = element_of(source, num_hosts, destination).unwrap();
            assert_eq!(host_of(source, num_hosts, element), Some(destination));
            seen.push(element.index());
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..num_hosts - 1).collect::<Vec<_>>());
        // Padding elements map to no host.
        assert_eq!(
            host_of(source, num_hosts, ElementId::new(num_hosts - 1)),
            None
        );
    }

    #[test]
    fn ego_tree_serves_and_self_adjusts() {
        let mut ego = EgoTree::new(Host::new(2), 20, AlgorithmKind::RotorPush, 0).unwrap();
        assert_eq!(ego.source(), Host::new(2));
        assert_eq!(ego.num_hosts(), 20);
        // 19 destinations need 5 levels (31 nodes), so 12 placeholders.
        assert_eq!(ego.num_placeholders(), 12);
        let destination = Host::new(17);
        let before = ego.depth_of(destination).unwrap();
        let cost = ego.serve(destination).unwrap();
        assert_eq!(cost.access, u64::from(before) + 1);
        assert_eq!(ego.depth_of(destination).unwrap(), 0);
        assert!(ego.occupancy().is_consistent());
    }

    #[test]
    fn ego_tree_rejects_bad_requests() {
        let mut ego = EgoTree::new(Host::new(0), 4, AlgorithmKind::MoveHalf, 0).unwrap();
        assert!(matches!(
            ego.serve(Host::new(0)),
            Err(NetworkError::SelfLoop { .. })
        ));
        assert!(matches!(
            ego.serve(Host::new(9)),
            Err(NetworkError::UnknownHost { .. })
        ));
    }

    #[test]
    fn static_opt_requires_a_trace() {
        assert!(matches!(
            EgoTree::new(Host::new(0), 8, AlgorithmKind::StaticOpt, 0),
            Err(NetworkError::TraceRequired { .. })
        ));
        let destinations = [Host::new(3), Host::new(3), Host::new(5)];
        let mut ego =
            EgoTree::with_trace(Host::new(0), 8, AlgorithmKind::StaticOpt, 0, &destinations)
                .unwrap();
        // Static-Opt placed the most frequent destination at the root.
        assert_eq!(ego.depth_of(Host::new(3)).unwrap(), 0);
        let cost = ego.serve(Host::new(3)).unwrap();
        assert_eq!(cost.total(), 1);
    }

    #[test]
    fn construction_validates_hosts() {
        assert!(matches!(
            EgoTree::new(Host::new(0), 1, AlgorithmKind::RotorPush, 0),
            Err(NetworkError::TooFewHosts { .. })
        ));
        assert!(matches!(
            EgoTree::new(Host::new(9), 4, AlgorithmKind::RotorPush, 0),
            Err(NetworkError::UnknownHost { .. })
        ));
    }

    #[test]
    fn host_at_reports_placeholders_as_none() {
        let ego = EgoTree::new(Host::new(1), 4, AlgorithmKind::RotorPush, 0).unwrap();
        // 3 destinations exactly fill a 2-level tree: no placeholders.
        assert_eq!(ego.num_placeholders(), 0);
        let hosts: Vec<Option<Host>> = ego
            .occupancy()
            .tree()
            .nodes()
            .map(|node| ego.host_at(node))
            .collect();
        assert!(hosts.iter().all(Option::is_some));
        let ego = EgoTree::new(Host::new(1), 5, AlgorithmKind::RotorPush, 0).unwrap();
        // 4 destinations in a 7-node tree: 3 placeholders.
        let placeholders = ego
            .occupancy()
            .tree()
            .nodes()
            .filter(|&node| ego.host_at(node).is_none())
            .count();
        assert_eq!(placeholders, 3);
    }
}
