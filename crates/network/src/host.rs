//! Host identifiers for the multi-source network model.

use std::fmt;

/// Identifies one host (server, top-of-rack switch, …) of the reconfigurable
/// network. Hosts are numbered `0..num_hosts`.
///
/// A host plays two roles at once: it is the *source* of its own ego-tree and
/// it appears as a *destination element* in the ego-trees of all other hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Host(u32);

impl Host {
    /// Creates a host identifier from its index.
    pub const fn new(index: u32) -> Self {
        Host(index)
    }

    /// The numeric index of the host.
    pub const fn index(self) -> u32 {
        self.0
    }

    /// The index as a `usize`, for vector indexing.
    pub const fn usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Host {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

impl From<u32> for Host {
    fn from(index: u32) -> Self {
        Host::new(index)
    }
}

/// A directed communication request between two hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HostPair {
    /// The host issuing the request (the ego-tree that serves it).
    pub source: Host,
    /// The host being contacted.
    pub destination: Host,
}

impl HostPair {
    /// Creates a source–destination pair.
    pub const fn new(source: Host, destination: Host) -> Self {
        HostPair {
            source,
            destination,
        }
    }

    /// Returns the pair with source and destination exchanged.
    pub const fn reversed(self) -> Self {
        HostPair {
            source: self.destination,
            destination: self.source,
        }
    }

    /// Whether source and destination coincide (such requests are rejected by
    /// the network).
    pub const fn is_self_loop(self) -> bool {
        self.source.index() == self.destination.index()
    }
}

impl fmt::Display for HostPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}→{}", self.source, self.destination)
    }
}

impl From<(u32, u32)> for HostPair {
    fn from((source, destination): (u32, u32)) -> Self {
        HostPair::new(Host::new(source), Host::new(destination))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_display_and_conversions() {
        let host = Host::from(7u32);
        assert_eq!(host.index(), 7);
        assert_eq!(host.usize(), 7);
        assert_eq!(host.to_string(), "h7");
    }

    #[test]
    fn pair_reversal_and_self_loop_detection() {
        let pair = HostPair::from((3u32, 5u32));
        assert_eq!(pair.to_string(), "h3→h5");
        assert_eq!(pair.reversed(), HostPair::from((5u32, 3u32)));
        assert!(!pair.is_self_loop());
        assert!(HostPair::from((4u32, 4u32)).is_self_loop());
    }

    #[test]
    fn hosts_order_by_index() {
        let mut hosts = vec![Host::new(4), Host::new(1), Host::new(3)];
        hosts.sort();
        assert_eq!(hosts, vec![Host::new(1), Host::new(3), Host::new(4)]);
    }
}
