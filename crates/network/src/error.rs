//! Error type of the multi-source network layer.

use crate::host::Host;
use satn_tree::TreeError;
use std::fmt;

/// Errors reported by [`crate::SelfAdjustingNetwork`] and [`crate::EgoTree`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetworkError {
    /// The host index is outside `0..num_hosts`.
    UnknownHost {
        /// The offending host.
        host: Host,
        /// The number of hosts in the network.
        num_hosts: u32,
    },
    /// A request had the same source and destination.
    SelfLoop {
        /// The host that would talk to itself.
        host: Host,
    },
    /// A network needs at least two hosts.
    TooFewHosts {
        /// The requested number of hosts.
        num_hosts: u32,
    },
    /// The chosen per-source algorithm needs the full trace in advance
    /// (Static-Opt), but the network was built without one.
    TraceRequired {
        /// The name of the algorithm that needs the trace.
        algorithm: &'static str,
    },
    /// An error bubbled up from the underlying tree substrate.
    Tree(TreeError),
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::UnknownHost { host, num_hosts } => {
                write!(f, "host {host} is outside the network of {num_hosts} hosts")
            }
            NetworkError::SelfLoop { host } => {
                write!(f, "host {host} cannot issue a request to itself")
            }
            NetworkError::TooFewHosts { num_hosts } => {
                write!(f, "a network needs at least 2 hosts, got {num_hosts}")
            }
            NetworkError::TraceRequired { algorithm } => {
                write!(
                    f,
                    "algorithm {algorithm} is offline and needs the trace up front; use with_trace"
                )
            }
            NetworkError::Tree(err) => write!(f, "tree error: {err}"),
        }
    }
}

impl std::error::Error for NetworkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetworkError::Tree(err) => Some(err),
            _ => None,
        }
    }
}

impl From<TreeError> for NetworkError {
    fn from(err: TreeError) -> Self {
        NetworkError::Tree(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let messages = [
            NetworkError::UnknownHost {
                host: Host::new(9),
                num_hosts: 4,
            }
            .to_string(),
            NetworkError::SelfLoop { host: Host::new(2) }.to_string(),
            NetworkError::TooFewHosts { num_hosts: 1 }.to_string(),
            NetworkError::TraceRequired {
                algorithm: "static-opt",
            }
            .to_string(),
        ];
        assert!(messages[0].contains("h9"));
        assert!(messages[1].contains("itself"));
        assert!(messages[2].contains("at least 2"));
        assert!(messages[3].contains("with_trace"));
    }

    #[test]
    fn tree_errors_convert_and_expose_their_source() {
        let tree_err = satn_tree::CompleteTree::with_levels(0).unwrap_err();
        let err: NetworkError = tree_err.into();
        assert!(matches!(err, NetworkError::Tree(_)));
        assert!(std::error::Error::source(&err).is_some());
    }
}
