//! Swap-sequence building blocks shared by the baseline algorithms.
//!
//! `Move-Half` and `Max-Push` move elements between arbitrary tree nodes
//! (not only along the access path). These helpers express such relocations
//! as sequences of adjacent swaps along the unique tree path between the
//! source and the destination, which is how the paper accounts for their
//! adjustment cost.

use satn_tree::{ElementId, MarkedRound, NodeId, Occupancy, TreeError};

/// Moves `element` from its current node to `target` by swapping along the
/// unique tree path (up to the lowest common ancestor, then down). Returns
/// the number of swaps used, which equals the tree distance between the two
/// nodes.
///
/// Every element on the path shifts one position towards the element's
/// original node. The root paths of both endpoints are marked first, mirroring
/// the traversal the algorithm performs to locate them (the baselines using
/// this helper are not marking-restricted in the paper).
///
/// # Errors
///
/// Returns [`TreeError::ElementOutOfRange`] / [`TreeError::NodeOutOfRange`]
/// for unknown identifiers, plus any error of the underlying swaps.
pub fn relocate(
    round: &mut MarkedRound<'_>,
    element: ElementId,
    target: NodeId,
) -> Result<u64, TreeError> {
    round.occupancy().check_element(element)?;
    round.occupancy().tree().check_node(target)?;
    let source = round.occupancy().node_of(element);
    round.mark_root_path(source)?;
    round.mark_root_path(target)?;

    let lca = source.lowest_common_ancestor(target);
    let mut swaps = 0;

    // Walk the element up from its node to the LCA.
    let mut current = source;
    while current != lca {
        let parent = current.parent().expect("non-LCA node has a parent");
        round.swap(parent, current)?;
        current = parent;
        swaps += 1;
    }

    // Walk it down from the LCA to the target (allocation-free descent:
    // `ancestors().rev()` is the root-to-target path, skipped past the LCA).
    for node in target.ancestors().rev().skip(lca.level() as usize + 1) {
        let parent = node.parent().expect("descent nodes below the root");
        round.swap(parent, node)?;
        swaps += 1;
    }
    Ok(swaps)
}

/// Exchanges the positions of two elements using `2·dist − 1` adjacent swaps
/// (where `dist` is the tree distance between their nodes), leaving every
/// other element where it was.
///
/// This is the reorganisation step of `Move-Half`: the accessed element moves
/// to the node of the chosen higher-level element and vice versa.
///
/// # Errors
///
/// Propagates the errors of [`relocate`].
pub fn exchange_elements(
    round: &mut MarkedRound<'_>,
    first: ElementId,
    second: ElementId,
) -> Result<u64, TreeError> {
    round.occupancy().check_element(first)?;
    round.occupancy().check_element(second)?;
    if first == second {
        return Ok(0);
    }
    let node_of_first = round.occupancy().node_of(first);
    let node_of_second = round.occupancy().node_of(second);
    let mut swaps = relocate(round, first, node_of_second)?;
    swaps += relocate(round, second, node_of_first)?;
    Ok(swaps)
}

/// The allocation-free counterpart of [`relocate`] used by batched fast
/// paths: moves `element` to `target` with unchecked adjacent swaps along the
/// unique tree path, without a [`MarkedRound`] bitmap or path vector. Returns
/// the number of swaps (the tree distance).
///
/// Callers must pass a valid element and node; the swap sequence is
/// identical to [`relocate`]'s, so the two are interchangeable cost- and
/// state-wise (asserted by the tests below and the differential suite in
/// `satn-sim`).
pub fn relocate_unchecked(occupancy: &mut Occupancy, element: ElementId, target: NodeId) -> u64 {
    let source = occupancy.node_of(element);
    let lca = source.lowest_common_ancestor(target);
    let mut swaps = 0;

    let mut current = source;
    while current != lca {
        let parent = current.parent().expect("non-LCA node has a parent");
        occupancy.swap_unchecked(parent, current);
        current = parent;
        swaps += 1;
    }

    for level in lca.level()..target.level() {
        occupancy.swap_unchecked(
            target.ancestor_at_level(level),
            target.ancestor_at_level(level + 1),
        );
        swaps += 1;
    }
    swaps
}

/// The allocation-free counterpart of [`exchange_elements`]: swaps the
/// positions of two elements with `2·dist − 1` unchecked adjacent swaps.
pub fn exchange_elements_unchecked(
    occupancy: &mut Occupancy,
    first: ElementId,
    second: ElementId,
) -> u64 {
    if first == second {
        return 0;
    }
    let node_of_first = occupancy.node_of(first);
    let node_of_second = occupancy.node_of(second);
    let mut swaps = relocate_unchecked(occupancy, first, node_of_second);
    swaps += relocate_unchecked(occupancy, second, node_of_first);
    swaps
}

#[cfg(test)]
mod tests {
    use super::*;
    use satn_tree::CompleteTree;

    fn identity(levels: u32) -> Occupancy {
        Occupancy::identity(CompleteTree::with_levels(levels).unwrap())
    }

    fn distance(a: NodeId, b: NodeId) -> u64 {
        let lca = a.lowest_common_ancestor(b);
        ((a.level() - lca.level()) + (b.level() - lca.level())) as u64
    }

    #[test]
    fn relocate_moves_element_and_costs_distance() {
        let mut occ = identity(4);
        let element = ElementId::new(11);
        let target = NodeId::new(14);
        let expected = distance(NodeId::new(11), target);
        let mut round = MarkedRound::access(&mut occ, element).unwrap();
        let swaps = relocate(&mut round, element, target).unwrap();
        assert_eq!(swaps, expected);
        let cost = round.finish();
        assert_eq!(cost.adjustment, expected);
        assert_eq!(occ.node_of(element), target);
        assert!(occ.is_consistent());
    }

    #[test]
    fn relocate_to_own_node_is_free() {
        let mut occ = identity(3);
        let element = ElementId::new(5);
        let mut round = MarkedRound::access(&mut occ, element).unwrap();
        let swaps = relocate(&mut round, element, NodeId::new(5)).unwrap();
        assert_eq!(swaps, 0);
    }

    #[test]
    fn relocate_to_ancestor_and_descendant() {
        let mut occ = identity(4);
        let element = ElementId::new(9);
        let mut round = MarkedRound::access(&mut occ, element).unwrap();
        relocate(&mut round, element, NodeId::new(1)).unwrap();
        assert_eq!(round.occupancy().node_of(element), NodeId::new(1));
        relocate(&mut round, element, NodeId::new(10)).unwrap();
        assert_eq!(round.occupancy().node_of(element), NodeId::new(10));
        round.finish();
        assert!(occ.is_consistent());
    }

    #[test]
    fn exchange_swaps_two_elements_and_restores_the_rest() {
        let mut occ = identity(4);
        let before = occ.clone();
        let first = ElementId::new(12);
        let second = ElementId::new(2);
        let expected_swaps = 2 * distance(NodeId::new(12), NodeId::new(2)) - 1;
        let mut round = MarkedRound::access(&mut occ, first).unwrap();
        let swaps = exchange_elements(&mut round, first, second).unwrap();
        assert_eq!(swaps, expected_swaps);
        round.finish();
        assert_eq!(occ.node_of(first), NodeId::new(2));
        assert_eq!(occ.node_of(second), NodeId::new(12));
        for (node, element) in before.iter() {
            if element != first && element != second {
                assert_eq!(
                    occ.node_of(element),
                    node,
                    "element {element} must not move"
                );
            }
        }
    }

    #[test]
    fn exchange_same_element_is_noop() {
        let mut occ = identity(3);
        let mut round = MarkedRound::access(&mut occ, ElementId::new(3)).unwrap();
        assert_eq!(
            exchange_elements(&mut round, ElementId::new(3), ElementId::new(3)).unwrap(),
            0
        );
    }

    #[test]
    fn relocate_rejects_unknown_identifiers() {
        let mut occ = identity(3);
        let mut round = MarkedRound::access(&mut occ, ElementId::new(1)).unwrap();
        assert!(relocate(&mut round, ElementId::new(99), NodeId::new(1)).is_err());
        assert!(relocate(&mut round, ElementId::new(1), NodeId::new(99)).is_err());
    }

    #[test]
    fn unchecked_relocate_matches_marked_relocate() {
        for (element, target) in [(11u32, 14u32), (9, 1), (2, 12), (5, 5), (7, 8)] {
            let mut marked = identity(4);
            let mut unchecked = identity(4);
            let element = ElementId::new(element);
            let target = NodeId::new(target);
            let mut round = MarkedRound::access(&mut marked, element).unwrap();
            let marked_swaps = relocate(&mut round, element, target).unwrap();
            round.finish();
            let unchecked_swaps = relocate_unchecked(&mut unchecked, element, target);
            assert_eq!(marked_swaps, unchecked_swaps, "{element} -> {target}");
            assert_eq!(marked, unchecked, "{element} -> {target}");
        }
    }

    #[test]
    fn unchecked_exchange_matches_marked_exchange() {
        for (first, second) in [(12u32, 2u32), (3, 3), (1, 0), (14, 7)] {
            let mut marked = identity(4);
            let mut unchecked = identity(4);
            let first = ElementId::new(first);
            let second = ElementId::new(second);
            let mut round = MarkedRound::access(&mut marked, first).unwrap();
            let marked_swaps = exchange_elements(&mut round, first, second).unwrap();
            round.finish();
            let unchecked_swaps = exchange_elements_unchecked(&mut unchecked, first, second);
            assert_eq!(marked_swaps, unchecked_swaps, "{first} <-> {second}");
            assert_eq!(marked, unchecked, "{first} <-> {second}");
        }
    }

    #[test]
    fn exchange_adjacent_elements_uses_single_swap() {
        let mut occ = identity(3);
        let mut round = MarkedRound::access(&mut occ, ElementId::new(1)).unwrap();
        let swaps = exchange_elements(&mut round, ElementId::new(1), ElementId::new(0)).unwrap();
        assert_eq!(swaps, 1);
        round.finish();
        assert_eq!(occ.node_of(ElementId::new(1)), NodeId::ROOT);
    }
}
