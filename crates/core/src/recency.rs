//! Access-recency bookkeeping shared by the rank-based algorithms.
//!
//! `Move-Half` and `Max-Push` pick, on each level, the element with the
//! highest working-set rank — equivalently the *least recently used* element
//! of the level. Tracking the last access time of every element is enough to
//! answer these queries; the actual working-set rank (number of distinct
//! elements accessed since) is computed in `satn-analysis` where it is needed.

use satn_tree::ElementId;

/// Tracks the last access time of every element.
///
/// Time starts at 1; elements that have never been accessed report time 0 and
/// therefore always count as least recently used (ties are broken towards the
/// smaller element id, making all algorithms that use the tracker
/// deterministic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecencyTracker {
    last_access: Vec<u64>,
    clock: u64,
}

impl RecencyTracker {
    /// Creates a tracker for `num_elements` elements, none of them accessed.
    pub fn new(num_elements: u32) -> Self {
        RecencyTracker {
            last_access: vec![0; num_elements as usize],
            clock: 0,
        }
    }

    /// Number of elements tracked.
    pub fn num_elements(&self) -> u32 {
        self.last_access.len() as u32
    }

    /// Reconstitutes a tracker from explicit parts: one last-access time per
    /// element plus the logical clock. Used by the warm reshard handover to
    /// carry recency state across an element remap (entries of elements that
    /// just arrived are 0, exactly like never-accessed elements).
    ///
    /// # Panics
    ///
    /// Panics if any last-access time is ahead of the clock.
    pub fn from_parts(last_access: Vec<u64>, clock: u64) -> Self {
        assert!(
            last_access.iter().all(|&t| t <= clock),
            "a last-access time cannot be ahead of the clock"
        );
        RecencyTracker { last_access, clock }
    }

    /// Records an access to `element` at the next time step.
    ///
    /// # Panics
    ///
    /// Panics if the element is out of range.
    pub fn touch(&mut self, element: ElementId) {
        self.clock += 1;
        self.last_access[element.usize()] = self.clock;
    }

    /// Returns the time of the last access of `element` (0 if never accessed).
    ///
    /// # Panics
    ///
    /// Panics if the element is out of range.
    pub fn last_access(&self, element: ElementId) -> u64 {
        self.last_access[element.usize()]
    }

    /// Returns the current logical time (number of accesses recorded).
    pub fn now(&self) -> u64 {
        self.clock
    }

    /// Returns the least recently used element among `candidates` — the one
    /// with the *highest* working-set rank. Ties (e.g. several never-accessed
    /// elements) are broken towards the smaller element id. Returns `None`
    /// for an empty candidate set.
    pub fn least_recently_used<I>(&self, candidates: I) -> Option<ElementId>
    where
        I: IntoIterator<Item = ElementId>,
    {
        candidates
            .into_iter()
            .min_by_key(|e| (self.last_access(*e), e.index()))
    }

    /// Returns the most recently used element among `candidates`, breaking
    /// ties towards the smaller element id. Returns `None` for an empty set.
    pub fn most_recently_used<I>(&self, candidates: I) -> Option<ElementId>
    where
        I: IntoIterator<Item = ElementId>,
    {
        candidates
            .into_iter()
            .max_by_key(|e| (self.last_access(*e), u32::MAX - e.index()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_elements_report_time_zero() {
        let tracker = RecencyTracker::new(4);
        assert_eq!(tracker.now(), 0);
        for i in 0..4 {
            assert_eq!(tracker.last_access(ElementId::new(i)), 0);
        }
        assert_eq!(tracker.num_elements(), 4);
    }

    #[test]
    fn touch_advances_clock_and_updates_element() {
        let mut tracker = RecencyTracker::new(3);
        tracker.touch(ElementId::new(1));
        tracker.touch(ElementId::new(2));
        tracker.touch(ElementId::new(1));
        assert_eq!(tracker.now(), 3);
        assert_eq!(tracker.last_access(ElementId::new(1)), 3);
        assert_eq!(tracker.last_access(ElementId::new(2)), 2);
        assert_eq!(tracker.last_access(ElementId::new(0)), 0);
    }

    #[test]
    fn lru_prefers_never_accessed_then_oldest() {
        let mut tracker = RecencyTracker::new(5);
        tracker.touch(ElementId::new(0));
        tracker.touch(ElementId::new(3));
        // Elements 1, 2, 4 never accessed -> LRU is the smallest id among them.
        let lru = tracker
            .least_recently_used((0..5).map(ElementId::new))
            .unwrap();
        assert_eq!(lru, ElementId::new(1));
        // Among accessed elements only, the earliest touch wins.
        let lru = tracker
            .least_recently_used([ElementId::new(0), ElementId::new(3)])
            .unwrap();
        assert_eq!(lru, ElementId::new(0));
        assert_eq!(tracker.least_recently_used([]), None);
    }

    #[test]
    fn mru_returns_latest_access() {
        let mut tracker = RecencyTracker::new(4);
        tracker.touch(ElementId::new(2));
        tracker.touch(ElementId::new(1));
        let mru = tracker
            .most_recently_used((0..4).map(ElementId::new))
            .unwrap();
        assert_eq!(mru, ElementId::new(1));
        // Ties among never-accessed elements break towards the smaller id.
        let mru = tracker
            .most_recently_used([ElementId::new(3), ElementId::new(0)])
            .unwrap();
        assert_eq!(mru, ElementId::new(0));
    }
}
