//! The common interface of all self-adjusting single-source tree networks.

use crate::warm::WarmState;
use satn_rotor::RotorState;
use satn_tree::{CompleteTree, CostSummary, ElementId, Occupancy, ServeCost, TreeError};

/// A self-adjusting single-source tree network.
///
/// Implementations own an [`Occupancy`] (the current element-to-node mapping)
/// and serve an online sequence of element accesses, paying `level + 1` per
/// access plus one unit per swap they perform to reorganise the tree.
///
/// All algorithms of the paper implement this trait: `Rotor-Push`,
/// `Random-Push`, `Move-Half`, `Max-Push` (Strict-MRU), plus the static
/// baselines `Static-Opt` and `Static-Oblivious` and the naive
/// `Move-To-Front` generalisation.
pub trait SelfAdjustingTree {
    /// A short, stable, human-readable algorithm name (e.g. `"rotor-push"`).
    fn name(&self) -> &'static str;

    /// The current element-to-node mapping.
    fn occupancy(&self) -> &Occupancy;

    /// Serves a single request and returns its access and adjustment cost.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::ElementOutOfRange`] if the element does not exist.
    fn serve(&mut self, element: ElementId) -> Result<ServeCost, TreeError>;

    /// The tree topology the network runs on.
    fn tree(&self) -> CompleteTree {
        self.occupancy().tree()
    }

    /// Whether the algorithm ever reorganises the tree. Static baselines
    /// return `false`.
    fn is_self_adjusting(&self) -> bool {
        true
    }

    /// The rotor pointer state, if the algorithm maintains one.
    ///
    /// Exposed so generic observers (e.g. the invariant hooks of `satn-sim`)
    /// can check rotor-specific invariants without downcasting; algorithms
    /// without rotors return `None`. (Named distinctly from
    /// [`RotorPush::rotor_state`](crate::RotorPush::rotor_state), whose
    /// concrete accessor returns `&RotorState` directly.)
    fn rotors(&self) -> Option<&RotorState> {
        None
    }

    /// Exports the algorithm's carry-able internal state (rotor pointers,
    /// recency metadata, generator position) as a [`WarmState`] value, so a
    /// warm reshard handover can reconstitute an equivalent instance via
    /// [`AlgorithmKind::instantiate_warm`](crate::AlgorithmKind::instantiate_warm)
    /// instead of reseeding from scratch. Algorithms whose only state is the
    /// occupancy itself return the cold (empty) state.
    fn export_state(&self) -> WarmState {
        WarmState::default()
    }

    /// Serves a batch of requests, recording every per-request cost into
    /// `summary`.
    ///
    /// The default implementation loops over [`SelfAdjustingTree::serve`],
    /// touching the *next* request's root path
    /// ([`Occupancy::touch_path`]) before serving the current one so the
    /// upcoming walk's cache lines are in flight while this walk computes.
    /// Algorithms with cheap per-request state transitions override it with
    /// an allocation-free fast path (keeping the same prefetch pass).
    /// Overrides must be observationally identical to the default: same
    /// final occupancy, same per-request costs (the differential tests in
    /// `satn-sim` assert this).
    ///
    /// # Errors
    ///
    /// Returns the first error produced while serving; `summary` contains
    /// the costs of the requests served before the failure.
    fn serve_batch(
        &mut self,
        requests: &[ElementId],
        summary: &mut CostSummary,
    ) -> Result<(), TreeError> {
        for (i, &request) in requests.iter().enumerate() {
            if let Some(&next) = requests.get(i + 1) {
                self.occupancy().touch_path(next);
            }
            summary.record(self.serve(request)?);
        }
        Ok(())
    }

    /// Serves a whole request sequence and returns the aggregated costs.
    ///
    /// Routed through [`SelfAdjustingTree::serve_batch`], so algorithms with
    /// a batched fast path accelerate existing callers transparently.
    ///
    /// # Errors
    ///
    /// Returns the first error produced by [`SelfAdjustingTree::serve`].
    fn serve_sequence(&mut self, requests: &[ElementId]) -> Result<CostSummary, TreeError> {
        let mut summary = CostSummary::new();
        self.serve_batch(requests, &mut summary)?;
        Ok(summary)
    }

    /// Serves a request sequence, additionally returning the per-request
    /// costs (used for per-request comparisons such as Figure 5b).
    ///
    /// # Errors
    ///
    /// Returns the first error produced by [`SelfAdjustingTree::serve`].
    fn serve_sequence_detailed(
        &mut self,
        requests: &[ElementId],
    ) -> Result<Vec<ServeCost>, TreeError> {
        let mut costs = Vec::with_capacity(requests.len());
        for &request in requests {
            costs.push(self.serve(request)?);
        }
        Ok(costs)
    }
}

impl<T: SelfAdjustingTree + ?Sized> SelfAdjustingTree for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn occupancy(&self) -> &Occupancy {
        (**self).occupancy()
    }

    fn serve(&mut self, element: ElementId) -> Result<ServeCost, TreeError> {
        (**self).serve(element)
    }

    fn is_self_adjusting(&self) -> bool {
        (**self).is_self_adjusting()
    }

    fn rotors(&self) -> Option<&RotorState> {
        (**self).rotors()
    }

    fn export_state(&self) -> WarmState {
        (**self).export_state()
    }

    fn serve_batch(
        &mut self,
        requests: &[ElementId],
        summary: &mut CostSummary,
    ) -> Result<(), TreeError> {
        (**self).serve_batch(requests, summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::StaticOblivious;
    use satn_tree::Occupancy;

    #[test]
    fn default_serve_sequence_accumulates_costs() {
        let tree = CompleteTree::with_levels(3).unwrap();
        let mut alg = StaticOblivious::new(Occupancy::identity(tree));
        let requests: Vec<ElementId> =
            vec![ElementId::new(0), ElementId::new(3), ElementId::new(6)];
        let summary = alg.serve_sequence(&requests).unwrap();
        assert_eq!(summary.requests(), 3);
        // identity placement: costs 1 + 3 + 3
        assert_eq!(summary.total().access, 7);
        assert_eq!(summary.total().adjustment, 0);
    }

    #[test]
    fn boxed_trait_object_delegates() {
        let tree = CompleteTree::with_levels(3).unwrap();
        let mut alg: Box<dyn SelfAdjustingTree> =
            Box::new(StaticOblivious::new(Occupancy::identity(tree)));
        assert_eq!(alg.name(), "static-oblivious");
        assert!(!alg.is_self_adjusting());
        assert_eq!(alg.tree().num_nodes(), 7);
        let cost = alg.serve(ElementId::new(4)).unwrap();
        assert_eq!(cost.total(), 3);
        let detailed = alg
            .serve_sequence_detailed(&[ElementId::new(0), ElementId::new(4)])
            .unwrap();
        assert_eq!(detailed.len(), 2);
    }

    #[test]
    fn serve_sequence_propagates_errors() {
        let tree = CompleteTree::with_levels(2).unwrap();
        let mut alg = StaticOblivious::new(Occupancy::identity(tree));
        let err = alg
            .serve_sequence(&[ElementId::new(0), ElementId::new(9)])
            .unwrap_err();
        assert!(matches!(err, TreeError::ElementOutOfRange { .. }));
    }
}
