//! # satn-core
//!
//! Self-adjusting single-source tree network algorithms — a Rust
//! implementation of *Deterministic Self-Adjusting Tree Networks Using Rotor
//! Walks* (Avin, Bienkowski, Salem, Sama, Schmid, Schmidt — ICDCS 2022).
//!
//! A source attached to the root of a complete binary tree issues an online
//! sequence of requests to the `n` elements stored in the tree (one per
//! node). Serving a request costs the element's depth plus one; afterwards
//! the algorithm may reorganise the tree by swapping elements at adjacent
//! nodes, one unit per swap. This crate implements every algorithm studied
//! in the paper behind the common [`SelfAdjustingTree`] trait:
//!
//! * [`RotorPush`] — the deterministic, 12-competitive algorithm based on
//!   rotor walks (the paper's contribution),
//! * [`RandomPush`] — the randomized 16-competitive algorithm it
//!   derandomizes,
//! * [`MoveHalf`] and [`MaxPush`] (Strict-MRU) — the deterministic baselines
//!   of Avin et al. (LATIN 2020),
//! * [`StaticOpt`] / [`StaticOblivious`] — the static baselines of the
//!   empirical evaluation,
//! * [`MoveToFront`] — the non-competitive strawman from the introduction,
//!
//! together with the augmented push-down operation
//! ([`pushdown::augmented_push_down`], Definition 1 / Lemma 1) that both push
//! algorithms are built on, and the [`AlgorithmKind`] factory used by the
//! experiment harness.
//!
//! ```
//! use satn_core::{AlgorithmKind, RotorPush, SelfAdjustingTree};
//! use satn_tree::{CompleteTree, ElementId, Occupancy};
//!
//! let tree = CompleteTree::with_nodes(127)?;
//! let mut network = RotorPush::new(Occupancy::identity(tree));
//! let requests: Vec<ElementId> = (0..127).map(ElementId::new).collect();
//! let summary = network.serve_sequence(&requests)?;
//! assert_eq!(summary.requests(), 127);
//! // The total cost of a level-d request is at most 4d (Lemma 1).
//! assert!(summary.max_total() <= 4 * tree.max_level() as u64);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod algorithms;
pub mod ops;
pub mod pushdown;
mod recency;
mod suite;
mod traits;
mod warm;

pub use algorithms::ablation;
pub use algorithms::{
    MaxPush, MoveHalf, MoveToFront, RandomPush, RotorPush, StaticOblivious, StaticOpt,
};
pub use recency::RecencyTracker;
pub use suite::{AlgorithmKind, ParseAlgorithmError};
pub use traits::SelfAdjustingTree;
pub use warm::WarmState;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use satn_tree::{CompleteTree, ElementId, Occupancy};

    fn arb_requests(levels: u32, len: usize) -> impl Strategy<Value = Vec<ElementId>> {
        let n = (1u32 << levels) - 1;
        proptest::collection::vec((0..n).prop_map(ElementId::new), 1..len)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn every_algorithm_keeps_a_valid_bijection(
            requests in arb_requests(5, 60),
            seed in any::<u64>(),
        ) {
            let tree = CompleteTree::with_levels(5).unwrap();
            for kind in AlgorithmKind::EVALUATED {
                let mut alg = kind
                    .instantiate(Occupancy::identity(tree), seed, &requests)
                    .unwrap();
                alg.serve_sequence(&requests).unwrap();
                prop_assert!(alg.occupancy().is_consistent(), "{}", kind);
            }
        }

        #[test]
        fn push_algorithms_place_the_request_at_the_root(
            requests in arb_requests(5, 40),
            seed in any::<u64>(),
        ) {
            let tree = CompleteTree::with_levels(5).unwrap();
            let mut rotor = RotorPush::new(Occupancy::identity(tree));
            let mut random = RandomPush::with_seed(Occupancy::identity(tree), seed);
            for &request in &requests {
                rotor.serve(request).unwrap();
                random.serve(request).unwrap();
                prop_assert_eq!(rotor.occupancy().element_at(satn_tree::NodeId::ROOT), request);
                prop_assert_eq!(random.occupancy().element_at(satn_tree::NodeId::ROOT), request);
            }
        }

        #[test]
        fn push_costs_respect_lemma1(
            requests in arb_requests(6, 60),
            seed in any::<u64>(),
        ) {
            let tree = CompleteTree::with_levels(6).unwrap();
            let mut rotor = RotorPush::new(Occupancy::identity(tree));
            let mut random = RandomPush::with_seed(Occupancy::identity(tree), seed);
            for &request in &requests {
                for alg in [&mut rotor as &mut dyn SelfAdjustingTree, &mut random] {
                    let level = alg.occupancy().level_of(request) as u64;
                    let cost = alg.serve(request).unwrap();
                    prop_assert_eq!(cost.access, level + 1);
                    prop_assert!(cost.total() <= (4 * level).max(1));
                }
            }
        }

        #[test]
        fn access_costs_match_current_depth_for_all_algorithms(
            requests in arb_requests(4, 30),
            seed in any::<u64>(),
        ) {
            let tree = CompleteTree::with_levels(4).unwrap();
            for kind in AlgorithmKind::EVALUATED {
                let mut alg = kind
                    .instantiate(Occupancy::identity(tree), seed, &requests)
                    .unwrap();
                for &request in &requests {
                    let expected = alg.occupancy().access_cost(request);
                    let cost = alg.serve(request).unwrap();
                    prop_assert_eq!(cost.access, expected, "{}", kind);
                }
            }
        }

        #[test]
        fn serve_batch_matches_a_serve_loop_for_every_algorithm(
            requests in arb_requests(5, 80),
            seed in any::<u64>(),
        ) {
            let tree = CompleteTree::with_levels(5).unwrap();
            for kind in AlgorithmKind::ALL {
                let mut reference = kind
                    .instantiate(Occupancy::identity(tree), seed, &requests)
                    .unwrap();
                let mut batched = kind
                    .instantiate(Occupancy::identity(tree), seed, &requests)
                    .unwrap();
                let mut reference_summary = satn_tree::CostSummary::new();
                for &request in &requests {
                    reference_summary.record(reference.serve(request).unwrap());
                }
                let mut batched_summary = satn_tree::CostSummary::new();
                batched.serve_batch(&requests, &mut batched_summary).unwrap();
                prop_assert_eq!(reference_summary, batched_summary, "{}", kind);
                prop_assert_eq!(reference.occupancy(), batched.occupancy(), "{}", kind);
                prop_assert!(batched.occupancy().is_consistent(), "{}", kind);
            }
        }

        #[test]
        fn static_opt_is_never_worse_than_oblivious_on_access(
            requests in arb_requests(5, 120),
        ) {
            let tree = CompleteTree::with_levels(5).unwrap();
            let mut opt = StaticOpt::from_sequence(tree, &requests).unwrap();
            let mut oblivious = StaticOblivious::new(Occupancy::identity(tree));
            let opt_cost = opt.serve_sequence(&requests).unwrap().total().access;
            let oblivious_cost = oblivious.serve_sequence(&requests).unwrap().total().access;
            // Static-Opt is the optimal *static* placement for the measured
            // frequencies, so with the identity initial placement (elements
            // sorted by id, not by frequency) it can only be better or equal
            // up to ties in the frequency ordering.
            prop_assert!(opt_cost <= oblivious_cost + requests.len() as u64);
        }
    }
}
