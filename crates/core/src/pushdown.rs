//! The augmented push-down operation `PD(u, v)` (Definition 1, Lemma 1).
//!
//! Given two nodes `u` and `v` of the same level `d`, the operation fixes the
//! cycle of nodes `v_0 → v_1 → … → v_{d-1} → v → u → v_0` (where
//! `v_0, …, v_d = v` is the root path of `v`) and moves the element of every
//! cycle node to the next node of the cycle. It is the single reorganisation
//! primitive of both Random-Push and Rotor-Push.

use satn_tree::{MarkedRound, NodeId, TreeError};

/// Executes `PD(u, v)` inside an open [`MarkedRound`].
///
/// `u` is the node of the requested element and `v` a node of the same level
/// chosen by the caller (the rotor global path node for Rotor-Push, a uniform
/// random node for Random-Push). After the operation:
///
/// * the element previously at `u` is at the root,
/// * the element previously at `v` is at `u`,
/// * every element previously at a proper ancestor `v_i` of `v` has moved one
///   level down, to `v_{i+1}`,
/// * every other element is unchanged.
///
/// The implementation follows the proof of Lemma 1 and uses at most
/// `3·d − 1` swaps, so together with the access cost of `d + 1` a request
/// costs at most `4·d` (for `d ≥ 1`), matching the bound used by the
/// competitive analysis.
///
/// # Errors
///
/// Returns [`TreeError::NodeOutOfRange`] for nodes outside the tree and the
/// errors of the underlying swap operations.
///
/// # Panics
///
/// Panics if `u` and `v` are not on the same level, or if `u` does not hold
/// the element whose access opened the round.
pub fn augmented_push_down(
    round: &mut MarkedRound<'_>,
    u: NodeId,
    v: NodeId,
) -> Result<(), TreeError> {
    round.occupancy().tree().check_node(u)?;
    round.occupancy().tree().check_node(v)?;
    assert_eq!(
        u.level(),
        v.level(),
        "augmented push-down requires nodes of the same level"
    );
    assert_eq!(
        round.occupancy().node_of(round.requested()),
        u,
        "node u must hold the requested element"
    );

    let d = u.level();
    if d == 0 {
        // The requested element already sits at the root; the cycle is trivial.
        return Ok(());
    }

    if u == v {
        // The cycle degenerates to the root path of u: moving the requested
        // element to the root shifts every ancestor's element one level down.
        round.bubble_to_root(u)?;
        return Ok(());
    }

    // Lemma 1: access the global-path branch as well, then
    //  (1) move e = el(v) to the root     (d swaps)
    //  (2) move e from the root down to u (d swaps; the last swap parks the
    //      requested element e* at the parent of u)
    //  (3) move e* from parent(u) to the root (d − 1 swaps).
    round.mark_root_path(v)?;
    round.bubble_to_root(v)?;
    round.sink_from_root(u)?;
    let parent_of_u = u.parent().expect("level d >= 1 nodes have a parent");
    round.bubble_to_root(parent_of_u)?;
    Ok(())
}

/// Computes the occupancy that `PD(u, v)` must produce, directly from
/// Definition 1, without performing any swaps.
///
/// Intended for tests and verification: apply it to a snapshot and compare
/// with the result of [`augmented_push_down`].
///
/// # Panics
///
/// Panics if `u` and `v` are not nodes of the same level of the occupancy's
/// tree.
pub fn push_down_specification(
    occupancy: &satn_tree::Occupancy,
    u: NodeId,
    v: NodeId,
) -> Vec<(satn_tree::ElementId, NodeId)> {
    assert!(occupancy.tree().contains(u) && occupancy.tree().contains(v));
    assert_eq!(u.level(), v.level());
    let mut cycle: Vec<NodeId> = v.ancestors().rev().collect();
    if u != v {
        cycle.push(u);
    }
    let mut moves = Vec::with_capacity(cycle.len());
    for (i, &node) in cycle.iter().enumerate() {
        let next = cycle[(i + 1) % cycle.len()];
        moves.push((occupancy.element_at(node), next));
    }
    moves
}

#[cfg(test)]
mod tests {
    use super::*;
    use satn_tree::{CompleteTree, ElementId, MarkedRound, Occupancy};

    fn identity(levels: u32) -> Occupancy {
        Occupancy::identity(CompleteTree::with_levels(levels).unwrap())
    }

    fn run_pd(occ: &mut Occupancy, u: NodeId, v: NodeId) -> satn_tree::ServeCost {
        let element = occ.element_at(u);
        let mut round = MarkedRound::access(occ, element).unwrap();
        augmented_push_down(&mut round, u, v).unwrap();
        round.finish()
    }

    fn assert_matches_spec(levels: u32, u: NodeId, v: NodeId) {
        let mut occ = identity(levels);
        let spec = push_down_specification(&occ, u, v);
        let moved_elements: Vec<ElementId> = spec.iter().map(|&(e, _)| e).collect();
        let before = occ.clone();
        run_pd(&mut occ, u, v);
        for (element, target) in spec {
            assert_eq!(
                occ.node_of(element),
                target,
                "element {element} should land on {target}"
            );
        }
        // Elements outside the cycle must not move.
        for (node, element) in before.iter() {
            if !moved_elements.contains(&element) {
                assert_eq!(
                    occ.node_of(element),
                    node,
                    "element {element} moved unexpectedly"
                );
            }
        }
        assert!(occ.is_consistent());
    }

    #[test]
    fn trivial_root_request_costs_one() {
        let mut occ = identity(4);
        let cost = run_pd(&mut occ, NodeId::ROOT, NodeId::ROOT);
        assert_eq!(cost.access, 1);
        assert_eq!(cost.adjustment, 0);
    }

    #[test]
    fn same_node_degenerates_to_bubble() {
        let mut occ = identity(4);
        let u = NodeId::new(11);
        let cost = run_pd(&mut occ, u, u);
        assert_eq!(cost.access, 4);
        assert_eq!(cost.adjustment, 3);
        assert_eq!(occ.element_at(NodeId::ROOT), ElementId::new(11));
        // Ancestors shifted down along the path 0-2-5-11.
        assert_eq!(occ.element_at(NodeId::new(2)), ElementId::new(0));
        assert_eq!(occ.element_at(NodeId::new(5)), ElementId::new(2));
        assert_eq!(occ.element_at(NodeId::new(11)), ElementId::new(5));
    }

    #[test]
    fn figure1_example_reorganisation() {
        // Figure 1 of the paper: elements e1..e15 (here 0-indexed as 0..14) on
        // a 15-node tree, pointers all left, a request to the element at node
        // 5 (the paper's e6) with the global path node v = node 3.
        let mut occ = identity(4);
        let cost = run_pd(&mut occ, NodeId::new(5), NodeId::new(3));
        // e6 (index 5) moves to the root, e1 (0) and e2 (1) move down the
        // global path, e4 (3) moves to the initial position of e6.
        assert_eq!(occ.element_at(NodeId::ROOT), ElementId::new(5));
        assert_eq!(occ.element_at(NodeId::new(1)), ElementId::new(0));
        assert_eq!(occ.element_at(NodeId::new(3)), ElementId::new(1));
        assert_eq!(occ.element_at(NodeId::new(5)), ElementId::new(3));
        // The level-2 request costs 3 to access and at most 3*2 - 1 swaps.
        assert_eq!(cost.access, 3);
        assert!(cost.adjustment <= 5);
    }

    #[test]
    fn matches_specification_for_disjoint_paths() {
        assert_matches_spec(4, NodeId::new(11), NodeId::new(14));
        assert_matches_spec(4, NodeId::new(7), NodeId::new(12));
        assert_matches_spec(5, NodeId::new(16), NodeId::new(30));
    }

    #[test]
    fn matches_specification_for_shared_prefixes() {
        assert_matches_spec(4, NodeId::new(7), NodeId::new(8));
        assert_matches_spec(4, NodeId::new(9), NodeId::new(7));
        assert_matches_spec(5, NodeId::new(17), NodeId::new(16));
        assert_matches_spec(5, NodeId::new(23), NodeId::new(18));
    }

    #[test]
    fn matches_specification_for_level_one() {
        assert_matches_spec(3, NodeId::new(1), NodeId::new(2));
        assert_matches_spec(3, NodeId::new(2), NodeId::new(1));
    }

    #[test]
    fn cost_is_at_most_four_d() {
        // Lemma 1: total cost (access + swaps) of a level-d request is <= 4d.
        for levels in 2..=7u32 {
            let tree = CompleteTree::with_levels(levels).unwrap();
            for u in tree.leaves() {
                for v in tree.leaves() {
                    let mut occ = Occupancy::identity(tree);
                    let cost = run_pd(&mut occ, u, v);
                    let d = u.level() as u64;
                    assert!(
                        cost.total() <= 4 * d,
                        "levels {levels}, u {u}, v {v}: cost {} > 4d = {}",
                        cost.total(),
                        4 * d
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "same level")]
    fn rejects_nodes_of_different_levels() {
        let mut occ = identity(4);
        let element = occ.element_at(NodeId::new(5));
        let mut round = MarkedRound::access(&mut occ, element).unwrap();
        augmented_push_down(&mut round, NodeId::new(5), NodeId::new(7)).unwrap();
    }

    #[test]
    #[should_panic(expected = "requested element")]
    fn rejects_mismatched_requested_node() {
        let mut occ = identity(4);
        let element = occ.element_at(NodeId::new(5));
        let mut round = MarkedRound::access(&mut occ, element).unwrap();
        augmented_push_down(&mut round, NodeId::new(6), NodeId::new(3)).unwrap();
    }
}
