//! A small factory for building any of the paper's algorithms by name,
//! used by the experiment harness and the examples.

use crate::algorithms::{
    MaxPush, MoveHalf, MoveToFront, RandomPush, RotorPush, StaticOblivious, StaticOpt,
};
use crate::traits::SelfAdjustingTree;
use satn_tree::{ElementId, Occupancy, TreeError};
use std::fmt;
use std::str::FromStr;

/// Identifies one of the algorithms studied in the paper (plus the
/// Move-To-Front strawman).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum AlgorithmKind {
    /// Deterministic Rotor-Push (the paper's contribution).
    RotorPush,
    /// Randomized Random-Push.
    RandomPush,
    /// Deterministic Move-Half.
    MoveHalf,
    /// Max-Push / Strict-MRU.
    MaxPush,
    /// The frequency-ordered offline static tree.
    StaticOpt,
    /// The unmodified initial tree.
    StaticOblivious,
    /// The naive move-to-front generalisation (lower-bound example).
    MoveToFront,
}

impl AlgorithmKind {
    /// Every algorithm of the crate, including the Move-To-Front strawman
    /// (used by the simulation engine's full-coverage grids).
    pub const ALL: [AlgorithmKind; 7] = [
        AlgorithmKind::RotorPush,
        AlgorithmKind::RandomPush,
        AlgorithmKind::MoveHalf,
        AlgorithmKind::MaxPush,
        AlgorithmKind::StaticOblivious,
        AlgorithmKind::StaticOpt,
        AlgorithmKind::MoveToFront,
    ];

    /// All algorithms compared in the paper's evaluation (Section 6), in the
    /// order used by the figures.
    pub const EVALUATED: [AlgorithmKind; 6] = [
        AlgorithmKind::RotorPush,
        AlgorithmKind::RandomPush,
        AlgorithmKind::MoveHalf,
        AlgorithmKind::MaxPush,
        AlgorithmKind::StaticOblivious,
        AlgorithmKind::StaticOpt,
    ];

    /// The four self-adjusting algorithms (used by Figure 2).
    pub const SELF_ADJUSTING: [AlgorithmKind; 4] = [
        AlgorithmKind::RotorPush,
        AlgorithmKind::RandomPush,
        AlgorithmKind::MoveHalf,
        AlgorithmKind::MaxPush,
    ];

    /// The stable, lowercase name of the algorithm.
    pub fn name(self) -> &'static str {
        match self {
            AlgorithmKind::RotorPush => "rotor-push",
            AlgorithmKind::RandomPush => "random-push",
            AlgorithmKind::MoveHalf => "move-half",
            AlgorithmKind::MaxPush => "max-push",
            AlgorithmKind::StaticOpt => "static-opt",
            AlgorithmKind::StaticOblivious => "static-oblivious",
            AlgorithmKind::MoveToFront => "move-to-front",
        }
    }

    /// Whether the algorithm reorganises the tree while serving requests.
    pub fn is_self_adjusting(self) -> bool {
        !matches!(
            self,
            AlgorithmKind::StaticOpt | AlgorithmKind::StaticOblivious
        )
    }

    /// Builds a ready-to-run instance of the algorithm.
    ///
    /// * `initial` — the starting occupancy (shared by all algorithms of an
    ///   experiment so the comparison is fair),
    /// * `seed` — the random seed used by [`RandomPush`] (ignored by the
    ///   deterministic algorithms),
    /// * `sequence` — the full request sequence, needed only by the offline
    ///   [`StaticOpt`] baseline to compute element frequencies.
    ///
    /// The returned instance is `Send` so the parallel execution layer
    /// (`satn-exec`) can construct and drive algorithms on worker threads.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::ElementOutOfRange`] if `sequence` refers to an
    /// element outside the tree (only possible for [`AlgorithmKind::StaticOpt`]).
    pub fn instantiate(
        self,
        initial: Occupancy,
        seed: u64,
        sequence: &[ElementId],
    ) -> Result<Box<dyn SelfAdjustingTree + Send>, TreeError> {
        Ok(match self {
            AlgorithmKind::RotorPush => Box::new(RotorPush::new(initial)),
            AlgorithmKind::RandomPush => Box::new(RandomPush::with_seed(initial, seed)),
            AlgorithmKind::MoveHalf => Box::new(MoveHalf::new(initial)),
            AlgorithmKind::MaxPush => Box::new(MaxPush::new(initial)),
            AlgorithmKind::StaticOblivious => Box::new(StaticOblivious::new(initial)),
            AlgorithmKind::StaticOpt => {
                // Static-Opt derives its own placement from the sequence but
                // must still store it under the caller's chosen layout so a
                // `--layout` run covers every algorithm.
                let layout = initial.layout_kind();
                let static_opt = StaticOpt::from_sequence(initial.tree(), sequence)?;
                Box::new(static_opt.with_layout(layout))
            }
            AlgorithmKind::MoveToFront => Box::new(MoveToFront::new(initial)),
        })
    }
}

impl fmt::Display for AlgorithmKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown algorithm name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAlgorithmError {
    input: String,
}

impl fmt::Display for ParseAlgorithmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown algorithm name: {:?}", self.input)
    }
}

impl std::error::Error for ParseAlgorithmError {}

impl FromStr for AlgorithmKind {
    type Err = ParseAlgorithmError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "rotor" | "rotor-push" | "rtr" => Ok(AlgorithmKind::RotorPush),
            "random" | "random-push" | "rand" => Ok(AlgorithmKind::RandomPush),
            "half" | "move-half" => Ok(AlgorithmKind::MoveHalf),
            "max" | "max-push" | "strict-mru" => Ok(AlgorithmKind::MaxPush),
            "static-opt" | "opt" => Ok(AlgorithmKind::StaticOpt),
            "static-oblivious" | "oblivious" => Ok(AlgorithmKind::StaticOblivious),
            "mtf" | "move-to-front" => Ok(AlgorithmKind::MoveToFront),
            _ => Err(ParseAlgorithmError {
                input: s.to_owned(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use satn_tree::CompleteTree;

    #[test]
    fn names_roundtrip_through_fromstr() {
        for kind in [
            AlgorithmKind::RotorPush,
            AlgorithmKind::RandomPush,
            AlgorithmKind::MoveHalf,
            AlgorithmKind::MaxPush,
            AlgorithmKind::StaticOpt,
            AlgorithmKind::StaticOblivious,
            AlgorithmKind::MoveToFront,
        ] {
            let parsed: AlgorithmKind = kind.name().parse().unwrap();
            assert_eq!(parsed, kind);
            assert_eq!(kind.to_string(), kind.name());
        }
        assert!("splay".parse::<AlgorithmKind>().is_err());
    }

    #[test]
    fn instantiate_builds_working_algorithms() {
        let tree = CompleteTree::with_levels(4).unwrap();
        let sequence: Vec<ElementId> = (0..15u32).map(ElementId::new).collect();
        for kind in AlgorithmKind::EVALUATED {
            let mut alg = kind
                .instantiate(Occupancy::identity(tree), 7, &sequence)
                .unwrap();
            assert_eq!(alg.name(), kind.name());
            assert_eq!(alg.is_self_adjusting(), kind.is_self_adjusting());
            let summary = alg.serve_sequence(&sequence).unwrap();
            assert_eq!(summary.requests(), 15);
        }
    }

    #[test]
    fn static_opt_instantiation_reports_bad_sequences() {
        let tree = CompleteTree::with_levels(3).unwrap();
        let err = AlgorithmKind::StaticOpt
            .instantiate(Occupancy::identity(tree), 0, &[ElementId::new(99)])
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, TreeError::ElementOutOfRange { .. }));
    }

    #[test]
    fn evaluated_and_self_adjusting_sets_are_consistent() {
        for kind in AlgorithmKind::SELF_ADJUSTING {
            assert!(kind.is_self_adjusting());
            assert!(AlgorithmKind::EVALUATED.contains(&kind));
        }
        assert!(!AlgorithmKind::StaticOpt.is_self_adjusting());
    }
}
