//! A small factory for building any of the paper's algorithms by name,
//! used by the experiment harness and the examples.

use crate::algorithms::{
    MaxPush, MoveHalf, MoveToFront, RandomPush, RotorPush, StaticOblivious, StaticOpt,
};
use crate::recency::RecencyTracker;
use crate::traits::SelfAdjustingTree;
use crate::warm::WarmState;
use rand::rngs::StdRng;
use rand::SeedableRng;
use satn_rotor::RotorState;
use satn_tree::{ElementId, Occupancy, TreeError};
use std::fmt;
use std::str::FromStr;

/// Identifies one of the algorithms studied in the paper (plus the
/// Move-To-Front strawman).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum AlgorithmKind {
    /// Deterministic Rotor-Push (the paper's contribution).
    RotorPush,
    /// Randomized Random-Push.
    RandomPush,
    /// Deterministic Move-Half.
    MoveHalf,
    /// Max-Push / Strict-MRU.
    MaxPush,
    /// The frequency-ordered offline static tree.
    StaticOpt,
    /// The unmodified initial tree.
    StaticOblivious,
    /// The naive move-to-front generalisation (lower-bound example).
    MoveToFront,
}

impl AlgorithmKind {
    /// Every algorithm of the crate, including the Move-To-Front strawman
    /// (used by the simulation engine's full-coverage grids).
    pub const ALL: [AlgorithmKind; 7] = [
        AlgorithmKind::RotorPush,
        AlgorithmKind::RandomPush,
        AlgorithmKind::MoveHalf,
        AlgorithmKind::MaxPush,
        AlgorithmKind::StaticOblivious,
        AlgorithmKind::StaticOpt,
        AlgorithmKind::MoveToFront,
    ];

    /// All algorithms compared in the paper's evaluation (Section 6), in the
    /// order used by the figures.
    pub const EVALUATED: [AlgorithmKind; 6] = [
        AlgorithmKind::RotorPush,
        AlgorithmKind::RandomPush,
        AlgorithmKind::MoveHalf,
        AlgorithmKind::MaxPush,
        AlgorithmKind::StaticOblivious,
        AlgorithmKind::StaticOpt,
    ];

    /// The four self-adjusting algorithms (used by Figure 2).
    pub const SELF_ADJUSTING: [AlgorithmKind; 4] = [
        AlgorithmKind::RotorPush,
        AlgorithmKind::RandomPush,
        AlgorithmKind::MoveHalf,
        AlgorithmKind::MaxPush,
    ];

    /// The stable, lowercase name of the algorithm.
    pub fn name(self) -> &'static str {
        match self {
            AlgorithmKind::RotorPush => "rotor-push",
            AlgorithmKind::RandomPush => "random-push",
            AlgorithmKind::MoveHalf => "move-half",
            AlgorithmKind::MaxPush => "max-push",
            AlgorithmKind::StaticOpt => "static-opt",
            AlgorithmKind::StaticOblivious => "static-oblivious",
            AlgorithmKind::MoveToFront => "move-to-front",
        }
    }

    /// Whether the algorithm reorganises the tree while serving requests.
    pub fn is_self_adjusting(self) -> bool {
        !matches!(
            self,
            AlgorithmKind::StaticOpt | AlgorithmKind::StaticOblivious
        )
    }

    /// Builds a ready-to-run instance of the algorithm.
    ///
    /// * `initial` — the starting occupancy (shared by all algorithms of an
    ///   experiment so the comparison is fair),
    /// * `seed` — the random seed used by [`RandomPush`] (ignored by the
    ///   deterministic algorithms),
    /// * `sequence` — the full request sequence, needed only by the offline
    ///   [`StaticOpt`] baseline to compute element frequencies.
    ///
    /// The returned instance is `Send` so the parallel execution layer
    /// (`satn-exec`) can construct and drive algorithms on worker threads.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::ElementOutOfRange`] if `sequence` refers to an
    /// element outside the tree (only possible for [`AlgorithmKind::StaticOpt`]).
    pub fn instantiate(
        self,
        initial: Occupancy,
        seed: u64,
        sequence: &[ElementId],
    ) -> Result<Box<dyn SelfAdjustingTree + Send>, TreeError> {
        Ok(match self {
            AlgorithmKind::RotorPush => Box::new(RotorPush::new(initial)),
            AlgorithmKind::RandomPush => Box::new(RandomPush::with_seed(initial, seed)),
            AlgorithmKind::MoveHalf => Box::new(MoveHalf::new(initial)),
            AlgorithmKind::MaxPush => Box::new(MaxPush::new(initial)),
            AlgorithmKind::StaticOblivious => Box::new(StaticOblivious::new(initial)),
            AlgorithmKind::StaticOpt => {
                // Static-Opt derives its own placement from the sequence but
                // must still store it under the caller's chosen layout so a
                // `--layout` run covers every algorithm.
                let layout = initial.layout_kind();
                let static_opt = StaticOpt::from_sequence(initial.tree(), sequence)?;
                Box::new(static_opt.with_layout(layout))
            }
            AlgorithmKind::MoveToFront => Box::new(MoveToFront::new(initial)),
        })
    }

    /// Builds an instance resuming from an exported [`WarmState`] — the
    /// import half of the warm reshard handover.
    ///
    /// Every carried component the algorithm maintains is adopted verbatim
    /// (the caller is expected to have fitted the state to `initial`'s
    /// topology via [`WarmState::carried_into`]; rotors are defensively
    /// refitted here, which is a no-op for a matching tree). Components the
    /// state does not carry fall back to the same cold-start values
    /// [`AlgorithmKind::instantiate`] would use — in particular `seed` seeds
    /// [`RandomPush`] only when no generator is carried. Algorithms without
    /// internal state (and the offline [`StaticOpt`], which recomputes its
    /// placement from `sequence`) ignore the state entirely, so
    /// `instantiate_warm` with a cold state is exactly `instantiate`.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::ElementOutOfRange`] under the same conditions as
    /// [`AlgorithmKind::instantiate`].
    ///
    /// # Panics
    ///
    /// Panics if a carried recency tracker does not cover `initial`'s
    /// element count.
    pub fn instantiate_warm(
        self,
        initial: Occupancy,
        seed: u64,
        sequence: &[ElementId],
        state: &WarmState,
    ) -> Result<Box<dyn SelfAdjustingTree + Send>, TreeError> {
        Ok(match self {
            AlgorithmKind::RotorPush => {
                let tree = initial.tree();
                let rotors = state
                    .rotors
                    .as_ref()
                    .map(|rotors| rotors.carried_into(tree))
                    .unwrap_or_else(|| RotorState::new(tree));
                Box::new(RotorPush::with_rotor_state(initial, rotors))
            }
            AlgorithmKind::RandomPush => {
                let rng = state
                    .rng
                    .clone()
                    .unwrap_or_else(|| StdRng::seed_from_u64(seed));
                Box::new(RandomPush::with_rng(initial, rng))
            }
            AlgorithmKind::MoveHalf => {
                let recency = state
                    .recency
                    .clone()
                    .unwrap_or_else(|| RecencyTracker::new(initial.num_elements()));
                Box::new(MoveHalf::with_recency(initial, recency))
            }
            AlgorithmKind::MaxPush => {
                let recency = state
                    .recency
                    .clone()
                    .unwrap_or_else(|| RecencyTracker::new(initial.num_elements()));
                Box::new(MaxPush::with_recency(initial, recency))
            }
            AlgorithmKind::StaticOblivious
            | AlgorithmKind::StaticOpt
            | AlgorithmKind::MoveToFront => return self.instantiate(initial, seed, sequence),
        })
    }
}

impl fmt::Display for AlgorithmKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown algorithm name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAlgorithmError {
    input: String,
}

impl fmt::Display for ParseAlgorithmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown algorithm name: {:?}", self.input)
    }
}

impl std::error::Error for ParseAlgorithmError {}

impl FromStr for AlgorithmKind {
    type Err = ParseAlgorithmError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "rotor" | "rotor-push" | "rtr" => Ok(AlgorithmKind::RotorPush),
            "random" | "random-push" | "rand" => Ok(AlgorithmKind::RandomPush),
            "half" | "move-half" => Ok(AlgorithmKind::MoveHalf),
            "max" | "max-push" | "strict-mru" => Ok(AlgorithmKind::MaxPush),
            "static-opt" | "opt" => Ok(AlgorithmKind::StaticOpt),
            "static-oblivious" | "oblivious" => Ok(AlgorithmKind::StaticOblivious),
            "mtf" | "move-to-front" => Ok(AlgorithmKind::MoveToFront),
            _ => Err(ParseAlgorithmError {
                input: s.to_owned(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use satn_tree::CompleteTree;

    #[test]
    fn names_roundtrip_through_fromstr() {
        for kind in [
            AlgorithmKind::RotorPush,
            AlgorithmKind::RandomPush,
            AlgorithmKind::MoveHalf,
            AlgorithmKind::MaxPush,
            AlgorithmKind::StaticOpt,
            AlgorithmKind::StaticOblivious,
            AlgorithmKind::MoveToFront,
        ] {
            let parsed: AlgorithmKind = kind.name().parse().unwrap();
            assert_eq!(parsed, kind);
            assert_eq!(kind.to_string(), kind.name());
        }
        assert!("splay".parse::<AlgorithmKind>().is_err());
    }

    #[test]
    fn instantiate_builds_working_algorithms() {
        let tree = CompleteTree::with_levels(4).unwrap();
        let sequence: Vec<ElementId> = (0..15u32).map(ElementId::new).collect();
        for kind in AlgorithmKind::EVALUATED {
            let mut alg = kind
                .instantiate(Occupancy::identity(tree), 7, &sequence)
                .unwrap();
            assert_eq!(alg.name(), kind.name());
            assert_eq!(alg.is_self_adjusting(), kind.is_self_adjusting());
            let summary = alg.serve_sequence(&sequence).unwrap();
            assert_eq!(summary.requests(), 15);
        }
    }

    #[test]
    fn static_opt_instantiation_reports_bad_sequences() {
        let tree = CompleteTree::with_levels(3).unwrap();
        let err = AlgorithmKind::StaticOpt
            .instantiate(Occupancy::identity(tree), 0, &[ElementId::new(99)])
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, TreeError::ElementOutOfRange { .. }));
    }

    #[test]
    fn export_then_instantiate_warm_resumes_the_exact_run() {
        let tree = CompleteTree::with_levels(5).unwrap();
        let prefix: Vec<ElementId> = (0..40u32).map(|i| ElementId::new((i * 13) % 31)).collect();
        let suffix: Vec<ElementId> = (0..40u32)
            .map(|i| ElementId::new((i * 7 + 3) % 31))
            .collect();
        for kind in AlgorithmKind::SELF_ADJUSTING {
            let mut original = kind
                .instantiate(Occupancy::identity(tree), 11, &[])
                .unwrap();
            original.serve_sequence(&prefix).unwrap();
            // Reconstituting from the occupancy + warm state must continue
            // exactly like the original instance.
            let mut resumed = kind
                .instantiate_warm(
                    original.occupancy().clone(),
                    999, // a different seed: must be ignored when state is carried
                    &[],
                    &original.export_state(),
                )
                .unwrap();
            let original_costs = original.serve_sequence(&suffix).unwrap();
            let resumed_costs = resumed.serve_sequence(&suffix).unwrap();
            assert_eq!(original_costs, resumed_costs, "{kind}");
            assert_eq!(original.occupancy(), resumed.occupancy(), "{kind}");
        }
    }

    #[test]
    fn instantiate_warm_with_a_cold_state_equals_instantiate() {
        let tree = CompleteTree::with_levels(4).unwrap();
        let requests: Vec<ElementId> = (0..30u32).map(|i| ElementId::new((i * 5) % 15)).collect();
        for kind in AlgorithmKind::EVALUATED {
            let mut cold = kind
                .instantiate(Occupancy::identity(tree), 7, &requests)
                .unwrap();
            let mut warm = kind
                .instantiate_warm(
                    Occupancy::identity(tree),
                    7,
                    &requests,
                    &crate::WarmState::default(),
                )
                .unwrap();
            assert_eq!(
                cold.serve_sequence(&requests).unwrap(),
                warm.serve_sequence(&requests).unwrap(),
                "{kind}"
            );
            assert_eq!(cold.occupancy(), warm.occupancy(), "{kind}");
        }
    }

    #[test]
    fn evaluated_and_self_adjusting_sets_are_consistent() {
        for kind in AlgorithmKind::SELF_ADJUSTING {
            assert!(kind.is_self_adjusting());
            assert!(AlgorithmKind::EVALUATED.contains(&kind));
        }
        assert!(!AlgorithmKind::StaticOpt.is_self_adjusting());
    }
}
