//! The naive **Move-To-Front** generalisation — the strawman of Section 1.1.

use crate::traits::SelfAdjustingTree;
use satn_tree::{ElementId, MarkScratch, MarkedRound, Occupancy, ServeCost, TreeError};

/// The immediate generalisation of the list-update Move-To-Front rule: upon a
/// request, swap the accessed element along its access path all the way to
/// the root, pushing every element on that path one level down.
///
/// As observed in the paper's introduction, this strategy is *not* constant
/// competitive: a round-robin sequence over a single root-to-leaf path forces
/// it to pay `Θ(log n)` per request while the optimum pays `O(log log n)`,
/// yielding a competitive ratio of `Ω(log n / log log n)`. It is included as
/// a baseline for exactly that experiment (`E-MTF` in DESIGN.md).
#[derive(Debug, Clone)]
pub struct MoveToFront {
    occupancy: Occupancy,
    /// Reused marking buffer: `serve` opens its [`MarkedRound`] through this
    /// scratch so the steady-state request path performs no heap allocation.
    scratch: MarkScratch,
}

impl MoveToFront {
    /// Creates a Move-To-Front network starting from the given occupancy.
    pub fn new(occupancy: Occupancy) -> Self {
        MoveToFront {
            occupancy,
            scratch: MarkScratch::new(),
        }
    }
}

impl SelfAdjustingTree for MoveToFront {
    fn name(&self) -> &'static str {
        "move-to-front"
    }

    fn occupancy(&self) -> &Occupancy {
        &self.occupancy
    }

    fn serve(&mut self, element: ElementId) -> Result<ServeCost, TreeError> {
        self.occupancy.check_element(element)?;
        let node = self.occupancy.node_of(element);
        let mut round =
            MarkedRound::access_reusing(&mut self.occupancy, element, &mut self.scratch)?;
        round.bubble_to_root(node)?;
        Ok(round.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use satn_tree::{CompleteTree, NodeId};

    fn identity(levels: u32) -> Occupancy {
        Occupancy::identity(CompleteTree::with_levels(levels).unwrap())
    }

    #[test]
    fn accessed_element_moves_to_root_and_path_shifts_down() {
        let mut alg = MoveToFront::new(identity(4));
        let cost = alg.serve(ElementId::new(11)).unwrap();
        assert_eq!(cost.access, 4);
        assert_eq!(cost.adjustment, 3);
        let occ = alg.occupancy();
        assert_eq!(occ.element_at(NodeId::ROOT), ElementId::new(11));
        assert_eq!(occ.element_at(NodeId::new(2)), ElementId::new(0));
        assert_eq!(occ.element_at(NodeId::new(5)), ElementId::new(2));
        assert_eq!(occ.element_at(NodeId::new(11)), ElementId::new(5));
    }

    #[test]
    fn round_robin_on_a_path_keeps_costs_high() {
        // The lower-bound example: request the elements of one root-to-leaf
        // path in round-robin order. Move-To-Front keeps paying for the full
        // depth because each access pushes the others back down the path.
        let levels = 7;
        let mut alg = MoveToFront::new(identity(levels));
        // The rightmost leaf of a tree with `levels` levels has index 2^levels - 2.
        let path: Vec<ElementId> = NodeId::new((1 << levels) - 2)
            .ancestors()
            .rev()
            .map(|n| ElementId::new(n.index()))
            .collect();
        // Warm up one round, then measure.
        for &e in &path {
            alg.serve(e).unwrap();
        }
        let mut total = 0u64;
        let rounds = 20;
        for _ in 0..rounds {
            for &e in &path {
                total += alg.serve(e).unwrap().access;
            }
        }
        let mean_access = total as f64 / (rounds * path.len() as u64) as f64;
        // The average access cost stays Ω(depth): concretely above depth / 2,
        // whereas an optimal offline tree would pay O(log depth).
        assert!(
            mean_access > (levels as f64) / 2.0,
            "mean access {mean_access} too small"
        );
    }

    #[test]
    fn repeated_access_to_same_element_is_cheap() {
        let mut alg = MoveToFront::new(identity(5));
        alg.serve(ElementId::new(30)).unwrap();
        for _ in 0..5 {
            assert_eq!(alg.serve(ElementId::new(30)).unwrap(), ServeCost::new(1, 0));
        }
    }

    #[test]
    fn rejects_unknown_element() {
        let mut alg = MoveToFront::new(identity(3));
        assert!(alg.serve(ElementId::new(12)).is_err());
    }
}
