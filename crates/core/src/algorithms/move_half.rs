//! **Move-Half** — the deterministic baseline of Avin et al. (Algorithm 1).

use crate::ops::exchange_elements;
use crate::recency::RecencyTracker;
use crate::traits::SelfAdjustingTree;
use crate::warm::WarmState;
use satn_tree::{ElementId, MarkScratch, MarkedRound, Occupancy, ServeCost, TreeError};

/// The Move-Half algorithm (Algorithm 1 of the paper).
///
/// Upon a request to an element `e_i` at level `ℓ`, it exchanges `e_i` with
/// the element of highest working-set rank (the least recently used element)
/// at level `⌊ℓ/2⌋`: the accessed element moves halfway towards the root and
/// the stale element takes its former place. Move-Half is 64-competitive
/// [Avin et al., LATIN 2020]; in the paper's experiments it is slightly more
/// costly than the push-based algorithms.
#[derive(Debug, Clone)]
pub struct MoveHalf {
    occupancy: Occupancy,
    recency: RecencyTracker,
    /// Reused marking buffer: `serve` opens its [`MarkedRound`] through this
    /// scratch so the steady-state request path performs no heap allocation.
    scratch: MarkScratch,
}

impl MoveHalf {
    /// Creates a Move-Half network starting from the given occupancy.
    pub fn new(occupancy: Occupancy) -> Self {
        let recency = RecencyTracker::new(occupancy.num_elements());
        MoveHalf::with_recency(occupancy, recency)
    }

    /// Creates a Move-Half network with an explicit recency tracker (used by
    /// warm reshard handovers to resume the working-set order mid-stream).
    ///
    /// # Panics
    ///
    /// Panics if the tracker covers a different element count.
    pub fn with_recency(occupancy: Occupancy, recency: RecencyTracker) -> Self {
        assert_eq!(
            recency.num_elements(),
            occupancy.num_elements(),
            "occupancy and recency tracker must cover the same elements"
        );
        MoveHalf {
            occupancy,
            recency,
            scratch: MarkScratch::new(),
        }
    }

    /// Returns the recency tracker (exposed for analysis and tests).
    pub fn recency(&self) -> &RecencyTracker {
        &self.recency
    }

    /// Returns the least recently used element currently stored at `level`.
    fn least_recently_used_at_level(&self, level: u32) -> ElementId {
        self.recency
            .least_recently_used(
                self.occupancy
                    .tree()
                    .level_nodes(level)
                    .map(|node| self.occupancy.element_at(node)),
            )
            .expect("every level of a complete tree is non-empty")
    }
}

impl SelfAdjustingTree for MoveHalf {
    fn name(&self) -> &'static str {
        "move-half"
    }

    fn occupancy(&self) -> &Occupancy {
        &self.occupancy
    }

    fn serve(&mut self, element: ElementId) -> Result<ServeCost, TreeError> {
        self.occupancy.check_element(element)?;
        let level = self.occupancy.level_of(element);
        let cost = if level == 0 {
            let round =
                MarkedRound::access_reusing(&mut self.occupancy, element, &mut self.scratch)?;
            round.finish()
        } else {
            let halfway = level / 2;
            let partner = self.least_recently_used_at_level(halfway);
            let mut round =
                MarkedRound::access_reusing(&mut self.occupancy, element, &mut self.scratch)?;
            exchange_elements(&mut round, element, partner)?;
            round.finish()
        };
        self.recency.touch(element);
        Ok(cost)
    }

    fn export_state(&self) -> WarmState {
        WarmState {
            recency: Some(self.recency.clone()),
            ..WarmState::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use satn_tree::{CompleteTree, NodeId};

    fn identity(levels: u32) -> Occupancy {
        Occupancy::identity(CompleteTree::with_levels(levels).unwrap())
    }

    #[test]
    fn accessed_element_moves_to_half_depth() {
        let mut alg = MoveHalf::new(identity(5));
        // Element 30 is at node 30, level 4; it must move to level 2.
        alg.serve(ElementId::new(30)).unwrap();
        assert_eq!(alg.occupancy().level_of(ElementId::new(30)), 2);
        assert!(alg.occupancy().is_consistent());
    }

    #[test]
    fn displaced_partner_takes_the_old_node() {
        let mut alg = MoveHalf::new(identity(5));
        // The LRU element at level 2 with nothing accessed yet is element 3
        // (the smallest id on that level in the identity placement).
        alg.serve(ElementId::new(30)).unwrap();
        assert_eq!(alg.occupancy().node_of(ElementId::new(3)), NodeId::new(30));
        assert_eq!(alg.occupancy().node_of(ElementId::new(30)), NodeId::new(3));
    }

    #[test]
    fn root_and_level_one_requests() {
        let mut alg = MoveHalf::new(identity(4));
        let cost = alg.serve(ElementId::new(0)).unwrap();
        assert_eq!(cost, ServeCost::new(1, 0));
        // A level-1 element exchanges with the root element (1 swap).
        let cost = alg.serve(ElementId::new(2)).unwrap();
        assert_eq!(cost.access, 2);
        assert_eq!(cost.adjustment, 1);
        assert_eq!(alg.occupancy().element_at(NodeId::ROOT), ElementId::new(2));
    }

    #[test]
    fn recently_accessed_elements_are_not_chosen_as_partners() {
        let mut alg = MoveHalf::new(identity(5));
        // Access element 3 (level 2) so that it becomes most recently used;
        // it first swaps with the root element (level 1 target = level 2/2).
        alg.serve(ElementId::new(3)).unwrap();
        // Now request a deep element; the level-2 partner must not be the
        // recently accessed element 3 (wherever it is), but a stale one.
        let partner_level = 2;
        let lru_before = alg.least_recently_used_at_level(partner_level);
        assert_ne!(lru_before, ElementId::new(3));
        alg.serve(ElementId::new(29)).unwrap();
        assert_eq!(alg.occupancy().level_of(ElementId::new(29)), partner_level);
    }

    #[test]
    fn adjustment_cost_is_bounded_by_twice_the_distance() {
        let mut alg = MoveHalf::new(identity(6));
        for step in 0..300u32 {
            let element = ElementId::new((step * 23 + 5) % 63);
            let level = alg.occupancy().level_of(element) as u64;
            let cost = alg.serve(element).unwrap();
            // The exchange involves two relocations over at most
            // (level - level/2) + level/2 + level edges each way.
            assert!(cost.adjustment <= 2 * (2 * level) + 1, "step {step}");
            assert!(alg.occupancy().is_consistent());
        }
    }

    #[test]
    fn repeated_requests_keep_the_element_near_the_top() {
        let mut alg = MoveHalf::new(identity(5));
        for _ in 0..5 {
            alg.serve(ElementId::new(27)).unwrap();
        }
        // level halves each time: 4 -> 2 -> 1 -> 0 -> 0 ...
        assert_eq!(alg.occupancy().level_of(ElementId::new(27)), 0);
    }

    #[test]
    fn deterministic_across_instances() {
        let requests: Vec<ElementId> = (0..200u32).map(|i| ElementId::new((i * 13) % 31)).collect();
        let mut a = MoveHalf::new(identity(5));
        let mut b = MoveHalf::new(identity(5));
        assert_eq!(
            a.serve_sequence(&requests).unwrap(),
            b.serve_sequence(&requests).unwrap()
        );
        assert_eq!(a.occupancy(), b.occupancy());
    }

    #[test]
    fn rejects_unknown_element() {
        let mut alg = MoveHalf::new(identity(3));
        assert!(alg.serve(ElementId::new(64)).is_err());
    }
}
