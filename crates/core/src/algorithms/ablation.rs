//! Ablation variants of Rotor-Push.
//!
//! The paper's design rests on one mechanism: a per-node rotor pointer that is
//! toggled every time it is used, so that consecutive push-downs spread over
//! sibling subtrees. The variants in this module switch parts of that
//! mechanism off (or replace them with randomness) so that experiments can
//! quantify how much each ingredient contributes:
//!
//! * [`RotorPush::without_flipping`](crate::RotorPush::without_flipping) — the
//!   *frozen* rotor: push-downs always use the initial global path,
//! * [`LazyRotorPush`] — pointers are only toggled every `period`-th request,
//!   interpolating between the frozen rotor (`period = ∞`) and the real
//!   algorithm (`period = 1`),
//! * [`ScrambledRotorPush`] — the pointers along the used path are
//!   re-randomized before every request, which makes the push-down target a
//!   uniformly random node of the request's level; this is Random-Push
//!   expressed through the rotor machinery and serves as the randomized
//!   reference point of the ablation,
//! * [`AblationKind`] — a small factory enumerating the variants for the
//!   ablation benchmark.

use crate::pushdown::augmented_push_down;
use crate::traits::SelfAdjustingTree;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use satn_rotor::RotorState;
use satn_tree::{Direction, ElementId, MarkedRound, Occupancy, ServeCost, TreeError};

/// Rotor-Push with *lazy* pointer maintenance: the flip of the global-path
/// pointers is executed only on every `period`-th request.
///
/// With `period = 1` the algorithm is exactly Rotor-Push; as `period` grows it
/// degenerates towards the frozen-rotor ablation, which suffers from the same
/// round-robin weakness as the naive Move-To-Front generalisation (Section 1.1
/// of the paper). The ablation benchmark sweeps `period` to show that the
/// constant-factor overhead of flipping buys a qualitatively better worst
/// case.
///
/// # Examples
///
/// ```
/// use satn_core::{ablation::LazyRotorPush, SelfAdjustingTree};
/// use satn_tree::{CompleteTree, ElementId, Occupancy};
///
/// let tree = CompleteTree::with_levels(4)?;
/// let mut alg = LazyRotorPush::new(Occupancy::identity(tree), 3);
/// alg.serve(ElementId::new(9))?;
/// assert_eq!(alg.occupancy().level_of(ElementId::new(9)), 0);
/// # Ok::<(), satn_tree::TreeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LazyRotorPush {
    occupancy: Occupancy,
    rotors: RotorState,
    period: u64,
    served: u64,
}

impl LazyRotorPush {
    /// Creates a lazy Rotor-Push that flips the global-path pointers on every
    /// `period`-th request (the first flip happens on request number
    /// `period`).
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(occupancy: Occupancy, period: u64) -> Self {
        assert!(period > 0, "the flip period must be at least 1");
        let rotors = RotorState::new(occupancy.tree());
        LazyRotorPush {
            occupancy,
            rotors,
            period,
            served: 0,
        }
    }

    /// The flip period this instance was created with.
    pub fn period(&self) -> u64 {
        self.period
    }

    /// The number of requests served so far.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// The current rotor pointer state.
    pub fn rotor_state(&self) -> &RotorState {
        &self.rotors
    }
}

impl SelfAdjustingTree for LazyRotorPush {
    fn name(&self) -> &'static str {
        "rotor-push-lazy"
    }

    fn occupancy(&self) -> &Occupancy {
        &self.occupancy
    }

    fn serve(&mut self, element: ElementId) -> Result<ServeCost, TreeError> {
        self.occupancy.check_element(element)?;
        let u = self.occupancy.node_of(element);
        let level = u.level();
        let mut round = MarkedRound::access(&mut self.occupancy, element)?;
        if level > 0 {
            let v = self.rotors.global_path_node(level);
            augmented_push_down(&mut round, u, v)?;
        }
        let cost = round.finish();
        self.served += 1;
        if level > 0 && self.served % self.period == 0 {
            self.rotors.flip(level);
        }
        Ok(cost)
    }
}

/// Rotor-Push whose pointers are re-randomized along the used path before
/// every request.
///
/// Because the directions of the first `d` global-path pointers are drawn
/// independently and uniformly, the push-down target is a uniformly random
/// node of level `d` — exactly the choice Random-Push makes. The point of the
/// variant is that it exercises the identical code path as Rotor-Push (rotor
/// state, global path, augmented push-down) with only the pointer-update rule
/// replaced, which makes it the cleanest randomized reference point for the
/// ablation study.
///
/// # Examples
///
/// ```
/// use satn_core::{ablation::ScrambledRotorPush, SelfAdjustingTree};
/// use satn_tree::{CompleteTree, ElementId, Occupancy};
///
/// let tree = CompleteTree::with_levels(4)?;
/// let mut alg = ScrambledRotorPush::with_seed(Occupancy::identity(tree), 7);
/// let cost = alg.serve(ElementId::new(14))?;
/// assert_eq!(cost.access, 4);
/// # Ok::<(), satn_tree::TreeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ScrambledRotorPush<R = StdRng> {
    occupancy: Occupancy,
    rotors: RotorState,
    rng: R,
}

impl ScrambledRotorPush<StdRng> {
    /// Creates a scrambled-rotor network seeded with `seed`.
    pub fn with_seed(occupancy: Occupancy, seed: u64) -> Self {
        ScrambledRotorPush::with_rng(occupancy, StdRng::seed_from_u64(seed))
    }
}

impl<R: Rng> ScrambledRotorPush<R> {
    /// Creates a scrambled-rotor network driven by the given random number
    /// generator.
    pub fn with_rng(occupancy: Occupancy, rng: R) -> Self {
        let rotors = RotorState::new(occupancy.tree());
        ScrambledRotorPush {
            occupancy,
            rotors,
            rng,
        }
    }

    /// The current rotor pointer state (the state *after* the last request's
    /// scramble).
    pub fn rotor_state(&self) -> &RotorState {
        &self.rotors
    }
}

impl<R: Rng> SelfAdjustingTree for ScrambledRotorPush<R> {
    fn name(&self) -> &'static str {
        "rotor-push-scrambled"
    }

    fn occupancy(&self) -> &Occupancy {
        &self.occupancy
    }

    fn serve(&mut self, element: ElementId) -> Result<ServeCost, TreeError> {
        self.occupancy.check_element(element)?;
        let u = self.occupancy.node_of(element);
        let level = u.level();
        let mut round = MarkedRound::access(&mut self.occupancy, element)?;
        if level > 0 {
            // Re-randomize the pointers along the path that will be used: walk
            // down from the root, drawing each direction uniformly. The node
            // reached at `level` is then uniform over that level.
            let mut node = satn_tree::NodeId::ROOT;
            for _ in 0..level {
                let direction = if self.rng.gen::<bool>() {
                    Direction::Left
                } else {
                    Direction::Right
                };
                self.rotors
                    .set_pointer(node, direction)
                    .expect("path nodes are internal nodes");
                node = node.child(direction);
            }
            let v = self.rotors.global_path_node(level);
            debug_assert_eq!(v, node);
            augmented_push_down(&mut round, u, v)?;
        }
        Ok(round.finish())
    }
}

/// Identifies one variant of the ablation study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum AblationKind {
    /// The unmodified Rotor-Push algorithm (the baseline of the ablation).
    Standard,
    /// Rotor-Push whose pointers are never toggled.
    Frozen,
    /// Rotor-Push whose pointers are toggled only on every `period`-th
    /// request.
    Lazy(u64),
    /// Rotor-Push whose pointers are re-randomized before every request
    /// (equivalent to Random-Push).
    Scrambled,
}

impl AblationKind {
    /// The variants swept by the ablation benchmark, in presentation order.
    pub const SWEEP: [AblationKind; 6] = [
        AblationKind::Standard,
        AblationKind::Lazy(2),
        AblationKind::Lazy(8),
        AblationKind::Lazy(32),
        AblationKind::Frozen,
        AblationKind::Scrambled,
    ];

    /// A short label for tables and plots.
    pub fn label(self) -> String {
        match self {
            AblationKind::Standard => "rotor".to_owned(),
            AblationKind::Frozen => "frozen".to_owned(),
            AblationKind::Lazy(period) => format!("lazy-{period}"),
            AblationKind::Scrambled => "scrambled".to_owned(),
        }
    }

    /// Builds the variant starting from the given occupancy. `seed` is used
    /// only by [`AblationKind::Scrambled`]. The instance is `Send`, like
    /// every algorithm, so ablation sweeps parallelise per variant.
    pub fn instantiate(self, initial: Occupancy, seed: u64) -> Box<dyn SelfAdjustingTree + Send> {
        match self {
            AblationKind::Standard => Box::new(crate::RotorPush::new(initial)),
            AblationKind::Frozen => Box::new(crate::RotorPush::without_flipping(initial)),
            AblationKind::Lazy(period) => Box::new(LazyRotorPush::new(initial, period)),
            AblationKind::Scrambled => Box::new(ScrambledRotorPush::with_seed(initial, seed)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RotorPush;
    use satn_tree::{CompleteTree, NodeId};

    fn identity(levels: u32) -> Occupancy {
        Occupancy::identity(CompleteTree::with_levels(levels).unwrap())
    }

    fn trace(levels: u32, len: usize) -> Vec<ElementId> {
        let n = (1u32 << levels) - 1;
        (0..len as u32)
            .map(|i| ElementId::new((i.wrapping_mul(2_654_435_761)) % n))
            .collect()
    }

    #[test]
    fn lazy_with_period_one_is_exactly_rotor_push() {
        let requests = trace(6, 500);
        let mut rotor = RotorPush::new(identity(6));
        let mut lazy = LazyRotorPush::new(identity(6), 1);
        for &request in &requests {
            let a = rotor.serve(request).unwrap();
            let b = lazy.serve(request).unwrap();
            assert_eq!(a, b);
        }
        assert_eq!(rotor.occupancy(), lazy.occupancy());
        assert_eq!(rotor.rotor_state(), lazy.rotor_state());
    }

    #[test]
    fn lazy_with_huge_period_is_the_frozen_rotor() {
        let requests = trace(5, 200);
        let mut frozen = RotorPush::without_flipping(identity(5));
        let mut lazy = LazyRotorPush::new(identity(5), u64::MAX);
        let a = frozen.serve_sequence(&requests).unwrap();
        let b = lazy.serve_sequence(&requests).unwrap();
        assert_eq!(a, b);
        assert_eq!(frozen.occupancy(), lazy.occupancy());
    }

    #[test]
    fn lazy_counts_served_requests_and_keeps_its_period() {
        let mut lazy = LazyRotorPush::new(identity(4), 3);
        assert_eq!(lazy.period(), 3);
        for &e in &[3u32, 7, 12, 1] {
            lazy.serve(ElementId::new(e)).unwrap();
        }
        assert_eq!(lazy.served(), 4);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn lazy_rejects_period_zero() {
        LazyRotorPush::new(identity(3), 0);
    }

    #[test]
    fn scrambled_places_requests_at_the_root_and_respects_lemma1() {
        let mut alg = ScrambledRotorPush::with_seed(identity(6), 99);
        for &request in &trace(6, 400) {
            let level = alg.occupancy().level_of(request) as u64;
            let cost = alg.serve(request).unwrap();
            assert_eq!(cost.access, level + 1);
            assert!(cost.total() <= (4 * level).max(1));
            assert_eq!(alg.occupancy().element_at(NodeId::ROOT), request);
            assert!(alg.occupancy().is_consistent());
        }
    }

    #[test]
    fn scrambled_is_reproducible_for_a_fixed_seed() {
        let requests = trace(5, 300);
        let mut a = ScrambledRotorPush::with_seed(identity(5), 42);
        let mut b = ScrambledRotorPush::with_seed(identity(5), 42);
        assert_eq!(
            a.serve_sequence(&requests).unwrap(),
            b.serve_sequence(&requests).unwrap()
        );
        assert_eq!(a.occupancy(), b.occupancy());
    }

    #[test]
    fn scrambled_differs_across_seeds_on_long_traces() {
        let requests = trace(6, 400);
        let mut a = ScrambledRotorPush::with_seed(identity(6), 1);
        let mut b = ScrambledRotorPush::with_seed(identity(6), 2);
        let cost_a = a.serve_sequence(&requests).unwrap().total().total();
        let cost_b = b.serve_sequence(&requests).unwrap().total().total();
        // The totals are random variables; equality would indicate the seed is
        // ignored. (They could coincide by chance, but the probability is
        // negligible for 400 requests on 63 nodes.)
        assert_ne!(cost_a, cost_b);
    }

    #[test]
    fn ablation_kinds_build_working_networks() {
        let requests = trace(5, 100);
        for kind in AblationKind::SWEEP {
            let mut alg = kind.instantiate(identity(5), 5);
            let summary = alg.serve_sequence(&requests).unwrap();
            assert_eq!(summary.requests(), requests.len() as u64);
            assert!(alg.occupancy().is_consistent(), "{}", kind.label());
        }
    }

    #[test]
    fn ablation_labels_are_unique() {
        let labels: std::collections::HashSet<String> =
            AblationKind::SWEEP.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), AblationKind::SWEEP.len());
    }

    #[test]
    fn frozen_rotor_is_hurt_by_the_round_robin_path_workload() {
        // The frozen rotor always pushes down the same (leftmost) path, so the
        // round-robin adversary of Section 1.1 keeps it expensive, while real
        // Rotor-Push amortizes the damage by spreading push-downs.
        let levels = 8u32;
        let n = (1u32 << levels) - 1;
        // Request the elements initially on the leftmost path, round-robin,
        // many times.
        let path: Vec<ElementId> = (0..levels)
            .map(|l| ElementId::new((1u32 << l) - 1))
            .collect();
        let mut requests = Vec::new();
        for _ in 0..200 {
            requests.extend(path.iter().copied());
        }
        assert!(requests.iter().all(|e| e.index() < n));
        let mut rotor = RotorPush::new(identity(levels));
        let mut frozen = RotorPush::without_flipping(identity(levels));
        let rotor_cost = rotor.serve_sequence(&requests).unwrap().total().total();
        let frozen_cost = frozen.serve_sequence(&requests).unwrap().total().total();
        assert!(
            frozen_cost > rotor_cost,
            "frozen {frozen_cost} should exceed rotor {rotor_cost}"
        );
    }
}
