//! The two static baselines: **Static-Oblivious** and **Static-Opt**.

use crate::traits::SelfAdjustingTree;
use satn_tree::{
    placement, CompleteTree, CostSummary, ElementId, MarkedRound, Occupancy, ServeCost, TreeError,
};

/// The demand-oblivious static baseline: the initial (typically random) tree,
/// never adjusted. Every request simply pays its current access cost.
#[derive(Debug, Clone)]
pub struct StaticOblivious {
    occupancy: Occupancy,
}

impl StaticOblivious {
    /// Creates the baseline from the given (initial) occupancy.
    pub fn new(occupancy: Occupancy) -> Self {
        StaticOblivious { occupancy }
    }
}

impl SelfAdjustingTree for StaticOblivious {
    fn name(&self) -> &'static str {
        "static-oblivious"
    }

    fn occupancy(&self) -> &Occupancy {
        &self.occupancy
    }

    fn is_self_adjusting(&self) -> bool {
        false
    }

    fn serve(&mut self, element: ElementId) -> Result<ServeCost, TreeError> {
        let round = MarkedRound::access(&mut self.occupancy, element)?;
        Ok(round.finish())
    }

    fn serve_batch(
        &mut self,
        requests: &[ElementId],
        summary: &mut CostSummary,
    ) -> Result<(), TreeError> {
        static_serve_batch(&self.occupancy, requests, summary)
    }
}

/// The allocation-free batched fast path shared by the static baselines: the
/// tree never changes, so each request's cost is read straight off the
/// occupancy without opening a [`MarkedRound`] (which allocates a marked-node
/// bitmap per request).
fn static_serve_batch(
    occupancy: &Occupancy,
    requests: &[ElementId],
    summary: &mut CostSummary,
) -> Result<(), TreeError> {
    for (i, &request) in requests.iter().enumerate() {
        if let Some(&next) = requests.get(i + 1) {
            occupancy.touch_path(next);
        }
        occupancy.check_element(request)?;
        summary.record(ServeCost::new(occupancy.access_cost(request), 0));
    }
    Ok(())
}

/// The static offline-optimal baseline of the paper's evaluation: elements
/// are placed in decreasing request-frequency order along a BFS traversal
/// (the most frequent element at the root) and never moved.
///
/// Being offline, it must be constructed from the whole request sequence (or
/// its frequency vector) before serving it.
#[derive(Debug, Clone)]
pub struct StaticOpt {
    occupancy: Occupancy,
}

impl StaticOpt {
    /// Builds the frequency-ordered static tree from per-element weights
    /// (frequencies or probabilities).
    ///
    /// # Panics
    ///
    /// Panics if `weights.len()` differs from the number of tree nodes.
    pub fn from_weights(tree: CompleteTree, weights: &[f64]) -> Self {
        StaticOpt {
            occupancy: placement::frequency_occupancy(tree, weights),
        }
    }

    /// Builds the frequency-ordered static tree by counting the occurrences
    /// of every element in `sequence`.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::ElementOutOfRange`] if the sequence mentions an
    /// element that does not fit the tree.
    pub fn from_sequence(tree: CompleteTree, sequence: &[ElementId]) -> Result<Self, TreeError> {
        let n = tree.num_nodes();
        let mut weights = vec![0.0f64; n as usize];
        for &element in sequence {
            if element.index() >= n {
                return Err(TreeError::ElementOutOfRange {
                    element,
                    num_elements: n,
                });
            }
            weights[element.usize()] += 1.0;
        }
        Ok(Self::from_weights(tree, &weights))
    }

    /// Re-stores the frequency-ordered placement under `kind`, so the static
    /// baseline participates in layout comparisons on equal footing.
    #[must_use]
    pub fn with_layout(self, kind: satn_tree::LayoutKind) -> Self {
        StaticOpt {
            occupancy: self.occupancy.with_layout(kind),
        }
    }
}

impl SelfAdjustingTree for StaticOpt {
    fn name(&self) -> &'static str {
        "static-opt"
    }

    fn occupancy(&self) -> &Occupancy {
        &self.occupancy
    }

    fn is_self_adjusting(&self) -> bool {
        false
    }

    fn serve(&mut self, element: ElementId) -> Result<ServeCost, TreeError> {
        let round = MarkedRound::access(&mut self.occupancy, element)?;
        Ok(round.finish())
    }

    fn serve_batch(
        &mut self,
        requests: &[ElementId],
        summary: &mut CostSummary,
    ) -> Result<(), TreeError> {
        static_serve_batch(&self.occupancy, requests, summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use satn_tree::NodeId;

    fn tree(levels: u32) -> CompleteTree {
        CompleteTree::with_levels(levels).unwrap()
    }

    #[test]
    fn oblivious_never_moves_anything() {
        let mut alg = StaticOblivious::new(Occupancy::identity(tree(4)));
        let before = alg.occupancy().clone();
        for e in [3u32, 14, 7, 0, 14] {
            let cost = alg.serve(ElementId::new(e)).unwrap();
            assert_eq!(cost.adjustment, 0);
        }
        assert_eq!(alg.occupancy(), &before);
        assert!(!alg.is_self_adjusting());
    }

    #[test]
    fn oblivious_access_cost_is_current_depth_plus_one() {
        let mut alg = StaticOblivious::new(Occupancy::identity(tree(4)));
        assert_eq!(alg.serve(ElementId::new(0)).unwrap().access, 1);
        assert_eq!(alg.serve(ElementId::new(2)).unwrap().access, 2);
        assert_eq!(alg.serve(ElementId::new(14)).unwrap().access, 4);
    }

    #[test]
    fn static_opt_places_most_frequent_element_at_root() {
        let sequence: Vec<ElementId> = [4u32, 4, 4, 2, 2, 6]
            .iter()
            .map(|&i| ElementId::new(i))
            .collect();
        let alg = StaticOpt::from_sequence(tree(3), &sequence).unwrap();
        assert_eq!(alg.occupancy().element_at(NodeId::ROOT), ElementId::new(4));
        assert_eq!(alg.occupancy().level_of(ElementId::new(2)), 1);
        assert_eq!(alg.occupancy().level_of(ElementId::new(6)), 1);
    }

    #[test]
    fn static_opt_beats_oblivious_on_skewed_sequences() {
        let tree = tree(6);
        // A heavily skewed sequence over a few elements placed deep in the
        // identity tree.
        let mut sequence = Vec::new();
        for round in 0..400u32 {
            sequence.push(ElementId::new(60 + (round % 3)));
        }
        let mut opt = StaticOpt::from_sequence(tree, &sequence).unwrap();
        let mut oblivious = StaticOblivious::new(Occupancy::identity(tree));
        let opt_cost = opt.serve_sequence(&sequence).unwrap().total().total();
        let oblivious_cost = oblivious.serve_sequence(&sequence).unwrap().total().total();
        assert!(opt_cost < oblivious_cost);
        // The three hot elements occupy the two topmost levels.
        for e in [60u32, 61, 62] {
            assert!(opt.occupancy().level_of(ElementId::new(e)) <= 1);
        }
    }

    #[test]
    fn static_opt_rejects_out_of_range_sequences() {
        let err = StaticOpt::from_sequence(tree(3), &[ElementId::new(9)]).unwrap_err();
        assert!(matches!(err, TreeError::ElementOutOfRange { .. }));
    }

    #[test]
    fn static_opt_from_weights_matches_frequency_placement() {
        let t = tree(3);
        let weights = vec![1.0, 9.0, 2.0, 0.0, 0.0, 5.0, 0.5];
        let alg = StaticOpt::from_weights(t, &weights);
        assert_eq!(alg.occupancy().element_at(NodeId::ROOT), ElementId::new(1));
        assert_eq!(alg.occupancy().level_of(ElementId::new(5)), 1);
        assert_eq!(alg.occupancy().level_of(ElementId::new(2)), 1);
        assert!(!alg.is_self_adjusting());
        assert_eq!(alg.name(), "static-opt");
    }
}
