//! The self-adjusting single-source tree network algorithms.
//!
//! | Algorithm | Type | Competitive ratio | Working-set property |
//! |-----------|------|-------------------|----------------------|
//! | [`RotorPush`] | deterministic | 12 (Theorem 7) | no (Lemma 8) |
//! | [`RandomPush`] | randomized | 16 (Theorem 11) | yes |
//! | [`MoveHalf`] | deterministic | 64 | no |
//! | [`MaxPush`] (Strict-MRU) | deterministic | unknown swap cost | yes (access cost) |
//! | [`StaticOpt`] | offline static | — | no |
//! | [`StaticOblivious`] | static | — | no |
//! | [`MoveToFront`] | deterministic | Ω(log n / log log n) | no |

pub mod ablation;
mod max_push;
mod move_half;
mod move_to_front;
mod random_push;
mod rotor_push;
mod static_tree;

pub use ablation::{AblationKind, LazyRotorPush, ScrambledRotorPush};
pub use max_push::MaxPush;
pub use move_half::MoveHalf;
pub use move_to_front::MoveToFront;
pub use random_push::RandomPush;
pub use rotor_push::RotorPush;
pub use static_tree::{StaticOblivious, StaticOpt};

// The parallel execution layer (`satn-exec`) constructs algorithm instances
// inside worker threads; every algorithm must therefore stay
// `Send + 'static`. These compile-time assertions turn an accidental
// `Rc`/`RefCell`/borrow into a build error instead of a distant trait bound
// failure in `satn-sim`.
#[allow(dead_code)]
fn _assert_parallel_safe() {
    fn assert_send<T: Send + 'static>() {}
    assert_send::<RotorPush>();
    assert_send::<RandomPush>();
    assert_send::<MoveHalf>();
    assert_send::<MaxPush>();
    assert_send::<StaticOpt>();
    assert_send::<StaticOblivious>();
    assert_send::<MoveToFront>();
    assert_send::<LazyRotorPush>();
    assert_send::<ScrambledRotorPush>();
    assert_send::<Box<dyn crate::SelfAdjustingTree + Send>>();
}
