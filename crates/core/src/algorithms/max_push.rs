//! **Max-Push** (Strict-MRU) — the MRU-maintaining baseline (Algorithm 2).

use crate::ops::{exchange_elements, exchange_elements_unchecked};
use crate::recency::RecencyTracker;
use crate::traits::SelfAdjustingTree;
use crate::warm::WarmState;
use satn_tree::{
    CostSummary, ElementId, MarkScratch, MarkedRound, Occupancy, ServeCost, TreeError,
};

/// The Max-Push algorithm (Algorithm 2 of the paper), also called
/// Strict-MRU: it keeps more recently used elements closer to the root.
///
/// Upon a request to an element `e` at depth `k`, the algorithm moves `e` to
/// the root and demotes, on every level `j ∈ {0, …, k − 1}`, the least
/// recently used element of that level by one level: each demoted element
/// takes the node vacated by the demoted element of the next level, and the
/// last one takes the node `e` vacated. This maintains the strict MRU order
/// among accessed elements, so the access cost has the working-set property,
/// but the demotion cascade is expensive (`Θ(k²)` swaps per request) — which
/// is exactly the behaviour the paper's experiments show: access cost close
/// to Static-Opt, adjustment cost far above the push-down algorithms.
///
/// The paper's pseudocode leaves the exact swap sequence implicit; this
/// implementation selects all demotion victims before moving anything and
/// then realises the resulting cyclic relocation with side-effect-free
/// position exchanges, so the intended MRU invariant holds exactly.
#[derive(Debug, Clone)]
pub struct MaxPush {
    occupancy: Occupancy,
    recency: RecencyTracker,
    /// Scratch buffer for the demotion victims, reused across requests by
    /// both serve paths so serving stays allocation-free.
    victims: Vec<ElementId>,
    /// Reused marking buffer: `serve` opens its [`MarkedRound`] through this
    /// scratch so the steady-state request path performs no heap allocation.
    scratch: MarkScratch,
}

impl MaxPush {
    /// Creates a Max-Push network starting from the given occupancy.
    pub fn new(occupancy: Occupancy) -> Self {
        let recency = RecencyTracker::new(occupancy.num_elements());
        MaxPush::with_recency(occupancy, recency)
    }

    /// Creates a Max-Push network with an explicit recency tracker (used by
    /// warm reshard handovers to resume the MRU order mid-stream).
    ///
    /// # Panics
    ///
    /// Panics if the tracker covers a different element count.
    pub fn with_recency(occupancy: Occupancy, recency: RecencyTracker) -> Self {
        assert_eq!(
            recency.num_elements(),
            occupancy.num_elements(),
            "occupancy and recency tracker must cover the same elements"
        );
        MaxPush {
            occupancy,
            recency,
            victims: Vec::new(),
            scratch: MarkScratch::new(),
        }
    }

    /// Returns the recency tracker (exposed for analysis and tests).
    pub fn recency(&self) -> &RecencyTracker {
        &self.recency
    }

    fn least_recently_used_at_level(&self, level: u32) -> ElementId {
        self.recency
            .least_recently_used(
                self.occupancy
                    .tree()
                    .level_nodes(level)
                    .map(|node| self.occupancy.element_at(node)),
            )
            .expect("every level of a complete tree is non-empty")
    }
}

impl SelfAdjustingTree for MaxPush {
    fn name(&self) -> &'static str {
        "max-push"
    }

    fn occupancy(&self) -> &Occupancy {
        &self.occupancy
    }

    fn serve(&mut self, element: ElementId) -> Result<ServeCost, TreeError> {
        self.occupancy.check_element(element)?;
        let depth = self.occupancy.level_of(element);

        // Select the demotion victims before anything moves: the least
        // recently used element of every level 0, …, depth − 1 (the level-0
        // victim is simply the current root element). The victim buffer and
        // the marking scratch are per-instance, so steady-state serving
        // allocates nothing.
        let mut victims = std::mem::take(&mut self.victims);
        victims.clear();
        victims.extend((0..depth).map(|level| self.least_recently_used_at_level(level)));

        // The buffer must return to `self.victims` on every exit, including
        // the error paths, or the next serve would silently reallocate it.
        let cost = (|| {
            let mut round =
                MarkedRound::access_reusing(&mut self.occupancy, element, &mut self.scratch)?;
            if depth > 0 {
                // The requested element trades places with the old root
                // element, which temporarily lands on the vacated deep node …
                exchange_elements(&mut round, element, victims[0])?;
                // … and then bubbles back up through the victim chain: after
                // these exchanges victim[j] occupies the old node of
                // victim[j + 1] (one level deeper), and the last victim keeps
                // the node the requested element vacated.
                for level in (1..depth).rev() {
                    exchange_elements(&mut round, victims[0], victims[level as usize])?;
                }
            }
            Ok(round.finish())
        })();
        self.victims = victims;
        let cost = cost?;
        self.recency.touch(element);
        Ok(cost)
    }

    fn export_state(&self) -> WarmState {
        WarmState {
            recency: Some(self.recency.clone()),
            ..WarmState::default()
        }
    }

    /// The batched fast path: same victim selection and exchange sequence as
    /// [`MaxPush::serve`], but with the reusable victim scratch buffer and
    /// the unchecked exchange helper instead of a fresh [`MarkedRound`]
    /// bitmap and path vectors per request. Max-Push is not restricted to
    /// marked swaps in the paper's model, so skipping the marking discipline
    /// changes nothing; the differential tests assert per-request
    /// equivalence with [`MaxPush::serve`].
    fn serve_batch(
        &mut self,
        requests: &[ElementId],
        summary: &mut CostSummary,
    ) -> Result<(), TreeError> {
        for (i, &element) in requests.iter().enumerate() {
            if let Some(&next) = requests.get(i + 1) {
                self.occupancy.touch_path(next);
            }
            self.occupancy.check_element(element)?;
            let depth = self.occupancy.level_of(element);

            let mut victims = std::mem::take(&mut self.victims);
            victims.clear();
            victims.extend((0..depth).map(|level| self.least_recently_used_at_level(level)));

            let mut swaps = 0;
            if depth > 0 {
                swaps += exchange_elements_unchecked(&mut self.occupancy, element, victims[0]);
                for level in (1..depth).rev() {
                    swaps += exchange_elements_unchecked(
                        &mut self.occupancy,
                        victims[0],
                        victims[level as usize],
                    );
                }
            }
            self.victims = victims;
            self.recency.touch(element);
            summary.record(ServeCost::new(u64::from(depth) + 1, swaps));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use satn_tree::{CompleteTree, NodeId};

    fn identity(levels: u32) -> Occupancy {
        Occupancy::identity(CompleteTree::with_levels(levels).unwrap())
    }

    #[test]
    fn requested_element_reaches_the_root() {
        let mut alg = MaxPush::new(identity(5));
        for e in [22u32, 9, 30, 0, 22] {
            alg.serve(ElementId::new(e)).unwrap();
            assert_eq!(alg.occupancy().element_at(NodeId::ROOT), ElementId::new(e));
            assert!(alg.occupancy().is_consistent());
        }
    }

    #[test]
    fn demotion_moves_each_victim_exactly_one_level_down() {
        let mut alg = MaxPush::new(identity(5));
        let element = ElementId::new(23); // level 4 in the identity placement
        let victims: Vec<ElementId> = (0..4)
            .map(|l| alg.least_recently_used_at_level(l))
            .collect();
        let victim_levels: Vec<u32> = victims
            .iter()
            .map(|&v| alg.occupancy().level_of(v))
            .collect();
        let before = alg.occupancy().clone();
        alg.serve(element).unwrap();
        for (victim, old_level) in victims.iter().zip(victim_levels) {
            assert_eq!(
                alg.occupancy().level_of(*victim),
                old_level + 1,
                "victim {victim}"
            );
        }
        // Every element that is neither the request nor a victim stays put.
        for (node, other) in before.iter() {
            if other != element && !victims.contains(&other) {
                assert_eq!(alg.occupancy().node_of(other), node, "element {other}");
            }
        }
    }

    #[test]
    fn mru_order_is_maintained_on_the_access_sequence() {
        // After serving a set of distinct elements, more recently accessed
        // elements must never be deeper than less recently accessed ones
        // (the Strict-MRU property for accessed elements).
        let mut alg = MaxPush::new(identity(5));
        let accessed: Vec<u32> = vec![17, 3, 29, 11, 23, 5, 30, 3, 29];
        for &e in &accessed {
            alg.serve(ElementId::new(e)).unwrap();
        }
        // Recency order after the sequence (later accesses win).
        let mut order: Vec<u32> = accessed.clone();
        order.dedup();
        let recency_of = |x: u32| accessed.iter().rposition(|&a| a == x).unwrap();
        for &a in &accessed {
            for &b in &accessed {
                if recency_of(a) > recency_of(b) {
                    assert!(
                        alg.occupancy().level_of(ElementId::new(a))
                            <= alg.occupancy().level_of(ElementId::new(b)),
                        "element {a} (more recent) is deeper than {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn root_request_costs_one() {
        let mut alg = MaxPush::new(identity(4));
        assert_eq!(alg.serve(ElementId::new(0)).unwrap(), ServeCost::new(1, 0));
    }

    #[test]
    fn adjustment_cost_is_quadratic_in_the_depth_at_most() {
        let mut alg = MaxPush::new(identity(5));
        for step in 0..200u32 {
            let element = ElementId::new((step * 19 + 7) % 31);
            let depth = alg.occupancy().level_of(element) as u64;
            let cost = alg.serve(element).unwrap();
            assert!(
                cost.adjustment <= 2 * depth * depth + depth + 1,
                "step {step}: {cost}"
            );
        }
    }

    #[test]
    fn working_set_style_access_costs_for_repeated_small_sets() {
        // Repeatedly accessing a small set keeps its access cost small: the
        // defining property of Strict-MRU.
        let mut alg = MaxPush::new(identity(6));
        let hot: Vec<ElementId> = [40u32, 41, 42].iter().map(|&i| ElementId::new(i)).collect();
        for &e in &hot {
            alg.serve(e).unwrap();
        }
        // Afterwards every access of the hot set costs at most |hot| + 1.
        for _ in 0..10 {
            for &e in &hot {
                let cost = alg.serve(e).unwrap();
                assert!(cost.access <= hot.len() as u64 + 1, "{cost}");
            }
        }
    }

    #[test]
    fn deterministic_across_instances() {
        let requests: Vec<ElementId> = (0..150u32).map(|i| ElementId::new((i * 29) % 31)).collect();
        let mut a = MaxPush::new(identity(5));
        let mut b = MaxPush::new(identity(5));
        assert_eq!(
            a.serve_sequence(&requests).unwrap(),
            b.serve_sequence(&requests).unwrap()
        );
        assert_eq!(a.occupancy(), b.occupancy());
    }

    #[test]
    fn rejects_unknown_element() {
        let mut alg = MaxPush::new(identity(3));
        assert!(alg.serve(ElementId::new(31)).is_err());
    }
}
