//! **Random-Push** — the randomized algorithm of Avin et al. (LATIN 2020),
//! re-analysed in Section 5 of the paper (16-competitive in expectation).

use crate::pushdown::augmented_push_down;
use crate::traits::SelfAdjustingTree;
use crate::warm::WarmState;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use satn_tree::{ElementId, MarkedRound, NodeId, Occupancy, ServeCost, TreeError};
use std::any::Any;

/// The randomized Random-Push algorithm.
///
/// Upon a request to an element `e*` at level `d*`, it picks a node `v`
/// uniformly at random among all `d*`-level nodes (possibly `nd(e*)` itself)
/// and executes the augmented push-down `PD(nd(e*), v)`. The random level-`d`
/// node is equivalent to following `d` independent uniform left/right
/// choices from the root — exactly the random walk that Rotor-Push
/// derandomizes with rotor pointers.
///
/// The generic parameter allows injecting any random number generator; the
/// [`RandomPush::with_seed`] constructor provides a reproducible default.
#[derive(Debug, Clone)]
pub struct RandomPush<R = StdRng> {
    occupancy: Occupancy,
    rng: R,
}

impl RandomPush<StdRng> {
    /// Creates a Random-Push network with a seeded default generator, making
    /// runs reproducible.
    pub fn with_seed(occupancy: Occupancy, seed: u64) -> Self {
        RandomPush {
            occupancy,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl<R: Rng> RandomPush<R> {
    /// Creates a Random-Push network using the supplied random number
    /// generator.
    pub fn with_rng(occupancy: Occupancy, rng: R) -> Self {
        RandomPush { occupancy, rng }
    }
}

impl<R: Rng + 'static> SelfAdjustingTree for RandomPush<R> {
    fn name(&self) -> &'static str {
        "random-push"
    }

    fn occupancy(&self) -> &Occupancy {
        &self.occupancy
    }

    fn serve(&mut self, element: ElementId) -> Result<ServeCost, TreeError> {
        self.occupancy.check_element(element)?;
        let u = self.occupancy.node_of(element);
        let level = u.level();
        let mut round = MarkedRound::access(&mut self.occupancy, element)?;
        if level > 0 {
            let offset = self.rng.gen_range(0..(1u32 << level));
            let v = NodeId::from_level_offset(level, offset);
            augmented_push_down(&mut round, u, v)?;
        }
        Ok(round.finish())
    }

    /// Exports the generator position when the instance runs on the standard
    /// [`StdRng`]; an injected custom generator (whose state the workspace
    /// cannot name) exports the cold state and reseeds on warm import.
    fn export_state(&self) -> WarmState {
        WarmState {
            rng: (&self.rng as &dyn Any).downcast_ref::<StdRng>().cloned(),
            ..WarmState::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use satn_tree::{CompleteTree, NodeId};

    fn identity(levels: u32) -> Occupancy {
        Occupancy::identity(CompleteTree::with_levels(levels).unwrap())
    }

    #[test]
    fn requested_element_moves_to_root() {
        let mut alg = RandomPush::with_seed(identity(5), 1);
        for e in [13u32, 27, 4, 30, 0, 13] {
            alg.serve(ElementId::new(e)).unwrap();
            assert_eq!(alg.occupancy().element_at(NodeId::ROOT), ElementId::new(e));
            assert!(alg.occupancy().is_consistent());
        }
    }

    #[test]
    fn cost_never_exceeds_four_times_level() {
        let mut alg = RandomPush::with_seed(identity(6), 17);
        for step in 0..500u32 {
            let element = ElementId::new((step * 13 + 1) % 63);
            let level = alg.occupancy().level_of(element) as u64;
            let cost = alg.serve(element).unwrap();
            assert!(cost.total() <= (4 * level).max(1), "step {step}");
        }
    }

    #[test]
    fn same_seed_reproduces_the_run() {
        let requests: Vec<ElementId> = (0..300u32).map(|i| ElementId::new((i * 7) % 31)).collect();
        let mut a = RandomPush::with_seed(identity(5), 42);
        let mut b = RandomPush::with_seed(identity(5), 42);
        assert_eq!(
            a.serve_sequence(&requests).unwrap(),
            b.serve_sequence(&requests).unwrap()
        );
        assert_eq!(a.occupancy(), b.occupancy());
    }

    #[test]
    fn different_seeds_usually_diverge() {
        let requests: Vec<ElementId> = (0..100u32).map(|i| ElementId::new((i * 11) % 31)).collect();
        let mut a = RandomPush::with_seed(identity(5), 1);
        let mut b = RandomPush::with_seed(identity(5), 2);
        a.serve_sequence(&requests).unwrap();
        b.serve_sequence(&requests).unwrap();
        assert_ne!(a.occupancy(), b.occupancy());
    }

    #[test]
    fn root_request_is_free_of_swaps() {
        let mut alg = RandomPush::with_seed(identity(4), 5);
        let cost = alg.serve(ElementId::new(0)).unwrap();
        assert_eq!(cost, ServeCost::new(1, 0));
    }

    #[test]
    fn custom_rng_constructor_works() {
        let rng = StdRng::seed_from_u64(9);
        let mut alg = RandomPush::with_rng(identity(4), rng);
        assert_eq!(alg.name(), "random-push");
        alg.serve(ElementId::new(10)).unwrap();
        assert_eq!(alg.occupancy().element_at(NodeId::ROOT), ElementId::new(10));
    }

    #[test]
    fn rejects_unknown_element() {
        let mut alg = RandomPush::with_seed(identity(3), 3);
        assert!(alg.serve(ElementId::new(100)).is_err());
    }
}
