//! **Rotor-Push** — the paper's deterministic self-adjusting tree network.

use crate::ops::relocate_unchecked;
use crate::pushdown::augmented_push_down;
use crate::traits::SelfAdjustingTree;
use crate::warm::WarmState;
use satn_rotor::RotorState;
use satn_tree::{
    CostSummary, ElementId, MarkScratch, MarkedRound, NodeId, Occupancy, ServeCost, TreeError,
};

/// The deterministic Rotor-Push algorithm (Section 3 of the paper).
///
/// Every non-leaf node keeps a rotor pointer to one of its children. Upon a
/// request to an element `e*` at level `d*`, the algorithm executes the
/// augmented push-down operation `PD(nd(e*), P_{d*})`, where `P_{d*}` is the
/// node of the rotor global path at level `d*`, and then flips the pointers
/// of the global path above level `d*`. Rotor-Push is 12-competitive
/// (Theorem 7) even though it does not have the working set property
/// (Lemma 8).
///
/// # Examples
///
/// ```
/// use satn_core::{RotorPush, SelfAdjustingTree};
/// use satn_tree::{CompleteTree, ElementId, NodeId, Occupancy};
///
/// let tree = CompleteTree::with_levels(4)?;
/// let mut alg = RotorPush::new(Occupancy::identity(tree));
/// let cost = alg.serve(ElementId::new(5))?;
/// assert_eq!(cost.access, 3); // element 5 was at level 2
/// assert_eq!(alg.occupancy().element_at(NodeId::ROOT), ElementId::new(5));
/// # Ok::<(), satn_tree::TreeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RotorPush {
    occupancy: Occupancy,
    rotors: RotorState,
    flipping_enabled: bool,
    /// Reused marking buffer: `serve` opens its [`MarkedRound`] through this
    /// scratch so the steady-state request path performs no heap allocation.
    scratch: MarkScratch,
}

impl RotorPush {
    /// Creates a Rotor-Push network starting from the given occupancy, with
    /// all rotor pointers initially pointing to the left child.
    pub fn new(occupancy: Occupancy) -> Self {
        let rotors = RotorState::new(occupancy.tree());
        RotorPush {
            occupancy,
            rotors,
            flipping_enabled: true,
            scratch: MarkScratch::new(),
        }
    }

    /// Creates a Rotor-Push network with an explicit initial rotor state
    /// (useful for tests and for resuming a saved configuration).
    ///
    /// # Panics
    ///
    /// Panics if the rotor state belongs to a different tree size.
    pub fn with_rotor_state(occupancy: Occupancy, rotors: RotorState) -> Self {
        assert_eq!(
            occupancy.tree(),
            rotors.tree(),
            "occupancy and rotor state must share a topology"
        );
        RotorPush {
            occupancy,
            rotors,
            flipping_enabled: true,
            scratch: MarkScratch::new(),
        }
    }

    /// Creates the *frozen-rotor* ablation: the global path is used for the
    /// push-down but the pointers are never toggled, so every request pushes
    /// elements down the same path. Used by the ablation benchmark to isolate
    /// the contribution of the rotor mechanism.
    pub fn without_flipping(occupancy: Occupancy) -> Self {
        let rotors = RotorState::new(occupancy.tree());
        RotorPush {
            occupancy,
            rotors,
            flipping_enabled: false,
            scratch: MarkScratch::new(),
        }
    }

    /// Returns the current rotor pointer state.
    pub fn rotor_state(&self) -> &RotorState {
        &self.rotors
    }

    /// Returns `true` unless this instance is the frozen-rotor ablation.
    pub fn is_flipping_enabled(&self) -> bool {
        self.flipping_enabled
    }
}

/// Moves the element currently at `node` to the root via
/// [`relocate_unchecked`] (pure parent swaps; `level(node)` of them).
fn bubble_to_root_unchecked(occupancy: &mut Occupancy, node: NodeId) -> u64 {
    let element = occupancy.element_at(node);
    relocate_unchecked(occupancy, element, NodeId::ROOT)
}

/// Sinks the root's element down to `target` via [`relocate_unchecked`]
/// (pure descent swaps; `level(target)` of them).
fn sink_from_root_unchecked(occupancy: &mut Occupancy, target: NodeId) -> u64 {
    let element = occupancy.element_at(NodeId::ROOT);
    relocate_unchecked(occupancy, element, target)
}

impl SelfAdjustingTree for RotorPush {
    fn name(&self) -> &'static str {
        if self.flipping_enabled {
            "rotor-push"
        } else {
            "rotor-push-frozen"
        }
    }

    fn occupancy(&self) -> &Occupancy {
        &self.occupancy
    }

    fn serve(&mut self, element: ElementId) -> Result<ServeCost, TreeError> {
        self.occupancy.check_element(element)?;
        let u = self.occupancy.node_of(element);
        let level = u.level();
        let mut round =
            MarkedRound::access_reusing(&mut self.occupancy, element, &mut self.scratch)?;
        if level > 0 {
            let v = self.rotors.global_path_node(level);
            augmented_push_down(&mut round, u, v)?;
        }
        let cost = round.finish();
        if self.flipping_enabled && level > 0 {
            self.rotors.flip(level);
        }
        Ok(cost)
    }

    fn rotors(&self) -> Option<&RotorState> {
        Some(&self.rotors)
    }

    fn export_state(&self) -> WarmState {
        WarmState {
            rotors: Some(self.rotors.clone()),
            ..WarmState::default()
        }
    }

    /// The allocation-free batched fast path: performs exactly the swap
    /// sequence of the Lemma 1 push-down via unchecked adjacent swaps,
    /// skipping the per-request marked-node bitmap of [`MarkedRound`]. The
    /// marking discipline is statically satisfied — every swap below touches
    /// a node on the access path, the global-path branch, or a node marked by
    /// an earlier swap of the same round — and the differential tests assert
    /// batch/serve equivalence per request.
    fn serve_batch(
        &mut self,
        requests: &[ElementId],
        summary: &mut CostSummary,
    ) -> Result<(), TreeError> {
        for (i, &element) in requests.iter().enumerate() {
            if let Some(&next) = requests.get(i + 1) {
                self.occupancy.touch_path(next);
            }
            self.occupancy.check_element(element)?;
            let u = self.occupancy.node_of(element);
            let level = u.level();
            let access = u64::from(level) + 1;
            let mut swaps = 0;
            if level > 0 {
                let v = self.rotors.global_path_node(level);
                if u == v {
                    swaps += bubble_to_root_unchecked(&mut self.occupancy, u);
                } else {
                    swaps += bubble_to_root_unchecked(&mut self.occupancy, v);
                    swaps += sink_from_root_unchecked(&mut self.occupancy, u);
                    let parent_of_u = u.parent().expect("level >= 1 nodes have a parent");
                    swaps += bubble_to_root_unchecked(&mut self.occupancy, parent_of_u);
                }
                if self.flipping_enabled {
                    self.rotors.flip(level);
                }
            }
            summary.record(ServeCost::new(access, swaps));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use satn_tree::{CompleteTree, NodeId};

    fn identity(levels: u32) -> Occupancy {
        Occupancy::identity(CompleteTree::with_levels(levels).unwrap())
    }

    #[test]
    fn figure1_example_including_pointer_flips() {
        // Figure 1: request the element at node 5 (level 2) while all pointers
        // point left. The global path node at level 2 is node 3.
        let mut alg = RotorPush::new(identity(4));
        let cost = alg.serve(ElementId::new(5)).unwrap();
        assert_eq!(cost.access, 3);
        let occ = alg.occupancy();
        assert_eq!(occ.element_at(NodeId::ROOT), ElementId::new(5));
        assert_eq!(occ.element_at(NodeId::new(1)), ElementId::new(0));
        assert_eq!(occ.element_at(NodeId::new(3)), ElementId::new(1));
        assert_eq!(occ.element_at(NodeId::new(5)), ElementId::new(3));
        // The two topmost pointers of the global path flipped, so the new
        // global path leaves the root to the right.
        assert_eq!(alg.rotor_state().global_path_node(1), NodeId::new(2));
        // Flip-rank of the old global-path level-2 node became 2^2 - 1 = 3.
        assert_eq!(alg.rotor_state().flip_rank(NodeId::new(3)), 3);
    }

    #[test]
    fn requested_element_always_ends_at_root() {
        let mut alg = RotorPush::new(identity(5));
        for e in [30u32, 7, 0, 19, 19, 3, 30] {
            alg.serve(ElementId::new(e)).unwrap();
            assert_eq!(alg.occupancy().element_at(NodeId::ROOT), ElementId::new(e));
            assert!(alg.occupancy().is_consistent());
        }
    }

    #[test]
    fn cost_never_exceeds_four_times_level() {
        let mut alg = RotorPush::new(identity(6));
        for step in 0..500u32 {
            let element = ElementId::new((step * 17 + 3) % 63);
            let level = alg.occupancy().level_of(element) as u64;
            let cost = alg.serve(element).unwrap();
            assert!(cost.total() <= (4 * level).max(1), "step {step}: {cost}");
        }
    }

    #[test]
    fn root_request_costs_one_and_keeps_state() {
        let mut alg = RotorPush::new(identity(4));
        let before_pointers = alg.rotor_state().clone();
        let cost = alg.serve(ElementId::new(0)).unwrap();
        assert_eq!(cost, ServeCost::new(1, 0));
        assert_eq!(alg.rotor_state(), &before_pointers);
    }

    #[test]
    fn deterministic_across_instances() {
        let requests: Vec<ElementId> = (0..200u32).map(|i| ElementId::new((i * 31) % 31)).collect();
        let mut a = RotorPush::new(identity(5));
        let mut b = RotorPush::new(identity(5));
        let cost_a = a.serve_sequence(&requests).unwrap();
        let cost_b = b.serve_sequence(&requests).unwrap();
        assert_eq!(cost_a, cost_b);
        assert_eq!(a.occupancy(), b.occupancy());
    }

    #[test]
    fn frozen_rotor_never_flips() {
        let mut alg = RotorPush::without_flipping(identity(4));
        assert!(!alg.is_flipping_enabled());
        assert_eq!(alg.name(), "rotor-push-frozen");
        let initial = alg.rotor_state().clone();
        for e in [7u32, 9, 13, 4] {
            alg.serve(ElementId::new(e)).unwrap();
        }
        assert_eq!(alg.rotor_state(), &initial);
    }

    #[test]
    fn rejects_unknown_element() {
        let mut alg = RotorPush::new(identity(3));
        assert!(alg.serve(ElementId::new(70)).is_err());
    }

    #[test]
    #[should_panic(expected = "share a topology")]
    fn with_rotor_state_requires_matching_tree() {
        let occupancy = identity(3);
        let rotors = RotorState::new(CompleteTree::with_levels(4).unwrap());
        RotorPush::with_rotor_state(occupancy, rotors);
    }

    #[test]
    fn with_rotor_state_uses_given_pointers() {
        let occupancy = identity(3);
        let mut rotors = RotorState::new(occupancy.tree());
        rotors.flip(2); // the root pointer now goes right
        let mut alg = RotorPush::with_rotor_state(occupancy, rotors);
        // Request element 3 at node 3 (level 2); the global path is now
        // 0 -> 2 -> 5, so the push-down targets node 5.
        alg.serve(ElementId::new(3)).unwrap();
        let occ = alg.occupancy();
        assert_eq!(occ.element_at(NodeId::ROOT), ElementId::new(3));
        assert_eq!(occ.element_at(NodeId::new(2)), ElementId::new(0));
        assert_eq!(occ.element_at(NodeId::new(5)), ElementId::new(2));
        assert_eq!(occ.element_at(NodeId::new(3)), ElementId::new(5));
    }
}
