//! Exportable warm state: the carry-able internals of an online algorithm.
//!
//! A reshard handover moves a few elements between shards; everything else
//! about a shard's tree — its rotor pointers, its recency clock, its random
//! generator position — is still valid afterwards. This module captures that
//! residual state as a plain value ([`WarmState`]) so a tree can be
//! *reconstituted* at its exact pre-handover configuration instead of being
//! reseeded fresh. Rotor walks remain deterministic and well-behaved from
//! arbitrary initial rotor configurations (Angel & Holroyd, "Rotor walks on
//! general trees"), which is what makes the warm restart sound rather than a
//! heuristic.

use crate::recency::RecencyTracker;
use rand::rngs::StdRng;
use satn_rotor::RotorState;
use satn_tree::{CompleteTree, ElementId};

/// The internal (non-occupancy) state of an online self-adjusting tree,
/// exported by [`SelfAdjustingTree::export_state`](crate::SelfAdjustingTree::export_state)
/// and re-imported by [`AlgorithmKind::instantiate_warm`](crate::AlgorithmKind::instantiate_warm).
///
/// Each component is optional: an algorithm fills exactly the fields it
/// maintains (Rotor-Push its rotors, Move-Half/Max-Push their recency
/// tracker, Random-Push its generator), and a missing component falls back
/// to the cold-start value on import. The default value is the fully cold
/// state.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WarmState {
    /// Rotor pointer directions, one per node (Rotor-Push).
    pub rotors: Option<RotorState>,
    /// Per-element last-access times plus the logical clock (Move-Half,
    /// Max-Push).
    pub recency: Option<RecencyTracker>,
    /// The deterministic generator, mid-stream (Random-Push).
    pub rng: Option<StdRng>,
}

impl WarmState {
    /// Whether this is the cold state (no component carried).
    pub fn is_cold(&self) -> bool {
        self.rotors.is_none() && self.recency.is_none() && self.rng.is_none()
    }

    /// Carries this state across a reshard onto a shard's new topology.
    ///
    /// `remap[new_local]` names the element's local id *before* the
    /// handover, or `None` for elements that just arrived (and for padding);
    /// its length must be the new tree's node count. Rotors transfer by
    /// heap-order node prefix ([`RotorState::carried_into`]); recency
    /// transfers per element through the remap, arrivals starting at the
    /// never-accessed time 0; the generator transfers verbatim.
    ///
    /// # Panics
    ///
    /// Panics if a remap entry names an element the old recency tracker does
    /// not cover.
    pub fn carried_into(&self, tree: CompleteTree, remap: &[Option<u32>]) -> WarmState {
        WarmState {
            rotors: self.rotors.as_ref().map(|rotors| rotors.carried_into(tree)),
            recency: self.recency.as_ref().map(|old| {
                let last_access = remap
                    .iter()
                    .map(|slot| slot.map_or(0, |local| old.last_access(ElementId::new(local))))
                    .collect();
                RecencyTracker::from_parts(last_access, old.now())
            }),
            rng: self.rng.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn default_is_cold() {
        assert!(WarmState::default().is_cold());
        let warm = WarmState {
            rng: Some(StdRng::seed_from_u64(1)),
            ..WarmState::default()
        };
        assert!(!warm.is_cold());
    }

    #[test]
    fn carried_recency_follows_the_remap() {
        let mut recency = RecencyTracker::new(3);
        recency.touch(ElementId::new(0)); // time 1
        recency.touch(ElementId::new(2)); // time 2
        let state = WarmState {
            recency: Some(recency),
            ..WarmState::default()
        };
        let tree = CompleteTree::with_levels(2).unwrap();
        // New local 0 was old local 2, new local 1 arrived, new local 2 was
        // old local 0.
        let carried = state.carried_into(tree, &[Some(2), None, Some(0)]);
        let recency = carried.recency.unwrap();
        assert_eq!(recency.now(), 2);
        assert_eq!(recency.last_access(ElementId::new(0)), 2);
        assert_eq!(recency.last_access(ElementId::new(1)), 0);
        assert_eq!(recency.last_access(ElementId::new(2)), 1);
        assert!(carried.rotors.is_none());
    }

    #[test]
    fn carried_rotors_resize_with_the_tree() {
        let small = CompleteTree::with_levels(2).unwrap();
        let mut rotors = RotorState::new(small);
        rotors.flip(2);
        let state = WarmState {
            rotors: Some(rotors.clone()),
            ..WarmState::default()
        };
        let big = CompleteTree::with_levels(3).unwrap();
        let carried = state.carried_into(big, &[None; 7]);
        let grown = carried.rotors.unwrap();
        assert_eq!(grown.tree(), big);
        assert_eq!(grown.pointers()[..3], *rotors.pointers());
    }
}
