//! Verifies the PR-3 acceptance criterion directly: **zero heap allocations
//! per served request** on the Rotor-Push steady-state path, for both the
//! per-request `serve` path (ancestor iteration + the reused `MarkScratch`)
//! and the batched `serve_batch` fast path.
//!
//! The test installs a counting global allocator and measures the exact
//! number of allocations across thousands of steady-state requests. It is
//! deliberately the only test in this integration binary so no concurrent
//! test can perturb the counter.

// The counting allocator must implement `GlobalAlloc`, which is an unsafe
// trait; this is the one place in the workspace that needs it, and it only
// delegates to `System` after bumping a counter.
#![allow(unsafe_code)]

use satn_core::{RotorPush, SelfAdjustingTree};
use satn_tree::{CompleteTree, CostSummary, ElementId, Occupancy};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// A deterministic request pattern mixing levels (same recurrence the
/// rotor-push unit tests use), precomputed so the measurement loop itself
/// performs no workload generation.
fn steady_state_requests(num_elements: u32, count: usize) -> Vec<ElementId> {
    (0..count)
        .map(|step| ElementId::new(((step as u32) * 17 + 3) % num_elements))
        .collect()
}

#[test]
fn rotor_push_steady_state_serves_without_allocating() {
    let tree = CompleteTree::with_levels(10).unwrap();
    let requests = steady_state_requests(tree.num_nodes(), 4_096);

    // --- serve(): the per-request path through MarkedRound. ---
    let mut network = RotorPush::new(Occupancy::identity(tree));
    // Warm up: the first requests grow the reused MarkScratch once.
    for &element in &requests[..64] {
        network.serve(element).unwrap();
    }
    let before = allocations();
    let mut total = 0u64;
    for &element in &requests {
        total += network.serve(element).unwrap().total();
    }
    let serve_allocations = allocations() - before;
    assert!(total > 0);
    assert_eq!(
        serve_allocations,
        0,
        "serve() allocated {serve_allocations} times over {} steady-state requests",
        requests.len()
    );

    // --- serve_batch(): the batched fast path. ---
    let mut network = RotorPush::new(Occupancy::identity(tree));
    let mut warmup = CostSummary::new();
    network.serve_batch(&requests[..64], &mut warmup).unwrap();
    let mut summary = CostSummary::new();
    let before = allocations();
    network.serve_batch(&requests, &mut summary).unwrap();
    let batch_allocations = allocations() - before;
    assert_eq!(summary.requests() as usize, requests.len());
    assert_eq!(
        batch_allocations,
        0,
        "serve_batch() allocated {batch_allocations} times over {} steady-state requests",
        requests.len()
    );
}
