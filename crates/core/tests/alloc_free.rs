//! Verifies the allocation-free serving criterion directly: **zero heap
//! allocations per served request** on the steady-state path of every
//! deterministic self-adjusting algorithm — Rotor-Push, Move-To-Front,
//! Move-Half, and Max-Push — for both the per-request `serve` path (ancestor
//! iteration + the reused `MarkScratch`, plus Max-Push's reused victim
//! buffer) and the batched `serve_batch` fast path.
//!
//! The test installs a counting global allocator and measures the exact
//! number of allocations across thousands of steady-state requests. The
//! counter is gated by a thread-local flag so only the measuring thread is
//! ever counted — allocations from the libtest harness or any other process
//! thread cannot perturb it — and the test is still the only one in this
//! integration binary so the measured windows never interleave.
//!
//! The same criterion covers the `satn-obs` instrumentation the serving
//! engine threads through its drain boundaries: counters, gauges, the
//! atomic drain-latency histogram, per-tag wire accounting, and the bounded
//! trace ring must all stay allocation-free in steady state, so turning
//! metrics on cannot regress the hot path they observe.

// The counting allocator must implement `GlobalAlloc`, which is an unsafe
// trait; this is the one place in the workspace that needs it, and it only
// delegates to `System` after bumping a counter.
#![allow(unsafe_code)]

use satn_core::{MaxPush, MoveHalf, MoveToFront, RotorPush, SelfAdjustingTree};
use satn_tree::{CompleteTree, CostSummary, ElementId, Occupancy};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

std::thread_local! {
    /// Counting is gated per thread: the measured sections flip this on, so
    /// allocations made concurrently by other process threads (the libtest
    /// harness, its output capture) can never perturb the counter. The
    /// `const` initializer keeps the TLS access itself allocation-free.
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

fn counting_enabled() -> bool {
    // `try_with` instead of `with`: the allocator can be called during
    // thread teardown after the TLS slot is gone.
    COUNTING.try_with(Cell::get).unwrap_or(false)
}

struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counting_enabled() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counting_enabled() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Runs `f` with this thread's allocations counted, returning how many
/// happened inside.
fn count_allocations(f: impl FnOnce()) -> u64 {
    let before = allocations();
    COUNTING.with(|counting| counting.set(true));
    f();
    COUNTING.with(|counting| counting.set(false));
    allocations() - before
}

/// A deterministic request pattern mixing levels (same recurrence the
/// rotor-push unit tests use), precomputed so the measurement loop itself
/// performs no workload generation.
fn steady_state_requests(num_elements: u32, count: usize) -> Vec<ElementId> {
    (0..count)
        .map(|step| ElementId::new(((step as u32) * 17 + 3) % num_elements))
        .collect()
}

/// Measures both serve paths of `build`'s algorithm: warm up (growing the
/// per-instance scratch buffers once), then count allocations over the whole
/// steady-state request block.
fn assert_steady_state_alloc_free<A, F>(name: &str, build: F)
where
    A: SelfAdjustingTree,
    F: Fn(Occupancy) -> A,
{
    let tree = CompleteTree::with_levels(10).unwrap();
    let requests = steady_state_requests(tree.num_nodes(), 4_096);

    // --- serve(): the per-request path through MarkedRound. ---
    let mut network = build(Occupancy::identity(tree));
    for &element in &requests[..64] {
        network.serve(element).unwrap();
    }
    let mut total = 0u64;
    let serve_allocations = count_allocations(|| {
        for &element in &requests {
            total += network.serve(element).unwrap().total();
        }
    });
    assert!(total > 0);
    assert_eq!(
        serve_allocations,
        0,
        "{name}: serve() allocated {serve_allocations} times over {} steady-state requests",
        requests.len()
    );

    // --- serve_batch(): the batched fast path (or the default loop over the
    // now allocation-free serve()). ---
    let mut network = build(Occupancy::identity(tree));
    let mut warmup = CostSummary::new();
    network.serve_batch(&requests[..64], &mut warmup).unwrap();
    let mut summary = CostSummary::new();
    let batch_allocations = count_allocations(|| {
        network.serve_batch(&requests, &mut summary).unwrap();
    });
    assert_eq!(summary.requests() as usize, requests.len());
    assert_eq!(
        batch_allocations,
        0,
        "{name}: serve_batch() allocated {batch_allocations} times over {} steady-state requests",
        requests.len()
    );
}

/// Measures serving **with the observability layer on**: per batch, exactly
/// the registry updates the engine performs at a drain boundary (counters,
/// cost adds, per-shard gauges, queue-depth inc/dec, a latency sample, a
/// wire-frame note, and a trace-ring record). Zero allocations: the
/// histogram's buckets are boxed at construction and the ring recycles its
/// preallocated slots once full.
fn assert_instrumented_serving_alloc_free() {
    use satn_obs::{EngineMetrics, TraceKind, TraceRing, TraceStamp};
    use std::time::Duration;

    let tree = CompleteTree::with_levels(10).unwrap();
    let requests = steady_state_requests(tree.num_nodes(), 4_096);
    let metrics = EngineMetrics::new(4);
    let tracer = TraceRing::new(64);
    // Fill the ring past capacity so the measured block exercises the
    // recycling path, not the initial growth into preallocated slots.
    for served in 0..128u64 {
        tracer.record(TraceStamp {
            kind: TraceKind::Drain,
            epoch: 0,
            served,
            detail: 1,
        });
    }
    let mut network = RotorPush::new(Occupancy::identity(tree));
    let mut warmup = CostSummary::new();
    network.serve_batch(&requests[..64], &mut warmup).unwrap();

    let mut served = 0u64;
    let instrumented_allocations = count_allocations(|| {
        for (batch, chunk) in requests.chunks(256).enumerate() {
            let mut delta = CostSummary::new();
            network.serve_batch(chunk, &mut delta).unwrap();
            let cost = delta.total();
            metrics.requests_served.add(delta.requests());
            metrics.access_cost.add(cost.access);
            metrics.adjustment_cost.add(cost.adjustment);
            metrics.batches_drained.inc();
            metrics.shard_buffered[batch % 4].set(0);
            metrics.ingest_queue_depth.inc();
            metrics.ingest_queue_depth.dec();
            metrics
                .drain_latency
                .record(Duration::from_nanos(1 + 977 * batch as u64));
            metrics.note_wire_frame(0, 9);
            served += delta.requests();
            tracer.record(TraceStamp {
                kind: TraceKind::Drain,
                epoch: 0,
                served,
                detail: delta.requests(),
            });
        }
    });
    assert_eq!(served as usize, requests.len());
    assert_eq!(metrics.requests_served.get() as usize, requests.len());
    assert_eq!(
        instrumented_allocations,
        0,
        "instrumented serving allocated {instrumented_allocations} times over {} requests",
        requests.len()
    );
}

#[test]
fn self_adjusting_steady_state_serves_without_allocating() {
    assert_steady_state_alloc_free("rotor-push", RotorPush::new);
    assert_steady_state_alloc_free("move-to-front", MoveToFront::new);
    assert_steady_state_alloc_free("move-half", MoveHalf::new);
    assert_steady_state_alloc_free("max-push", MaxPush::new);
    // The same criterion with the metrics registry and tracer engaged: the
    // observability layer adds no allocation to the path it observes.
    assert_instrumented_serving_alloc_free();
}
