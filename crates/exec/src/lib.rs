//! # satn-exec
//!
//! The deterministic parallel execution layer of the workspace: a std-only
//! scoped worker pool that fans independent work items out over threads and
//! merges the results back **in input order**.
//!
//! Everything in this repository is deterministic by construction — rotor
//! walks are the paper's whole point — so the contract of this crate is
//! strict: for a pure function `f`, [`ordered_map`] returns exactly
//! `items.iter().map(f).collect()`, bit for bit, regardless of thread count
//! or scheduling. Parallelism changes wall-clock time and nothing else,
//! which is what lets `satn-sim` checkpoint fingerprints and `satn-bench`
//! golden files act as oracles for the parallel engine.
//!
//! ## Design
//!
//! * No dependencies (the build environment has no crates.io access; no
//!   rayon). Workers are [`std::thread::scope`] threads, so borrowed inputs
//!   need no `'static` gymnastics.
//! * Work distribution is a chunked atomic work queue: workers claim the
//!   next chunk of indices with a single `fetch_add`, so load balancing is
//!   dynamic (a slow cell never serializes the grid) while claim overhead
//!   stays one atomic per chunk.
//! * Each worker buffers `(index, result)` pairs locally; the caller's
//!   thread merges them back into input order after the scope joins. No
//!   locks anywhere on the hot path.
//!
//! ## Example
//!
//! ```
//! use satn_exec::{ordered_map, Parallelism};
//!
//! let squares = ordered_map(&[1u64, 2, 3, 4], Parallelism::Auto, |&n| n * n);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! // Identical output at any thread count — determinism is the contract.
//! assert_eq!(squares, ordered_map(&[1u64, 2, 3, 4], Parallelism::Serial, |&n| n * n));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

use std::collections::VecDeque;
use std::fmt;
use std::num::NonZeroUsize;
use std::str::FromStr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Condvar, Mutex};

/// How many worker threads an execution-layer call may use.
///
/// The default is [`Parallelism::Auto`] — all available cores. Every mode
/// produces bit-identical results; the knob only trades wall-clock time for
/// CPU usage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Parallelism {
    /// One worker: run on the calling thread, no threads spawned.
    Serial,
    /// Exactly this many workers (`0` and `1` both mean serial).
    Threads(usize),
    /// One worker per available core ([`std::thread::available_parallelism`]).
    #[default]
    Auto,
}

impl Parallelism {
    /// Resolves the mode to a concrete worker count (always at least 1).
    pub fn threads(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Auto => std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
        }
    }

    /// Maps a CLI-style thread count to a mode: `0` means [`Parallelism::Auto`],
    /// `1` means [`Parallelism::Serial`], anything else a fixed count.
    pub fn from_thread_count(threads: usize) -> Self {
        match threads {
            0 => Parallelism::Auto,
            1 => Parallelism::Serial,
            n => Parallelism::Threads(n),
        }
    }

    /// Splits this budget across two nesting levels — `outer_tasks`
    /// independent outer work items (grid cells, epochs) that each fan out
    /// again on the inside (shard drains) — and returns `(outer, inner)`
    /// modes whose product never exceeds the budget, so nested calls cannot
    /// oversubscribe the machine.
    ///
    /// The outer level gets `min(outer_tasks, budget)` workers (there is no
    /// point in more workers than tasks); the inner level divides what is
    /// left: `max(1, budget / outer)`.
    ///
    /// ```
    /// use satn_exec::Parallelism;
    ///
    /// let (outer, inner) = Parallelism::Threads(8).split(2);
    /// assert_eq!(outer.threads() , 2);
    /// assert_eq!(inner.threads(), 4);
    /// // Serial stays serial at both levels.
    /// let (outer, inner) = Parallelism::Serial.split(16);
    /// assert_eq!((outer.threads(), inner.threads()), (1, 1));
    /// ```
    pub fn split(self, outer_tasks: usize) -> (Parallelism, Parallelism) {
        let budget = self.threads();
        let outer = budget.min(outer_tasks).max(1);
        let inner = (budget / outer).max(1);
        (
            Parallelism::from_thread_count_exact(outer),
            Parallelism::from_thread_count_exact(inner),
        )
    }

    /// Like [`Parallelism::from_thread_count`] but without the `0 → Auto`
    /// CLI convention: the count is taken literally.
    fn from_thread_count_exact(threads: usize) -> Self {
        match threads {
            0 | 1 => Parallelism::Serial,
            n => Parallelism::Threads(n),
        }
    }
}

impl fmt::Display for Parallelism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Parallelism::Serial => f.write_str("serial"),
            Parallelism::Threads(n) => write!(f, "{n}"),
            Parallelism::Auto => write!(f, "auto({})", self.threads()),
        }
    }
}

/// Error returned when parsing an unrecognised parallelism spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseParallelismError {
    input: String,
}

impl fmt::Display for ParseParallelismError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown parallelism {:?} (expected \"auto\", \"serial\", or a thread count)",
            self.input
        )
    }
}

impl std::error::Error for ParseParallelismError {}

impl FromStr for Parallelism {
    type Err = ParseParallelismError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "auto" | "all" => Ok(Parallelism::Auto),
            "serial" | "1" => Ok(Parallelism::Serial),
            other => other
                .parse::<usize>()
                .map(Parallelism::from_thread_count)
                .map_err(|_| ParseParallelismError {
                    input: s.to_owned(),
                }),
        }
    }
}

/// Maps `f` over `items` on up to `parallelism` worker threads, returning the
/// results **in input order** — the parallel, deterministic equivalent of
/// `items.iter().map(f).collect()`.
///
/// Work is claimed one item at a time, which suits the coarse work items of
/// this workspace (a scenario cell runs for milliseconds to seconds); use
/// [`ordered_map_chunked`] for fine-grained items.
///
/// # Panics
///
/// Propagates the first panic raised by `f` after all workers have stopped.
pub fn ordered_map<T, R, F>(items: &[T], parallelism: Parallelism, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    ordered_map_chunked(items, parallelism, 1, f)
}

/// [`ordered_map`] with an explicit claim-chunk size: each `fetch_add` on the
/// shared work counter hands a worker `chunk` consecutive items. Larger
/// chunks amortise claim overhead for very cheap `f`; chunking never affects
/// the output, only the schedule.
///
/// # Panics
///
/// Panics if `chunk` is zero; propagates the first panic raised by `f`.
pub fn ordered_map_chunked<T, R, F>(
    items: &[T],
    parallelism: Parallelism,
    chunk: usize,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    assert!(chunk > 0, "the claim-chunk size must be positive");
    let workers = parallelism.threads().min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }

    let next_chunk = AtomicUsize::new(0);
    let buckets: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let start = next_chunk.fetch_add(chunk, Ordering::Relaxed);
                        if start >= items.len() {
                            return local;
                        }
                        let end = (start + chunk).min(items.len());
                        for index in start..end {
                            local.push((index, f(&items[index])));
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| match handle.join() {
                Ok(local) => local,
                Err(panic) => std::panic::resume_unwind(panic),
            })
            .collect()
    });

    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (index, result) in buckets.into_iter().flatten() {
        debug_assert!(slots[index].is_none(), "index {index} claimed twice");
        slots[index] = Some(result);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every index is claimed exactly once"))
        .collect()
}

/// Runs `f` over every item on up to `parallelism` worker threads — with
/// **exclusive mutable access** to each item — and feeds the results to
/// `consume` on the calling thread **in input order, streamed as each
/// result's prefix completes**: `consume(i, r)` is invoked as soon as the
/// results of items `0..=i` all exist, without waiting for the rest of the
/// input (the "streaming variant" of [`ordered_map`] the sharded serving
/// engine drains batches through).
///
/// Items are claimed dynamically (a slow item never serializes the rest) and
/// each worker gets `&mut T`, so the items themselves can be stateful workers
/// — e.g. a shard holding a tree plus its pending request batch. Like every
/// primitive of this crate, the observable outcome (item states after the
/// call, the `(index, result)` sequence seen by `consume`) is bit-identical
/// at every thread count; only wall-clock time changes.
///
/// # Panics
///
/// Propagates the first panic raised by `f` after all workers have stopped.
pub fn for_each_ordered<T, R, F, C>(items: &mut [T], parallelism: Parallelism, f: F, mut consume: C)
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
    C: FnMut(usize, R),
{
    let workers = parallelism.threads().min(items.len());
    if workers <= 1 {
        for (index, item) in items.iter_mut().enumerate() {
            consume(index, f(index, item));
        }
        return;
    }

    let total = items.len();
    // Workers pull `(index, &mut item)` pairs from a shared hand-out queue
    // (one short lock per claim — items here are coarse, a whole batch of
    // requests each) and push results through a channel; the calling thread
    // reorders arrivals into input order and consumes completed prefixes.
    let queue = Mutex::new(items.iter_mut().enumerate());
    std::thread::scope(|scope| {
        let (sender, receiver) = mpsc::channel::<(usize, R)>();
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let sender = sender.clone();
                let queue = &queue;
                let f = &f;
                scope.spawn(move || loop {
                    let claimed = queue.lock().expect("claim lock never poisons").next();
                    let Some((index, item)) = claimed else { return };
                    // A send can only fail if the consumer panicked and the
                    // receiver is gone; stop quietly, the panic wins.
                    if sender.send((index, f(index, item))).is_err() {
                        return;
                    }
                })
            })
            .collect();
        drop(sender);

        let mut pending: Vec<Option<R>> = (0..total).map(|_| None).collect();
        let mut cursor = 0usize;
        while let Ok((index, result)) = receiver.recv() {
            debug_assert!(pending[index].is_none(), "item {index} finished twice");
            pending[index] = Some(result);
            while cursor < total {
                match pending[cursor].take() {
                    Some(ready) => {
                        consume(cursor, ready);
                        cursor += 1;
                    }
                    None => break,
                }
            }
        }
        for handle in handles {
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }
        assert_eq!(cursor, total, "every item is consumed exactly once");
    });
}

/// Maps `f` over `items` with mutable access, returning the results in input
/// order — [`ordered_map`] for stateful work items. Built on
/// [`for_each_ordered`], so results are collected as their prefix completes.
///
/// # Panics
///
/// Propagates the first panic raised by `f`.
pub fn ordered_map_mut<T, R, F>(items: &mut [T], parallelism: Parallelism, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let mut results = Vec::with_capacity(items.len());
    for_each_ordered(items, parallelism, f, |index, result| {
        debug_assert_eq!(index, results.len());
        results.push(result);
    });
    results
}

/// A handle for spawning dynamically discovered tasks onto the scoped pool
/// of a [`task_scope`] call.
///
/// Unlike the ordered-map primitives above — whose work list is known up
/// front — a task scope accepts tasks as they appear (e.g. one per accepted
/// network connection) and runs them on a **bounded** set of workers: with
/// `W` workers, at most `W` tasks run concurrently and the rest queue in
/// submission order. Tasks may borrow anything that outlives the
/// [`task_scope`] call, exactly like [`std::thread::scope`] threads.
pub struct TaskScope<'env> {
    state: Mutex<TaskQueue<'env>>,
    available: Condvar,
    gauges: Option<&'env satn_obs::TaskGauges>,
}

struct TaskQueue<'env> {
    tasks: VecDeque<Box<dyn FnOnce() + Send + 'env>>,
    closed: bool,
}

impl<'env> TaskScope<'env> {
    /// Enqueues a task; an idle worker picks it up in submission order.
    /// Tasks produce results through whatever shared state they borrow (a
    /// channel, a mutex-guarded vector) — the scope itself returns nothing.
    pub fn spawn(&self, task: impl FnOnce() + Send + 'env) {
        let mut state = self.state.lock().expect("task queue lock never poisons");
        assert!(!state.closed, "spawn after the task scope closed");
        state.tasks.push_back(Box::new(task));
        drop(state);
        if let Some(gauges) = self.gauges {
            gauges.queued.inc();
        }
        self.available.notify_one();
    }

    fn next_task(&self) -> Option<Box<dyn FnOnce() + Send + 'env>> {
        let mut state = self.state.lock().expect("task queue lock never poisons");
        loop {
            if let Some(task) = state.tasks.pop_front() {
                return Some(task);
            }
            if state.closed {
                return None;
            }
            state = self
                .available
                .wait(state)
                .expect("task queue lock never poisons");
        }
    }

    fn close(&self) {
        self.state
            .lock()
            .expect("task queue lock never poisons")
            .closed = true;
        self.available.notify_all();
    }
}

impl fmt::Debug for TaskScope<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = self.state.lock().expect("task queue lock never poisons");
        f.debug_struct("TaskScope")
            .field("queued", &state.tasks.len())
            .field("closed", &state.closed)
            .finish()
    }
}

/// Runs `f` with a [`TaskScope`] handle backed by `parallelism` workers,
/// then waits for every spawned task to finish before returning `f`'s
/// result — the dynamic-work sibling of [`ordered_map`], for work that is
/// *discovered* rather than known up front (accepted connections, queue
/// items).
///
/// Workers run concurrently with `f` itself, so a task spawned early makes
/// progress while `f` is still producing more (an accept loop handles its
/// first connection while waiting for the next). At least one worker always
/// runs even under [`Parallelism::Serial`]; serial mode bounds concurrent
/// tasks to one, it does not defer them until `f` returns.
///
/// # Panics
///
/// Propagates the first panic raised by a task (after all workers have
/// stopped) — mirroring the ordered-map primitives. Queued tasks behind a
/// panicking worker may be abandoned.
pub fn task_scope<'env, R>(parallelism: Parallelism, f: impl FnOnce(&TaskScope<'env>) -> R) -> R {
    task_scope_instrumented(parallelism, None, f)
}

/// [`task_scope`] with optional task-lifecycle telemetry: when `gauges` is
/// provided, spawned tasks move its `queued → running → completed` gauges as
/// they progress through the pool. The gauge updates are relaxed atomics on
/// the existing lock boundaries — instrumentation adds no lock and no
/// allocation to the task path.
///
/// # Panics
///
/// Propagates the first panic raised by a task, like [`task_scope`]. A
/// panicking task is neither completed nor decremented from `running` — the
/// whole scope is unwinding at that point and the gauges are advisory.
pub fn task_scope_instrumented<'env, R>(
    parallelism: Parallelism,
    gauges: Option<&'env satn_obs::TaskGauges>,
    f: impl FnOnce(&TaskScope<'env>) -> R,
) -> R {
    let scope = TaskScope {
        state: Mutex::new(TaskQueue {
            tasks: VecDeque::new(),
            closed: false,
        }),
        available: Condvar::new(),
        gauges,
    };
    let workers = parallelism.threads();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let scope = &scope;
                s.spawn(move || {
                    while let Some(task) = scope.next_task() {
                        if let Some(gauges) = scope.gauges {
                            gauges.queued.dec();
                            gauges.running.inc();
                        }
                        task();
                        if let Some(gauges) = scope.gauges {
                            gauges.running.dec();
                            gauges.completed.inc();
                        }
                    }
                })
            })
            .collect();
        // Close on every exit path: if `f` panics without this, the workers
        // would wait on the condvar forever and the enclosing thread scope
        // would never join.
        struct CloseOnExit<'a, 'env>(&'a TaskScope<'env>);
        impl Drop for CloseOnExit<'_, '_> {
            fn drop(&mut self) {
                self.0.close();
            }
        }
        let result = {
            let _close = CloseOnExit(&scope);
            f(&scope)
        };
        for handle in handles {
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }
        result
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn preserves_input_order_at_every_parallelism() {
        let items: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = items.iter().map(|&n| n.wrapping_mul(31) ^ 7).collect();
        for parallelism in [
            Parallelism::Serial,
            Parallelism::Threads(2),
            Parallelism::Threads(5),
            Parallelism::Auto,
        ] {
            let got = ordered_map(&items, parallelism, |&n| n.wrapping_mul(31) ^ 7);
            assert_eq!(got, expected, "{parallelism:?}");
        }
    }

    #[test]
    fn split_never_oversubscribes_the_budget() {
        for budget in 1..=32usize {
            for outer_tasks in [1usize, 2, 3, 7, 16, 100] {
                let (outer, inner) = Parallelism::Threads(budget).split(outer_tasks);
                assert!(
                    outer.threads() * inner.threads() <= budget.max(1),
                    "budget={budget} tasks={outer_tasks}: {} x {}",
                    outer.threads(),
                    inner.threads()
                );
                assert!(outer.threads() <= outer_tasks.max(1));
                assert!(outer.threads() >= 1 && inner.threads() >= 1);
            }
        }
    }

    #[test]
    fn split_uses_the_whole_budget_when_tasks_divide_it() {
        let (outer, inner) = Parallelism::Threads(12).split(4);
        assert_eq!((outer.threads(), inner.threads()), (4, 3));
        let (outer, inner) = Parallelism::Threads(6).split(100);
        assert_eq!((outer.threads(), inner.threads()), (6, 1));
        let (outer, inner) = Parallelism::Serial.split(8);
        assert_eq!((outer, inner), (Parallelism::Serial, Parallelism::Serial));
        // Zero outer tasks degrades gracefully to serial x budget.
        let (outer, inner) = Parallelism::Threads(4).split(0);
        assert_eq!((outer.threads(), inner.threads()), (1, 4));
    }

    #[test]
    fn chunked_claiming_covers_every_item_exactly_once() {
        let items: Vec<usize> = (0..100).collect();
        for chunk in [1usize, 3, 7, 64, 1000] {
            let got = ordered_map_chunked(&items, Parallelism::Threads(4), chunk, |&n| n);
            assert_eq!(got, items, "chunk {chunk}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(ordered_map(&empty, Parallelism::Auto, |&n| n).is_empty());
        assert_eq!(
            ordered_map(&[9u32], Parallelism::Threads(8), |&n| n + 1),
            [10]
        );
    }

    #[test]
    fn multiple_worker_threads_actually_run() {
        // With more blocking items than workers and a barrier-ish workload,
        // at least two distinct threads must participate (skipped on a
        // single-core machine, where the pool rightly stays serial).
        if Parallelism::Auto.threads() < 2 {
            return;
        }
        let seen = Mutex::new(HashSet::new());
        let items: Vec<u32> = (0..64).collect();
        ordered_map(&items, Parallelism::Threads(4), |&n| {
            seen.lock().unwrap().insert(std::thread::current().id());
            std::thread::sleep(std::time::Duration::from_millis(1));
            n
        });
        assert!(seen.lock().unwrap().len() >= 2);
    }

    #[test]
    fn borrowed_non_static_inputs_work() {
        let words = ["rotor".to_owned(), "walk".to_owned()];
        let lengths = ordered_map(&words, Parallelism::Threads(2), |w| w.len());
        assert_eq!(lengths, vec![5, 4]);
    }

    #[test]
    fn worker_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            ordered_map(&[1, 2, 3], Parallelism::Threads(2), |&n| {
                assert!(n != 2, "boom");
                n
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn parallelism_resolution_and_parsing() {
        assert_eq!(Parallelism::Serial.threads(), 1);
        assert_eq!(Parallelism::Threads(0).threads(), 1);
        assert_eq!(Parallelism::Threads(6).threads(), 6);
        assert!(Parallelism::Auto.threads() >= 1);
        assert_eq!(Parallelism::from_thread_count(0), Parallelism::Auto);
        assert_eq!(Parallelism::from_thread_count(1), Parallelism::Serial);
        assert_eq!(Parallelism::from_thread_count(3), Parallelism::Threads(3));
        assert_eq!("auto".parse::<Parallelism>().unwrap(), Parallelism::Auto);
        assert_eq!(
            "serial".parse::<Parallelism>().unwrap(),
            Parallelism::Serial
        );
        assert_eq!("4".parse::<Parallelism>().unwrap(), Parallelism::Threads(4));
        assert_eq!("0".parse::<Parallelism>().unwrap(), Parallelism::Auto);
        assert!("fast".parse::<Parallelism>().is_err());
        assert_eq!(Parallelism::default(), Parallelism::Auto);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_chunk_is_rejected() {
        ordered_map_chunked(&[1], Parallelism::Serial, 0, |&n: &i32| n);
    }

    #[test]
    fn for_each_ordered_streams_prefixes_in_input_order() {
        let mut items: Vec<u64> = (0..137).collect();
        for parallelism in [
            Parallelism::Serial,
            Parallelism::Threads(2),
            Parallelism::Threads(7),
            Parallelism::Auto,
        ] {
            let mut seen: Vec<(usize, u64)> = Vec::new();
            for_each_ordered(
                &mut items,
                parallelism,
                |index, item| {
                    *item += 1;
                    *item * index as u64
                },
                |index, result| seen.push((index, result)),
            );
            // Consumption is strictly in input order, every item exactly once.
            let indices: Vec<usize> = seen.iter().map(|&(i, _)| i).collect();
            assert_eq!(
                indices,
                (0..items.len()).collect::<Vec<_>>(),
                "{parallelism:?}"
            );
        }
        // The mutations applied by all four passes accumulated determinately.
        assert_eq!(items[0], 4);
        assert_eq!(items[136], 140);
    }

    #[test]
    fn for_each_ordered_mutates_items_exactly_once() {
        let mut items = vec![0u32; 513];
        for_each_ordered(
            &mut items,
            Parallelism::Threads(4),
            |_, item| *item += 1,
            |_, ()| {},
        );
        assert!(items.iter().all(|&n| n == 1));
    }

    #[test]
    fn ordered_map_mut_matches_serial_map() {
        let mut serial: Vec<u64> = (0..100).collect();
        let mut parallel = serial.clone();
        let expected = ordered_map_mut(&mut serial, Parallelism::Serial, |i, n| {
            *n ^= 0xF0;
            *n + i as u64
        });
        let got = ordered_map_mut(&mut parallel, Parallelism::Threads(5), |i, n| {
            *n ^= 0xF0;
            *n + i as u64
        });
        assert_eq!(expected, got);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn for_each_ordered_worker_panics_propagate() {
        let mut items: Vec<i32> = (0..32).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            for_each_ordered(
                &mut items,
                Parallelism::Threads(3),
                |_, n| {
                    assert!(*n != 17, "boom");
                    *n
                },
                |_, _| {},
            );
        }));
        assert!(result.is_err());
    }

    #[test]
    fn task_scope_runs_every_spawned_task() {
        for parallelism in [
            Parallelism::Serial,
            Parallelism::Threads(3),
            Parallelism::Auto,
        ] {
            let done = Mutex::new(Vec::new());
            let produced = task_scope(parallelism, |scope| {
                for task in 0..17 {
                    let done = &done;
                    scope.spawn(move || done.lock().unwrap().push(task));
                }
                "from f"
            });
            assert_eq!(produced, "from f");
            let mut done = done.into_inner().unwrap();
            done.sort_unstable();
            assert_eq!(done, (0..17).collect::<Vec<_>>());
        }
    }

    #[test]
    fn task_scope_tasks_run_while_f_is_still_producing() {
        // A task spawned first can complete (and unblock `f`) before `f`
        // returns: `f` waits on a channel that only the task feeds.
        let (sender, receiver) = mpsc::channel();
        task_scope(Parallelism::Serial, |scope| {
            scope.spawn(move || sender.send(42u32).unwrap());
            assert_eq!(receiver.recv().unwrap(), 42);
        });
    }

    #[test]
    fn task_scope_tasks_borrow_the_environment() {
        let words = ["rotor".to_owned(), "walk".to_owned()];
        let lengths = Mutex::new(0usize);
        task_scope(Parallelism::Threads(2), |scope| {
            for word in &words {
                let lengths = &lengths;
                scope.spawn(move || *lengths.lock().unwrap() += word.len());
            }
        });
        assert_eq!(lengths.into_inner().unwrap(), 9);
    }

    #[test]
    fn task_scope_gauges_settle_to_the_task_count() {
        let gauges = satn_obs::TaskGauges::new();
        task_scope_instrumented(Parallelism::Threads(3), Some(&gauges), |scope| {
            for _ in 0..25 {
                scope.spawn(|| {});
            }
        });
        assert_eq!(gauges.completed.get(), 25);
        assert_eq!(gauges.queued.get(), 0);
        assert_eq!(gauges.running.get(), 0);
    }

    #[test]
    fn task_scope_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            task_scope(Parallelism::Threads(2), |scope| {
                scope.spawn(|| panic!("boom"));
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn for_each_ordered_handles_empty_and_singleton() {
        let mut empty: Vec<u8> = Vec::new();
        for_each_ordered(
            &mut empty,
            Parallelism::Auto,
            |_, n| *n,
            |_, _| unreachable!(),
        );
        let mut one = vec![41u8];
        let mut seen = Vec::new();
        for_each_ordered(
            &mut one,
            Parallelism::Threads(8),
            |_, n| {
                *n += 1;
                *n
            },
            |i, r| seen.push((i, r)),
        );
        assert_eq!(seen, vec![(0, 42)]);
        assert_eq!(one, vec![42]);
    }
}
