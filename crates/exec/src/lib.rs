//! # satn-exec
//!
//! The deterministic parallel execution layer of the workspace: a std-only
//! scoped worker pool that fans independent work items out over threads and
//! merges the results back **in input order**.
//!
//! Everything in this repository is deterministic by construction — rotor
//! walks are the paper's whole point — so the contract of this crate is
//! strict: for a pure function `f`, [`ordered_map`] returns exactly
//! `items.iter().map(f).collect()`, bit for bit, regardless of thread count
//! or scheduling. Parallelism changes wall-clock time and nothing else,
//! which is what lets `satn-sim` checkpoint fingerprints and `satn-bench`
//! golden files act as oracles for the parallel engine.
//!
//! ## Design
//!
//! * No dependencies (the build environment has no crates.io access; no
//!   rayon). Workers are [`std::thread::scope`] threads, so borrowed inputs
//!   need no `'static` gymnastics.
//! * Work distribution is a chunked atomic work queue: workers claim the
//!   next chunk of indices with a single `fetch_add`, so load balancing is
//!   dynamic (a slow cell never serializes the grid) while claim overhead
//!   stays one atomic per chunk.
//! * Each worker buffers `(index, result)` pairs locally; the caller's
//!   thread merges them back into input order after the scope joins. No
//!   locks anywhere on the hot path.
//!
//! ## Example
//!
//! ```
//! use satn_exec::{ordered_map, Parallelism};
//!
//! let squares = ordered_map(&[1u64, 2, 3, 4], Parallelism::Auto, |&n| n * n);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! // Identical output at any thread count — determinism is the contract.
//! assert_eq!(squares, ordered_map(&[1u64, 2, 3, 4], Parallelism::Serial, |&n| n * n));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

use std::fmt;
use std::num::NonZeroUsize;
use std::str::FromStr;
use std::sync::atomic::{AtomicUsize, Ordering};

/// How many worker threads an execution-layer call may use.
///
/// The default is [`Parallelism::Auto`] — all available cores. Every mode
/// produces bit-identical results; the knob only trades wall-clock time for
/// CPU usage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Parallelism {
    /// One worker: run on the calling thread, no threads spawned.
    Serial,
    /// Exactly this many workers (`0` and `1` both mean serial).
    Threads(usize),
    /// One worker per available core ([`std::thread::available_parallelism`]).
    #[default]
    Auto,
}

impl Parallelism {
    /// Resolves the mode to a concrete worker count (always at least 1).
    pub fn threads(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Auto => std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
        }
    }

    /// Maps a CLI-style thread count to a mode: `0` means [`Parallelism::Auto`],
    /// `1` means [`Parallelism::Serial`], anything else a fixed count.
    pub fn from_thread_count(threads: usize) -> Self {
        match threads {
            0 => Parallelism::Auto,
            1 => Parallelism::Serial,
            n => Parallelism::Threads(n),
        }
    }
}

impl fmt::Display for Parallelism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Parallelism::Serial => f.write_str("serial"),
            Parallelism::Threads(n) => write!(f, "{n}"),
            Parallelism::Auto => write!(f, "auto({})", self.threads()),
        }
    }
}

/// Error returned when parsing an unrecognised parallelism spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseParallelismError {
    input: String,
}

impl fmt::Display for ParseParallelismError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown parallelism {:?} (expected \"auto\", \"serial\", or a thread count)",
            self.input
        )
    }
}

impl std::error::Error for ParseParallelismError {}

impl FromStr for Parallelism {
    type Err = ParseParallelismError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "auto" | "all" => Ok(Parallelism::Auto),
            "serial" | "1" => Ok(Parallelism::Serial),
            other => other
                .parse::<usize>()
                .map(Parallelism::from_thread_count)
                .map_err(|_| ParseParallelismError {
                    input: s.to_owned(),
                }),
        }
    }
}

/// Maps `f` over `items` on up to `parallelism` worker threads, returning the
/// results **in input order** — the parallel, deterministic equivalent of
/// `items.iter().map(f).collect()`.
///
/// Work is claimed one item at a time, which suits the coarse work items of
/// this workspace (a scenario cell runs for milliseconds to seconds); use
/// [`ordered_map_chunked`] for fine-grained items.
///
/// # Panics
///
/// Propagates the first panic raised by `f` after all workers have stopped.
pub fn ordered_map<T, R, F>(items: &[T], parallelism: Parallelism, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    ordered_map_chunked(items, parallelism, 1, f)
}

/// [`ordered_map`] with an explicit claim-chunk size: each `fetch_add` on the
/// shared work counter hands a worker `chunk` consecutive items. Larger
/// chunks amortise claim overhead for very cheap `f`; chunking never affects
/// the output, only the schedule.
///
/// # Panics
///
/// Panics if `chunk` is zero; propagates the first panic raised by `f`.
pub fn ordered_map_chunked<T, R, F>(
    items: &[T],
    parallelism: Parallelism,
    chunk: usize,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    assert!(chunk > 0, "the claim-chunk size must be positive");
    let workers = parallelism.threads().min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }

    let next_chunk = AtomicUsize::new(0);
    let buckets: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let start = next_chunk.fetch_add(chunk, Ordering::Relaxed);
                        if start >= items.len() {
                            return local;
                        }
                        let end = (start + chunk).min(items.len());
                        for index in start..end {
                            local.push((index, f(&items[index])));
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| match handle.join() {
                Ok(local) => local,
                Err(panic) => std::panic::resume_unwind(panic),
            })
            .collect()
    });

    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (index, result) in buckets.into_iter().flatten() {
        debug_assert!(slots[index].is_none(), "index {index} claimed twice");
        slots[index] = Some(result);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every index is claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn preserves_input_order_at_every_parallelism() {
        let items: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = items.iter().map(|&n| n.wrapping_mul(31) ^ 7).collect();
        for parallelism in [
            Parallelism::Serial,
            Parallelism::Threads(2),
            Parallelism::Threads(5),
            Parallelism::Auto,
        ] {
            let got = ordered_map(&items, parallelism, |&n| n.wrapping_mul(31) ^ 7);
            assert_eq!(got, expected, "{parallelism:?}");
        }
    }

    #[test]
    fn chunked_claiming_covers_every_item_exactly_once() {
        let items: Vec<usize> = (0..100).collect();
        for chunk in [1usize, 3, 7, 64, 1000] {
            let got = ordered_map_chunked(&items, Parallelism::Threads(4), chunk, |&n| n);
            assert_eq!(got, items, "chunk {chunk}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(ordered_map(&empty, Parallelism::Auto, |&n| n).is_empty());
        assert_eq!(
            ordered_map(&[9u32], Parallelism::Threads(8), |&n| n + 1),
            [10]
        );
    }

    #[test]
    fn multiple_worker_threads_actually_run() {
        // With more blocking items than workers and a barrier-ish workload,
        // at least two distinct threads must participate (skipped on a
        // single-core machine, where the pool rightly stays serial).
        if Parallelism::Auto.threads() < 2 {
            return;
        }
        let seen = Mutex::new(HashSet::new());
        let items: Vec<u32> = (0..64).collect();
        ordered_map(&items, Parallelism::Threads(4), |&n| {
            seen.lock().unwrap().insert(std::thread::current().id());
            std::thread::sleep(std::time::Duration::from_millis(1));
            n
        });
        assert!(seen.lock().unwrap().len() >= 2);
    }

    #[test]
    fn borrowed_non_static_inputs_work() {
        let words = ["rotor".to_owned(), "walk".to_owned()];
        let lengths = ordered_map(&words, Parallelism::Threads(2), |w| w.len());
        assert_eq!(lengths, vec![5, 4]);
    }

    #[test]
    fn worker_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            ordered_map(&[1, 2, 3], Parallelism::Threads(2), |&n| {
                assert!(n != 2, "boom");
                n
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn parallelism_resolution_and_parsing() {
        assert_eq!(Parallelism::Serial.threads(), 1);
        assert_eq!(Parallelism::Threads(0).threads(), 1);
        assert_eq!(Parallelism::Threads(6).threads(), 6);
        assert!(Parallelism::Auto.threads() >= 1);
        assert_eq!(Parallelism::from_thread_count(0), Parallelism::Auto);
        assert_eq!(Parallelism::from_thread_count(1), Parallelism::Serial);
        assert_eq!(Parallelism::from_thread_count(3), Parallelism::Threads(3));
        assert_eq!("auto".parse::<Parallelism>().unwrap(), Parallelism::Auto);
        assert_eq!(
            "serial".parse::<Parallelism>().unwrap(),
            Parallelism::Serial
        );
        assert_eq!("4".parse::<Parallelism>().unwrap(), Parallelism::Threads(4));
        assert_eq!("0".parse::<Parallelism>().unwrap(), Parallelism::Auto);
        assert!("fast".parse::<Parallelism>().is_err());
        assert_eq!(Parallelism::default(), Parallelism::Auto);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_chunk_is_rejected() {
        ordered_map_chunked(&[1], Parallelism::Serial, 0, |&n: &i32| n);
    }
}
