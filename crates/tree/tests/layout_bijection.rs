//! The layout-invariance contract, proven at two levels.
//!
//! * **Bijection property**: for random tree sizes, the blocked layout's
//!   `slot_of`/`node_at` pair is a bijection between logical heap indices
//!   and distinct physical slots — the algebraic fact that makes every
//!   higher-level guarantee below possible.
//! * **End-to-end invariance**: the full simulation grid (all 7 algorithms
//!   × the paper's workload families × several tree sizes), run under the
//!   heap layout and under the blocked layout at serial, two-thread, and
//!   auto worker budgets, produces **byte-identical** checkpoint
//!   fingerprints and cost summaries in every cell. The layout is a pure
//!   performance knob; it must never leak into a result.

use proptest::prelude::*;
use satn_exec::Parallelism;
use satn_sim::{AlgorithmKind, Checkpoints, ScenarioGrid, SimRunner, WorkloadSpec};
use satn_tree::{CompleteTree, ElementId, LayoutKind, NodeId, Occupancy, TreeLayout, TreeSnapshot};
use std::collections::HashSet;

proptest! {
    /// `slot_of` is injective into `0..physical_len`, and `node_at` inverts
    /// it exactly, for every tree size the substrate supports in a test.
    #[test]
    fn blocked_slots_are_a_bijection(levels in 1u32..=14) {
        let tree = CompleteTree::with_levels(levels).unwrap();
        let layout = TreeLayout::new(tree, LayoutKind::Blocked);
        let mut seen = HashSet::with_capacity(tree.num_nodes() as usize);
        for node in tree.nodes() {
            let slot = layout.slot_of(node);
            prop_assert!(slot < layout.physical_len());
            prop_assert!(seen.insert(slot), "slot {slot} assigned twice");
            prop_assert_eq!(layout.node_at(slot), node);
        }
    }

    /// Swapping through the blocked layout tracks the logical placement
    /// exactly: an occupancy rebuilt under the other layout from the same
    /// placement compares equal (the comparison is layout-agnostic), and
    /// snapshots of both render the same fingerprint.
    #[test]
    fn occupancies_compare_and_render_layout_agnostically(
        levels in 2u32..=8,
        swaps in proptest::collection::vec(1u32..100_000, 0..64),
    ) {
        let tree = CompleteTree::with_levels(levels).unwrap();
        let mut heap = Occupancy::identity_with_layout(tree, LayoutKind::Heap);
        let mut blocked = Occupancy::identity_with_layout(tree, LayoutKind::Blocked);
        let n = tree.num_nodes();
        for index in swaps {
            // Swaps must be parent-child adjacent: pick a non-root node and
            // swap it with its parent.
            let child = NodeId::new(1 + index % (n - 1));
            let parent = child.parent().unwrap();
            heap.swap_nodes(child, parent).unwrap();
            blocked.swap_nodes(child, parent).unwrap();
        }
        prop_assert_eq!(&heap, &blocked);
        let heap_snapshot = TreeSnapshot::capture(&heap);
        let blocked_snapshot = TreeSnapshot::capture(&blocked);
        prop_assert_eq!(heap_snapshot.fingerprint(), blocked_snapshot.fingerprint());
        for node in tree.nodes() {
            prop_assert_eq!(heap.element_at(node), blocked.element_at(node));
        }
        for element in (0..n).map(ElementId::new) {
            prop_assert_eq!(heap.node_of(element), blocked.node_of(element));
        }
    }
}

/// Runs the full grid under `layout` at `parallelism` and returns every
/// cell's `(name, result)` pair in grid order.
fn grid_results(
    layout: LayoutKind,
    parallelism: Parallelism,
) -> Vec<(String, satn_sim::ScenarioResult)> {
    let mut grid = ScenarioGrid::new(
        AlgorithmKind::ALL,
        WorkloadSpec::paper_families(),
        [4u32, 6],
        600,
        2022,
    );
    grid.checkpoints = Checkpoints::every(150);
    grid.layout = layout;
    SimRunner::new()
        .with_parallelism(parallelism)
        .run_grid(&grid, false)
        .unwrap_or_else(|failure| panic!("scenario {} failed: {}", failure.0.name(), failure.1))
        .into_iter()
        .map(|(scenario, result)| (scenario.name(), result))
        .collect()
}

/// The end-to-end invariance oracle: all 7 algorithms, every paper workload
/// family, two tree sizes, four checkpoints per run — byte-identical
/// between the heap and the blocked layout at every worker budget.
#[test]
fn full_grid_fingerprints_are_layout_invariant_at_every_thread_count() {
    let reference = grid_results(LayoutKind::Heap, Parallelism::Serial);
    assert!(
        reference.len() >= 7,
        "the grid must cover all algorithms for the oracle to mean anything"
    );
    for parallelism in [
        Parallelism::Serial,
        Parallelism::Threads(2),
        Parallelism::Auto,
    ] {
        for layout in [LayoutKind::Heap, LayoutKind::Blocked] {
            let results = grid_results(layout, parallelism);
            assert_eq!(results.len(), reference.len());
            for ((name, result), (reference_name, reference_result)) in
                results.iter().zip(&reference)
            {
                assert_eq!(name, reference_name);
                assert_eq!(
                    result, reference_result,
                    "cell {name} diverged under {layout} layout at {parallelism:?}"
                );
            }
        }
    }
}
