//! Error types for the tree substrate.

use crate::node::{ElementId, NodeId};
use std::error::Error;
use std::fmt;

/// Errors reported by the tree substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TreeError {
    /// The requested tree size is not of the form `2^L - 1` with `1 ≤ L ≤ 31`.
    InvalidSize {
        /// The number of nodes or levels that was requested.
        requested: u64,
    },
    /// A node identifier does not belong to the tree.
    NodeOutOfRange {
        /// The offending node.
        node: NodeId,
        /// Number of nodes in the tree.
        num_nodes: u32,
    },
    /// An element identifier does not belong to the element set.
    ElementOutOfRange {
        /// The offending element.
        element: ElementId,
        /// Number of elements.
        num_elements: u32,
    },
    /// A swap was requested between two nodes that are not parent and child.
    NotAdjacent {
        /// First node of the attempted swap.
        first: NodeId,
        /// Second node of the attempted swap.
        second: NodeId,
    },
    /// A swap violated the marking rule: neither endpoint was marked.
    UnmarkedSwap {
        /// First node of the attempted swap.
        first: NodeId,
        /// Second node of the attempted swap.
        second: NodeId,
    },
    /// An initial placement did not describe a bijection between elements
    /// and nodes.
    NotABijection {
        /// Human-readable description of the violation.
        detail: String,
    },
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::InvalidSize { requested } => write!(
                f,
                "invalid complete tree size {requested}: expected 2^L - 1 nodes with 1 <= L <= 31"
            ),
            TreeError::NodeOutOfRange { node, num_nodes } => {
                write!(
                    f,
                    "node {node} is out of range for a tree of {num_nodes} nodes"
                )
            }
            TreeError::ElementOutOfRange {
                element,
                num_elements,
            } => write!(
                f,
                "element {element} is out of range for an element set of size {num_elements}"
            ),
            TreeError::NotAdjacent { first, second } => {
                write!(f, "nodes {first} and {second} are not parent and child")
            }
            TreeError::UnmarkedSwap { first, second } => write!(
                f,
                "swap of {first} and {second} violates the marking rule: neither node is marked"
            ),
            TreeError::NotABijection { detail } => {
                write!(f, "placement is not a bijection: {detail}")
            }
        }
    }
}

impl Error for TreeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(TreeError, &str)> = vec![
            (
                TreeError::InvalidSize { requested: 6 },
                "invalid complete tree size 6",
            ),
            (
                TreeError::NodeOutOfRange {
                    node: NodeId::new(9),
                    num_nodes: 7,
                },
                "out of range",
            ),
            (
                TreeError::ElementOutOfRange {
                    element: ElementId::new(9),
                    num_elements: 7,
                },
                "out of range",
            ),
            (
                TreeError::NotAdjacent {
                    first: NodeId::new(1),
                    second: NodeId::new(2),
                },
                "not parent and child",
            ),
            (
                TreeError::UnmarkedSwap {
                    first: NodeId::new(0),
                    second: NodeId::new(1),
                },
                "marking rule",
            ),
            (
                TreeError::NotABijection {
                    detail: "duplicate".into(),
                },
                "bijection",
            ),
        ];
        for (err, needle) in cases {
            assert!(
                err.to_string().contains(needle),
                "{err} should mention {needle}"
            );
        }
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<TreeError>();
    }
}
