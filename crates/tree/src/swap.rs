//! Marked swap rounds: the restricted reconfiguration primitive available to
//! online algorithms.
//!
//! The paper (Section 2, "Arbitrary swaps") allows an online algorithm, after
//! accessing an element, to swap only pairs of adjacent nodes of which at
//! least one is *marked*; initially the nodes of the access path are marked
//! and every swap marks both involved nodes. [`MarkedRound`] enforces exactly
//! this rule so that algorithm implementations cannot accidentally perform
//! teleporting reconfigurations that the model forbids.

use crate::cost::ServeCost;
use crate::error::TreeError;
use crate::layout::TreeLayout;
use crate::node::{ElementId, NodeId};
use crate::occupancy::Occupancy;

/// Reusable marking scratch for [`MarkedRound`]s.
///
/// A round needs one "is this node marked?" bit per tree node. Allocating
/// that bitmap per request is the dominant heap traffic of the serve hot
/// path, so algorithms keep a `MarkScratch` alive across requests and open
/// rounds through [`MarkedRound::access_reusing`]. Clearing between rounds is
/// O(1): each round stamps marks with a fresh epoch instead of zeroing the
/// buffer (the buffer is re-zeroed only on the ~never-happening epoch wrap).
#[derive(Debug, Clone, Default)]
pub struct MarkScratch {
    /// `stamps[slot] == epoch` means the node stored at that physical slot is
    /// marked in the open round. Keying by the occupancy's layout slot (not
    /// the logical node index) lets a blocked layout pack a root path's marks
    /// into the same few cache lines as its occupancy reads.
    stamps: Vec<u32>,
    epoch: u32,
}

impl MarkScratch {
    /// Creates an empty scratch; the first round sizes it to its tree.
    pub fn new() -> Self {
        MarkScratch::default()
    }

    /// Starts a new round over `num_slots` physical slots with every mark
    /// cleared.
    fn begin(&mut self, num_slots: usize) {
        if self.stamps.len() < num_slots {
            self.stamps.resize(num_slots, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Epoch wrapped: stale stamps from 2^32 rounds ago could collide.
            self.stamps.fill(0);
            self.epoch = 1;
        }
    }

    #[inline]
    fn mark(&mut self, slot: usize) {
        self.stamps[slot] = self.epoch;
    }

    /// Marks every node on the root-to-`target` path — the one ancestor walk
    /// shared by [`MarkedRound::access`] and [`MarkedRound::mark_root_path`].
    #[inline]
    fn mark_root_path(&mut self, target: NodeId, layout: &TreeLayout) {
        for ancestor in target.ancestors() {
            self.mark(layout.slot_of(ancestor));
        }
    }

    #[inline]
    fn is_marked(&self, slot: usize) -> bool {
        self.stamps
            .get(slot)
            .is_some_and(|&stamp| stamp == self.epoch)
    }
}

/// The marking store of a round: owned (compatibility path, one allocation
/// per round) or borrowed from a caller-held [`MarkScratch`] (hot path, no
/// per-round allocation).
#[derive(Debug)]
enum Marks<'a> {
    Owned(MarkScratch),
    Reused(&'a mut MarkScratch),
}

impl Marks<'_> {
    #[inline]
    fn get(&self) -> &MarkScratch {
        match self {
            Marks::Owned(scratch) => scratch,
            Marks::Reused(scratch) => scratch,
        }
    }

    #[inline]
    fn get_mut(&mut self) -> &mut MarkScratch {
        match self {
            Marks::Owned(scratch) => scratch,
            Marks::Reused(scratch) => scratch,
        }
    }
}

/// One round of serving a request: the access plus a sequence of marked swaps.
///
/// Created by [`MarkedRound::access`]; finished by [`MarkedRound::finish`],
/// which yields the round's [`ServeCost`].
///
/// # Examples
///
/// ```
/// use satn_tree::{CompleteTree, ElementId, MarkedRound, NodeId, Occupancy};
///
/// let tree = CompleteTree::with_levels(3)?;
/// let mut occ = Occupancy::identity(tree);
/// // Access element 4 (stored at node 4, level 2) and move it to the root.
/// let mut round = MarkedRound::access(&mut occ, ElementId::new(4))?;
/// round.swap_with_parent(NodeId::new(4))?;
/// round.swap_with_parent(NodeId::new(1))?;
/// let cost = round.finish();
/// assert_eq!(cost.access, 3);
/// assert_eq!(cost.adjustment, 2);
/// assert_eq!(occ.element_at(NodeId::ROOT), ElementId::new(4));
/// # Ok::<(), satn_tree::TreeError>(())
/// ```
#[derive(Debug)]
pub struct MarkedRound<'a> {
    occupancy: &'a mut Occupancy,
    marks: Marks<'a>,
    requested: ElementId,
    access_cost: u64,
    swaps: u64,
}

impl<'a> MarkedRound<'a> {
    /// Accesses `element`, paying `ℓ(element) + 1`, and marks the nodes of the
    /// root-to-element path.
    ///
    /// Allocates a fresh marking buffer for the round; serve loops should
    /// prefer [`MarkedRound::access_reusing`] with a long-lived
    /// [`MarkScratch`], which opens an identical round without allocating.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::ElementOutOfRange`] if the element does not exist.
    pub fn access(occupancy: &'a mut Occupancy, element: ElementId) -> Result<Self, TreeError> {
        Self::access_with_marks(occupancy, element, Marks::Owned(MarkScratch::new()))
    }

    /// Accesses `element` exactly like [`MarkedRound::access`], but marks
    /// nodes in the caller's reusable `scratch` instead of allocating — the
    /// allocation-free serve hot path.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::ElementOutOfRange`] if the element does not exist.
    pub fn access_reusing(
        occupancy: &'a mut Occupancy,
        element: ElementId,
        scratch: &'a mut MarkScratch,
    ) -> Result<Self, TreeError> {
        Self::access_with_marks(occupancy, element, Marks::Reused(scratch))
    }

    fn access_with_marks(
        occupancy: &'a mut Occupancy,
        element: ElementId,
        mut marks: Marks<'a>,
    ) -> Result<Self, TreeError> {
        occupancy.check_element(element)?;
        let node = occupancy.node_of(element);
        let access_cost = node.level() as u64 + 1;
        let scratch = marks.get_mut();
        scratch.begin(occupancy.layout().physical_len());
        scratch.mark_root_path(node, occupancy.layout());
        Ok(MarkedRound {
            occupancy,
            marks,
            requested: element,
            access_cost,
            swaps: 0,
        })
    }

    /// The element whose access started this round.
    #[inline]
    pub fn requested(&self) -> ElementId {
        self.requested
    }

    /// Read-only view of the occupancy mid-round.
    #[inline]
    pub fn occupancy(&self) -> &Occupancy {
        self.occupancy
    }

    /// Returns `true` if `node` is currently marked. Nodes outside the tree
    /// are never marked.
    #[inline]
    pub fn is_marked(&self, node: NodeId) -> bool {
        self.occupancy.tree().contains(node)
            && self
                .marks
                .get()
                .is_marked(self.occupancy.layout().slot_of(node))
    }

    /// Number of swaps performed so far in this round.
    #[inline]
    pub fn swaps(&self) -> u64 {
        self.swaps
    }

    /// Marks every node on the root-to-`target` path.
    ///
    /// This corresponds to the algorithm traversing an additional branch from
    /// the source during the round, as the paper's implementation of the
    /// augmented push-down operation does (Lemma 1 accesses the global-path
    /// node `v` in addition to the requested element): the cost of walking the
    /// branch is accounted for by the swaps subsequently performed along it.
    /// Baseline algorithms whose reconfiguration the paper does not restrict
    /// to marked swaps (Move-Half, Max-Push) also use it.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::NodeOutOfRange`] if `target` is not in the tree.
    pub fn mark_root_path(&mut self, target: NodeId) -> Result<(), TreeError> {
        self.occupancy.tree().check_node(target)?;
        self.marks
            .get_mut()
            .mark_root_path(target, self.occupancy.layout());
        Ok(())
    }

    /// Swaps the elements at two adjacent nodes, provided at least one of the
    /// nodes is marked; afterwards both are marked.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::NotAdjacent`] for non parent/child pairs,
    /// [`TreeError::NodeOutOfRange`] for foreign nodes, and
    /// [`TreeError::UnmarkedSwap`] when the marking rule is violated.
    pub fn swap(&mut self, a: NodeId, b: NodeId) -> Result<(), TreeError> {
        self.occupancy.tree().check_node(a)?;
        self.occupancy.tree().check_node(b)?;
        if !a.is_adjacent_to(b) {
            return Err(TreeError::NotAdjacent {
                first: a,
                second: b,
            });
        }
        if !self.is_marked(a) && !self.is_marked(b) {
            return Err(TreeError::UnmarkedSwap {
                first: a,
                second: b,
            });
        }
        self.occupancy.swap_unchecked(a, b);
        let slot_a = self.occupancy.layout().slot_of(a);
        let slot_b = self.occupancy.layout().slot_of(b);
        let scratch = self.marks.get_mut();
        scratch.mark(slot_a);
        scratch.mark(slot_b);
        self.swaps += 1;
        Ok(())
    }

    /// Swaps the element at `node` with the one at its parent.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::NotAdjacent`] if `node` is the root, plus the
    /// errors of [`MarkedRound::swap`].
    pub fn swap_with_parent(&mut self, node: NodeId) -> Result<(), TreeError> {
        let parent = node.parent().ok_or(TreeError::NotAdjacent {
            first: node,
            second: node,
        })?;
        self.swap(parent, node)
    }

    /// Moves the element currently stored at `from` to the root by repeatedly
    /// swapping it with its parent. Returns the number of swaps used.
    ///
    /// Every intermediate element on the root path moves down by one level.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`MarkedRound::swap`].
    pub fn bubble_to_root(&mut self, from: NodeId) -> Result<u64, TreeError> {
        let mut used = 0;
        let mut current = from;
        while let Some(parent) = current.parent() {
            self.swap(parent, current)?;
            current = parent;
            used += 1;
        }
        Ok(used)
    }

    /// Moves the element currently stored at the root down to `target` by
    /// repeatedly swapping it with the next node on the root-to-`target`
    /// path. Returns the number of swaps used.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`MarkedRound::swap`].
    pub fn sink_from_root(&mut self, target: NodeId) -> Result<u64, TreeError> {
        let mut used = 0;
        for node in target.ancestors().rev().skip(1) {
            let parent = node.parent().expect("descent nodes below the root");
            self.swap(parent, node)?;
            used += 1;
        }
        Ok(used)
    }

    /// Finishes the round and returns its cost.
    pub fn finish(self) -> ServeCost {
        ServeCost::new(self.access_cost, self.swaps)
    }
}

/// An unrestricted adjacent-swap session used for the offline optimum proxy
/// (`Opt` in the paper may swap arbitrary adjacent elements at unit cost,
/// without the marking restriction).
#[derive(Debug)]
pub struct FreeSwapSession<'a> {
    occupancy: &'a mut Occupancy,
    swaps: u64,
}

impl<'a> FreeSwapSession<'a> {
    /// Starts an unrestricted swap session on the occupancy.
    pub fn new(occupancy: &'a mut Occupancy) -> Self {
        FreeSwapSession {
            occupancy,
            swaps: 0,
        }
    }

    /// Swaps two adjacent nodes (no marking rule).
    ///
    /// # Errors
    ///
    /// Returns the adjacency / range errors of [`Occupancy::swap_nodes`].
    pub fn swap(&mut self, a: NodeId, b: NodeId) -> Result<(), TreeError> {
        self.occupancy.swap_nodes(a, b)?;
        self.swaps += 1;
        Ok(())
    }

    /// Read-only view of the occupancy mid-session.
    #[inline]
    pub fn occupancy(&self) -> &Occupancy {
        self.occupancy
    }

    /// Number of swaps performed so far.
    #[inline]
    pub fn swaps(&self) -> u64 {
        self.swaps
    }

    /// Ends the session, returning the total number of swaps (the cost paid).
    pub fn finish(self) -> u64 {
        self.swaps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::CompleteTree;

    fn setup(levels: u32) -> Occupancy {
        Occupancy::identity(CompleteTree::with_levels(levels).unwrap())
    }

    #[test]
    fn access_marks_exactly_the_root_path() {
        let mut occ = setup(4);
        let round = MarkedRound::access(&mut occ, ElementId::new(9)).unwrap();
        // node 9 path: 0 -> 1 -> 4 -> 9
        for marked in [0u32, 1, 4, 9] {
            assert!(round.is_marked(NodeId::new(marked)), "node {marked}");
        }
        for unmarked in [2u32, 3, 5, 6, 7, 8, 10, 14] {
            assert!(!round.is_marked(NodeId::new(unmarked)), "node {unmarked}");
        }
        assert_eq!(round.requested(), ElementId::new(9));
    }

    #[test]
    fn access_cost_is_level_plus_one() {
        let mut occ = setup(4);
        let round = MarkedRound::access(&mut occ, ElementId::new(14)).unwrap();
        let cost = round.finish();
        assert_eq!(cost, ServeCost::new(4, 0));
    }

    #[test]
    fn access_rejects_unknown_element() {
        let mut occ = setup(2);
        assert!(matches!(
            MarkedRound::access(&mut occ, ElementId::new(10)).unwrap_err(),
            TreeError::ElementOutOfRange { .. }
        ));
    }

    #[test]
    fn unmarked_swap_is_rejected_until_reachable() {
        let mut occ = setup(4);
        let mut round = MarkedRound::access(&mut occ, ElementId::new(0)).unwrap();
        // Only the root is marked: a swap between nodes 2 and 6 must fail.
        assert!(matches!(
            round.swap(NodeId::new(2), NodeId::new(6)).unwrap_err(),
            TreeError::UnmarkedSwap { .. }
        ));
        // But root <-> node 2 works and marks node 2, after which 2 <-> 6 works.
        round.swap(NodeId::new(0), NodeId::new(2)).unwrap();
        round.swap(NodeId::new(2), NodeId::new(6)).unwrap();
        assert_eq!(round.swaps(), 2);
    }

    #[test]
    fn swap_rejects_non_adjacent_and_foreign_nodes() {
        let mut occ = setup(3);
        let mut round = MarkedRound::access(&mut occ, ElementId::new(3)).unwrap();
        assert!(matches!(
            round.swap(NodeId::new(1), NodeId::new(2)).unwrap_err(),
            TreeError::NotAdjacent { .. }
        ));
        assert!(matches!(
            round.swap(NodeId::new(1), NodeId::new(40)).unwrap_err(),
            TreeError::NodeOutOfRange { .. }
        ));
        assert!(matches!(
            round.swap_with_parent(NodeId::ROOT).unwrap_err(),
            TreeError::NotAdjacent { .. }
        ));
    }

    #[test]
    fn bubble_to_root_moves_requested_element_up() {
        let mut occ = setup(4);
        let mut round = MarkedRound::access(&mut occ, ElementId::new(11)).unwrap();
        let node = round.occupancy().node_of(ElementId::new(11));
        let used = round.bubble_to_root(node).unwrap();
        assert_eq!(used, 3);
        let cost = round.finish();
        assert_eq!(cost.adjustment, 3);
        assert_eq!(occ.element_at(NodeId::ROOT), ElementId::new(11));
        assert!(occ.is_consistent());
    }

    #[test]
    fn sink_from_root_moves_root_element_down_a_path() {
        let mut occ = setup(4);
        let mut round = MarkedRound::access(&mut occ, ElementId::new(0)).unwrap();
        let used = round.sink_from_root(NodeId::new(12)).unwrap();
        assert_eq!(used, 3);
        round.finish();
        assert_eq!(occ.element_at(NodeId::new(12)), ElementId::new(0));
        assert!(occ.is_consistent());
    }

    #[test]
    fn sink_outside_marked_path_requires_progressive_marking() {
        // sink_from_root marks as it goes, so even a path disjoint from the
        // access path is fine: each swap has its parent endpoint marked.
        let mut occ = setup(4);
        let mut round = MarkedRound::access(&mut occ, ElementId::new(7)).unwrap();
        // Access path is 0-1-3-7; sinking towards node 14 goes 0-2-6-14.
        round.sink_from_root(NodeId::new(14)).unwrap();
        round.finish();
        assert_eq!(occ.element_at(NodeId::new(14)), ElementId::new(0));
    }

    #[test]
    fn reused_scratch_rounds_match_owned_rounds() {
        let mut owned_occ = setup(4);
        let mut reused_occ = setup(4);
        let mut scratch = MarkScratch::new();
        // Several consecutive rounds: the scratch must reset between them so
        // marks from an earlier round never leak into a later one.
        for element in [9u32, 14, 3, 9, 0] {
            let element = ElementId::new(element);
            let mut owned = MarkedRound::access(&mut owned_occ, element).unwrap();
            let mut reused =
                MarkedRound::access_reusing(&mut reused_occ, element, &mut scratch).unwrap();
            for node in (0..15u32).map(NodeId::new) {
                assert_eq!(owned.is_marked(node), reused.is_marked(node), "{node}");
            }
            let node = owned.occupancy().node_of(element);
            owned.bubble_to_root(node).unwrap();
            reused.bubble_to_root(node).unwrap();
            assert_eq!(owned.finish(), reused.finish());
            assert_eq!(owned_occ, reused_occ);
        }
    }

    #[test]
    fn reused_scratch_enforces_the_marking_rule() {
        let mut occ = setup(4);
        let mut scratch = MarkScratch::new();
        let mut round =
            MarkedRound::access_reusing(&mut occ, ElementId::new(0), &mut scratch).unwrap();
        assert!(matches!(
            round.swap(NodeId::new(2), NodeId::new(6)).unwrap_err(),
            TreeError::UnmarkedSwap { .. }
        ));
        round.swap(NodeId::new(0), NodeId::new(2)).unwrap();
        round.swap(NodeId::new(2), NodeId::new(6)).unwrap();
        round.finish();
        // The next round starts clean: node 6 is no longer marked.
        let round = MarkedRound::access_reusing(&mut occ, ElementId::new(0), &mut scratch).unwrap();
        let requested_node = round.occupancy().node_of(ElementId::new(0));
        assert!(round.is_marked(requested_node));
        assert!(!round.is_marked(NodeId::new(14)));
    }

    #[test]
    fn scratch_survives_epoch_wrap_and_tree_growth() {
        let mut scratch = MarkScratch::new();
        // Force the epoch to the wrap boundary, then run a round: stale
        // stamps must not count as marks.
        scratch.epoch = u32::MAX - 1;
        let mut occ = setup(3);
        for _ in 0..4 {
            let round =
                MarkedRound::access_reusing(&mut occ, ElementId::new(6), &mut scratch).unwrap();
            let node = round.occupancy().node_of(ElementId::new(6));
            for probe in (0..7u32).map(NodeId::new) {
                let on_path = probe.is_ancestor_of_or_equal(node);
                assert_eq!(round.is_marked(probe), on_path, "{probe}");
            }
            round.finish();
        }
        // The same scratch serves a bigger tree by growing once.
        let mut big = setup(5);
        let round =
            MarkedRound::access_reusing(&mut big, ElementId::new(30), &mut scratch).unwrap();
        assert!(round.is_marked(NodeId::new(30)));
        assert!(!round.is_marked(NodeId::new(29)));
    }

    #[test]
    fn free_swap_session_counts_swaps() {
        let mut occ = setup(3);
        let mut session = FreeSwapSession::new(&mut occ);
        session.swap(NodeId::new(0), NodeId::new(2)).unwrap();
        session.swap(NodeId::new(2), NodeId::new(5)).unwrap();
        assert!(session.swap(NodeId::new(3), NodeId::new(4)).is_err());
        assert_eq!(session.swaps(), 2);
        assert_eq!(session.finish(), 2);
        assert_eq!(occ.element_at(NodeId::new(5)), ElementId::new(0));
    }

    #[test]
    fn round_preserves_bijection() {
        let mut occ = setup(5);
        let mut round = MarkedRound::access(&mut occ, ElementId::new(19)).unwrap();
        let node = round.occupancy().node_of(ElementId::new(19));
        round.bubble_to_root(node).unwrap();
        round.sink_from_root(NodeId::new(22)).unwrap();
        round.finish();
        assert!(occ.is_consistent());
    }
}
