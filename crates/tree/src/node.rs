//! Node identifiers and index arithmetic on the implicit complete binary tree.
//!
//! Nodes are identified by their heap index: the root is `0`, and the children
//! of node `i` are `2i + 1` (left) and `2i + 2` (right). All level, ancestor
//! and path computations are pure index arithmetic, which keeps the rotating
//! tree free of pointers and lifetimes.

use std::fmt;

/// Identifier of a node (a *position*) in the complete binary tree.
///
/// The identity of a node never changes; only the element stored at it does.
///
/// # Examples
///
/// ```
/// use satn_tree::NodeId;
///
/// let root = NodeId::ROOT;
/// assert_eq!(root.level(), 0);
/// assert_eq!(root.left_child(), NodeId::new(1));
/// assert_eq!(NodeId::new(4).parent(), Some(NodeId::new(1)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The root node (heap index 0, level 0).
    pub const ROOT: NodeId = NodeId(0);

    /// Creates a node identifier from its heap index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// Returns the heap index of this node.
    #[inline]
    pub const fn index(self) -> u32 {
        self.0
    }

    /// Returns the heap index as a `usize`, convenient for vector indexing.
    #[inline]
    pub const fn usize(self) -> usize {
        self.0 as usize
    }

    /// Returns `true` if this node is the tree root.
    #[inline]
    pub const fn is_root(self) -> bool {
        self.0 == 0
    }

    /// Returns the level (depth) of this node; the root has level 0.
    ///
    /// # Examples
    ///
    /// ```
    /// use satn_tree::NodeId;
    /// assert_eq!(NodeId::new(0).level(), 0);
    /// assert_eq!(NodeId::new(2).level(), 1);
    /// assert_eq!(NodeId::new(7).level(), 3);
    /// ```
    #[inline]
    pub const fn level(self) -> u32 {
        // Node indices on level d span [2^d - 1, 2^(d+1) - 2], so the level is
        // the position of the highest set bit of (index + 1).
        u32::BITS - 1 - (self.0 + 1).leading_zeros()
    }

    /// Returns the parent of this node, or `None` for the root.
    #[inline]
    pub const fn parent(self) -> Option<NodeId> {
        if self.0 == 0 {
            None
        } else {
            Some(NodeId((self.0 - 1) / 2))
        }
    }

    /// Returns the left child position (which may lie outside a finite tree).
    #[inline]
    pub const fn left_child(self) -> NodeId {
        NodeId(2 * self.0 + 1)
    }

    /// Returns the right child position (which may lie outside a finite tree).
    #[inline]
    pub const fn right_child(self) -> NodeId {
        NodeId(2 * self.0 + 2)
    }

    /// Returns the child in the given direction.
    #[inline]
    pub const fn child(self, direction: Direction) -> NodeId {
        match direction {
            Direction::Left => self.left_child(),
            Direction::Right => self.right_child(),
        }
    }

    /// Returns `true` if `self` is the parent of `other`.
    #[inline]
    pub fn is_parent_of(self, other: NodeId) -> bool {
        other.parent() == Some(self)
    }

    /// Returns `true` if the two nodes occupy adjacent positions (parent/child).
    #[inline]
    pub fn is_adjacent_to(self, other: NodeId) -> bool {
        self.is_parent_of(other) || other.is_parent_of(self)
    }

    /// Returns whether this node is the left or right child of its parent,
    /// or `None` for the root.
    #[inline]
    pub const fn direction_from_parent(self) -> Option<Direction> {
        if self.0 == 0 {
            None
        } else if self.0 % 2 == 1 {
            Some(Direction::Left)
        } else {
            Some(Direction::Right)
        }
    }

    /// Returns the ancestor of this node at the given level.
    ///
    /// # Panics
    ///
    /// Panics if `level` is greater than the level of this node.
    #[inline]
    pub fn ancestor_at_level(self, level: u32) -> NodeId {
        let own = self.level();
        assert!(
            level <= own,
            "ancestor level {level} exceeds node level {own}"
        );
        // Moving up one level is (i - 1) / 2; moving up k levels maps
        // (i + 1) to (i + 1) >> k.
        NodeId(((self.0 + 1) >> (own - level)) - 1)
    }

    /// Returns `true` if `self` is an ancestor of `other` (or equal to it).
    #[inline]
    pub fn is_ancestor_of_or_equal(self, other: NodeId) -> bool {
        let la = self.level();
        let lb = other.level();
        la <= lb && other.ancestor_at_level(la) == self
    }

    /// Returns an allocation-free iterator over this node and its ancestors,
    /// ascending from `self` to [`NodeId::ROOT`] (inclusive on both ends).
    ///
    /// This is the hot-path replacement for [`NodeId::path_from_root`]: the
    /// iterator is double-ended (`.rev()` walks the root-to-node descent),
    /// exact-sized, and every step is O(1) index arithmetic — no `Vec`.
    ///
    /// # Examples
    ///
    /// ```
    /// use satn_tree::NodeId;
    ///
    /// let node = NodeId::new(12);
    /// let up: Vec<NodeId> = node.ancestors().collect();
    /// assert_eq!(up, vec![NodeId::new(12), NodeId::new(5), NodeId::new(2), NodeId::ROOT]);
    /// let down: Vec<NodeId> = node.ancestors().rev().collect();
    /// assert_eq!(down, node.path_from_root());
    /// ```
    #[inline]
    pub const fn ancestors(self) -> Ancestors {
        Ancestors {
            node: self,
            low: 0,
            high: self.level(),
            exhausted: false,
        }
    }

    /// Returns the path from the root to this node, inclusive on both ends.
    ///
    /// The returned vector has `self.level() + 1` entries and starts at
    /// [`NodeId::ROOT`]. Prefer [`NodeId::ancestors`] (optionally reversed)
    /// on hot paths — it performs the same walk without allocating.
    pub fn path_from_root(self) -> Vec<NodeId> {
        self.ancestors().rev().collect()
    }

    /// Returns the sequence of left/right directions taken from the root to
    /// reach this node. The root yields an empty vector.
    pub fn directions_from_root(self) -> Vec<Direction> {
        let path = self.path_from_root();
        path.iter()
            .skip(1)
            .map(|n| n.direction_from_parent().expect("non-root path node"))
            .collect()
    }

    /// Builds the node reached from the root by following `directions`.
    pub fn from_directions(directions: &[Direction]) -> NodeId {
        let mut node = NodeId::ROOT;
        for &d in directions {
            node = node.child(d);
        }
        node
    }

    /// Returns the lowest common ancestor of two nodes.
    pub fn lowest_common_ancestor(self, other: NodeId) -> NodeId {
        let (mut a, mut b) = (self, other);
        while a.level() > b.level() {
            a = a.parent().expect("deeper node has a parent");
        }
        while b.level() > a.level() {
            b = b.parent().expect("deeper node has a parent");
        }
        while a != b {
            a = a.parent().expect("non-root differing node");
            b = b.parent().expect("non-root differing node");
        }
        a
    }

    /// Returns the 0-based position of this node within its level
    /// (`0` is the leftmost node of the level).
    #[inline]
    pub const fn offset_in_level(self) -> u32 {
        (self.0 + 1) - (1 << self.level())
    }

    /// Returns the node at `level` whose position within that level is
    /// `offset` (0-based, left to right).
    ///
    /// # Panics
    ///
    /// Panics if `offset >= 2^level`.
    #[inline]
    pub fn from_level_offset(level: u32, offset: u32) -> NodeId {
        assert!(
            offset < (1u32 << level),
            "offset {offset} out of level {level}"
        );
        NodeId((1u32 << level) - 1 + offset)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<NodeId> for u32 {
    fn from(id: NodeId) -> u32 {
        id.0
    }
}

impl From<NodeId> for usize {
    fn from(id: NodeId) -> usize {
        id.0 as usize
    }
}

/// Allocation-free iterator over a node and its ancestors, created by
/// [`NodeId::ancestors`].
///
/// Yields nodes in ascending order (deepest first, root last); reversing it
/// yields the root-to-node descent. Every step is O(1) bit arithmetic via
/// [`NodeId::ancestor_at_level`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ancestors {
    node: NodeId,
    /// Shallowest level still to be yielded (from the back).
    low: u32,
    /// Deepest level still to be yielded (from the front).
    high: u32,
    exhausted: bool,
}

impl Iterator for Ancestors {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        if self.exhausted {
            return None;
        }
        let item = self.node.ancestor_at_level(self.high);
        if self.high == self.low {
            self.exhausted = true;
        } else {
            self.high -= 1;
        }
        Some(item)
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = if self.exhausted {
            0
        } else {
            (self.high - self.low) as usize + 1
        };
        (remaining, Some(remaining))
    }
}

impl DoubleEndedIterator for Ancestors {
    #[inline]
    fn next_back(&mut self) -> Option<NodeId> {
        if self.exhausted {
            return None;
        }
        let item = self.node.ancestor_at_level(self.low);
        if self.low == self.high {
            self.exhausted = true;
        } else {
            self.low += 1;
        }
        Some(item)
    }
}

impl ExactSizeIterator for Ancestors {}

impl std::iter::FusedIterator for Ancestors {}

/// Direction of a child edge in the binary tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Direction {
    /// The left child (heap index `2i + 1`).
    Left,
    /// The right child (heap index `2i + 2`).
    Right,
}

impl Direction {
    /// Returns the opposite direction.
    #[inline]
    pub const fn toggled(self) -> Direction {
        match self {
            Direction::Left => Direction::Right,
            Direction::Right => Direction::Left,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::Left => write!(f, "L"),
            Direction::Right => write!(f, "R"),
        }
    }
}

/// Identifier of an element (a logical item / destination node of the
/// communication request) stored in the tree.
///
/// Elements move between nodes as the self-adjusting algorithm reorganises
/// the tree; their identity is stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ElementId(pub(crate) u32);

impl ElementId {
    /// Creates an element identifier.
    #[inline]
    pub const fn new(index: u32) -> Self {
        ElementId(index)
    }

    /// Returns the numeric identifier.
    #[inline]
    pub const fn index(self) -> u32 {
        self.0
    }

    /// Returns the identifier as a `usize`, convenient for vector indexing.
    #[inline]
    pub const fn usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ElementId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl From<ElementId> for u32 {
    fn from(id: ElementId) -> u32 {
        id.0
    }
}

impl From<ElementId> for usize {
    fn from(id: ElementId) -> usize {
        id.0 as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_properties() {
        assert_eq!(NodeId::ROOT.level(), 0);
        assert!(NodeId::ROOT.is_root());
        assert_eq!(NodeId::ROOT.parent(), None);
        assert_eq!(NodeId::ROOT.direction_from_parent(), None);
        assert_eq!(NodeId::ROOT.offset_in_level(), 0);
    }

    #[test]
    fn levels_match_heap_layout() {
        let expected = [
            (0, 0),
            (1, 1),
            (2, 1),
            (3, 2),
            (4, 2),
            (5, 2),
            (6, 2),
            (7, 3),
            (14, 3),
            (15, 4),
        ];
        for (idx, lvl) in expected {
            assert_eq!(NodeId::new(idx).level(), lvl, "node {idx}");
        }
    }

    #[test]
    fn parent_child_roundtrip() {
        for i in 0..1000u32 {
            let n = NodeId::new(i);
            assert_eq!(n.left_child().parent(), Some(n));
            assert_eq!(n.right_child().parent(), Some(n));
            assert_eq!(
                n.left_child().direction_from_parent(),
                Some(Direction::Left)
            );
            assert_eq!(
                n.right_child().direction_from_parent(),
                Some(Direction::Right)
            );
        }
    }

    #[test]
    fn ancestor_at_level_matches_repeated_parent() {
        for i in 0..512u32 {
            let n = NodeId::new(i);
            let mut cur = n;
            let mut level = n.level();
            loop {
                assert_eq!(n.ancestor_at_level(level), cur);
                match cur.parent() {
                    Some(p) => {
                        cur = p;
                        level -= 1;
                    }
                    None => break,
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "ancestor level")]
    fn ancestor_at_level_rejects_deeper_level() {
        NodeId::new(1).ancestor_at_level(5);
    }

    #[test]
    fn path_from_root_is_consistent() {
        let n = NodeId::new(12);
        let path = n.path_from_root();
        assert_eq!(path.first(), Some(&NodeId::ROOT));
        assert_eq!(path.last(), Some(&n));
        for pair in path.windows(2) {
            assert!(pair[0].is_parent_of(pair[1]));
        }
        assert_eq!(path.len() as u32, n.level() + 1);
    }

    #[test]
    fn ancestors_ascend_from_node_to_root() {
        let node = NodeId::new(12);
        let up: Vec<NodeId> = node.ancestors().collect();
        assert_eq!(
            up,
            vec![
                NodeId::new(12),
                NodeId::new(5),
                NodeId::new(2),
                NodeId::ROOT
            ]
        );
        assert_eq!(
            NodeId::ROOT.ancestors().collect::<Vec<_>>(),
            vec![NodeId::ROOT]
        );
    }

    #[test]
    fn ancestors_match_path_from_root_reversed_on_many_nodes() {
        for index in 0..2048u32 {
            let node = NodeId::new(index);
            let mut expected = node.path_from_root();
            assert_eq!(
                node.ancestors().rev().collect::<Vec<_>>(),
                expected,
                "descending, node {index}"
            );
            expected.reverse();
            assert_eq!(
                node.ancestors().collect::<Vec<_>>(),
                expected,
                "ascending, node {index}"
            );
            assert_eq!(node.ancestors().len() as u32, node.level() + 1);
        }
    }

    #[test]
    fn ancestors_is_a_well_behaved_double_ended_iterator() {
        let node = NodeId::new(11); // path 0 - 2 - 5 - 11
        let mut iter = node.ancestors();
        assert_eq!(iter.len(), 4);
        assert_eq!(iter.next(), Some(NodeId::new(11)));
        assert_eq!(iter.next_back(), Some(NodeId::ROOT));
        assert_eq!(iter.next_back(), Some(NodeId::new(2)));
        assert_eq!(iter.len(), 1);
        assert_eq!(iter.next(), Some(NodeId::new(5)));
        assert_eq!(iter.next(), None);
        assert_eq!(iter.next_back(), None);
        assert_eq!(iter.next(), None); // fused
        assert_eq!(iter.len(), 0);
    }

    #[test]
    fn directions_roundtrip() {
        for i in 0..256u32 {
            let n = NodeId::new(i);
            let dirs = n.directions_from_root();
            assert_eq!(NodeId::from_directions(&dirs), n);
            assert_eq!(dirs.len() as u32, n.level());
        }
    }

    #[test]
    fn lca_examples() {
        // Tree:          0
        //            1       2
        //          3   4   5   6
        assert_eq!(
            NodeId::new(3).lowest_common_ancestor(NodeId::new(4)),
            NodeId::new(1)
        );
        assert_eq!(
            NodeId::new(3).lowest_common_ancestor(NodeId::new(6)),
            NodeId::new(0)
        );
        assert_eq!(
            NodeId::new(5).lowest_common_ancestor(NodeId::new(2)),
            NodeId::new(2)
        );
        assert_eq!(
            NodeId::new(4).lowest_common_ancestor(NodeId::new(4)),
            NodeId::new(4)
        );
    }

    #[test]
    fn level_offset_roundtrip() {
        for level in 0..10u32 {
            for offset in 0..(1u32 << level) {
                let n = NodeId::from_level_offset(level, offset);
                assert_eq!(n.level(), level);
                assert_eq!(n.offset_in_level(), offset);
            }
        }
    }

    #[test]
    fn adjacency_is_symmetric_and_parent_child_only() {
        let a = NodeId::new(1);
        assert!(a.is_adjacent_to(NodeId::ROOT));
        assert!(NodeId::ROOT.is_adjacent_to(a));
        assert!(a.is_adjacent_to(NodeId::new(3)));
        assert!(!a.is_adjacent_to(NodeId::new(2)));
        assert!(!a.is_adjacent_to(NodeId::new(7)));
        assert!(!a.is_adjacent_to(a));
    }

    #[test]
    fn ancestor_of_or_equal() {
        assert!(NodeId::ROOT.is_ancestor_of_or_equal(NodeId::new(13)));
        assert!(NodeId::new(1).is_ancestor_of_or_equal(NodeId::new(9)));
        assert!(!NodeId::new(2).is_ancestor_of_or_equal(NodeId::new(9)));
        assert!(NodeId::new(5).is_ancestor_of_or_equal(NodeId::new(5)));
        assert!(!NodeId::new(5).is_ancestor_of_or_equal(NodeId::new(2)));
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId::new(3).to_string(), "n3");
        assert_eq!(ElementId::new(7).to_string(), "e7");
        assert_eq!(Direction::Left.to_string(), "L");
        assert_eq!(Direction::Right.to_string(), "R");
    }

    #[test]
    fn direction_toggle() {
        assert_eq!(Direction::Left.toggled(), Direction::Right);
        assert_eq!(Direction::Right.toggled(), Direction::Left);
    }
}
