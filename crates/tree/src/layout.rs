//! Physical storage layouts for the implicit tree.
//!
//! Every API in this crate speaks logical [`NodeId`]s — heap indices where
//! the children of `i` are `2i+1` and `2i+2`. A [`TreeLayout`] maps each
//! logical node to a *physical slot* in the occupancy slabs, so the storage
//! order can be permuted for cache locality without changing a single
//! observable: costs, fingerprints, and replay oracles all read logical
//! order and are layout-invariant by construction (the mapping is a pure
//! bijection, proven by tests).
//!
//! Two layouts exist:
//!
//! * [`LayoutKind::Heap`] — the identity mapping (`slot == index`), today's
//!   behaviour and the default.
//! * [`LayoutKind::Blocked`] — levels are grouped into bands of
//!   [`BLOCK_LEVELS`] levels; each band is stored as an array of
//!   cache-line-sized blocks, one per subtree fragment, with heap
//!   (Eytzinger) order *inside* the block. A root-to-leaf walk then touches
//!   one block per band — roughly `depth / 4` cache lines instead of one
//!   line per level.
//!
//! The forward map is branchless: both layouts compile down to the same
//! shift/mask/add formula driven by a per-level constant table, so `Heap`
//! pays nothing for the abstraction.

use crate::node::NodeId;
use crate::topology::CompleteTree;
use std::fmt;
use std::str::FromStr;

/// Number of tree levels grouped into one block of the [`LayoutKind::Blocked`]
/// layout. A full block holds `2^4 - 1 = 15` nodes and is stored with a
/// stride of 16 slots, so a slab of `u32`s keeps each block inside one
/// 64-byte cache line.
pub const BLOCK_LEVELS: u32 = 4;

/// Slots per full block (`2^BLOCK_LEVELS`); also the alignment unit for
/// band base offsets.
const FULL_STRIDE: usize = 1 << BLOCK_LEVELS;

/// Which physical storage order an [`Occupancy`](crate::Occupancy) uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LayoutKind {
    /// Identity layout: logical heap index == physical slot.
    #[default]
    Heap,
    /// Cache-blocked layout: subtree blocks of [`BLOCK_LEVELS`] levels,
    /// Eytzinger order within each block.
    Blocked,
}

impl fmt::Display for LayoutKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutKind::Heap => f.write_str("heap"),
            LayoutKind::Blocked => f.write_str("blocked"),
        }
    }
}

impl FromStr for LayoutKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "heap" | "identity" => Ok(LayoutKind::Heap),
            "blocked" | "block" | "cache" => Ok(LayoutKind::Blocked),
            other => Err(format!(
                "unknown layout '{other}' (expected 'heap' or 'blocked')"
            )),
        }
    }
}

/// Per-level constants driving the branchless forward map.
///
/// For a node at this level with one-based index `i1 = index + 1`:
///
/// ```text
/// slot = ((i1 >> depth_shift) << stride_shift) + (i1 & mask) + offset
/// ```
///
/// `i1 >> depth_shift` is the one-based index of the node's block root,
/// `<< stride_shift` scales block number to slots, `i1 & mask` is the
/// node's position among its block root's descendants at this depth, and
/// `offset` folds the band base, the block-number bias, and the in-block
/// Eytzinger base into one signed constant. The `Heap` layout is the
/// special case `{0, 0, 0, -1}`, i.e. `slot = i1 - 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LevelMap {
    depth_shift: u32,
    stride_shift: u32,
    mask: u32,
    offset: i64,
}

impl LevelMap {
    const IDENTITY: LevelMap = LevelMap {
        depth_shift: 0,
        stride_shift: 0,
        mask: 0,
        offset: -1,
    };
}

/// One band of levels in the blocked layout, used by the inverse map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Band {
    /// First physical slot of the band.
    base: usize,
    /// One past the last physical slot of the band.
    end: usize,
    /// First tree level covered by the band.
    start_level: u32,
    /// Number of levels in the band (block height; stride is `1 << height`).
    height: u32,
}

/// A bijection between logical node indices and physical storage slots.
///
/// Constructed per tree; [`slot_of`](TreeLayout::slot_of) is the hot-path
/// forward map (a handful of ALU ops, no branches on the layout kind) and
/// [`node_at`](TreeLayout::node_at) is the inverse used when a slab stores
/// slots and a logical node must be recovered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeLayout {
    kind: LayoutKind,
    tree: CompleteTree,
    physical_len: usize,
    levels: Vec<LevelMap>,
    bands: Vec<Band>,
}

impl TreeLayout {
    /// Builds the layout tables for `tree` under `kind`.
    pub fn new(tree: CompleteTree, kind: LayoutKind) -> Self {
        match kind {
            LayoutKind::Heap => TreeLayout {
                kind,
                tree,
                physical_len: tree.num_nodes() as usize,
                levels: vec![LevelMap::IDENTITY; tree.num_levels() as usize],
                bands: Vec::new(),
            },
            LayoutKind::Blocked => Self::blocked(tree),
        }
    }

    fn blocked(tree: CompleteTree) -> Self {
        let num_levels = tree.num_levels();
        // The remainder band sits at the *top* of the tree: the top levels
        // hold exponentially few nodes (and stay cache-hot regardless), so
        // giving them the short block wastes the least padding while the
        // bulk of the tree gets full-height blocks.
        let remainder = num_levels % BLOCK_LEVELS;
        let mut levels = Vec::with_capacity(num_levels as usize);
        let mut bands = Vec::new();
        let mut base = 0usize;
        let mut start_level = 0u32;
        while start_level < num_levels {
            let height = if start_level == 0 && remainder > 0 {
                remainder
            } else {
                BLOCK_LEVELS
            };
            let num_blocks = 1usize << start_level;
            let stride = 1usize << height;
            for depth in 0..height {
                let level = start_level + depth;
                levels.push(LevelMap {
                    depth_shift: depth,
                    stride_shift: height,
                    mask: (1u32 << depth) - 1,
                    offset: base as i64 - ((1i64 << start_level) << height) + (1i64 << depth) - 1,
                });
                debug_assert_eq!(levels.len() as u32 - 1, level);
            }
            let end = base + num_blocks * stride;
            bands.push(Band {
                base,
                end,
                start_level,
                height,
            });
            start_level += height;
            // Keep every subsequent band (all full-stride) starting on a
            // cache-line boundary relative to the slab base.
            base = end.next_multiple_of(FULL_STRIDE);
        }
        let physical_len = bands.last().map_or(0, |b| b.end);
        TreeLayout {
            kind: LayoutKind::Blocked,
            tree,
            physical_len,
            levels,
            bands,
        }
    }

    /// The layout kind this mapping implements.
    #[inline]
    pub fn kind(&self) -> LayoutKind {
        self.kind
    }

    /// The tree this layout was built for.
    #[inline]
    pub fn tree(&self) -> CompleteTree {
        self.tree
    }

    /// Number of physical slots a slab must hold. Equals the node count for
    /// `Heap`; slightly larger for `Blocked` (one pad slot per block plus
    /// band alignment — slots that [`node_at`](Self::node_at) never maps).
    #[inline]
    pub fn physical_len(&self) -> usize {
        self.physical_len
    }

    /// Maps a logical node to its physical slot. Branchless on the layout
    /// kind: a table lookup plus shift/mask/add arithmetic.
    #[inline]
    pub fn slot_of(&self, node: NodeId) -> usize {
        let i1 = node.index() + 1;
        let lm = self.levels[node.level() as usize];
        let slot = (((i1 >> lm.depth_shift) as i64) << lm.stride_shift)
            + (i1 & lm.mask) as i64
            + lm.offset;
        debug_assert!((0..self.physical_len as i64).contains(&slot));
        slot as usize
    }

    /// Inverse of [`slot_of`](Self::slot_of): recovers the logical node
    /// stored at `slot`.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `slot` is an occupied slot (not block padding);
    /// callers only feed back slots previously produced by `slot_of`.
    #[inline]
    pub fn node_at(&self, slot: usize) -> NodeId {
        if self.bands.is_empty() {
            debug_assert!(slot < self.physical_len);
            return NodeId::new(slot as u32);
        }
        for band in &self.bands {
            if slot < band.end {
                debug_assert!(slot >= band.base, "slot {slot} falls into band padding");
                let rel = slot - band.base;
                let block = (rel >> band.height) as u32;
                let local1 = (rel as u32 & ((1u32 << band.height) - 1)) + 1;
                let depth = u32::BITS - 1 - local1.leading_zeros();
                debug_assert!(depth < band.height, "slot {slot} is a block pad slot");
                let root1 = (1u32 << band.start_level) + block;
                let i1 = (root1 << depth) + (local1 - (1u32 << depth));
                return NodeId::new(i1 - 1);
            }
        }
        panic!(
            "slot {slot} out of range (physical_len {})",
            self.physical_len
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(levels: u32) -> CompleteTree {
        CompleteTree::with_levels(levels).unwrap()
    }

    #[test]
    fn heap_layout_is_identity() {
        let t = tree(7);
        let layout = TreeLayout::new(t, LayoutKind::Heap);
        assert_eq!(layout.physical_len(), t.num_nodes() as usize);
        for node in t.nodes() {
            assert_eq!(layout.slot_of(node), node.usize());
            assert_eq!(layout.node_at(node.usize()), node);
        }
    }

    #[test]
    fn blocked_layout_is_a_bijection_for_all_sizes() {
        for levels in 1..=16 {
            let t = tree(levels);
            let layout = TreeLayout::new(t, LayoutKind::Blocked);
            let mut seen = vec![false; layout.physical_len()];
            for node in t.nodes() {
                let slot = layout.slot_of(node);
                assert!(
                    slot < layout.physical_len(),
                    "levels={levels} node={node:?}"
                );
                assert!(!seen[slot], "levels={levels}: slot {slot} reused");
                seen[slot] = true;
                assert_eq!(layout.node_at(slot), node, "levels={levels} slot={slot}");
            }
        }
    }

    #[test]
    fn blocked_padding_overhead_is_bounded() {
        // Pad slots are one per block plus band alignment; the overhead must
        // stay well under the naive next-power-of-two blow-up.
        for levels in 4..=20 {
            let t = tree(levels);
            let layout = TreeLayout::new(t, LayoutKind::Blocked);
            let nodes = t.num_nodes() as usize;
            assert!(layout.physical_len() >= nodes);
            assert!(
                layout.physical_len() <= nodes + nodes / 8 + 2 * FULL_STRIDE,
                "levels={levels}: physical_len {} for {} nodes",
                layout.physical_len(),
                nodes
            );
        }
    }

    #[test]
    fn blocked_walk_stays_within_one_block_per_band() {
        // A root-to-leaf walk must touch at most ceil(levels / BLOCK_LEVELS)
        // distinct blocks (of FULL_STRIDE slots each).
        let t = tree(12);
        let layout = TreeLayout::new(t, LayoutKind::Blocked);
        for leaf in t.leaves() {
            let mut blocks: Vec<usize> = leaf
                .ancestors()
                .map(|n| layout.slot_of(n) / FULL_STRIDE)
                .collect();
            blocks.sort_unstable();
            blocks.dedup();
            assert!(blocks.len() as u32 <= t.num_levels().div_ceil(BLOCK_LEVELS));
        }
    }

    #[test]
    fn full_bands_start_cache_line_aligned() {
        let t = tree(14); // remainder band of 2 levels on top, then 4+4+4
        let layout = TreeLayout::new(t, LayoutKind::Blocked);
        for band in &layout.bands {
            if band.height == BLOCK_LEVELS {
                assert_eq!(band.base % FULL_STRIDE, 0);
            }
        }
    }

    #[test]
    fn layout_kind_parses_and_displays() {
        assert_eq!("heap".parse::<LayoutKind>().unwrap(), LayoutKind::Heap);
        assert_eq!(
            "Blocked".parse::<LayoutKind>().unwrap(),
            LayoutKind::Blocked
        );
        assert!("vEB".parse::<LayoutKind>().is_err());
        assert_eq!(LayoutKind::Heap.to_string(), "heap");
        assert_eq!(LayoutKind::Blocked.to_string(), "blocked");
        assert_eq!(LayoutKind::default(), LayoutKind::Heap);
    }
}
