//! # satn-tree
//!
//! The complete-binary-tree substrate for *self-adjusting single-source tree
//! networks* (Avin, Bienkowski, Salem, Sama, Schmid, Schmidt — ICDCS 2022).
//!
//! The model: a fixed complete binary tree of `n = 2^L − 1` nodes stores `n`
//! elements, one per node. A source attached to the root issues requests to
//! elements; accessing the element at level `d` costs `d + 1`, and the
//! algorithm may afterwards swap elements at adjacent nodes for one unit per
//! swap. This crate provides:
//!
//! * [`NodeId`] / [`ElementId`] — index arithmetic on the implicit heap
//!   layout (levels, parents, ancestors, root paths),
//! * [`CompleteTree`] — the fixed topology,
//! * [`Occupancy`] — the element↔node bijection with swap operations,
//! * [`MarkedRound`] — the restricted (marking-rule) swap session online
//!   algorithms must use, and [`FreeSwapSession`] for offline baselines,
//! * [`ServeCost`] / [`CostSummary`] — cost accounting,
//! * [`placement`] — initial placements (random, frequency-BFS),
//! * [`snapshot`] / [`TreeSnapshot`] — text checkpoints and immutable
//!   point-in-time views for lock-free concurrent reads.
//!
//! Higher layers build on this crate: `satn-rotor` adds rotor pointers and
//! flip-ranks, `satn-core` implements the online algorithms themselves.
//!
//! ```
//! use satn_tree::{CompleteTree, ElementId, MarkedRound, Occupancy};
//!
//! let tree = CompleteTree::with_nodes(15)?;
//! let mut occupancy = Occupancy::identity(tree);
//! let mut round = MarkedRound::access(&mut occupancy, ElementId::new(9))?;
//! let node = round.occupancy().node_of(ElementId::new(9));
//! round.bubble_to_root(node)?;
//! let cost = round.finish();
//! assert_eq!(cost.access, 4);      // element 9 was at level 3
//! assert_eq!(cost.adjustment, 3);  // three swaps moved it to the root
//! # Ok::<(), satn_tree::TreeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod cost;
mod error;
mod layout;
mod node;
mod occupancy;
pub mod placement;
pub mod render;
pub mod snapshot;
mod swap;
mod topology;

pub use cost::{
    CostObserver, CostSummary, EpochCostSummary, MigrationCost, NullCostObserver, ServeCost,
    ShardedCostSummary,
};
pub use error::TreeError;
pub use layout::{LayoutKind, TreeLayout, BLOCK_LEVELS};
pub use node::{Ancestors, Direction, ElementId, NodeId};
pub use occupancy::Occupancy;
pub use snapshot::TreeSnapshot;
pub use swap::{FreeSwapSession, MarkScratch, MarkedRound};
pub use topology::CompleteTree;

// The parallel execution layer (`satn-exec`) moves these across worker
// threads; keep them `Send + Sync + 'static` by construction.
#[allow(dead_code)]
fn _assert_parallel_safe() {
    fn assert_send_sync<T: Send + Sync + 'static>() {}
    assert_send_sync::<CompleteTree>();
    assert_send_sync::<TreeLayout>();
    assert_send_sync::<Occupancy>();
    assert_send_sync::<CostSummary>();
    assert_send_sync::<ServeCost>();
    assert_send_sync::<MarkScratch>();
    assert_send_sync::<TreeError>();
    assert_send_sync::<Ancestors>();
    assert_send_sync::<TreeSnapshot>();
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_tree() -> impl Strategy<Value = CompleteTree> {
        (1u32..=10).prop_map(|levels| CompleteTree::with_levels(levels).unwrap())
    }

    proptest! {
        #[test]
        fn node_level_and_offset_roundtrip(index in 0u32..1_000_000) {
            let node = NodeId::new(index);
            let rebuilt = NodeId::from_level_offset(node.level(), node.offset_in_level());
            prop_assert_eq!(rebuilt, node);
        }

        #[test]
        fn parent_level_is_one_less(index in 1u32..1_000_000) {
            let node = NodeId::new(index);
            let parent = node.parent().unwrap();
            prop_assert_eq!(parent.level() + 1, node.level());
            prop_assert!(parent.is_parent_of(node));
        }

        #[test]
        fn directions_roundtrip(index in 0u32..100_000) {
            let node = NodeId::new(index);
            prop_assert_eq!(NodeId::from_directions(&node.directions_from_root()), node);
        }

        #[test]
        fn ancestors_iterator_matches_reversed_root_path(index in 0u32..1_000_000) {
            let node = NodeId::new(index);
            let mut reversed_path = node.path_from_root();
            reversed_path.reverse();
            prop_assert_eq!(node.ancestors().collect::<Vec<_>>(), reversed_path);
            prop_assert_eq!(node.ancestors().rev().collect::<Vec<_>>(), node.path_from_root());
            prop_assert_eq!(node.ancestors().len() as u32, node.level() + 1);
            prop_assert_eq!(node.ancestors().next_back(), Some(NodeId::ROOT));
        }

        #[test]
        fn lca_is_common_ancestor_and_deepest(a in 0u32..4096, b in 0u32..4096) {
            let (a, b) = (NodeId::new(a), NodeId::new(b));
            let lca = a.lowest_common_ancestor(b);
            prop_assert!(lca.is_ancestor_of_or_equal(a));
            prop_assert!(lca.is_ancestor_of_or_equal(b));
            // No child of the LCA is an ancestor of both.
            for child in [lca.left_child(), lca.right_child()] {
                prop_assert!(!(child.is_ancestor_of_or_equal(a) && child.is_ancestor_of_or_equal(b)));
            }
        }

        #[test]
        fn random_occupancy_is_bijective(tree in arb_tree(), seed in any::<u64>()) {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let occ = placement::random_occupancy(tree, &mut rng);
            prop_assert!(occ.is_consistent());
        }

        #[test]
        fn arbitrary_swap_sequences_preserve_bijection(
            tree in arb_tree(),
            swaps in proptest::collection::vec((0u32..2048, 0u32..2048), 0..64),
        ) {
            let mut occ = Occupancy::identity(tree);
            for (a, b) in swaps {
                let a = NodeId::new(a % tree.num_nodes());
                let b = NodeId::new(b % tree.num_nodes());
                // Only apply valid swaps; invalid ones must leave the state intact.
                let before = occ.clone();
                if occ.swap_nodes(a, b).is_err() {
                    prop_assert_eq!(&before, &occ);
                }
                prop_assert!(occ.is_consistent());
            }
        }

        #[test]
        fn marked_round_cost_matches_swap_count(
            tree in (3u32..=8).prop_map(|l| CompleteTree::with_levels(l).unwrap()),
            element in 0u32..255,
            target in 0u32..255,
        ) {
            let mut occ = Occupancy::identity(tree);
            let element = ElementId::new(element % tree.num_nodes());
            let target = NodeId::new(target % tree.num_nodes());
            let expected_access = occ.level_of(element) as u64 + 1;
            let mut round = MarkedRound::access(&mut occ, element).unwrap();
            let node = round.occupancy().node_of(element);
            let up = round.bubble_to_root(node).unwrap();
            let down = round.sink_from_root(target).unwrap();
            let cost = round.finish();
            prop_assert_eq!(cost.access, expected_access);
            prop_assert_eq!(cost.adjustment, up + down);
            prop_assert!(occ.is_consistent());
        }
    }
}
