//! Cost accounting: per-request costs and running summaries.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// The cost of serving one request, split into access and adjustment parts
/// exactly as in the paper's model: accessing an element at level `d` costs
/// `d + 1`, and every swap costs one unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ServeCost {
    /// Access cost `ℓ(e) + 1` paid for reaching the requested element.
    pub access: u64,
    /// Adjustment cost: the number of swaps performed while serving.
    pub adjustment: u64,
}

impl ServeCost {
    /// Creates a cost record from its two components.
    pub const fn new(access: u64, adjustment: u64) -> Self {
        ServeCost { access, adjustment }
    }

    /// A request that cost nothing (used as the additive identity).
    pub const ZERO: ServeCost = ServeCost {
        access: 0,
        adjustment: 0,
    };

    /// Total cost of the request (access plus adjustment).
    #[inline]
    pub const fn total(self) -> u64 {
        self.access + self.adjustment
    }
}

impl Add for ServeCost {
    type Output = ServeCost;

    fn add(self, rhs: ServeCost) -> ServeCost {
        ServeCost {
            access: self.access + rhs.access,
            adjustment: self.adjustment + rhs.adjustment,
        }
    }
}

impl AddAssign for ServeCost {
    fn add_assign(&mut self, rhs: ServeCost) {
        *self = *self + rhs;
    }
}

impl Sum for ServeCost {
    fn sum<I: Iterator<Item = ServeCost>>(iter: I) -> ServeCost {
        iter.fold(ServeCost::ZERO, Add::add)
    }
}

impl fmt::Display for ServeCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "access={} adjustment={} total={}",
            self.access,
            self.adjustment,
            self.total()
        )
    }
}

/// Running totals over a request sequence.
///
/// # Examples
///
/// ```
/// use satn_tree::{CostSummary, ServeCost};
///
/// let mut summary = CostSummary::new();
/// summary.record(ServeCost::new(3, 5));
/// summary.record(ServeCost::new(1, 0));
/// assert_eq!(summary.requests(), 2);
/// assert_eq!(summary.total().total(), 9);
/// assert!((summary.mean_total() - 4.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CostSummary {
    total: ServeCost,
    requests: u64,
    max_access: u64,
    max_total: u64,
}

impl CostSummary {
    /// Creates an empty summary.
    pub const fn new() -> Self {
        CostSummary {
            total: ServeCost::ZERO,
            requests: 0,
            max_access: 0,
            max_total: 0,
        }
    }

    /// Records the cost of one served request.
    pub fn record(&mut self, cost: ServeCost) {
        self.total += cost;
        self.requests += 1;
        self.max_access = self.max_access.max(cost.access);
        self.max_total = self.max_total.max(cost.total());
    }

    /// Number of requests recorded so far.
    #[inline]
    pub const fn requests(&self) -> u64 {
        self.requests
    }

    /// Accumulated cost over all recorded requests.
    #[inline]
    pub const fn total(&self) -> ServeCost {
        self.total
    }

    /// Largest access cost of a single request.
    #[inline]
    pub const fn max_access(&self) -> u64 {
        self.max_access
    }

    /// Largest total cost of a single request.
    #[inline]
    pub const fn max_total(&self) -> u64 {
        self.max_total
    }

    /// Mean access cost per request (0.0 when empty).
    pub fn mean_access(&self) -> f64 {
        self.ratio(self.total.access)
    }

    /// Mean adjustment cost per request (0.0 when empty).
    pub fn mean_adjustment(&self) -> f64 {
        self.ratio(self.total.adjustment)
    }

    /// Mean total cost per request (0.0 when empty).
    pub fn mean_total(&self) -> f64 {
        self.ratio(self.total.total())
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &CostSummary) {
        self.total += other.total;
        self.requests += other.requests;
        self.max_access = self.max_access.max(other.max_access);
        self.max_total = self.max_total.max(other.max_total);
    }

    fn ratio(&self, value: u64) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            value as f64 / self.requests as f64
        }
    }
}

impl fmt::Display for CostSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} requests, mean access {:.3}, mean adjustment {:.3}, mean total {:.3}",
            self.requests,
            self.mean_access(),
            self.mean_adjustment(),
            self.mean_total()
        )
    }
}

/// The cost of one partition handover: the deterministic delete/re-insert
/// work of moving elements between shard trees at an epoch boundary.
///
/// Deleting a migrating element from its source tree pays its access cost
/// there (`level + 1`), and re-inserting it into the destination tree pays
/// the access cost of the slot it lands in — the same unit as serving cost,
/// so resharding shows up in the same ledger as access and adjustment cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MigrationCost {
    /// Number of elements that changed shards.
    pub moved: u64,
    /// Total delete cost paid on the source shards (`old level + 1` each).
    pub delete: u64,
    /// Total insert cost paid on the destination shards (`new level + 1`
    /// each).
    pub insert: u64,
}

impl MigrationCost {
    /// A handover that moved nothing (the additive identity; also the
    /// migration cost of epoch 0).
    pub const ZERO: MigrationCost = MigrationCost {
        moved: 0,
        delete: 0,
        insert: 0,
    };

    /// Total cost units of the handover (delete plus insert).
    #[inline]
    pub const fn total(self) -> u64 {
        self.delete + self.insert
    }

    /// Whether the handover moved any element.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.moved == 0
    }

    /// Accumulates another handover's cost into this one.
    pub fn merge(&mut self, other: MigrationCost) {
        self.moved += other.moved;
        self.delete += other.delete;
        self.insert += other.insert;
    }
}

impl fmt::Display for MigrationCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "moved={} delete={} insert={} total={}",
            self.moved,
            self.delete,
            self.insert,
            self.total()
        )
    }
}

/// The serving and migration costs of one partition epoch: per-shard
/// summaries of the requests served while the epoch was current, plus the
/// migration cost paid at the handover that *entered* the epoch (zero for
/// epoch 0, which starts from the initial assignment).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochCostSummary {
    epoch: u32,
    migration: MigrationCost,
    per_shard: Vec<CostSummary>,
}

impl EpochCostSummary {
    fn new(epoch: u32, shards: u32, migration: MigrationCost) -> Self {
        EpochCostSummary {
            epoch,
            migration,
            per_shard: vec![CostSummary::new(); shards as usize],
        }
    }

    /// The epoch index (0 = the initial assignment).
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// The handover cost paid to enter this epoch.
    pub fn migration(&self) -> MigrationCost {
        self.migration
    }

    /// The per-shard summaries of requests served during this epoch.
    pub fn per_shard(&self) -> &[CostSummary] {
        &self.per_shard
    }

    /// One shard's summary of requests served during this epoch.
    ///
    /// # Panics
    ///
    /// Panics if the shard is out of range.
    pub fn shard(&self, shard: u32) -> &CostSummary {
        &self.per_shard[shard as usize]
    }

    /// The shard-order merge of this epoch's per-shard summaries.
    pub fn merged(&self) -> CostSummary {
        let mut merged = CostSummary::new();
        for summary in &self.per_shard {
            merged.merge(summary);
        }
        merged
    }

    /// Requests served during this epoch, across all shards.
    pub fn requests(&self) -> u64 {
        self.per_shard.iter().map(CostSummary::requests).sum()
    }
}

/// Shard-aware, epoch-versioned cost accounting: one [`CostSummary`] per
/// shard plus per-epoch sub-summaries and the explicit migration-cost term
/// of every partition handover.
///
/// The sharded serving engine records every request against its shard (and
/// the current epoch); the merged summary is defined as folding the
/// per-shard summaries **in shard order**, so two runs that produce the same
/// per-shard summaries always produce the same merged summary, independent
/// of how batches were drained or how many worker threads served them.
/// Epochs advance via [`ShardedCostSummary::begin_epoch`], which records the
/// handover's [`MigrationCost`] in the same ledger — resharding is never
/// free, and its price is visible next to access and adjustment cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedCostSummary {
    per_shard: Vec<CostSummary>,
    epochs: Vec<EpochCostSummary>,
}

impl Default for ShardedCostSummary {
    fn default() -> Self {
        ShardedCostSummary {
            per_shard: Vec::new(),
            epochs: vec![EpochCostSummary::new(0, 0, MigrationCost::ZERO)],
        }
    }
}

impl ShardedCostSummary {
    /// Creates an accounting over `shards` shards, all empty, at epoch 0.
    pub fn new(shards: u32) -> Self {
        ShardedCostSummary {
            per_shard: vec![CostSummary::new(); shards as usize],
            epochs: vec![EpochCostSummary::new(0, shards, MigrationCost::ZERO)],
        }
    }

    /// Number of shards tracked.
    pub fn shards(&self) -> u32 {
        self.per_shard.len() as u32
    }

    /// Records one served request against its shard (in the current epoch).
    ///
    /// # Panics
    ///
    /// Panics if the shard is out of range.
    pub fn record(&mut self, shard: u32, cost: ServeCost) {
        self.per_shard[shard as usize].record(cost);
        self.current_epoch_mut().per_shard[shard as usize].record(cost);
    }

    /// Merges a batch summary into one shard's totals (in the current epoch).
    ///
    /// # Panics
    ///
    /// Panics if the shard is out of range.
    pub fn merge_into_shard(&mut self, shard: u32, batch: &CostSummary) {
        self.per_shard[shard as usize].merge(batch);
        self.current_epoch_mut().per_shard[shard as usize].merge(batch);
    }

    /// Starts a new epoch, recording the handover's migration cost. All
    /// subsequent requests are accounted against the new epoch's
    /// sub-summaries (the all-time per-shard totals keep accumulating).
    pub fn begin_epoch(&mut self, migration: MigrationCost) {
        let epoch = self.epochs.len() as u32;
        self.epochs
            .push(EpochCostSummary::new(epoch, self.shards(), migration));
    }

    /// The current epoch index.
    pub fn current_epoch(&self) -> u32 {
        (self.epochs.len() - 1) as u32
    }

    /// The per-epoch sub-summaries, in epoch order (always non-empty).
    pub fn epochs(&self) -> &[EpochCostSummary] {
        &self.epochs
    }

    /// One epoch's sub-summary.
    ///
    /// # Panics
    ///
    /// Panics if the epoch is out of range.
    pub fn epoch(&self, epoch: u32) -> &EpochCostSummary {
        &self.epochs[epoch as usize]
    }

    /// The accumulated migration cost of every handover so far.
    pub fn migration_total(&self) -> MigrationCost {
        let mut total = MigrationCost::ZERO;
        for epoch in &self.epochs {
            total.merge(epoch.migration);
        }
        total
    }

    /// The all-time totals of one shard (across every epoch).
    ///
    /// # Panics
    ///
    /// Panics if the shard is out of range.
    pub fn shard(&self, shard: u32) -> &CostSummary {
        &self.per_shard[shard as usize]
    }

    /// All per-shard all-time summaries, in shard order.
    pub fn per_shard(&self) -> &[CostSummary] {
        &self.per_shard
    }

    /// The shard-order merge of every per-shard summary (serving cost only;
    /// migration cost is reported separately by
    /// [`ShardedCostSummary::migration_total`]).
    pub fn merged(&self) -> CostSummary {
        let mut merged = CostSummary::new();
        for summary in &self.per_shard {
            merged.merge(summary);
        }
        merged
    }

    /// Total requests recorded across all shards (and epochs).
    pub fn requests(&self) -> u64 {
        self.per_shard.iter().map(CostSummary::requests).sum()
    }

    fn current_epoch_mut(&mut self) -> &mut EpochCostSummary {
        self.epochs
            .last_mut()
            .expect("the epoch log is never empty")
    }
}

impl fmt::Display for ShardedCostSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} shards, {} epochs: {} (migration: {})",
            self.shards(),
            self.epochs.len(),
            self.merged(),
            self.migration_total()
        )
    }
}

/// A passive observer of cost-ledger events, for runtime telemetry.
///
/// The sharded engine calls [`CostObserver::on_batch`] once per drained
/// batch (with the batch's summary, before it is merged into the ledger) and
/// [`CostObserver::on_epoch`] once per reshard handover. Both methods take
/// `&self` and must be cheap and non-blocking: observers run inside the
/// drain's ordered-merge step, on the engine thread, and exist to mirror the
/// deterministic ledger into atomic metric registries — never to influence
/// it. The default methods do nothing, so observers implement only the
/// events they care about.
pub trait CostObserver: Sync {
    /// A batch of requests finished draining on `shard` with totals `batch`.
    fn on_batch(&self, shard: u32, batch: &CostSummary) {
        let _ = (shard, batch);
    }

    /// A reshard handover completed: the engine entered `epoch`, paying
    /// `migration`.
    fn on_epoch(&self, epoch: u32, migration: MigrationCost) {
        let _ = (epoch, migration);
    }
}

/// The do-nothing [`CostObserver`], for call sites without telemetry.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullCostObserver;

impl CostObserver for NullCostObserver {}

impl FromIterator<ServeCost> for CostSummary {
    fn from_iter<I: IntoIterator<Item = ServeCost>>(iter: I) -> Self {
        let mut summary = CostSummary::new();
        for cost in iter {
            summary.record(cost);
        }
        summary
    }
}

impl Extend<ServeCost> for CostSummary {
    fn extend<I: IntoIterator<Item = ServeCost>>(&mut self, iter: I) {
        for cost in iter {
            self.record(cost);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_cost_arithmetic() {
        let a = ServeCost::new(3, 4);
        let b = ServeCost::new(1, 2);
        assert_eq!((a + b), ServeCost::new(4, 6));
        assert_eq!(a.total(), 7);
        let mut c = a;
        c += b;
        assert_eq!(c, ServeCost::new(4, 6));
        let sum: ServeCost = [a, b, ServeCost::ZERO].into_iter().sum();
        assert_eq!(sum, ServeCost::new(4, 6));
    }

    #[test]
    fn summary_statistics() {
        let mut s = CostSummary::new();
        assert_eq!(s.mean_total(), 0.0);
        s.record(ServeCost::new(2, 6));
        s.record(ServeCost::new(4, 0));
        s.record(ServeCost::new(10, 2));
        assert_eq!(s.requests(), 3);
        assert_eq!(s.total(), ServeCost::new(16, 8));
        assert_eq!(s.max_access(), 10);
        assert_eq!(s.max_total(), 12);
        assert!((s.mean_access() - 16.0 / 3.0).abs() < 1e-12);
        assert!((s.mean_adjustment() - 8.0 / 3.0).abs() < 1e-12);
        assert!((s.mean_total() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn summary_merge_equals_sequential_recording() {
        let costs = [
            ServeCost::new(1, 1),
            ServeCost::new(5, 0),
            ServeCost::new(3, 9),
            ServeCost::new(2, 2),
        ];
        let mut all = CostSummary::new();
        costs.iter().for_each(|&c| all.record(c));

        let mut left: CostSummary = costs[..2].iter().copied().collect();
        let right: CostSummary = costs[2..].iter().copied().collect();
        left.merge(&right);
        assert_eq!(left, all);
    }

    #[test]
    fn summary_extend_and_collect() {
        let mut s = CostSummary::new();
        s.extend([ServeCost::new(1, 0), ServeCost::new(2, 1)]);
        assert_eq!(s.requests(), 2);
        assert_eq!(s.total().total(), 4);
    }

    #[test]
    fn sharded_summary_merges_in_shard_order() {
        let mut sharded = ShardedCostSummary::new(3);
        sharded.record(0, ServeCost::new(3, 1));
        sharded.record(2, ServeCost::new(5, 0));
        sharded.record(0, ServeCost::new(1, 0));
        let mut batch = CostSummary::new();
        batch.record(ServeCost::new(7, 7));
        sharded.merge_into_shard(1, &batch);

        assert_eq!(sharded.shards(), 3);
        assert_eq!(sharded.requests(), 4);
        assert_eq!(sharded.shard(0).requests(), 2);
        assert_eq!(sharded.shard(1).total(), ServeCost::new(7, 7));
        assert_eq!(sharded.shard(2).max_access(), 5);

        // The merged summary equals recording every request into one summary.
        let mut flat = CostSummary::new();
        for cost in [
            ServeCost::new(3, 1),
            ServeCost::new(1, 0),
            ServeCost::new(7, 7),
            ServeCost::new(5, 0),
        ] {
            flat.record(cost);
        }
        assert_eq!(sharded.merged(), flat);
        assert!(sharded.to_string().contains("3 shards"));
    }

    #[test]
    fn migration_cost_arithmetic_and_display() {
        let mut cost = MigrationCost::ZERO;
        assert!(cost.is_zero());
        assert_eq!(cost.total(), 0);
        cost.merge(MigrationCost {
            moved: 2,
            delete: 5,
            insert: 7,
        });
        cost.merge(MigrationCost {
            moved: 1,
            delete: 3,
            insert: 1,
        });
        assert_eq!(cost.moved, 3);
        assert_eq!(cost.total(), 16);
        assert!(!cost.is_zero());
        assert_eq!(cost.to_string(), "moved=3 delete=8 insert=8 total=16");
    }

    #[test]
    fn epochs_partition_the_ledger_and_totals_span_them() {
        let mut sharded = ShardedCostSummary::new(2);
        assert_eq!(sharded.current_epoch(), 0);
        sharded.record(0, ServeCost::new(3, 1));
        sharded.record(1, ServeCost::new(2, 0));

        let migration = MigrationCost {
            moved: 4,
            delete: 10,
            insert: 12,
        };
        sharded.begin_epoch(migration);
        assert_eq!(sharded.current_epoch(), 1);
        sharded.record(0, ServeCost::new(5, 5));

        // Per-epoch sub-summaries hold exactly their own epoch's requests.
        assert_eq!(sharded.epoch(0).requests(), 2);
        assert_eq!(sharded.epoch(0).shard(0).total(), ServeCost::new(3, 1));
        assert_eq!(sharded.epoch(0).migration(), MigrationCost::ZERO);
        assert_eq!(sharded.epoch(1).requests(), 1);
        assert_eq!(sharded.epoch(1).epoch(), 1);
        assert_eq!(sharded.epoch(1).migration(), migration);
        assert_eq!(sharded.epoch(1).merged().total(), ServeCost::new(5, 5));

        // All-time totals span both epochs; migration is a separate term.
        assert_eq!(sharded.requests(), 3);
        assert_eq!(sharded.shard(0).total(), ServeCost::new(8, 6));
        assert_eq!(sharded.merged().requests(), 3);
        assert_eq!(sharded.migration_total(), migration);
        assert_eq!(sharded.epochs().len(), 2);

        // The epoch-order merge of the sub-summaries equals the totals.
        for shard in 0..2u32 {
            let mut recombined = CostSummary::new();
            for epoch in sharded.epochs() {
                recombined.merge(epoch.shard(shard));
            }
            assert_eq!(&recombined, sharded.shard(shard), "shard {shard}");
        }
        assert!(sharded.to_string().contains("2 epochs"));
    }

    #[test]
    fn batch_merges_land_in_the_current_epoch() {
        let mut sharded = ShardedCostSummary::new(1);
        let mut batch = CostSummary::new();
        batch.record(ServeCost::new(1, 1));
        sharded.merge_into_shard(0, &batch);
        sharded.begin_epoch(MigrationCost::ZERO);
        sharded.merge_into_shard(0, &batch);
        sharded.merge_into_shard(0, &batch);
        assert_eq!(sharded.epoch(0).shard(0).requests(), 1);
        assert_eq!(sharded.epoch(1).shard(0).requests(), 2);
        assert_eq!(sharded.shard(0).requests(), 3);
    }

    #[test]
    fn display_output_mentions_means() {
        let mut s = CostSummary::new();
        s.record(ServeCost::new(2, 2));
        let text = s.to_string();
        assert!(text.contains("1 requests"));
        assert!(text.contains("mean total"));
        assert_eq!(
            ServeCost::new(1, 2).to_string(),
            "access=1 adjustment=2 total=3"
        );
    }
}
