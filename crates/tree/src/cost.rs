//! Cost accounting: per-request costs and running summaries.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// The cost of serving one request, split into access and adjustment parts
/// exactly as in the paper's model: accessing an element at level `d` costs
/// `d + 1`, and every swap costs one unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ServeCost {
    /// Access cost `ℓ(e) + 1` paid for reaching the requested element.
    pub access: u64,
    /// Adjustment cost: the number of swaps performed while serving.
    pub adjustment: u64,
}

impl ServeCost {
    /// Creates a cost record from its two components.
    pub const fn new(access: u64, adjustment: u64) -> Self {
        ServeCost { access, adjustment }
    }

    /// A request that cost nothing (used as the additive identity).
    pub const ZERO: ServeCost = ServeCost {
        access: 0,
        adjustment: 0,
    };

    /// Total cost of the request (access plus adjustment).
    #[inline]
    pub const fn total(self) -> u64 {
        self.access + self.adjustment
    }
}

impl Add for ServeCost {
    type Output = ServeCost;

    fn add(self, rhs: ServeCost) -> ServeCost {
        ServeCost {
            access: self.access + rhs.access,
            adjustment: self.adjustment + rhs.adjustment,
        }
    }
}

impl AddAssign for ServeCost {
    fn add_assign(&mut self, rhs: ServeCost) {
        *self = *self + rhs;
    }
}

impl Sum for ServeCost {
    fn sum<I: Iterator<Item = ServeCost>>(iter: I) -> ServeCost {
        iter.fold(ServeCost::ZERO, Add::add)
    }
}

impl fmt::Display for ServeCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "access={} adjustment={} total={}",
            self.access,
            self.adjustment,
            self.total()
        )
    }
}

/// Running totals over a request sequence.
///
/// # Examples
///
/// ```
/// use satn_tree::{CostSummary, ServeCost};
///
/// let mut summary = CostSummary::new();
/// summary.record(ServeCost::new(3, 5));
/// summary.record(ServeCost::new(1, 0));
/// assert_eq!(summary.requests(), 2);
/// assert_eq!(summary.total().total(), 9);
/// assert!((summary.mean_total() - 4.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CostSummary {
    total: ServeCost,
    requests: u64,
    max_access: u64,
    max_total: u64,
}

impl CostSummary {
    /// Creates an empty summary.
    pub const fn new() -> Self {
        CostSummary {
            total: ServeCost::ZERO,
            requests: 0,
            max_access: 0,
            max_total: 0,
        }
    }

    /// Records the cost of one served request.
    pub fn record(&mut self, cost: ServeCost) {
        self.total += cost;
        self.requests += 1;
        self.max_access = self.max_access.max(cost.access);
        self.max_total = self.max_total.max(cost.total());
    }

    /// Number of requests recorded so far.
    #[inline]
    pub const fn requests(&self) -> u64 {
        self.requests
    }

    /// Accumulated cost over all recorded requests.
    #[inline]
    pub const fn total(&self) -> ServeCost {
        self.total
    }

    /// Largest access cost of a single request.
    #[inline]
    pub const fn max_access(&self) -> u64 {
        self.max_access
    }

    /// Largest total cost of a single request.
    #[inline]
    pub const fn max_total(&self) -> u64 {
        self.max_total
    }

    /// Mean access cost per request (0.0 when empty).
    pub fn mean_access(&self) -> f64 {
        self.ratio(self.total.access)
    }

    /// Mean adjustment cost per request (0.0 when empty).
    pub fn mean_adjustment(&self) -> f64 {
        self.ratio(self.total.adjustment)
    }

    /// Mean total cost per request (0.0 when empty).
    pub fn mean_total(&self) -> f64 {
        self.ratio(self.total.total())
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &CostSummary) {
        self.total += other.total;
        self.requests += other.requests;
        self.max_access = self.max_access.max(other.max_access);
        self.max_total = self.max_total.max(other.max_total);
    }

    fn ratio(&self, value: u64) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            value as f64 / self.requests as f64
        }
    }
}

impl fmt::Display for CostSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} requests, mean access {:.3}, mean adjustment {:.3}, mean total {:.3}",
            self.requests,
            self.mean_access(),
            self.mean_adjustment(),
            self.mean_total()
        )
    }
}

/// Shard-aware cost accounting: one [`CostSummary`] per shard plus the
/// deterministic shard-order merge of all of them.
///
/// The sharded serving engine records every request against its shard; the
/// merged summary is defined as folding the per-shard summaries **in shard
/// order**, so two runs that produce the same per-shard summaries always
/// produce the same merged summary, independent of how batches were drained
/// or how many worker threads served them.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShardedCostSummary {
    per_shard: Vec<CostSummary>,
}

impl ShardedCostSummary {
    /// Creates an accounting over `shards` shards, all empty.
    pub fn new(shards: u32) -> Self {
        ShardedCostSummary {
            per_shard: vec![CostSummary::new(); shards as usize],
        }
    }

    /// Number of shards tracked.
    pub fn shards(&self) -> u32 {
        self.per_shard.len() as u32
    }

    /// Records one served request against its shard.
    ///
    /// # Panics
    ///
    /// Panics if the shard is out of range.
    pub fn record(&mut self, shard: u32, cost: ServeCost) {
        self.per_shard[shard as usize].record(cost);
    }

    /// Merges a batch summary into one shard's totals.
    ///
    /// # Panics
    ///
    /// Panics if the shard is out of range.
    pub fn merge_into_shard(&mut self, shard: u32, batch: &CostSummary) {
        self.per_shard[shard as usize].merge(batch);
    }

    /// The totals of one shard.
    ///
    /// # Panics
    ///
    /// Panics if the shard is out of range.
    pub fn shard(&self, shard: u32) -> &CostSummary {
        &self.per_shard[shard as usize]
    }

    /// All per-shard summaries, in shard order.
    pub fn per_shard(&self) -> &[CostSummary] {
        &self.per_shard
    }

    /// The shard-order merge of every per-shard summary.
    pub fn merged(&self) -> CostSummary {
        let mut merged = CostSummary::new();
        for summary in &self.per_shard {
            merged.merge(summary);
        }
        merged
    }

    /// Total requests recorded across all shards.
    pub fn requests(&self) -> u64 {
        self.per_shard.iter().map(CostSummary::requests).sum()
    }
}

impl fmt::Display for ShardedCostSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} shards: {}", self.shards(), self.merged())
    }
}

impl FromIterator<ServeCost> for CostSummary {
    fn from_iter<I: IntoIterator<Item = ServeCost>>(iter: I) -> Self {
        let mut summary = CostSummary::new();
        for cost in iter {
            summary.record(cost);
        }
        summary
    }
}

impl Extend<ServeCost> for CostSummary {
    fn extend<I: IntoIterator<Item = ServeCost>>(&mut self, iter: I) {
        for cost in iter {
            self.record(cost);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_cost_arithmetic() {
        let a = ServeCost::new(3, 4);
        let b = ServeCost::new(1, 2);
        assert_eq!((a + b), ServeCost::new(4, 6));
        assert_eq!(a.total(), 7);
        let mut c = a;
        c += b;
        assert_eq!(c, ServeCost::new(4, 6));
        let sum: ServeCost = [a, b, ServeCost::ZERO].into_iter().sum();
        assert_eq!(sum, ServeCost::new(4, 6));
    }

    #[test]
    fn summary_statistics() {
        let mut s = CostSummary::new();
        assert_eq!(s.mean_total(), 0.0);
        s.record(ServeCost::new(2, 6));
        s.record(ServeCost::new(4, 0));
        s.record(ServeCost::new(10, 2));
        assert_eq!(s.requests(), 3);
        assert_eq!(s.total(), ServeCost::new(16, 8));
        assert_eq!(s.max_access(), 10);
        assert_eq!(s.max_total(), 12);
        assert!((s.mean_access() - 16.0 / 3.0).abs() < 1e-12);
        assert!((s.mean_adjustment() - 8.0 / 3.0).abs() < 1e-12);
        assert!((s.mean_total() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn summary_merge_equals_sequential_recording() {
        let costs = [
            ServeCost::new(1, 1),
            ServeCost::new(5, 0),
            ServeCost::new(3, 9),
            ServeCost::new(2, 2),
        ];
        let mut all = CostSummary::new();
        costs.iter().for_each(|&c| all.record(c));

        let mut left: CostSummary = costs[..2].iter().copied().collect();
        let right: CostSummary = costs[2..].iter().copied().collect();
        left.merge(&right);
        assert_eq!(left, all);
    }

    #[test]
    fn summary_extend_and_collect() {
        let mut s = CostSummary::new();
        s.extend([ServeCost::new(1, 0), ServeCost::new(2, 1)]);
        assert_eq!(s.requests(), 2);
        assert_eq!(s.total().total(), 4);
    }

    #[test]
    fn sharded_summary_merges_in_shard_order() {
        let mut sharded = ShardedCostSummary::new(3);
        sharded.record(0, ServeCost::new(3, 1));
        sharded.record(2, ServeCost::new(5, 0));
        sharded.record(0, ServeCost::new(1, 0));
        let mut batch = CostSummary::new();
        batch.record(ServeCost::new(7, 7));
        sharded.merge_into_shard(1, &batch);

        assert_eq!(sharded.shards(), 3);
        assert_eq!(sharded.requests(), 4);
        assert_eq!(sharded.shard(0).requests(), 2);
        assert_eq!(sharded.shard(1).total(), ServeCost::new(7, 7));
        assert_eq!(sharded.shard(2).max_access(), 5);

        // The merged summary equals recording every request into one summary.
        let mut flat = CostSummary::new();
        for cost in [
            ServeCost::new(3, 1),
            ServeCost::new(1, 0),
            ServeCost::new(7, 7),
            ServeCost::new(5, 0),
        ] {
            flat.record(cost);
        }
        assert_eq!(sharded.merged(), flat);
        assert!(sharded.to_string().contains("3 shards"));
    }

    #[test]
    fn display_output_mentions_means() {
        let mut s = CostSummary::new();
        s.record(ServeCost::new(2, 2));
        let text = s.to_string();
        assert!(text.contains("1 requests"));
        assert!(text.contains("mean total"));
        assert_eq!(
            ServeCost::new(1, 2).to_string(),
            "access=1 adjustment=2 total=3"
        );
    }
}
