//! Cost accounting: per-request costs and running summaries.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// The cost of serving one request, split into access and adjustment parts
/// exactly as in the paper's model: accessing an element at level `d` costs
/// `d + 1`, and every swap costs one unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ServeCost {
    /// Access cost `ℓ(e) + 1` paid for reaching the requested element.
    pub access: u64,
    /// Adjustment cost: the number of swaps performed while serving.
    pub adjustment: u64,
}

impl ServeCost {
    /// Creates a cost record from its two components.
    pub const fn new(access: u64, adjustment: u64) -> Self {
        ServeCost { access, adjustment }
    }

    /// A request that cost nothing (used as the additive identity).
    pub const ZERO: ServeCost = ServeCost {
        access: 0,
        adjustment: 0,
    };

    /// Total cost of the request (access plus adjustment).
    #[inline]
    pub const fn total(self) -> u64 {
        self.access + self.adjustment
    }
}

impl Add for ServeCost {
    type Output = ServeCost;

    fn add(self, rhs: ServeCost) -> ServeCost {
        ServeCost {
            access: self.access + rhs.access,
            adjustment: self.adjustment + rhs.adjustment,
        }
    }
}

impl AddAssign for ServeCost {
    fn add_assign(&mut self, rhs: ServeCost) {
        *self = *self + rhs;
    }
}

impl Sum for ServeCost {
    fn sum<I: Iterator<Item = ServeCost>>(iter: I) -> ServeCost {
        iter.fold(ServeCost::ZERO, Add::add)
    }
}

impl fmt::Display for ServeCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "access={} adjustment={} total={}",
            self.access,
            self.adjustment,
            self.total()
        )
    }
}

/// Running totals over a request sequence.
///
/// # Examples
///
/// ```
/// use satn_tree::{CostSummary, ServeCost};
///
/// let mut summary = CostSummary::new();
/// summary.record(ServeCost::new(3, 5));
/// summary.record(ServeCost::new(1, 0));
/// assert_eq!(summary.requests(), 2);
/// assert_eq!(summary.total().total(), 9);
/// assert!((summary.mean_total() - 4.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CostSummary {
    total: ServeCost,
    requests: u64,
    max_access: u64,
    max_total: u64,
}

impl CostSummary {
    /// Creates an empty summary.
    pub const fn new() -> Self {
        CostSummary {
            total: ServeCost::ZERO,
            requests: 0,
            max_access: 0,
            max_total: 0,
        }
    }

    /// Records the cost of one served request.
    pub fn record(&mut self, cost: ServeCost) {
        self.total += cost;
        self.requests += 1;
        self.max_access = self.max_access.max(cost.access);
        self.max_total = self.max_total.max(cost.total());
    }

    /// Number of requests recorded so far.
    #[inline]
    pub const fn requests(&self) -> u64 {
        self.requests
    }

    /// Accumulated cost over all recorded requests.
    #[inline]
    pub const fn total(&self) -> ServeCost {
        self.total
    }

    /// Largest access cost of a single request.
    #[inline]
    pub const fn max_access(&self) -> u64 {
        self.max_access
    }

    /// Largest total cost of a single request.
    #[inline]
    pub const fn max_total(&self) -> u64 {
        self.max_total
    }

    /// Mean access cost per request (0.0 when empty).
    pub fn mean_access(&self) -> f64 {
        self.ratio(self.total.access)
    }

    /// Mean adjustment cost per request (0.0 when empty).
    pub fn mean_adjustment(&self) -> f64 {
        self.ratio(self.total.adjustment)
    }

    /// Mean total cost per request (0.0 when empty).
    pub fn mean_total(&self) -> f64 {
        self.ratio(self.total.total())
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &CostSummary) {
        self.total += other.total;
        self.requests += other.requests;
        self.max_access = self.max_access.max(other.max_access);
        self.max_total = self.max_total.max(other.max_total);
    }

    fn ratio(&self, value: u64) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            value as f64 / self.requests as f64
        }
    }
}

impl fmt::Display for CostSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} requests, mean access {:.3}, mean adjustment {:.3}, mean total {:.3}",
            self.requests,
            self.mean_access(),
            self.mean_adjustment(),
            self.mean_total()
        )
    }
}

impl FromIterator<ServeCost> for CostSummary {
    fn from_iter<I: IntoIterator<Item = ServeCost>>(iter: I) -> Self {
        let mut summary = CostSummary::new();
        for cost in iter {
            summary.record(cost);
        }
        summary
    }
}

impl Extend<ServeCost> for CostSummary {
    fn extend<I: IntoIterator<Item = ServeCost>>(&mut self, iter: I) {
        for cost in iter {
            self.record(cost);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_cost_arithmetic() {
        let a = ServeCost::new(3, 4);
        let b = ServeCost::new(1, 2);
        assert_eq!((a + b), ServeCost::new(4, 6));
        assert_eq!(a.total(), 7);
        let mut c = a;
        c += b;
        assert_eq!(c, ServeCost::new(4, 6));
        let sum: ServeCost = [a, b, ServeCost::ZERO].into_iter().sum();
        assert_eq!(sum, ServeCost::new(4, 6));
    }

    #[test]
    fn summary_statistics() {
        let mut s = CostSummary::new();
        assert_eq!(s.mean_total(), 0.0);
        s.record(ServeCost::new(2, 6));
        s.record(ServeCost::new(4, 0));
        s.record(ServeCost::new(10, 2));
        assert_eq!(s.requests(), 3);
        assert_eq!(s.total(), ServeCost::new(16, 8));
        assert_eq!(s.max_access(), 10);
        assert_eq!(s.max_total(), 12);
        assert!((s.mean_access() - 16.0 / 3.0).abs() < 1e-12);
        assert!((s.mean_adjustment() - 8.0 / 3.0).abs() < 1e-12);
        assert!((s.mean_total() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn summary_merge_equals_sequential_recording() {
        let costs = [
            ServeCost::new(1, 1),
            ServeCost::new(5, 0),
            ServeCost::new(3, 9),
            ServeCost::new(2, 2),
        ];
        let mut all = CostSummary::new();
        costs.iter().for_each(|&c| all.record(c));

        let mut left: CostSummary = costs[..2].iter().copied().collect();
        let right: CostSummary = costs[2..].iter().copied().collect();
        left.merge(&right);
        assert_eq!(left, all);
    }

    #[test]
    fn summary_extend_and_collect() {
        let mut s = CostSummary::new();
        s.extend([ServeCost::new(1, 0), ServeCost::new(2, 1)]);
        assert_eq!(s.requests(), 2);
        assert_eq!(s.total().total(), 4);
    }

    #[test]
    fn display_output_mentions_means() {
        let mut s = CostSummary::new();
        s.record(ServeCost::new(2, 2));
        let text = s.to_string();
        assert!(text.contains("1 requests"));
        assert!(text.contains("mean total"));
        assert_eq!(
            ServeCost::new(1, 2).to_string(),
            "access=1 adjustment=2 total=3"
        );
    }
}
