//! The bijective mapping between elements and tree nodes.

use crate::error::TreeError;
use crate::node::{ElementId, NodeId};
use crate::topology::CompleteTree;

/// The current assignment of elements to nodes: a bijection `nd : E → T`
/// together with its inverse `el : T → E` (Section 2 of the paper).
///
/// A swap exchanges the elements stored at a parent/child pair of nodes and is
/// the only mutation the model allows.
///
/// # Examples
///
/// ```
/// use satn_tree::{CompleteTree, ElementId, NodeId, Occupancy};
///
/// let tree = CompleteTree::with_levels(3)?;
/// let mut occ = Occupancy::identity(tree);
/// assert_eq!(occ.element_at(NodeId::ROOT), ElementId::new(0));
/// occ.swap_nodes(NodeId::ROOT, NodeId::new(1))?;
/// assert_eq!(occ.element_at(NodeId::ROOT), ElementId::new(1));
/// assert_eq!(occ.node_of(ElementId::new(0)), NodeId::new(1));
/// # Ok::<(), satn_tree::TreeError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Occupancy {
    tree: CompleteTree,
    /// Element stored at each node, indexed by node id.
    element_of: Vec<ElementId>,
    /// Node holding each element, indexed by element id.
    node_of: Vec<NodeId>,
}

impl Occupancy {
    /// Creates the identity occupancy: element `i` is stored at node `i`.
    pub fn identity(tree: CompleteTree) -> Self {
        let n = tree.num_nodes();
        Occupancy {
            tree,
            element_of: (0..n).map(ElementId::new).collect(),
            node_of: (0..n).map(NodeId::new).collect(),
        }
    }

    /// Creates an occupancy from an explicit placement: `placement[v]` is the
    /// element stored at node `v` (in heap order).
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::NotABijection`] if the placement does not contain
    /// every element exactly once, or if its length differs from the number of
    /// tree nodes.
    pub fn from_placement(
        tree: CompleteTree,
        placement: Vec<ElementId>,
    ) -> Result<Self, TreeError> {
        let n = tree.num_nodes() as usize;
        if placement.len() != n {
            return Err(TreeError::NotABijection {
                detail: format!(
                    "placement has {} entries, tree has {} nodes",
                    placement.len(),
                    n
                ),
            });
        }
        let mut node_of = vec![NodeId::new(u32::MAX); n];
        let mut seen = vec![false; n];
        for (node_index, &element) in placement.iter().enumerate() {
            let e = element.usize();
            if e >= n {
                return Err(TreeError::NotABijection {
                    detail: format!("element {element} is out of range for {n} elements"),
                });
            }
            if seen[e] {
                return Err(TreeError::NotABijection {
                    detail: format!("element {element} appears more than once"),
                });
            }
            seen[e] = true;
            node_of[e] = NodeId::new(node_index as u32);
        }
        Ok(Occupancy {
            tree,
            element_of: placement,
            node_of,
        })
    }

    /// Returns the tree topology this occupancy lives on.
    #[inline]
    pub fn tree(&self) -> CompleteTree {
        self.tree
    }

    /// Returns the number of elements (equal to the number of nodes).
    #[inline]
    pub fn num_elements(&self) -> u32 {
        self.tree.num_nodes()
    }

    /// Returns the element currently stored at `node` (the paper's `el(v)`).
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to the tree.
    #[inline]
    pub fn element_at(&self, node: NodeId) -> ElementId {
        self.element_of[node.usize()]
    }

    /// Returns the node currently holding `element` (the paper's `nd(e)`).
    ///
    /// # Panics
    ///
    /// Panics if `element` is out of range.
    #[inline]
    pub fn node_of(&self, element: ElementId) -> NodeId {
        self.node_of[element.usize()]
    }

    /// Returns the level of the node currently holding `element`
    /// (the paper's `ℓ(e)`).
    #[inline]
    pub fn level_of(&self, element: ElementId) -> u32 {
        self.node_of(element).level()
    }

    /// Returns the access cost of `element` in the current configuration,
    /// `ℓ(e) + 1`.
    #[inline]
    pub fn access_cost(&self, element: ElementId) -> u64 {
        self.level_of(element) as u64 + 1
    }

    /// Checks that an element id is valid for this occupancy.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::ElementOutOfRange`] if it is not.
    pub fn check_element(&self, element: ElementId) -> Result<(), TreeError> {
        if element.usize() < self.node_of.len() {
            Ok(())
        } else {
            Err(TreeError::ElementOutOfRange {
                element,
                num_elements: self.num_elements(),
            })
        }
    }

    /// Swaps the elements stored at two adjacent (parent/child) nodes.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::NodeOutOfRange`] if either node does not exist and
    /// [`TreeError::NotAdjacent`] if the nodes are not parent and child.
    pub fn swap_nodes(&mut self, a: NodeId, b: NodeId) -> Result<(), TreeError> {
        self.tree.check_node(a)?;
        self.tree.check_node(b)?;
        if !a.is_adjacent_to(b) {
            return Err(TreeError::NotAdjacent {
                first: a,
                second: b,
            });
        }
        self.swap_unchecked(a, b);
        Ok(())
    }

    /// Swaps the elements stored at two nodes without adjacency checks.
    ///
    /// This is used by the offline optimum proxies, which the model allows to
    /// perform arbitrary reorganisation; online algorithms go through
    /// [`crate::MarkedRound`] instead.
    #[inline]
    pub fn swap_unchecked(&mut self, a: NodeId, b: NodeId) {
        let ea = self.element_of[a.usize()];
        let eb = self.element_of[b.usize()];
        self.element_of[a.usize()] = eb;
        self.element_of[b.usize()] = ea;
        self.node_of[ea.usize()] = b;
        self.node_of[eb.usize()] = a;
        debug_assert!(self.is_consistent());
    }

    /// Swaps two elements (which must occupy adjacent nodes).
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`Occupancy::swap_nodes`].
    pub fn swap_elements(&mut self, a: ElementId, b: ElementId) -> Result<(), TreeError> {
        self.check_element(a)?;
        self.check_element(b)?;
        let (na, nb) = (self.node_of(a), self.node_of(b));
        self.swap_nodes(na, nb)
    }

    /// Iterates over `(node, element)` pairs in heap order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (NodeId, ElementId)> + '_ {
        self.element_of
            .iter()
            .enumerate()
            .map(|(i, &e)| (NodeId::new(i as u32), e))
    }

    /// Returns the elements in heap (BFS) order, i.e. `el` as a slice.
    #[inline]
    pub fn elements_in_heap_order(&self) -> &[ElementId] {
        &self.element_of
    }

    /// Returns the node of every element, i.e. `nd` as a slice indexed by
    /// element id.
    #[inline]
    pub fn nodes_by_element(&self) -> &[NodeId] {
        &self.node_of
    }

    /// Verifies that the two internal maps are inverse bijections.
    pub fn is_consistent(&self) -> bool {
        self.element_of.len() == self.node_of.len()
            && self
                .iter()
                .all(|(node, element)| self.node_of[element.usize()] == node)
    }

    /// Total access cost of the current configuration under a request
    /// distribution given as per-element weights: `Σ w(e) · (ℓ(e) + 1)`.
    ///
    /// Weights may be frequencies or probabilities; the result is in the same
    /// unit.
    pub fn expected_access_cost(&self, weights: &[f64]) -> f64 {
        weights
            .iter()
            .enumerate()
            .map(|(e, w)| w * (self.level_of(ElementId::new(e as u32)) as f64 + 1.0))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(levels: u32) -> CompleteTree {
        CompleteTree::with_levels(levels).unwrap()
    }

    #[test]
    fn identity_maps_each_element_to_its_node() {
        let occ = Occupancy::identity(tree(4));
        for (node, element) in occ.iter() {
            assert_eq!(node.index(), element.index());
        }
        assert!(occ.is_consistent());
        assert_eq!(occ.num_elements(), 15);
    }

    #[test]
    fn from_placement_accepts_permutations() {
        let t = tree(3);
        let placement: Vec<ElementId> = [6, 5, 4, 3, 2, 1, 0]
            .iter()
            .map(|&i| ElementId::new(i))
            .collect();
        let occ = Occupancy::from_placement(t, placement).unwrap();
        assert_eq!(occ.element_at(NodeId::ROOT), ElementId::new(6));
        assert_eq!(occ.node_of(ElementId::new(6)), NodeId::ROOT);
        assert_eq!(occ.node_of(ElementId::new(0)), NodeId::new(6));
        assert!(occ.is_consistent());
    }

    #[test]
    fn from_placement_rejects_wrong_length() {
        let t = tree(3);
        let err = Occupancy::from_placement(t, vec![ElementId::new(0); 6]).unwrap_err();
        assert!(matches!(err, TreeError::NotABijection { .. }));
    }

    #[test]
    fn from_placement_rejects_duplicates_and_out_of_range() {
        let t = tree(2);
        let dup = vec![ElementId::new(0), ElementId::new(0), ElementId::new(1)];
        assert!(matches!(
            Occupancy::from_placement(t, dup).unwrap_err(),
            TreeError::NotABijection { .. }
        ));
        let oob = vec![ElementId::new(0), ElementId::new(1), ElementId::new(7)];
        assert!(matches!(
            Occupancy::from_placement(t, oob).unwrap_err(),
            TreeError::NotABijection { .. }
        ));
    }

    #[test]
    fn swap_nodes_updates_both_maps() {
        let mut occ = Occupancy::identity(tree(3));
        occ.swap_nodes(NodeId::new(1), NodeId::new(4)).unwrap();
        assert_eq!(occ.element_at(NodeId::new(1)), ElementId::new(4));
        assert_eq!(occ.element_at(NodeId::new(4)), ElementId::new(1));
        assert_eq!(occ.node_of(ElementId::new(4)), NodeId::new(1));
        assert_eq!(occ.node_of(ElementId::new(1)), NodeId::new(4));
        assert!(occ.is_consistent());
    }

    #[test]
    fn swap_nodes_rejects_non_adjacent_and_missing() {
        let mut occ = Occupancy::identity(tree(3));
        assert!(matches!(
            occ.swap_nodes(NodeId::new(1), NodeId::new(2)).unwrap_err(),
            TreeError::NotAdjacent { .. }
        ));
        assert!(matches!(
            occ.swap_nodes(NodeId::new(1), NodeId::new(99)).unwrap_err(),
            TreeError::NodeOutOfRange { .. }
        ));
    }

    #[test]
    fn swap_elements_uses_their_current_nodes() {
        let mut occ = Occupancy::identity(tree(3));
        occ.swap_elements(ElementId::new(0), ElementId::new(2))
            .unwrap();
        assert_eq!(occ.element_at(NodeId::ROOT), ElementId::new(2));
        // Elements 0 and 2 now occupy each other's old nodes; 0 and 1 are no
        // longer adjacent? node 2 and node 1 are both children of the root, so
        // swapping elements 0 (now at node 2) and 1 (at node 1) must fail.
        assert!(occ
            .swap_elements(ElementId::new(0), ElementId::new(1))
            .is_err());
    }

    #[test]
    fn access_cost_is_level_plus_one() {
        let occ = Occupancy::identity(tree(4));
        assert_eq!(occ.access_cost(ElementId::new(0)), 1);
        assert_eq!(occ.access_cost(ElementId::new(2)), 2);
        assert_eq!(occ.access_cost(ElementId::new(14)), 4);
        assert_eq!(occ.level_of(ElementId::new(7)), 3);
    }

    #[test]
    fn expected_access_cost_weighted() {
        let occ = Occupancy::identity(tree(2));
        // levels: node0=0, node1=1, node2=1 -> costs 1,2,2
        let cost = occ.expected_access_cost(&[0.5, 0.25, 0.25]);
        assert!((cost - (0.5 + 0.5 + 0.5)).abs() < 1e-12);
    }

    #[test]
    fn check_element_bounds() {
        let occ = Occupancy::identity(tree(2));
        assert!(occ.check_element(ElementId::new(2)).is_ok());
        assert!(occ.check_element(ElementId::new(3)).is_err());
    }
}
