//! The bijective mapping between elements and tree nodes.

use crate::error::TreeError;
use crate::layout::{LayoutKind, TreeLayout};
use crate::node::{ElementId, NodeId};
use crate::topology::CompleteTree;

/// Sentinel stored in padding slots of non-identity layouts; never observable
/// through the public API.
const PAD: ElementId = ElementId::new(u32::MAX);

/// The current assignment of elements to nodes: a bijection `nd : E → T`
/// together with its inverse `el : T → E` (Section 2 of the paper).
///
/// A swap exchanges the elements stored at a parent/child pair of nodes and is
/// the only mutation the model allows.
///
/// Storage is keyed by *physical slots* behind a [`TreeLayout`]: the public
/// API speaks logical [`NodeId`]s exclusively, and two occupancies with the
/// same logical placement compare equal regardless of layout — the layout is
/// a pure storage permutation with no observable effect on costs or
/// fingerprints.
///
/// # Examples
///
/// ```
/// use satn_tree::{CompleteTree, ElementId, NodeId, Occupancy};
///
/// let tree = CompleteTree::with_levels(3)?;
/// let mut occ = Occupancy::identity(tree);
/// assert_eq!(occ.element_at(NodeId::ROOT), ElementId::new(0));
/// occ.swap_nodes(NodeId::ROOT, NodeId::new(1))?;
/// assert_eq!(occ.element_at(NodeId::ROOT), ElementId::new(1));
/// assert_eq!(occ.node_of(ElementId::new(0)), NodeId::new(1));
/// # Ok::<(), satn_tree::TreeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Occupancy {
    tree: CompleteTree,
    layout: TreeLayout,
    /// Element stored at each node, indexed by *physical slot*; padding slots
    /// hold [`PAD`].
    element_of: Vec<ElementId>,
    /// Logical heap index of the node holding each element, indexed by
    /// element id. Kept logical (not a slot) so `nd(e)` lookups never pay
    /// the layout's inverse mapping on the hot path.
    node_of: Vec<u32>,
}

impl Occupancy {
    /// Creates the identity occupancy: element `i` is stored at node `i`.
    pub fn identity(tree: CompleteTree) -> Self {
        Self::identity_with_layout(tree, LayoutKind::default())
    }

    /// Creates the identity occupancy stored under the given layout.
    pub fn identity_with_layout(tree: CompleteTree, kind: LayoutKind) -> Self {
        let layout = TreeLayout::new(tree, kind);
        let mut element_of = vec![PAD; layout.physical_len()];
        let mut node_of = vec![0u32; tree.num_nodes() as usize];
        for node in tree.nodes() {
            let slot = layout.slot_of(node);
            element_of[slot] = ElementId::new(node.index());
            node_of[node.usize()] = node.index();
        }
        Occupancy {
            tree,
            layout,
            element_of,
            node_of,
        }
    }

    /// Creates an occupancy from an explicit placement: `placement[v]` is the
    /// element stored at node `v` (in heap order).
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::NotABijection`] if the placement does not contain
    /// every element exactly once, or if its length differs from the number of
    /// tree nodes.
    pub fn from_placement(
        tree: CompleteTree,
        placement: Vec<ElementId>,
    ) -> Result<Self, TreeError> {
        Self::from_placement_with_layout(tree, placement, LayoutKind::default())
    }

    /// Creates an occupancy from a heap-order placement, stored under the
    /// given layout.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::NotABijection`] under the same conditions as
    /// [`Occupancy::from_placement`].
    pub fn from_placement_with_layout(
        tree: CompleteTree,
        placement: Vec<ElementId>,
        kind: LayoutKind,
    ) -> Result<Self, TreeError> {
        let n = tree.num_nodes() as usize;
        if placement.len() != n {
            return Err(TreeError::NotABijection {
                detail: format!(
                    "placement has {} entries, tree has {} nodes",
                    placement.len(),
                    n
                ),
            });
        }
        let layout = TreeLayout::new(tree, kind);
        let mut element_of = vec![PAD; layout.physical_len()];
        let mut node_of = vec![u32::MAX; n];
        let mut seen = vec![false; n];
        for (node_index, &element) in placement.iter().enumerate() {
            let e = element.usize();
            if e >= n {
                return Err(TreeError::NotABijection {
                    detail: format!("element {element} is out of range for {n} elements"),
                });
            }
            if seen[e] {
                return Err(TreeError::NotABijection {
                    detail: format!("element {element} appears more than once"),
                });
            }
            seen[e] = true;
            let slot = layout.slot_of(NodeId::new(node_index as u32));
            element_of[slot] = element;
            node_of[e] = node_index as u32;
        }
        Ok(Occupancy {
            tree,
            layout,
            element_of,
            node_of,
        })
    }

    /// Returns this occupancy re-stored under `kind`, preserving the logical
    /// placement exactly. A no-op (returns `self`) when the layout already
    /// matches.
    pub fn with_layout(self, kind: LayoutKind) -> Self {
        if self.layout.kind() == kind {
            return self;
        }
        Occupancy::from_placement_with_layout(self.tree, self.placement_in_heap_order(), kind)
            .expect("an existing occupancy is a bijection")
    }

    /// Returns the tree topology this occupancy lives on.
    #[inline]
    pub fn tree(&self) -> CompleteTree {
        self.tree
    }

    /// Returns the physical storage layout.
    #[inline]
    pub fn layout(&self) -> &TreeLayout {
        &self.layout
    }

    /// Returns the layout kind this occupancy is stored under.
    #[inline]
    pub fn layout_kind(&self) -> LayoutKind {
        self.layout.kind()
    }

    /// Returns the number of elements (equal to the number of nodes).
    #[inline]
    pub fn num_elements(&self) -> u32 {
        self.tree.num_nodes()
    }

    /// Returns the element currently stored at `node` (the paper's `el(v)`).
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to the tree.
    #[inline]
    pub fn element_at(&self, node: NodeId) -> ElementId {
        self.element_of[self.layout.slot_of(node)]
    }

    /// Returns the node currently holding `element` (the paper's `nd(e)`).
    ///
    /// # Panics
    ///
    /// Panics if `element` is out of range.
    #[inline]
    pub fn node_of(&self, element: ElementId) -> NodeId {
        NodeId::new(self.node_of[element.usize()])
    }

    /// Returns the level of the node currently holding `element`
    /// (the paper's `ℓ(e)`).
    #[inline]
    pub fn level_of(&self, element: ElementId) -> u32 {
        self.node_of(element).level()
    }

    /// Returns the access cost of `element` in the current configuration,
    /// `ℓ(e) + 1`.
    #[inline]
    pub fn access_cost(&self, element: ElementId) -> u64 {
        self.level_of(element) as u64 + 1
    }

    /// Touches the cache lines a future access to `element` will read: its
    /// `nd(e)` entry and the occupancy slab along its root path.
    ///
    /// Batch serve loops call this for request `i + 1` while serving request
    /// `i`, overlapping the next walk's memory latency with the current
    /// one's compute. Out-of-range elements are ignored (the serve itself
    /// reports the error).
    #[inline]
    pub fn touch_path(&self, element: ElementId) {
        let Some(&index) = self.node_of.get(element.usize()) else {
            return;
        };
        let node = NodeId::new(index);
        let mut acc = 0u32;
        for ancestor in node.ancestors() {
            acc ^= self.element_of[self.layout.slot_of(ancestor)].index();
        }
        std::hint::black_box(acc);
    }

    /// Checks that an element id is valid for this occupancy.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::ElementOutOfRange`] if it is not.
    pub fn check_element(&self, element: ElementId) -> Result<(), TreeError> {
        if element.usize() < self.node_of.len() {
            Ok(())
        } else {
            Err(TreeError::ElementOutOfRange {
                element,
                num_elements: self.num_elements(),
            })
        }
    }

    /// Swaps the elements stored at two adjacent (parent/child) nodes.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::NodeOutOfRange`] if either node does not exist and
    /// [`TreeError::NotAdjacent`] if the nodes are not parent and child.
    pub fn swap_nodes(&mut self, a: NodeId, b: NodeId) -> Result<(), TreeError> {
        self.tree.check_node(a)?;
        self.tree.check_node(b)?;
        if !a.is_adjacent_to(b) {
            return Err(TreeError::NotAdjacent {
                first: a,
                second: b,
            });
        }
        self.swap_unchecked(a, b);
        Ok(())
    }

    /// Swaps the elements stored at two nodes without adjacency checks.
    ///
    /// This is used by the offline optimum proxies, which the model allows to
    /// perform arbitrary reorganisation; online algorithms go through
    /// [`crate::MarkedRound`] instead.
    #[inline]
    pub fn swap_unchecked(&mut self, a: NodeId, b: NodeId) {
        let sa = self.layout.slot_of(a);
        let sb = self.layout.slot_of(b);
        let ea = self.element_of[sa];
        let eb = self.element_of[sb];
        self.element_of[sa] = eb;
        self.element_of[sb] = ea;
        self.node_of[ea.usize()] = b.index();
        self.node_of[eb.usize()] = a.index();
        debug_assert!(self.is_consistent());
    }

    /// Swaps two elements (which must occupy adjacent nodes).
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`Occupancy::swap_nodes`].
    pub fn swap_elements(&mut self, a: ElementId, b: ElementId) -> Result<(), TreeError> {
        self.check_element(a)?;
        self.check_element(b)?;
        let (na, nb) = (self.node_of(a), self.node_of(b));
        self.swap_nodes(na, nb)
    }

    /// Iterates over `(node, element)` pairs in logical heap order,
    /// regardless of the storage layout.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (NodeId, ElementId)> + '_ {
        self.tree.nodes().map(|node| (node, self.element_at(node)))
    }

    /// Returns the elements in logical heap (BFS) order, i.e. `el` as a
    /// vector. This is the canonical, layout-independent serialisation of
    /// the placement — fingerprints and snapshots are built from it.
    pub fn placement_in_heap_order(&self) -> Vec<ElementId> {
        self.tree
            .nodes()
            .map(|node| self.element_at(node))
            .collect()
    }

    /// Verifies that the two internal maps are inverse bijections and that
    /// padding slots are untouched.
    ///
    /// Allocation-free on purpose: `swap_unchecked` runs this under
    /// `debug_assert!` on every swap, and the test profile keeps debug
    /// assertions on — the serve hot path's zero-allocation guarantee is
    /// asserted by a counting-allocator test that would trip on any heap
    /// traffic here. Slot coverage is checked by counting instead of a
    /// bitmap: every node's slot must hold a valid element (never the `PAD`
    /// sentinel), so if exactly `physical_len - n` slots hold `PAD`, the
    /// node slots are pairwise distinct and cover everything else.
    pub fn is_consistent(&self) -> bool {
        let n = self.tree.num_nodes() as usize;
        if self.node_of.len() != n || self.element_of.len() != self.layout.physical_len() {
            return false;
        }
        let pad_slots = self.element_of.iter().filter(|&&e| e == PAD).count();
        if pad_slots != self.element_of.len() - n {
            return false;
        }
        for node in self.tree.nodes() {
            let slot = self.layout.slot_of(node);
            let element = self.element_of[slot];
            if element.usize() >= n || self.node_of[element.usize()] != node.index() {
                return false;
            }
        }
        true
    }

    /// Total access cost of the current configuration under a request
    /// distribution given as per-element weights: `Σ w(e) · (ℓ(e) + 1)`.
    ///
    /// Weights may be frequencies or probabilities; the result is in the same
    /// unit.
    pub fn expected_access_cost(&self, weights: &[f64]) -> f64 {
        weights
            .iter()
            .enumerate()
            .map(|(e, w)| w * (self.level_of(ElementId::new(e as u32)) as f64 + 1.0))
            .sum()
    }

    /// Grants [`crate::TreeSnapshot`] access to the raw slabs (slot-keyed
    /// `el`, logically-keyed `nd`) for an allocation-cheap capture.
    #[inline]
    pub(crate) fn raw_parts(&self) -> (&TreeLayout, &[ElementId], &[u32]) {
        (&self.layout, &self.element_of, &self.node_of)
    }
}

/// Layout-agnostic equality: two occupancies are equal when they place the
/// same elements on the same logical nodes, however they are stored.
impl PartialEq for Occupancy {
    fn eq(&self, other: &Self) -> bool {
        if self.tree != other.tree {
            return false;
        }
        if self.layout == other.layout {
            return self.element_of == other.element_of;
        }
        self.tree
            .nodes()
            .all(|node| self.element_at(node) == other.element_at(node))
    }
}

impl Eq for Occupancy {}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(levels: u32) -> CompleteTree {
        CompleteTree::with_levels(levels).unwrap()
    }

    #[test]
    fn identity_maps_each_element_to_its_node() {
        let occ = Occupancy::identity(tree(4));
        for (node, element) in occ.iter() {
            assert_eq!(node.index(), element.index());
        }
        assert!(occ.is_consistent());
        assert_eq!(occ.num_elements(), 15);
    }

    #[test]
    fn from_placement_accepts_permutations() {
        let t = tree(3);
        let placement: Vec<ElementId> = [6, 5, 4, 3, 2, 1, 0]
            .iter()
            .map(|&i| ElementId::new(i))
            .collect();
        let occ = Occupancy::from_placement(t, placement).unwrap();
        assert_eq!(occ.element_at(NodeId::ROOT), ElementId::new(6));
        assert_eq!(occ.node_of(ElementId::new(6)), NodeId::ROOT);
        assert_eq!(occ.node_of(ElementId::new(0)), NodeId::new(6));
        assert!(occ.is_consistent());
    }

    #[test]
    fn from_placement_rejects_wrong_length() {
        let t = tree(3);
        let err = Occupancy::from_placement(t, vec![ElementId::new(0); 6]).unwrap_err();
        assert!(matches!(err, TreeError::NotABijection { .. }));
    }

    #[test]
    fn from_placement_rejects_duplicates_and_out_of_range() {
        let t = tree(2);
        let dup = vec![ElementId::new(0), ElementId::new(0), ElementId::new(1)];
        assert!(matches!(
            Occupancy::from_placement(t, dup).unwrap_err(),
            TreeError::NotABijection { .. }
        ));
        let oob = vec![ElementId::new(0), ElementId::new(1), ElementId::new(7)];
        assert!(matches!(
            Occupancy::from_placement(t, oob).unwrap_err(),
            TreeError::NotABijection { .. }
        ));
    }

    #[test]
    fn swap_nodes_updates_both_maps() {
        let mut occ = Occupancy::identity(tree(3));
        occ.swap_nodes(NodeId::new(1), NodeId::new(4)).unwrap();
        assert_eq!(occ.element_at(NodeId::new(1)), ElementId::new(4));
        assert_eq!(occ.element_at(NodeId::new(4)), ElementId::new(1));
        assert_eq!(occ.node_of(ElementId::new(4)), NodeId::new(1));
        assert_eq!(occ.node_of(ElementId::new(1)), NodeId::new(4));
        assert!(occ.is_consistent());
    }

    #[test]
    fn swap_nodes_rejects_non_adjacent_and_missing() {
        let mut occ = Occupancy::identity(tree(3));
        assert!(matches!(
            occ.swap_nodes(NodeId::new(1), NodeId::new(2)).unwrap_err(),
            TreeError::NotAdjacent { .. }
        ));
        assert!(matches!(
            occ.swap_nodes(NodeId::new(1), NodeId::new(99)).unwrap_err(),
            TreeError::NodeOutOfRange { .. }
        ));
    }

    #[test]
    fn swap_elements_uses_their_current_nodes() {
        let mut occ = Occupancy::identity(tree(3));
        occ.swap_elements(ElementId::new(0), ElementId::new(2))
            .unwrap();
        assert_eq!(occ.element_at(NodeId::ROOT), ElementId::new(2));
        // Elements 0 and 2 now occupy each other's old nodes; 0 and 1 are no
        // longer adjacent? node 2 and node 1 are both children of the root, so
        // swapping elements 0 (now at node 2) and 1 (at node 1) must fail.
        assert!(occ
            .swap_elements(ElementId::new(0), ElementId::new(1))
            .is_err());
    }

    #[test]
    fn access_cost_is_level_plus_one() {
        let occ = Occupancy::identity(tree(4));
        assert_eq!(occ.access_cost(ElementId::new(0)), 1);
        assert_eq!(occ.access_cost(ElementId::new(2)), 2);
        assert_eq!(occ.access_cost(ElementId::new(14)), 4);
        assert_eq!(occ.level_of(ElementId::new(7)), 3);
    }

    #[test]
    fn expected_access_cost_weighted() {
        let occ = Occupancy::identity(tree(2));
        // levels: node0=0, node1=1, node2=1 -> costs 1,2,2
        let cost = occ.expected_access_cost(&[0.5, 0.25, 0.25]);
        assert!((cost - (0.5 + 0.5 + 0.5)).abs() < 1e-12);
    }

    #[test]
    fn check_element_bounds() {
        let occ = Occupancy::identity(tree(2));
        assert!(occ.check_element(ElementId::new(2)).is_ok());
        assert!(occ.check_element(ElementId::new(3)).is_err());
    }

    #[test]
    fn blocked_layout_matches_heap_behaviour() {
        let t = tree(6);
        let heap = Occupancy::identity(t);
        let blocked = Occupancy::identity_with_layout(t, LayoutKind::Blocked);
        assert!(blocked.is_consistent());
        assert_eq!(heap, blocked, "equality is layout-agnostic");
        for node in t.nodes() {
            assert_eq!(heap.element_at(node), blocked.element_at(node));
        }
        for e in 0..t.num_nodes() {
            let e = ElementId::new(e);
            assert_eq!(heap.node_of(e), blocked.node_of(e));
            assert_eq!(heap.access_cost(e), blocked.access_cost(e));
        }
        assert_eq!(
            heap.placement_in_heap_order(),
            blocked.placement_in_heap_order()
        );
    }

    #[test]
    fn blocked_layout_tracks_swaps_like_heap() {
        let t = tree(5);
        let mut heap = Occupancy::identity(t);
        let mut blocked = Occupancy::identity_with_layout(t, LayoutKind::Blocked);
        // A deterministic pseudo-random swap walk over parent/child pairs.
        let mut x = 0x9e3779b9u32;
        for _ in 0..500 {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            let child = NodeId::new(1 + x % (t.num_nodes() - 1));
            let parent = child.parent().unwrap();
            heap.swap_unchecked(parent, child);
            blocked.swap_unchecked(parent, child);
        }
        assert!(blocked.is_consistent());
        assert_eq!(heap, blocked);
    }

    #[test]
    fn with_layout_round_trips_the_placement() {
        let t = tree(6);
        let mut occ = Occupancy::identity(t);
        occ.swap_nodes(NodeId::ROOT, NodeId::new(2)).unwrap();
        let placement = occ.placement_in_heap_order();
        let blocked = occ.clone().with_layout(LayoutKind::Blocked);
        assert_eq!(blocked.layout_kind(), LayoutKind::Blocked);
        assert_eq!(blocked.placement_in_heap_order(), placement);
        let back = blocked.with_layout(LayoutKind::Heap);
        assert_eq!(back, occ);
    }

    #[test]
    fn touch_path_is_a_safe_no_op_observably() {
        let occ = Occupancy::identity_with_layout(tree(5), LayoutKind::Blocked);
        let before = occ.clone();
        occ.touch_path(ElementId::new(17));
        occ.touch_path(ElementId::new(9999)); // out of range: ignored
        assert_eq!(occ, before);
    }
}
