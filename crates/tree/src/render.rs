//! Human-readable renderings of trees and occupancies.
//!
//! Mostly a debugging and teaching aid: the quickstart example and the
//! experiment logs print small trees so that the effect of a push-down
//! operation (Figure 1 of the paper) can be inspected directly.

use crate::node::{ElementId, NodeId};
use crate::occupancy::Occupancy;
use std::fmt::Write as _;

/// Renders an occupancy level by level, one line per level, e.g.
/// `level 1 | e1 e2`.
///
/// Intended for small trees; the output of a level-`d` line contains `2^d`
/// entries.
pub fn render_levels(occupancy: &Occupancy) -> String {
    let tree = occupancy.tree();
    let mut output = String::new();
    for level in 0..tree.num_levels() {
        let _ = write!(output, "level {level} |");
        for node in tree.level_nodes(level) {
            let _ = write!(output, " e{}", occupancy.element_at(node).index());
        }
        output.push('\n');
    }
    output
}

/// Renders an occupancy as an indented tree, root first, children indented by
/// two spaces per level, marking the node that currently stores `highlight`
/// (if any) with an asterisk.
pub fn render_tree(occupancy: &Occupancy, highlight: Option<ElementId>) -> String {
    let mut output = String::new();
    render_subtree(occupancy, NodeId::ROOT, highlight, &mut output);
    output
}

fn render_subtree(
    occupancy: &Occupancy,
    node: NodeId,
    highlight: Option<ElementId>,
    output: &mut String,
) {
    let tree = occupancy.tree();
    if !tree.contains(node) {
        return;
    }
    let element = occupancy.element_at(node);
    let marker = if Some(element) == highlight { " *" } else { "" };
    let indent = "  ".repeat(node.level() as usize);
    let _ = writeln!(
        output,
        "{indent}n{} -> e{}{marker}",
        node.index(),
        element.index()
    );
    render_subtree(occupancy, node.left_child(), highlight, output);
    render_subtree(occupancy, node.right_child(), highlight, output);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::CompleteTree;

    #[test]
    fn level_rendering_lists_every_node_once() {
        let occ = Occupancy::identity(CompleteTree::with_levels(3).unwrap());
        let rendered = render_levels(&occ);
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "level 0 | e0");
        assert_eq!(lines[1], "level 1 | e1 e2");
        assert_eq!(lines[2], "level 2 | e3 e4 e5 e6");
    }

    #[test]
    fn tree_rendering_indents_by_level_and_highlights() {
        let occ = Occupancy::identity(CompleteTree::with_levels(3).unwrap());
        let rendered = render_tree(&occ, Some(ElementId::new(4)));
        assert!(rendered.contains("n0 -> e0"));
        assert!(rendered.contains("  n1 -> e1"));
        assert!(rendered.contains("    n4 -> e4 *"));
        // Exactly one highlight.
        assert_eq!(rendered.matches('*').count(), 1);
        // One line per node.
        assert_eq!(rendered.lines().count(), 7);
    }

    #[test]
    fn rendering_reflects_swaps() {
        let mut occ = Occupancy::identity(CompleteTree::with_levels(3).unwrap());
        occ.swap_nodes(NodeId::new(0), NodeId::new(1)).unwrap();
        let rendered = render_levels(&occ);
        assert!(rendered.starts_with("level 0 | e1"));
    }
}
