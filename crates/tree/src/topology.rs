//! The fixed topology of a complete binary tree.

use crate::error::TreeError;
use crate::node::NodeId;

/// The static shape of a complete binary tree with `2^depth_plus_one - 1`
/// nodes: every level from `0` to [`CompleteTree::max_level`] is full.
///
/// The topology never changes; algorithms only move elements between nodes.
///
/// # Examples
///
/// ```
/// use satn_tree::CompleteTree;
///
/// let tree = CompleteTree::with_levels(4)?;
/// assert_eq!(tree.num_nodes(), 15);
/// assert_eq!(tree.max_level(), 3);
/// assert_eq!(tree.leaves().count(), 8);
/// # Ok::<(), satn_tree::TreeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CompleteTree {
    /// Number of levels (the depth of the deepest level plus one).
    levels: u32,
    /// Total number of nodes, `2^levels - 1`.
    num_nodes: u32,
}

impl CompleteTree {
    /// Creates a complete tree with the given number of levels (≥ 1).
    ///
    /// A tree with `levels = L` has `2^L - 1` nodes and its deepest level is
    /// `L - 1`.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::InvalidSize`] if `levels` is zero or larger than
    /// 31 (the node index would not fit in `u32`).
    pub fn with_levels(levels: u32) -> Result<Self, TreeError> {
        if levels == 0 || levels > 31 {
            return Err(TreeError::InvalidSize {
                requested: levels as u64,
            });
        }
        Ok(CompleteTree {
            levels,
            num_nodes: (1u32 << levels) - 1,
        })
    }

    /// Creates a complete tree with exactly `num_nodes` nodes.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::InvalidSize`] unless `num_nodes` is of the form
    /// `2^L - 1` for some `1 ≤ L ≤ 31`.
    pub fn with_nodes(num_nodes: u64) -> Result<Self, TreeError> {
        let candidate = (num_nodes + 1).trailing_zeros();
        if num_nodes == 0 || num_nodes + 1 != (1u64 << candidate) || candidate > 31 {
            return Err(TreeError::InvalidSize {
                requested: num_nodes,
            });
        }
        Self::with_levels(candidate)
    }

    /// Returns the number of nodes in the tree.
    #[inline]
    pub const fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// Returns the number of levels (`max_level + 1`).
    #[inline]
    pub const fn num_levels(&self) -> u32 {
        self.levels
    }

    /// Returns the deepest level index (the root is level 0).
    #[inline]
    pub const fn max_level(&self) -> u32 {
        self.levels - 1
    }

    /// Returns `true` if the node id denotes a node of this tree.
    #[inline]
    pub const fn contains(&self, node: NodeId) -> bool {
        node.0 < self.num_nodes
    }

    /// Returns `true` if the node is a leaf of this tree.
    #[inline]
    pub fn is_leaf(&self, node: NodeId) -> bool {
        self.contains(node) && !self.contains(node.left_child())
    }

    /// Returns the number of nodes at the given level (`2^level`), or zero if
    /// the level does not exist.
    #[inline]
    pub const fn nodes_at_level(&self, level: u32) -> u32 {
        if level >= self.levels {
            0
        } else {
            1 << level
        }
    }

    /// Returns an iterator over all nodes in heap (BFS) order.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeId> + DoubleEndedIterator {
        (0..self.num_nodes).map(NodeId::new)
    }

    /// Returns an iterator over the nodes of one level, left to right.
    ///
    /// The iterator is empty if the level does not exist in this tree.
    pub fn level_nodes(
        &self,
        level: u32,
    ) -> impl ExactSizeIterator<Item = NodeId> + DoubleEndedIterator {
        let (start, end) = if level >= self.levels {
            (0, 0)
        } else {
            ((1u32 << level) - 1, (1u32 << (level + 1)) - 1)
        };
        (start..end).map(NodeId::new)
    }

    /// Returns an iterator over the leaves, left to right.
    pub fn leaves(&self) -> impl ExactSizeIterator<Item = NodeId> + DoubleEndedIterator {
        self.level_nodes(self.max_level())
    }

    /// Validates that a node belongs to the tree.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::NodeOutOfRange`] if the node does not exist.
    pub fn check_node(&self, node: NodeId) -> Result<(), TreeError> {
        if self.contains(node) {
            Ok(())
        } else {
            Err(TreeError::NodeOutOfRange {
                node,
                num_nodes: self.num_nodes,
            })
        }
    }

    /// The sum of `level(v) + 1` over all nodes — the total access cost of
    /// touching every node exactly once. Useful as a normalisation constant.
    pub fn total_depth_cost(&self) -> u64 {
        (0..self.levels).map(|d| (d as u64 + 1) * (1u64 << d)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_levels_counts_nodes() {
        for levels in 1..=16 {
            let t = CompleteTree::with_levels(levels).unwrap();
            assert_eq!(t.num_nodes(), (1u32 << levels) - 1);
            assert_eq!(t.max_level(), levels - 1);
            assert_eq!(t.num_levels(), levels);
        }
    }

    #[test]
    fn with_levels_rejects_bad_sizes() {
        assert!(CompleteTree::with_levels(0).is_err());
        assert!(CompleteTree::with_levels(32).is_err());
        assert!(CompleteTree::with_levels(31).is_ok());
    }

    #[test]
    fn with_nodes_accepts_only_complete_sizes() {
        assert!(CompleteTree::with_nodes(0).is_err());
        assert!(CompleteTree::with_nodes(2).is_err());
        assert!(CompleteTree::with_nodes(6).is_err());
        for levels in 1..=20u32 {
            let n = (1u64 << levels) - 1;
            let t = CompleteTree::with_nodes(n).unwrap();
            assert_eq!(t.num_nodes() as u64, n);
        }
        // The paper's evaluation sizes.
        for n in [255u64, 1023, 4095, 16383, 65535] {
            assert!(CompleteTree::with_nodes(n).is_ok(), "size {n}");
        }
    }

    #[test]
    fn contains_and_leaves() {
        let t = CompleteTree::with_levels(3).unwrap(); // 7 nodes
        assert!(t.contains(NodeId::new(6)));
        assert!(!t.contains(NodeId::new(7)));
        assert!(!t.is_leaf(NodeId::new(1)));
        assert!(t.is_leaf(NodeId::new(3)));
        assert_eq!(t.leaves().collect::<Vec<_>>().len(), 4);
        assert_eq!(
            t.leaves().collect::<Vec<_>>(),
            vec![
                NodeId::new(3),
                NodeId::new(4),
                NodeId::new(5),
                NodeId::new(6)
            ]
        );
    }

    #[test]
    fn level_iterators() {
        let t = CompleteTree::with_levels(4).unwrap();
        assert_eq!(t.level_nodes(0).collect::<Vec<_>>(), vec![NodeId::ROOT]);
        assert_eq!(t.level_nodes(2).count(), 4);
        assert_eq!(t.level_nodes(3).count(), 8);
        assert_eq!(t.level_nodes(4).count(), 0);
        assert_eq!(t.nodes_at_level(2), 4);
        assert_eq!(t.nodes_at_level(9), 0);
        assert_eq!(t.nodes().count() as u32, t.num_nodes());
        // Every node reported by level_nodes has the right level.
        for level in 0..t.num_levels() {
            for n in t.level_nodes(level) {
                assert_eq!(n.level(), level);
            }
        }
    }

    #[test]
    fn check_node_errors() {
        let t = CompleteTree::with_levels(2).unwrap();
        assert!(t.check_node(NodeId::new(2)).is_ok());
        let err = t.check_node(NodeId::new(3)).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn total_depth_cost_small() {
        let t = CompleteTree::with_levels(3).unwrap();
        // level 0: 1 node * 1, level 1: 2 * 2, level 2: 4 * 3 => 1 + 4 + 12
        assert_eq!(t.total_depth_cost(), 17);
    }
}
