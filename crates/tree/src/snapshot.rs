//! Saving and restoring occupancies — and immutable point-in-time views.
//!
//! Long experiments (and the interactive examples) occasionally need to
//! checkpoint the state of a tree and resume later, or to ship an interesting
//! configuration into a bug report or unit test. The snapshot format is a
//! deliberately simple text format: a header with the node count followed by
//! the element stored at each node in heap order.
//!
//! [`TreeSnapshot`] is the in-memory counterpart: a frozen copy of an
//! occupancy that answers lookups (`nd`, `el`, levels, access costs) without
//! ever mutating, built for concurrent read-mostly serving — writers keep
//! adjusting a live [`Occupancy`] while readers share immutable snapshots of
//! earlier states.

use crate::layout::TreeLayout;
use crate::node::{ElementId, NodeId};
use crate::occupancy::Occupancy;
use crate::topology::CompleteTree;
use std::fmt;

/// An immutable point-in-time view of an [`Occupancy`]: the element↔node
/// bijection and the topology, frozen at capture time.
///
/// Snapshots exist so pure lookups can be served concurrently without
/// synchronizing with writers: a snapshot never changes after
/// [`TreeSnapshot::capture`], so any number of threads may share one (it is
/// `Send + Sync`) while the live tree keeps self-adjusting. Both directions
/// of the bijection are kept, so `nd(e)` and `el(v)` are single array reads.
///
/// [`TreeSnapshot::fingerprint`] renders the exact same text format as
/// [`occupancy_to_string`], which is what lets snapshot reads be checked
/// against the serial-replay determinism oracle byte for byte.
#[derive(Debug, Clone)]
pub struct TreeSnapshot {
    tree: CompleteTree,
    /// The physical layout the slabs below are keyed by — inherited from the
    /// captured occupancy, invisible in every answer the snapshot gives.
    layout: TreeLayout,
    /// Element stored at each node, indexed by physical slot.
    element_of: Box<[ElementId]>,
    /// Logical heap index of the node holding each element, indexed by
    /// element id — layout-independent, so `nd(e)` never pays the layout's
    /// inverse mapping.
    node_of: Box<[u32]>,
}

impl TreeSnapshot {
    /// Freezes the current state of an occupancy. The capture is two slab
    /// memcpys regardless of layout.
    pub fn capture(occupancy: &Occupancy) -> Self {
        let (layout, element_of, node_of) = occupancy.raw_parts();
        TreeSnapshot {
            tree: occupancy.tree(),
            layout: layout.clone(),
            element_of: element_of.into(),
            node_of: node_of.into(),
        }
    }

    /// The tree topology the snapshot was taken on.
    #[inline]
    pub fn tree(&self) -> CompleteTree {
        self.tree
    }

    /// Number of elements (equal to the number of nodes).
    #[inline]
    pub fn num_elements(&self) -> u32 {
        self.tree.num_nodes()
    }

    /// The node that held `element` at capture time, or `None` for an
    /// element outside this tree's universe (lookups come from the network,
    /// so out-of-range ids must not panic).
    #[inline]
    pub fn node_of(&self, element: ElementId) -> Option<NodeId> {
        self.node_of
            .get(element.usize())
            .map(|&index| NodeId::new(index))
    }

    /// The element that was stored at `node`, or `None` for a node outside
    /// the tree.
    #[inline]
    pub fn element_at(&self, node: NodeId) -> Option<ElementId> {
        if self.tree.contains(node) {
            Some(self.element_of[self.layout.slot_of(node)])
        } else {
            None
        }
    }

    /// The level `element` sat at, or `None` if out of range.
    #[inline]
    pub fn level_of(&self, element: ElementId) -> Option<u32> {
        self.node_of(element).map(NodeId::level)
    }

    /// The access cost `ℓ(e) + 1` the element would have paid at capture
    /// time, or `None` if out of range.
    #[inline]
    pub fn access_cost(&self, element: ElementId) -> Option<u64> {
        self.level_of(element).map(|level| level as u64 + 1)
    }

    /// The elements in logical heap (BFS) order — `el` rendered
    /// layout-independently, as fingerprints and golden files expect.
    pub fn placement_in_heap_order(&self) -> Vec<ElementId> {
        self.tree
            .nodes()
            .map(|node| self.element_of[self.layout.slot_of(node)])
            .collect()
    }

    /// Renders the snapshot in the replay-fingerprint text format —
    /// byte-identical to [`occupancy_to_string`] applied to the occupancy
    /// the snapshot was captured from, whatever layout either side uses.
    pub fn fingerprint(&self) -> String {
        placement_to_string(self.tree, &self.placement_in_heap_order())
    }

    /// Rebuilds a mutable [`Occupancy`] equal to the captured state, stored
    /// under the same layout the capture came from.
    pub fn to_occupancy(&self) -> Occupancy {
        Occupancy::from_placement_with_layout(
            self.tree,
            self.placement_in_heap_order(),
            self.layout.kind(),
        )
        .expect("a snapshot is a frozen bijection")
    }
}

/// Layout-agnostic equality, matching [`Occupancy`]'s: snapshots are equal
/// when they froze the same logical placement on the same tree.
impl PartialEq for TreeSnapshot {
    fn eq(&self, other: &Self) -> bool {
        if self.tree != other.tree {
            return false;
        }
        if self.layout == other.layout {
            return self.element_of == other.element_of;
        }
        self.tree
            .nodes()
            .all(|node| self.element_at(node) == other.element_at(node))
    }
}

impl Eq for TreeSnapshot {}

/// Errors produced while parsing an occupancy snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SnapshotError {
    /// The header line is missing or malformed.
    MissingHeader,
    /// The declared node count is not a valid complete-tree size.
    InvalidSize {
        /// The declared number of nodes.
        nodes: u64,
    },
    /// A body line is not a valid element index.
    InvalidEntry {
        /// The 1-based line number of the offending line.
        line: usize,
    },
    /// The body does not describe a bijection (wrong length, duplicates, or
    /// out-of-range elements).
    NotABijection {
        /// Human-readable description of the violation.
        detail: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::MissingHeader => {
                write!(
                    f,
                    "missing snapshot header (expected `satn-occupancy nodes=<n>`)"
                )
            }
            SnapshotError::InvalidSize { nodes } => {
                write!(f, "{nodes} is not a valid complete-tree size")
            }
            SnapshotError::InvalidEntry { line } => {
                write!(f, "line {line} is not a valid element index")
            }
            SnapshotError::NotABijection { detail } => {
                write!(f, "snapshot is not a bijection: {detail}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Serialises an occupancy into the snapshot text format. The output lists
/// elements in logical heap order and is therefore identical for every
/// storage layout of the same placement.
pub fn occupancy_to_string(occupancy: &Occupancy) -> String {
    placement_to_string(occupancy.tree(), &occupancy.placement_in_heap_order())
}

/// The shared renderer behind [`occupancy_to_string`] and
/// [`TreeSnapshot::fingerprint`]: one format, one implementation, so the two
/// can never drift apart.
fn placement_to_string(tree: CompleteTree, elements: &[ElementId]) -> String {
    let mut output = format!("satn-occupancy nodes={}\n", tree.num_nodes());
    for element in elements {
        output.push_str(&element.index().to_string());
        output.push('\n');
    }
    output
}

/// Parses a snapshot produced by [`occupancy_to_string`].
///
/// # Errors
///
/// Returns a [`SnapshotError`] describing the first problem found: a missing
/// header, an invalid tree size, a malformed entry, or a body that is not a
/// bijection.
pub fn occupancy_from_str(snapshot: &str) -> Result<Occupancy, SnapshotError> {
    let mut lines = snapshot.lines();
    let header = lines.next().ok_or(SnapshotError::MissingHeader)?;
    let nodes: u64 = header
        .strip_prefix("satn-occupancy nodes=")
        .and_then(|value| value.trim().parse().ok())
        .ok_or(SnapshotError::MissingHeader)?;
    let tree = CompleteTree::with_nodes(nodes).map_err(|_| SnapshotError::InvalidSize { nodes })?;
    let mut placement = Vec::with_capacity(nodes as usize);
    for (index, line) in lines.enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let element: u32 = trimmed
            .parse()
            .map_err(|_| SnapshotError::InvalidEntry { line: index + 2 })?;
        placement.push(ElementId::new(element));
    }
    Occupancy::from_placement(tree, placement).map_err(|err| SnapshotError::NotABijection {
        detail: err.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;
    use crate::placement;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn snapshots_roundtrip_identity_and_random_occupancies() {
        let tree = CompleteTree::with_levels(6).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for occupancy in [
            Occupancy::identity(tree),
            placement::random_occupancy(tree, &mut rng),
        ] {
            let text = occupancy_to_string(&occupancy);
            let restored = occupancy_from_str(&text).unwrap();
            assert_eq!(restored, occupancy);
        }
    }

    #[test]
    fn snapshots_survive_swaps() {
        let tree = CompleteTree::with_levels(4).unwrap();
        let mut occupancy = Occupancy::identity(tree);
        occupancy
            .swap_nodes(NodeId::new(3), NodeId::new(1))
            .unwrap();
        occupancy
            .swap_nodes(NodeId::new(1), NodeId::new(0))
            .unwrap();
        let restored = occupancy_from_str(&occupancy_to_string(&occupancy)).unwrap();
        assert_eq!(restored.element_at(NodeId::ROOT), ElementId::new(3));
        assert_eq!(restored, occupancy);
    }

    #[test]
    fn malformed_snapshots_are_rejected_with_precise_errors() {
        assert_eq!(occupancy_from_str(""), Err(SnapshotError::MissingHeader));
        assert_eq!(
            occupancy_from_str("occupancy nodes=7\n"),
            Err(SnapshotError::MissingHeader)
        );
        assert_eq!(
            occupancy_from_str("satn-occupancy nodes=6\n0\n1\n2\n3\n4\n5\n"),
            Err(SnapshotError::InvalidSize { nodes: 6 })
        );
        assert_eq!(
            occupancy_from_str("satn-occupancy nodes=3\n0\nbanana\n2\n"),
            Err(SnapshotError::InvalidEntry { line: 3 })
        );
        assert!(matches!(
            occupancy_from_str("satn-occupancy nodes=3\n0\n0\n2\n"),
            Err(SnapshotError::NotABijection { .. })
        ));
        assert!(matches!(
            occupancy_from_str("satn-occupancy nodes=3\n0\n1\n"),
            Err(SnapshotError::NotABijection { .. })
        ));
    }

    #[test]
    fn tree_snapshots_freeze_the_captured_state() {
        let tree = CompleteTree::with_levels(5).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let mut occupancy = placement::random_occupancy(tree, &mut rng);
        let snapshot = TreeSnapshot::capture(&occupancy);
        assert_eq!(snapshot.num_elements(), 31);
        for (node, element) in occupancy.iter() {
            assert_eq!(snapshot.node_of(element), Some(node));
            assert_eq!(snapshot.element_at(node), Some(element));
            assert_eq!(snapshot.level_of(element), Some(node.level()));
            assert_eq!(snapshot.access_cost(element), Some(node.level() as u64 + 1));
        }
        // Out-of-range lookups answer None instead of panicking.
        assert_eq!(snapshot.node_of(ElementId::new(31)), None);
        assert_eq!(snapshot.element_at(NodeId::new(31)), None);
        // The snapshot fingerprint is byte-identical to the occupancy's.
        assert_eq!(snapshot.fingerprint(), occupancy_to_string(&occupancy));
        assert_eq!(snapshot.to_occupancy(), occupancy);

        // Mutating the live occupancy never changes the frozen view.
        let before = snapshot.clone();
        occupancy.swap_nodes(NodeId::ROOT, NodeId::new(1)).unwrap();
        assert_eq!(snapshot, before);
        assert_ne!(snapshot.fingerprint(), occupancy_to_string(&occupancy));
    }

    #[test]
    fn tree_snapshot_fingerprints_parse_back() {
        let tree = CompleteTree::with_levels(4).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let occupancy = placement::random_occupancy(tree, &mut rng);
        let snapshot = TreeSnapshot::capture(&occupancy);
        let restored = occupancy_from_str(&snapshot.fingerprint()).unwrap();
        assert_eq!(restored, occupancy);
    }

    #[test]
    fn snapshots_are_layout_invariant() {
        use crate::layout::LayoutKind;
        let tree = CompleteTree::with_levels(6).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let heap = placement::random_occupancy(tree, &mut rng);
        let blocked = heap.clone().with_layout(LayoutKind::Blocked);
        let snap_heap = TreeSnapshot::capture(&heap);
        let snap_blocked = TreeSnapshot::capture(&blocked);
        // Byte-identical fingerprints and equal snapshots across layouts.
        assert_eq!(snap_heap.fingerprint(), snap_blocked.fingerprint());
        assert_eq!(snap_heap, snap_blocked);
        for (node, element) in heap.iter() {
            assert_eq!(snap_blocked.element_at(node), Some(element));
            assert_eq!(snap_blocked.node_of(element), Some(node));
        }
        // Round-tripping keeps the layout kind.
        assert_eq!(
            snap_blocked.to_occupancy().layout_kind(),
            LayoutKind::Blocked
        );
        assert_eq!(snap_blocked.to_occupancy(), heap);
    }

    #[test]
    fn error_messages_are_informative() {
        let err = occupancy_from_str("satn-occupancy nodes=3\n0\n0\n2\n").unwrap_err();
        assert!(err.to_string().contains("bijection"));
        assert!(SnapshotError::MissingHeader.to_string().contains("header"));
        assert!(SnapshotError::InvalidSize { nodes: 12 }
            .to_string()
            .contains("12"));
    }
}
