//! Saving and restoring occupancies.
//!
//! Long experiments (and the interactive examples) occasionally need to
//! checkpoint the state of a tree and resume later, or to ship an interesting
//! configuration into a bug report or unit test. The snapshot format is a
//! deliberately simple text format: a header with the node count followed by
//! the element stored at each node in heap order.

use crate::node::ElementId;
use crate::occupancy::Occupancy;
use crate::topology::CompleteTree;
use std::fmt;

/// Errors produced while parsing an occupancy snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SnapshotError {
    /// The header line is missing or malformed.
    MissingHeader,
    /// The declared node count is not a valid complete-tree size.
    InvalidSize {
        /// The declared number of nodes.
        nodes: u64,
    },
    /// A body line is not a valid element index.
    InvalidEntry {
        /// The 1-based line number of the offending line.
        line: usize,
    },
    /// The body does not describe a bijection (wrong length, duplicates, or
    /// out-of-range elements).
    NotABijection {
        /// Human-readable description of the violation.
        detail: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::MissingHeader => {
                write!(
                    f,
                    "missing snapshot header (expected `satn-occupancy nodes=<n>`)"
                )
            }
            SnapshotError::InvalidSize { nodes } => {
                write!(f, "{nodes} is not a valid complete-tree size")
            }
            SnapshotError::InvalidEntry { line } => {
                write!(f, "line {line} is not a valid element index")
            }
            SnapshotError::NotABijection { detail } => {
                write!(f, "snapshot is not a bijection: {detail}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Serialises an occupancy into the snapshot text format.
pub fn occupancy_to_string(occupancy: &Occupancy) -> String {
    let mut output = format!("satn-occupancy nodes={}\n", occupancy.tree().num_nodes());
    for element in occupancy.elements_in_heap_order() {
        output.push_str(&element.index().to_string());
        output.push('\n');
    }
    output
}

/// Parses a snapshot produced by [`occupancy_to_string`].
///
/// # Errors
///
/// Returns a [`SnapshotError`] describing the first problem found: a missing
/// header, an invalid tree size, a malformed entry, or a body that is not a
/// bijection.
pub fn occupancy_from_str(snapshot: &str) -> Result<Occupancy, SnapshotError> {
    let mut lines = snapshot.lines();
    let header = lines.next().ok_or(SnapshotError::MissingHeader)?;
    let nodes: u64 = header
        .strip_prefix("satn-occupancy nodes=")
        .and_then(|value| value.trim().parse().ok())
        .ok_or(SnapshotError::MissingHeader)?;
    let tree = CompleteTree::with_nodes(nodes).map_err(|_| SnapshotError::InvalidSize { nodes })?;
    let mut placement = Vec::with_capacity(nodes as usize);
    for (index, line) in lines.enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let element: u32 = trimmed
            .parse()
            .map_err(|_| SnapshotError::InvalidEntry { line: index + 2 })?;
        placement.push(ElementId::new(element));
    }
    Occupancy::from_placement(tree, placement).map_err(|err| SnapshotError::NotABijection {
        detail: err.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;
    use crate::placement;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn snapshots_roundtrip_identity_and_random_occupancies() {
        let tree = CompleteTree::with_levels(6).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for occupancy in [
            Occupancy::identity(tree),
            placement::random_occupancy(tree, &mut rng),
        ] {
            let text = occupancy_to_string(&occupancy);
            let restored = occupancy_from_str(&text).unwrap();
            assert_eq!(restored, occupancy);
        }
    }

    #[test]
    fn snapshots_survive_swaps() {
        let tree = CompleteTree::with_levels(4).unwrap();
        let mut occupancy = Occupancy::identity(tree);
        occupancy
            .swap_nodes(NodeId::new(3), NodeId::new(1))
            .unwrap();
        occupancy
            .swap_nodes(NodeId::new(1), NodeId::new(0))
            .unwrap();
        let restored = occupancy_from_str(&occupancy_to_string(&occupancy)).unwrap();
        assert_eq!(restored.element_at(NodeId::ROOT), ElementId::new(3));
        assert_eq!(restored, occupancy);
    }

    #[test]
    fn malformed_snapshots_are_rejected_with_precise_errors() {
        assert_eq!(occupancy_from_str(""), Err(SnapshotError::MissingHeader));
        assert_eq!(
            occupancy_from_str("occupancy nodes=7\n"),
            Err(SnapshotError::MissingHeader)
        );
        assert_eq!(
            occupancy_from_str("satn-occupancy nodes=6\n0\n1\n2\n3\n4\n5\n"),
            Err(SnapshotError::InvalidSize { nodes: 6 })
        );
        assert_eq!(
            occupancy_from_str("satn-occupancy nodes=3\n0\nbanana\n2\n"),
            Err(SnapshotError::InvalidEntry { line: 3 })
        );
        assert!(matches!(
            occupancy_from_str("satn-occupancy nodes=3\n0\n0\n2\n"),
            Err(SnapshotError::NotABijection { .. })
        ));
        assert!(matches!(
            occupancy_from_str("satn-occupancy nodes=3\n0\n1\n"),
            Err(SnapshotError::NotABijection { .. })
        ));
    }

    #[test]
    fn error_messages_are_informative() {
        let err = occupancy_from_str("satn-occupancy nodes=3\n0\n0\n2\n").unwrap_err();
        assert!(err.to_string().contains("bijection"));
        assert!(SnapshotError::MissingHeader.to_string().contains("header"));
        assert!(SnapshotError::InvalidSize { nodes: 12 }
            .to_string()
            .contains("12"));
    }
}
