//! Initial placement builders.
//!
//! Experiments in the paper always start from a tree whose elements are
//! placed uniformly at random; the static offline baseline instead places
//! elements in decreasing request-frequency order along a BFS traversal.

use crate::node::ElementId;
use crate::occupancy::Occupancy;
use crate::topology::CompleteTree;
use rand::seq::SliceRandom;
use rand::Rng;

/// Returns the identity placement: element `i` at node `i`.
pub fn identity_placement(tree: CompleteTree) -> Vec<ElementId> {
    (0..tree.num_nodes()).map(ElementId::new).collect()
}

/// Returns a uniformly random placement of elements onto nodes.
///
/// This is the initial configuration used throughout the paper's evaluation
/// ("the initial trees were always constructed by placing the nodes uniformly
/// at random", Section 6.1).
pub fn random_placement<R: Rng + ?Sized>(tree: CompleteTree, rng: &mut R) -> Vec<ElementId> {
    let mut placement = identity_placement(tree);
    placement.shuffle(rng);
    placement
}

/// Returns the frequency-BFS placement used by the Static-Opt baseline:
/// elements are sorted by decreasing weight and assigned to nodes in BFS
/// (heap) order, so the heaviest element sits at the root.
///
/// Ties are broken by element id so the placement is deterministic.
///
/// # Panics
///
/// Panics if `weights.len()` differs from the number of tree nodes.
pub fn frequency_bfs_placement(tree: CompleteTree, weights: &[f64]) -> Vec<ElementId> {
    assert_eq!(
        weights.len(),
        tree.num_nodes() as usize,
        "one weight per element is required"
    );
    let mut order: Vec<ElementId> = (0..tree.num_nodes()).map(ElementId::new).collect();
    order.sort_by(|a, b| {
        weights[b.usize()]
            .partial_cmp(&weights[a.usize()])
            .expect("weights must not be NaN")
            .then(a.index().cmp(&b.index()))
    });
    order
}

/// Builds a random-placement [`Occupancy`], the standard starting point of
/// every experiment.
pub fn random_occupancy<R: Rng + ?Sized>(tree: CompleteTree, rng: &mut R) -> Occupancy {
    Occupancy::from_placement(tree, random_placement(tree, rng))
        .expect("a shuffled identity placement is a bijection")
}

/// Builds a frequency-BFS [`Occupancy`] for the Static-Opt baseline.
///
/// # Panics
///
/// Panics if `weights.len()` differs from the number of tree nodes.
pub fn frequency_occupancy(tree: CompleteTree, weights: &[f64]) -> Occupancy {
    Occupancy::from_placement(tree, frequency_bfs_placement(tree, weights))
        .expect("a sorted permutation is a bijection")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tree(levels: u32) -> CompleteTree {
        CompleteTree::with_levels(levels).unwrap()
    }

    #[test]
    fn identity_placement_matches_indices() {
        let p = identity_placement(tree(3));
        for (i, e) in p.iter().enumerate() {
            assert_eq!(e.usize(), i);
        }
    }

    #[test]
    fn random_placement_is_a_permutation_and_seed_deterministic() {
        let t = tree(6);
        let mut rng_a = StdRng::seed_from_u64(7);
        let mut rng_b = StdRng::seed_from_u64(7);
        let a = random_placement(t, &mut rng_a);
        let b = random_placement(t, &mut rng_b);
        assert_eq!(a, b, "same seed must give the same placement");
        let mut seen = vec![false; t.num_nodes() as usize];
        for e in &a {
            assert!(!seen[e.usize()]);
            seen[e.usize()] = true;
        }
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn different_seeds_differ_with_high_probability() {
        let t = tree(8);
        let a = random_placement(t, &mut StdRng::seed_from_u64(1));
        let b = random_placement(t, &mut StdRng::seed_from_u64(2));
        assert_ne!(a, b);
    }

    #[test]
    fn frequency_bfs_puts_heaviest_element_at_root() {
        let t = tree(3);
        // Element 5 heaviest, then 2, then the rest in id order.
        let mut weights = vec![0.1; 7];
        weights[5] = 10.0;
        weights[2] = 5.0;
        let occ = frequency_occupancy(t, &weights);
        assert_eq!(occ.element_at(NodeId::ROOT), ElementId::new(5));
        assert_eq!(occ.element_at(NodeId::new(1)), ElementId::new(2));
        // Remaining elements appear in increasing id order on the later nodes.
        assert_eq!(occ.element_at(NodeId::new(2)), ElementId::new(0));
        assert_eq!(occ.element_at(NodeId::new(3)), ElementId::new(1));
        assert_eq!(occ.element_at(NodeId::new(6)), ElementId::new(6));
    }

    #[test]
    fn frequency_bfs_minimises_expected_cost_among_tested_placements() {
        // With a strongly skewed distribution, the frequency-BFS placement
        // should have no larger expected access cost than random placements.
        let t = tree(5);
        let n = t.num_nodes() as usize;
        let weights: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).powi(2)).collect();
        let static_opt = frequency_occupancy(t, &weights);
        let opt_cost = static_opt.expected_access_cost(&weights);
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..20 {
            let random = random_occupancy(t, &mut rng);
            assert!(opt_cost <= random.expected_access_cost(&weights) + 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "one weight per element")]
    fn frequency_bfs_rejects_wrong_weight_count() {
        frequency_bfs_placement(tree(3), &[1.0, 2.0]);
    }
}
