//! The trace complexity map of Avin et al. (SIGMETRICS 2020), used by the
//! paper's Q5 experiment (Figure 6) to characterise the corpus datasets.
//!
//! A trace is characterised by two numbers in `[0, 1]`:
//!
//! * **temporal complexity** — how much of the trace's compressibility is due
//!   to the *order* of requests: the compressed size of the original trace
//!   divided by the compressed size of a randomly shuffled copy. Low values
//!   mean strong temporal structure (bursts, repetitions); 1 means the order
//!   carries no information.
//! * **non-temporal complexity** — how much is due to the *frequency skew*:
//!   the compressed size of the shuffled trace divided by the compressed size
//!   of a uniformly random trace over the same support and length. Low values
//!   mean a skewed distribution; 1 means near-uniform frequencies.
//!
//! This mirrors the methodology of the referenced paper up to the choice of
//! compressor (LZW here, gzip there), which only rescales the map slightly.

use crate::lzw::compressed_size;
use rand::seq::SliceRandom;
use rand::Rng;

/// The position of a trace on the complexity map.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComplexityPoint {
    /// Complexity attributable to request order (1 = no temporal structure).
    pub temporal: f64,
    /// Complexity attributable to the frequency distribution
    /// (1 = no skew / uniform frequencies).
    pub non_temporal: f64,
}

impl ComplexityPoint {
    /// Clamps both coordinates into `[0, upper]`; compressors occasionally
    /// make a variant marginally larger than its reference, so values can
    /// exceed 1 by a hair.
    pub fn clamped(self, upper: f64) -> ComplexityPoint {
        ComplexityPoint {
            temporal: self.temporal.clamp(0.0, upper),
            non_temporal: self.non_temporal.clamp(0.0, upper),
        }
    }
}

/// Serialises a request trace into bytes for compression: each request id is
/// written as two little-endian bytes (ids must fit in 16 bits) so that the
/// compressor sees identical alphabets for all variants of the trace.
fn encode(trace: &[u32]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(trace.len() * 2);
    for &request in trace {
        debug_assert!(request < (1 << 16), "request ids must fit in 16 bits");
        bytes.extend_from_slice(&((request & 0xFFFF) as u16).to_le_bytes());
    }
    bytes
}

/// Computes the complexity-map position of a request trace.
///
/// `rng` drives the shuffling and the uniform reference trace; fixing the
/// seed makes the measurement reproducible.
///
/// Returns the neutral point (1, 1) for traces with fewer than two requests.
pub fn complexity_point<R: Rng + ?Sized>(trace: &[u32], rng: &mut R) -> ComplexityPoint {
    if trace.len() < 2 {
        return ComplexityPoint {
            temporal: 1.0,
            non_temporal: 1.0,
        };
    }

    let original = compressed_size(&encode(trace)) as f64;

    let mut shuffled = trace.to_vec();
    shuffled.shuffle(rng);
    let shuffled_size = compressed_size(&encode(&shuffled)) as f64;

    // The uniform reference keeps the same support (set of distinct ids) and
    // length but erases the skew.
    let mut support: Vec<u32> = {
        let mut s = trace.to_vec();
        s.sort_unstable();
        s.dedup();
        s
    };
    support.shuffle(rng);
    let uniform: Vec<u32> = (0..trace.len())
        .map(|_| support[rng.gen_range(0..support.len())])
        .collect();
    let uniform_size = compressed_size(&encode(&uniform)) as f64;

    ComplexityPoint {
        temporal: original / shuffled_size,
        non_temporal: shuffled_size / uniform_size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn tiny_traces_get_the_neutral_point() {
        let p = complexity_point(&[], &mut rng(0));
        assert_eq!(p.temporal, 1.0);
        assert_eq!(p.non_temporal, 1.0);
        let p = complexity_point(&[5], &mut rng(0));
        assert_eq!(p.temporal, 1.0);
    }

    #[test]
    fn uniform_random_trace_sits_near_the_top_right_corner() {
        let mut r = rng(1);
        let trace: Vec<u32> = (0..50_000).map(|_| r.gen_range(0..4096)).collect();
        let p = complexity_point(&trace, &mut r).clamped(1.2);
        assert!(p.temporal > 0.9, "temporal {p:?}");
        assert!(p.non_temporal > 0.9, "non-temporal {p:?}");
    }

    #[test]
    fn bursty_trace_has_low_temporal_complexity() {
        // Long runs of the same element: shuffling destroys almost all of the
        // compressibility.
        let mut r = rng(2);
        let mut trace = Vec::new();
        while trace.len() < 50_000 {
            let element = r.gen_range(0..4096u32);
            for _ in 0..r.gen_range(20..60) {
                trace.push(element);
            }
        }
        let p = complexity_point(&trace, &mut r);
        assert!(p.temporal < 0.6, "temporal {p:?}");
        // Frequencies stay roughly uniform across elements.
        assert!(p.non_temporal > 0.75, "non-temporal {p:?}");
    }

    #[test]
    fn skewed_trace_has_low_non_temporal_complexity() {
        // Zipf-like skew without temporal structure (shuffled order).
        let mut r = rng(3);
        let mut trace = Vec::new();
        for element in 0..512u32 {
            let copies = (50_000.0 / f64::from(element + 1).powf(1.8)).ceil() as usize;
            trace.extend(std::iter::repeat_n(element, copies));
        }
        trace.shuffle(&mut r);
        trace.truncate(50_000);
        let p = complexity_point(&trace, &mut r);
        assert!(p.non_temporal < 0.8, "non-temporal {p:?}");
        assert!(p.temporal > 0.85, "temporal {p:?}");
    }

    #[test]
    fn clamping_limits_the_range() {
        let p = ComplexityPoint {
            temporal: 1.4,
            non_temporal: -0.1,
        }
        .clamped(1.0);
        assert_eq!(p.temporal, 1.0);
        assert_eq!(p.non_temporal, 0.0);
    }

    #[test]
    fn measurement_is_seed_deterministic() {
        let trace: Vec<u32> = (0..10_000u32).map(|i| (i * i) % 257).collect();
        let a = complexity_point(&trace, &mut rng(7));
        let b = complexity_point(&trace, &mut rng(7));
        assert_eq!(a, b);
    }
}
