//! A dependency-free Huffman coder.
//!
//! The complexity map of Figure 6 only needs *relative* compressed sizes, so
//! any universal compressor works. Having a second, entropy-optimal coder
//! next to LZW lets the experiments cross-check that the map does not depend
//! on the compressor choice: Huffman measures pure symbol-frequency structure
//! (non-temporal complexity), LZW additionally captures repeated substrings
//! (temporal structure).

use std::collections::BinaryHeap;

/// A canonical Huffman code for byte symbols.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HuffmanCode {
    /// Code length in bits per symbol; 0 for symbols that never occur.
    lengths: [u8; 256],
    /// Code words (low `lengths[i]` bits are the code, most significant bit
    /// first when emitted).
    codes: [u32; 256],
}

#[derive(PartialEq, Eq)]
struct HeapEntry {
    weight: u64,
    // Tie-break deterministically on the smallest contained symbol so the
    // code does not depend on heap iteration order.
    symbol: u16,
    node: usize,
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert to get the two lightest nodes.
        other
            .weight
            .cmp(&self.weight)
            .then_with(|| other.symbol.cmp(&self.symbol))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl HuffmanCode {
    /// Builds a code from symbol frequencies (index = byte value).
    ///
    /// Symbols with zero frequency get no code. If only one distinct symbol
    /// occurs it is assigned a 1-bit code so that encoding still produces
    /// output.
    pub fn from_frequencies(frequencies: &[u64; 256]) -> Self {
        #[derive(Clone, Copy)]
        struct Node {
            children: Option<(usize, usize)>,
            symbol: Option<u8>,
        }
        let mut nodes: Vec<Node> = Vec::new();
        let mut heap = BinaryHeap::new();
        for (symbol, &weight) in frequencies.iter().enumerate() {
            if weight > 0 {
                nodes.push(Node {
                    children: None,
                    symbol: Some(symbol as u8),
                });
                heap.push(HeapEntry {
                    weight,
                    symbol: symbol as u16,
                    node: nodes.len() - 1,
                });
            }
        }
        let mut lengths = [0u8; 256];
        let mut codes = [0u32; 256];
        if heap.is_empty() {
            return HuffmanCode { lengths, codes };
        }
        if heap.len() == 1 {
            let only = heap.pop().unwrap();
            let symbol = nodes[only.node].symbol.unwrap();
            lengths[symbol as usize] = 1;
            codes[symbol as usize] = 0;
            return HuffmanCode { lengths, codes };
        }
        while heap.len() > 1 {
            let a = heap.pop().unwrap();
            let b = heap.pop().unwrap();
            nodes.push(Node {
                children: Some((a.node, b.node)),
                symbol: None,
            });
            heap.push(HeapEntry {
                weight: a.weight + b.weight,
                symbol: a.symbol.min(b.symbol),
                node: nodes.len() - 1,
            });
        }
        // Assign lengths by walking the tree, then build canonical codes.
        let root = heap.pop().unwrap().node;
        let mut stack = vec![(root, 0u8)];
        while let Some((node, depth)) = stack.pop() {
            match nodes[node].children {
                Some((left, right)) => {
                    stack.push((left, depth + 1));
                    stack.push((right, depth + 1));
                }
                None => {
                    let symbol = nodes[node].symbol.unwrap();
                    lengths[symbol as usize] = depth.max(1);
                }
            }
        }
        // Canonical code assignment: sort by (length, symbol).
        let mut symbols: Vec<u8> = (0u16..256)
            .filter(|&s| lengths[s as usize] > 0)
            .map(|s| s as u8)
            .collect();
        symbols.sort_by_key(|&s| (lengths[s as usize], s));
        let mut code = 0u32;
        let mut previous_length = 0u8;
        for &symbol in &symbols {
            let length = lengths[symbol as usize];
            code <<= length - previous_length;
            codes[symbol as usize] = code;
            code += 1;
            previous_length = length;
        }
        HuffmanCode { lengths, codes }
    }

    /// Builds a code for the byte frequencies of `input`.
    pub fn from_input(input: &[u8]) -> Self {
        let mut frequencies = [0u64; 256];
        for &byte in input {
            frequencies[byte as usize] += 1;
        }
        HuffmanCode::from_frequencies(&frequencies)
    }

    /// The code length of `symbol` in bits (0 if the symbol has no code).
    pub fn length(&self, symbol: u8) -> u8 {
        self.lengths[symbol as usize]
    }

    /// The total number of bits needed to encode `input` with this code.
    ///
    /// # Panics
    ///
    /// Panics if `input` contains a symbol without a code.
    pub fn encoded_bits(&self, input: &[u8]) -> u64 {
        input
            .iter()
            .map(|&byte| {
                let length = self.lengths[byte as usize];
                assert!(length > 0, "symbol {byte} has no code");
                u64::from(length)
            })
            .sum()
    }

    /// Encodes `input` into a bit stream (most significant bit of each output
    /// byte first) and returns the stream plus its exact bit length.
    ///
    /// # Panics
    ///
    /// Panics if `input` contains a symbol without a code.
    pub fn encode(&self, input: &[u8]) -> (Vec<u8>, u64) {
        let mut output = Vec::new();
        let mut bit_buffer = 0u64;
        let mut bits_in_buffer = 0u32;
        let mut total_bits = 0u64;
        for &byte in input {
            let length = u32::from(self.lengths[byte as usize]);
            assert!(length > 0, "symbol {byte} has no code");
            bit_buffer = (bit_buffer << length) | u64::from(self.codes[byte as usize]);
            bits_in_buffer += length;
            total_bits += u64::from(length);
            while bits_in_buffer >= 8 {
                bits_in_buffer -= 8;
                output.push(((bit_buffer >> bits_in_buffer) & 0xFF) as u8);
            }
        }
        if bits_in_buffer > 0 {
            output.push(((bit_buffer << (8 - bits_in_buffer)) & 0xFF) as u8);
        }
        (output, total_bits)
    }

    /// Decodes `bits` bits of the stream produced by [`HuffmanCode::encode`].
    ///
    /// Decoding walks the canonical code table; it is linear in the output
    /// size times the maximum code length, which is plenty for the trace
    /// sizes used here.
    pub fn decode(&self, stream: &[u8], bits: u64) -> Vec<u8> {
        // Invert the code table: (length, code) -> symbol. A prefix code never
        // has two symbols with the same (length, code) pair.
        let table: Vec<(u8, u32, u8)> = (0u16..256)
            .filter(|&s| self.lengths[s as usize] > 0)
            .map(|s| (self.lengths[s as usize], self.codes[s as usize], s as u8))
            .collect();
        let mut output = Vec::new();
        let mut code = 0u32;
        let mut code_length = 0u8;
        for bit_index in 0..bits {
            let byte = stream[(bit_index / 8) as usize];
            let bit = (byte >> (7 - (bit_index % 8))) & 1;
            code = (code << 1) | u32::from(bit);
            code_length += 1;
            if let Some(&(_, _, symbol)) = table
                .iter()
                .find(|&&(length, c, _)| length == code_length && c == code)
            {
                output.push(symbol);
                code = 0;
                code_length = 0;
            }
        }
        output
    }
}

/// The number of bits an optimal prefix code needs for `input`, divided by
/// the number of input bytes (i.e. the Huffman-compressed size in bits per
/// symbol). Returns 0 for empty input.
pub fn huffman_bits_per_symbol(input: &[u8]) -> f64 {
    if input.is_empty() {
        return 0.0;
    }
    let code = HuffmanCode::from_input(input);
    code.encoded_bits(input) as f64 / input.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shannon_entropy(input: &[u8]) -> f64 {
        let mut counts = [0u64; 256];
        for &byte in input {
            counts[byte as usize] += 1;
        }
        let total = input.len() as f64;
        counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / total;
                -p * p.log2()
            })
            .sum()
    }

    #[test]
    fn roundtrip_on_text() {
        let input = b"rotor walks derandomize random walks; rotor pushes derandomize random pushes";
        let code = HuffmanCode::from_input(input);
        let (stream, bits) = code.encode(input);
        assert_eq!(code.encoded_bits(input), bits);
        assert!(stream.len() as u64 * 8 >= bits);
        let decoded = code.decode(&stream, bits);
        assert_eq!(decoded, input);
    }

    #[test]
    fn roundtrip_on_binary_data() {
        let input: Vec<u8> = (0..4096u32).map(|i| (i * i % 251) as u8).collect();
        let code = HuffmanCode::from_input(&input);
        let (stream, bits) = code.encode(&input);
        assert_eq!(code.decode(&stream, bits), input);
    }

    #[test]
    fn single_symbol_inputs_still_encode() {
        let input = vec![42u8; 1000];
        let code = HuffmanCode::from_input(&input);
        assert_eq!(code.length(42), 1);
        let (stream, bits) = code.encode(&input);
        assert_eq!(bits, 1000);
        assert_eq!(code.decode(&stream, bits), input);
    }

    #[test]
    fn empty_input_produces_an_empty_code() {
        let code = HuffmanCode::from_frequencies(&[0u64; 256]);
        assert_eq!(code.encode(&[]), (Vec::new(), 0));
        assert_eq!(huffman_bits_per_symbol(&[]), 0.0);
    }

    #[test]
    fn mean_code_length_is_within_one_bit_of_the_entropy() {
        let samples: Vec<Vec<u8>> = vec![
            b"abracadabra abracadabra abracadabra".to_vec(),
            (0..10_000u32).map(|i| (i % 7) as u8).collect(),
            (0..10_000u32)
                .map(|i| (i.wrapping_mul(2_654_435_761) % 256) as u8)
                .collect(),
        ];
        for input in samples {
            let h = shannon_entropy(&input);
            let bits = huffman_bits_per_symbol(&input);
            assert!(bits + 1e-9 >= h, "optimality violated: {bits} < {h}");
            assert!(bits <= h + 1.0 + 1e-9, "{bits} exceeds H+1 = {}", h + 1.0);
        }
    }

    #[test]
    fn skewed_inputs_compress_better_than_uniform_ones() {
        let skewed: Vec<u8> = (0..8_000usize)
            .map(|i| if i % 10 == 0 { (i % 50) as u8 } else { 7 })
            .collect();
        let uniform: Vec<u8> = (0..8_000u32).map(|i| (i % 256) as u8).collect();
        assert!(huffman_bits_per_symbol(&skewed) < huffman_bits_per_symbol(&uniform));
    }

    #[test]
    fn lzw_beats_huffman_on_repetitive_sequences() {
        // LZW exploits repeated substrings, Huffman only symbol frequencies.
        let repetitive = b"rotor-push ".repeat(500);
        let huffman_bits = huffman_bits_per_symbol(&repetitive) * repetitive.len() as f64;
        let lzw_bits = (crate::compressed_size(&repetitive) * 8) as f64;
        assert!(lzw_bits < huffman_bits);
    }
}
