//! A self-contained LZW dictionary compressor.
//!
//! The complexity map of Avin et al. ("On the complexity of traffic traces
//! and implications", SIGMETRICS 2020) characterises a trace by how well a
//! universal compressor shrinks it and some derived variants. Any dictionary
//! compressor yields the same *relative* ordering, so this crate implements
//! classic LZW over bytes: simple, dependency-free, deterministic.

use std::collections::HashMap;

/// Maximum dictionary size; once reached, the dictionary is frozen (no new
/// entries), which keeps compressor and decompressor trivially in sync.
const MAX_DICT_SIZE: usize = 1 << 16;

/// Compresses `input` with LZW and returns the emitted codes.
///
/// The dictionary starts with the 256 single-byte strings and grows by one
/// entry per emitted code until it reaches 2^16 entries, after which it is
/// frozen.
pub fn compress(input: &[u8]) -> Vec<u32> {
    let mut dictionary: HashMap<Vec<u8>, u32> =
        (0u32..256).map(|byte| (vec![byte as u8], byte)).collect();
    let mut output = Vec::new();
    let mut current: Vec<u8> = Vec::new();

    for &byte in input {
        let mut extended = current.clone();
        extended.push(byte);
        if dictionary.contains_key(&extended) {
            current = extended;
        } else {
            output.push(dictionary[&current]);
            if dictionary.len() < MAX_DICT_SIZE {
                dictionary.insert(extended, dictionary.len() as u32);
            }
            current = vec![byte];
        }
    }
    if !current.is_empty() {
        output.push(dictionary[&current]);
    }
    output
}

/// Decompresses a code stream produced by [`compress`].
///
/// # Panics
///
/// Panics if the code stream is not a valid LZW stream produced by
/// [`compress`] (e.g. references an unknown dictionary entry).
pub fn decompress(codes: &[u32]) -> Vec<u8> {
    let mut dictionary: Vec<Vec<u8>> = (0u32..256).map(|byte| vec![byte as u8]).collect();
    let mut output = Vec::new();
    let mut previous: Option<Vec<u8>> = None;

    for &code in codes {
        let entry = if (code as usize) < dictionary.len() {
            dictionary[code as usize].clone()
        } else if let Some(prev) = &previous {
            // The classic KwKwK special case: the code that is being defined
            // by this very step.
            let mut entry = prev.clone();
            entry.push(prev[0]);
            entry
        } else {
            panic!("invalid LZW stream: first code out of range");
        };
        output.extend_from_slice(&entry);
        if let Some(prev) = previous.take() {
            if dictionary.len() < MAX_DICT_SIZE {
                let mut new_entry = prev;
                new_entry.push(entry[0]);
                dictionary.push(new_entry);
            }
        }
        previous = Some(entry);
    }
    output
}

/// Returns the compressed size of `input` in bytes, assuming each emitted
/// code is written with 16 bits.
pub fn compressed_size(input: &[u8]) -> usize {
    compress(input).len() * 2
}

/// Returns the compression ratio `compressed / original` (1.0 for an empty
/// input). Values close to (or above) 1 mean incompressible (complex) data.
pub fn compression_ratio(input: &[u8]) -> f64 {
    if input.is_empty() {
        return 1.0;
    }
    compressed_size(input) as f64 / input.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn roundtrip_small_strings() {
        for text in [
            &b""[..],
            b"a",
            b"abababababab",
            b"TOBEORNOTTOBEORTOBEORNOT",
            b"the quick brown fox jumps over the lazy dog",
        ] {
            assert_eq!(decompress(&compress(text)), text, "{text:?}");
        }
    }

    #[test]
    fn roundtrip_random_and_structured_binary_data() {
        let mut rng = StdRng::seed_from_u64(2);
        let random: Vec<u8> = (0..10_000).map(|_| rng.gen()).collect();
        assert_eq!(decompress(&compress(&random)), random);

        let structured: Vec<u8> = (0..10_000).map(|i| ((i / 7) % 256) as u8).collect();
        assert_eq!(decompress(&compress(&structured)), structured);
    }

    #[test]
    fn roundtrip_past_the_dictionary_freeze_point() {
        // More than 2^16 emitted codes so the dictionary freezes.
        let mut rng = StdRng::seed_from_u64(9);
        let long: Vec<u8> = (0..400_000).map(|_| rng.gen()).collect();
        assert_eq!(decompress(&compress(&long)), long);

        let structured: Vec<u8> = (0..400_000u32)
            .map(|i| (i % 251) as u8 ^ (i / 65_536) as u8)
            .collect();
        assert_eq!(decompress(&compress(&structured)), structured);
    }

    #[test]
    fn repetitive_data_compresses_much_better_than_random() {
        let mut rng = StdRng::seed_from_u64(3);
        let random: Vec<u8> = (0..20_000).map(|_| rng.gen()).collect();
        let repetitive: Vec<u8> = b"abcd".iter().copied().cycle().take(20_000).collect();
        assert!(compression_ratio(&repetitive) < 0.2);
        assert!(compression_ratio(&random) > 0.8);
    }

    #[test]
    fn compressed_size_counts_two_bytes_per_code() {
        let codes = compress(b"aaaa");
        assert_eq!(compressed_size(b"aaaa"), codes.len() * 2);
        assert_eq!(compression_ratio(b""), 1.0);
    }

    #[test]
    fn kwkwk_case_roundtrips() {
        // "ababa..." triggers the code-not-yet-in-dictionary case.
        let text = b"abababaabababaabababa".repeat(10);
        assert_eq!(decompress(&compress(&text)), text);
    }

    #[test]
    fn text_compresses_better_when_more_repetitive() {
        let natural = b"self adjusting trees adjust themselves to the demand ".repeat(50);
        let shuffled: Vec<u8> = {
            let mut bytes = natural.clone();
            let mut rng = StdRng::seed_from_u64(4);
            for i in (1..bytes.len()).rev() {
                bytes.swap(i, rng.gen_range(0..=i));
            }
            bytes
        };
        assert!(compressed_size(&natural) < compressed_size(&shuffled));
    }
}
