//! # satn-compress
//!
//! A dependency-free LZW compressor and the trace *complexity map* built on
//! top of it, used to characterise request workloads the way the paper's Q5
//! experiment does (Figure 6): every trace is placed on a two-dimensional map
//! whose axes are temporal complexity (how much of its compressibility stems
//! from request ordering) and non-temporal complexity (how much stems from
//! frequency skew).
//!
//! ```
//! use satn_compress::{complexity_point, compress, decompress};
//! use rand::SeedableRng;
//!
//! let data = b"self adjusting trees adjust to demand".repeat(20);
//! assert_eq!(decompress(&compress(&data)), data);
//!
//! let trace: Vec<u32> = (0..5000u32).map(|i| i % 7).collect();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let point = complexity_point(&trace, &mut rng);
//! assert!(point.temporal < 1.0); // a strictly periodic trace has temporal structure
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod complexity;
mod huffman;
mod lzw;

pub use complexity::{complexity_point, ComplexityPoint};
pub use huffman::{huffman_bits_per_symbol, HuffmanCode};
pub use lzw::{compress, compressed_size, compression_ratio, decompress};
