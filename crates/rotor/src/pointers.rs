//! Rotor pointer state: one two-state pointer per non-leaf node.

use satn_tree::{CompleteTree, Direction, NodeId, TreeError};

/// The rotor pointers of a complete binary tree: every non-leaf node points
/// to one of its two children, initially the left one (Section 3 of the
/// paper).
///
/// The *global path* is the root-to-leaf path obtained by starting at the
/// root and following the pointers; `flip(d)` toggles the pointers of the
/// global-path nodes at levels `0, …, d − 1` (Definition 2).
///
/// # Examples
///
/// ```
/// use satn_rotor::RotorState;
/// use satn_tree::{CompleteTree, Direction, NodeId};
///
/// let tree = CompleteTree::with_levels(3)?;
/// let mut rotors = RotorState::new(tree);
/// // Initially every pointer goes left, so the global path is the left spine.
/// assert_eq!(rotors.global_path(), vec![NodeId::new(0), NodeId::new(1), NodeId::new(3)]);
/// rotors.flip(2);
/// // The two topmost pointers toggled: the path now goes right, then right's right... no —
/// // flipping level-0 and level-1 pointers moves the path to the rightmost-of-right spine prefix.
/// assert_eq!(rotors.pointer(NodeId::new(0)), Direction::Right);
/// # Ok::<(), satn_tree::TreeError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RotorState {
    tree: CompleteTree,
    /// Pointer direction per node; leaves carry an unused `Left` entry.
    pointers: Vec<Direction>,
}

impl RotorState {
    /// Creates the initial rotor state with every pointer aimed at the left
    /// child.
    pub fn new(tree: CompleteTree) -> Self {
        RotorState {
            tree,
            pointers: vec![Direction::Left; tree.num_nodes() as usize],
        }
    }

    /// Returns the underlying tree topology.
    #[inline]
    pub fn tree(&self) -> CompleteTree {
        self.tree
    }

    /// Returns the pointer direction at `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not part of the tree.
    #[inline]
    pub fn pointer(&self, node: NodeId) -> Direction {
        self.pointers[node.usize()]
    }

    /// Sets the pointer at `node` explicitly (used by tests and ablations).
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::NodeOutOfRange`] if the node does not exist.
    pub fn set_pointer(&mut self, node: NodeId, direction: Direction) -> Result<(), TreeError> {
        self.tree.check_node(node)?;
        self.pointers[node.usize()] = direction;
        Ok(())
    }

    /// Toggles the pointer at `node`.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::NodeOutOfRange`] if the node does not exist.
    pub fn toggle(&mut self, node: NodeId) -> Result<(), TreeError> {
        self.tree.check_node(node)?;
        let p = &mut self.pointers[node.usize()];
        *p = p.toggled();
        Ok(())
    }

    /// Returns the child of `node` indicated by its pointer.
    #[inline]
    pub fn pointed_child(&self, node: NodeId) -> NodeId {
        node.child(self.pointer(node))
    }

    /// Returns the node of the global path at the given level (`P_d` in the
    /// paper's notation).
    ///
    /// # Panics
    ///
    /// Panics if `level` exceeds the deepest level of the tree.
    pub fn global_path_node(&self, level: u32) -> NodeId {
        assert!(
            level <= self.tree.max_level(),
            "level {level} exceeds tree depth {}",
            self.tree.max_level()
        );
        let mut node = NodeId::ROOT;
        for _ in 0..level {
            node = self.pointed_child(node);
        }
        node
    }

    /// Returns the whole global path from the root to a leaf.
    pub fn global_path(&self) -> Vec<NodeId> {
        let mut path = Vec::with_capacity(self.tree.num_levels() as usize);
        let mut node = NodeId::ROOT;
        path.push(node);
        while !self.tree.is_leaf(node) {
            node = self.pointed_child(node);
            path.push(node);
        }
        path
    }

    /// Returns `true` if `node` lies on the current global path.
    pub fn on_global_path(&self, node: NodeId) -> bool {
        self.global_path_node(node.level()) == node
    }

    /// Performs the `flip(d)` operation of Definition 2: toggles the pointers
    /// of the global-path nodes at levels `0, …, d − 1`.
    ///
    /// `flip(0)` is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if `d` exceeds the number of levels of the tree.
    pub fn flip(&mut self, d: u32) {
        assert!(
            d <= self.tree.max_level() + 1,
            "flip level {d} exceeds tree depth"
        );
        let mut node = NodeId::ROOT;
        for level in 0..d {
            let next = self.pointed_child(node);
            let p = &mut self.pointers[node.usize()];
            *p = p.toggled();
            if level + 1 < d {
                node = next;
            }
        }
    }

    /// Returns the pointer directions of all nodes in heap order (useful for
    /// snapshotting state in tests).
    pub fn pointers(&self) -> &[Direction] {
        &self.pointers
    }

    /// Carries this rotor configuration onto a (possibly resized) tree: the
    /// shared heap-order node prefix keeps its pointers, nodes that exist
    /// only in the new tree start at `Left` (the cold-start direction), and
    /// pointers of nodes beyond the new size are dropped.
    ///
    /// This is the warm-handover transfer rule: heap order is
    /// topology-stable for complete trees (node `i`'s children are always
    /// `2i + 1` and `2i + 2`), so a prefix copy preserves every surviving
    /// node's rotor exactly. Rotor walks remain deterministic and
    /// well-behaved from *any* initial pointer configuration (Angel &
    /// Holroyd), so the carried state is always a valid starting point.
    pub fn carried_into(&self, tree: CompleteTree) -> RotorState {
        let mut carried = RotorState::new(tree);
        let shared = self.pointers.len().min(carried.pointers.len());
        carried.pointers[..shared].copy_from_slice(&self.pointers[..shared]);
        carried
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(levels: u32) -> RotorState {
        RotorState::new(CompleteTree::with_levels(levels).unwrap())
    }

    #[test]
    fn initial_global_path_is_left_spine() {
        let s = state(4);
        assert_eq!(
            s.global_path(),
            vec![
                NodeId::new(0),
                NodeId::new(1),
                NodeId::new(3),
                NodeId::new(7)
            ]
        );
        assert_eq!(s.global_path_node(0), NodeId::ROOT);
        assert_eq!(s.global_path_node(3), NodeId::new(7));
        assert!(s.on_global_path(NodeId::new(3)));
        assert!(!s.on_global_path(NodeId::new(4)));
    }

    #[test]
    fn flip_zero_is_noop() {
        let mut s = state(3);
        let before = s.clone();
        s.flip(0);
        assert_eq!(s, before);
    }

    #[test]
    fn flip_toggles_only_global_path_prefix() {
        let mut s = state(4);
        s.flip(3);
        // Levels 0, 1, 2 of the (old) global path 0-1-3 are toggled.
        assert_eq!(s.pointer(NodeId::new(0)), Direction::Right);
        assert_eq!(s.pointer(NodeId::new(1)), Direction::Right);
        assert_eq!(s.pointer(NodeId::new(3)), Direction::Right);
        // Other nodes keep their initial pointer.
        assert_eq!(s.pointer(NodeId::new(2)), Direction::Left);
        assert_eq!(s.pointer(NodeId::new(4)), Direction::Left);
        // The new global path starts at the root going right.
        assert_eq!(s.global_path()[1], NodeId::new(2));
    }

    #[test]
    fn flip_uses_the_path_before_toggling() {
        // After flip(1) the root points right; a subsequent flip(2) must
        // toggle the root and node 2 (the new P_1), not node 1.
        let mut s = state(3);
        s.flip(1);
        assert_eq!(s.pointer(NodeId::ROOT), Direction::Right);
        s.flip(2);
        assert_eq!(s.pointer(NodeId::ROOT), Direction::Left);
        assert_eq!(s.pointer(NodeId::new(2)), Direction::Right);
        assert_eq!(s.pointer(NodeId::new(1)), Direction::Left);
    }

    #[test]
    fn repeated_full_flips_visit_every_leaf_once() {
        // 2^d consecutive flip(d) operations make every d-level node appear on
        // the global path exactly once (the observation below Definition 3).
        let levels = 5;
        let mut s = state(levels);
        let d = levels - 1;
        let mut seen = std::collections::HashSet::new();
        for _ in 0..(1u32 << d) {
            seen.insert(s.global_path_node(d));
            s.flip(d);
        }
        assert_eq!(seen.len(), 1usize << d);
    }

    #[test]
    fn set_and_toggle_pointer() {
        let mut s = state(3);
        s.set_pointer(NodeId::new(1), Direction::Right).unwrap();
        assert_eq!(s.pointer(NodeId::new(1)), Direction::Right);
        s.toggle(NodeId::new(1)).unwrap();
        assert_eq!(s.pointer(NodeId::new(1)), Direction::Left);
        assert!(s.set_pointer(NodeId::new(99), Direction::Left).is_err());
        assert!(s.toggle(NodeId::new(99)).is_err());
    }

    #[test]
    #[should_panic(expected = "exceeds tree depth")]
    fn global_path_node_rejects_too_deep_level() {
        state(3).global_path_node(3);
    }

    #[test]
    fn pointers_snapshot_has_one_entry_per_node() {
        let s = state(4);
        assert_eq!(s.pointers().len(), 15);
    }

    #[test]
    fn carried_into_prefix_copies_and_defaults_new_nodes() {
        let mut s = state(3);
        s.flip(3); // toggles the left spine: nodes 0, 1, 3 point right
                   // Same size: an exact copy.
        let same = s.carried_into(CompleteTree::with_levels(3).unwrap());
        assert_eq!(same, s);
        // Grown: the old prefix survives, new nodes start Left.
        let grown = s.carried_into(CompleteTree::with_levels(4).unwrap());
        assert_eq!(grown.pointers()[..7], *s.pointers());
        assert!(grown.pointers()[7..].iter().all(|&p| p == Direction::Left));
        // Shrunk: only the surviving prefix is kept.
        let shrunk = s.carried_into(CompleteTree::with_levels(2).unwrap());
        assert_eq!(*shrunk.pointers(), s.pointers()[..3]);
    }
}
