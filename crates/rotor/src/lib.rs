//! # satn-rotor
//!
//! Rotor pointers, flip operations, flip-ranks and rotor-router walks on
//! complete binary trees — the derandomization machinery behind the
//! **Rotor-Push** algorithm of *Deterministic Self-Adjusting Tree Networks
//! Using Rotor Walks* (ICDCS 2022).
//!
//! Every non-leaf node carries a two-state pointer to one of its children.
//! Following the pointers from the root defines the *global path*; the
//! `flip(d)` operation toggles the pointers of the global-path nodes above
//! level `d`, and the *flip-rank* of a node is the number of flips needed
//! before it joins the global path (Definition 3). The crate provides:
//!
//! * [`RotorState`] — pointer state, global path, `flip`, and flip-rank
//!   computation (closed form per Lemma 2 plus a brute-force verifier),
//! * [`RotorWalk`] / [`RandomWalk`] — chip-dispatching walks used to compare
//!   the deterministic rotor mechanism against the random walk it imitates.
//!
//! ```
//! use satn_rotor::RotorState;
//! use satn_tree::{CompleteTree, NodeId};
//!
//! let tree = CompleteTree::with_levels(4)?;
//! let mut rotors = RotorState::new(tree);
//! assert_eq!(rotors.flip_rank(NodeId::new(14)), 7); // rightmost leaf: all pointers disagree
//! rotors.flip(3);
//! assert_eq!(rotors.flip_rank(NodeId::new(14)), 6); // one flip closer (Lemma 3)
//! # Ok::<(), satn_tree::TreeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod balance;
mod fliprank;
pub mod graph;
mod pointers;
mod walk;

pub use graph::{random_walk_visits, visit_discrepancy, GraphError, RotorGraph};
pub use pointers::RotorState;
pub use walk::{max_discrepancy, RandomWalk, RotorWalk};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use satn_tree::{CompleteTree, NodeId};

    /// A small tree plus a deterministic pointer scramble.
    fn arb_state() -> impl Strategy<Value = RotorState> {
        (2u32..=7, proptest::collection::vec(any::<bool>(), 0..127)).prop_map(
            |(levels, toggles)| {
                let tree = CompleteTree::with_levels(levels).unwrap();
                let mut state = RotorState::new(tree);
                for (i, toggle) in toggles.iter().enumerate() {
                    let node = NodeId::new((i as u32) % tree.num_nodes());
                    if *toggle && !tree.is_leaf(node) {
                        state.toggle(node).unwrap();
                    }
                }
                state
            },
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn flip_ranks_form_a_permutation_per_level(state in arb_state()) {
            for level in 0..state.tree().num_levels() {
                let mut ranks = state.level_flip_ranks(level);
                ranks.sort_unstable();
                let expected: Vec<u64> = (0..(1u64 << level)).collect();
                prop_assert_eq!(ranks, expected);
            }
        }

        #[test]
        fn closed_form_flip_rank_matches_simulation(state in arb_state()) {
            // Restrict to levels <= 6 so the simulation stays cheap.
            for node in state.tree().nodes().filter(|n| n.level() <= 6) {
                prop_assert_eq!(state.flip_rank(node), state.flip_rank_by_simulation(node));
            }
        }

        #[test]
        fn flip_then_ranks_respect_lemma3(state in arb_state(), d in 0u32..6) {
            let d = d.min(state.tree().max_level());
            let mut after = state.clone();
            after.flip(d);
            for node in state.tree().nodes() {
                let old = state.flip_rank(node);
                let new = after.flip_rank(node);
                if node.level() <= d {
                    if old == 0 {
                        prop_assert_eq!(new, (1u64 << node.level()) - 1);
                    } else {
                        prop_assert_eq!(new, old - 1);
                    }
                } else {
                    prop_assert!(new == old.wrapping_sub(1) || new == old + (1u64 << d) - 1);
                }
            }
        }

        #[test]
        fn global_path_node_has_rank_zero(state in arb_state(), level in 0u32..7) {
            let level = level.min(state.tree().max_level());
            let node = state.global_path_node(level);
            prop_assert_eq!(state.flip_rank(node), 0);
        }

        #[test]
        fn rotor_walk_discrepancy_bounded(levels in 3u32..=7, chips in 1u64..2000) {
            let tree = CompleteTree::with_levels(levels).unwrap();
            let mut walk = RotorWalk::new(tree, tree.max_level());
            let counts = walk.visit_counts(chips);
            prop_assert!(max_discrepancy(&counts) <= 1.0 + 1e-9);
        }
    }
}
