//! Rotor-router walks on arbitrary directed graphs.
//!
//! The rotor mechanism the paper uses on complete binary trees is an instance
//! of the general *rotor-router* (Propp machine) model: every vertex cycles
//! through its outgoing edges in a fixed order, and a walk repeatedly leaves
//! the current vertex along the next edge of its rotor. Rotor walks imitate
//! random walks deterministically and are used for discrete load balancing
//! (Akbari & Berenbrink, SPAA 2013 — reference 2 of the paper). This module
//! provides a small general-graph implementation so the tree-specific rotor
//! machinery can be compared against the textbook model, and so the
//! load-balancing application can be exercised in examples and benches.

use rand::Rng;
use std::fmt;

/// An error produced while constructing a [`RotorGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// The adjacency list is empty.
    Empty,
    /// A vertex has no outgoing edges, so a walk would get stuck.
    Sink {
        /// The vertex without outgoing edges.
        vertex: usize,
    },
    /// An edge points to a vertex outside the graph.
    EdgeOutOfRange {
        /// The vertex whose adjacency list contains the bad edge.
        vertex: usize,
        /// The target of the bad edge.
        target: usize,
        /// The number of vertices in the graph.
        num_vertices: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Empty => write!(f, "the graph has no vertices"),
            GraphError::Sink { vertex } => {
                write!(f, "vertex {vertex} has no outgoing edges")
            }
            GraphError::EdgeOutOfRange {
                vertex,
                target,
                num_vertices,
            } => write!(
                f,
                "edge {vertex} -> {target} leaves the graph of {num_vertices} vertices"
            ),
        }
    }
}

impl std::error::Error for GraphError {}

/// A rotor-router on a directed graph given by adjacency lists.
///
/// Every vertex keeps an index into its adjacency list; each time the walk
/// leaves the vertex it uses the indexed edge and advances the index
/// cyclically.
///
/// # Examples
///
/// ```
/// use satn_rotor::graph::RotorGraph;
///
/// // A directed 4-cycle with chords.
/// let adjacency = vec![vec![1, 2], vec![2, 3], vec![3, 0], vec![0, 1]];
/// let mut rotor = RotorGraph::new(adjacency)?;
/// let visits = rotor.walk(0, 1_000);
/// assert_eq!(visits.iter().sum::<u64>(), 1_000);
/// # Ok::<(), satn_rotor::graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RotorGraph {
    adjacency: Vec<Vec<usize>>,
    pointer: Vec<usize>,
}

impl RotorGraph {
    /// Builds a rotor-router for the given adjacency lists.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Empty`] for an empty graph, [`GraphError::Sink`]
    /// if some vertex has no outgoing edge, and
    /// [`GraphError::EdgeOutOfRange`] for dangling edges.
    pub fn new(adjacency: Vec<Vec<usize>>) -> Result<Self, GraphError> {
        if adjacency.is_empty() {
            return Err(GraphError::Empty);
        }
        let num_vertices = adjacency.len();
        for (vertex, neighbours) in adjacency.iter().enumerate() {
            if neighbours.is_empty() {
                return Err(GraphError::Sink { vertex });
            }
            for &target in neighbours {
                if target >= num_vertices {
                    return Err(GraphError::EdgeOutOfRange {
                        vertex,
                        target,
                        num_vertices,
                    });
                }
            }
        }
        let pointer = vec![0; num_vertices];
        Ok(RotorGraph { adjacency, pointer })
    }

    /// Builds the rotor-router for the complete binary tree with `levels`
    /// levels, where every internal vertex alternates between its two
    /// children and every leaf returns to the root — the graph on which the
    /// paper's tree rotor walk lives.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is zero.
    pub fn complete_binary_tree(levels: u32) -> Self {
        assert!(levels >= 1, "a tree needs at least one level");
        let num_vertices = (1usize << levels) - 1;
        let adjacency: Vec<Vec<usize>> = (0..num_vertices)
            .map(|v| {
                let left = 2 * v + 1;
                if left < num_vertices {
                    vec![left, left + 1]
                } else {
                    vec![0] // leaves send the walk back to the root
                }
            })
            .collect();
        RotorGraph::new(adjacency).expect("the binary-tree adjacency is always valid")
    }

    /// The number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.adjacency.len()
    }

    /// The adjacency list of `vertex`.
    ///
    /// # Panics
    ///
    /// Panics if `vertex` is outside the graph.
    pub fn neighbours(&self, vertex: usize) -> &[usize] {
        &self.adjacency[vertex]
    }

    /// The current rotor position of `vertex` (an index into its adjacency
    /// list).
    ///
    /// # Panics
    ///
    /// Panics if `vertex` is outside the graph.
    pub fn rotor_position(&self, vertex: usize) -> usize {
        self.pointer[vertex]
    }

    /// Performs one rotor step out of `vertex`: returns the neighbour the
    /// rotor points at and advances the rotor.
    ///
    /// # Panics
    ///
    /// Panics if `vertex` is outside the graph.
    pub fn step(&mut self, vertex: usize) -> usize {
        let neighbours = &self.adjacency[vertex];
        let next = neighbours[self.pointer[vertex]];
        self.pointer[vertex] = (self.pointer[vertex] + 1) % neighbours.len();
        next
    }

    /// Runs a rotor walk of `steps` steps starting at `start` and returns how
    /// often each vertex was visited (the start vertex counts as visited).
    ///
    /// # Panics
    ///
    /// Panics if `start` is outside the graph.
    pub fn walk(&mut self, start: usize, steps: u64) -> Vec<u64> {
        assert!(
            start < self.num_vertices(),
            "start vertex outside the graph"
        );
        let mut visits = vec![0u64; self.num_vertices()];
        let mut current = start;
        visits[current] += 1;
        for _ in 1..steps {
            current = self.step(current);
            visits[current] += 1;
        }
        visits
    }
}

/// The random-walk counterpart of [`RotorGraph::walk`]: a uniform random
/// out-neighbour is chosen at every step.
///
/// # Panics
///
/// Panics if `start` is outside the graph.
pub fn random_walk_visits<R: Rng + ?Sized>(
    graph: &RotorGraph,
    start: usize,
    steps: u64,
    rng: &mut R,
) -> Vec<u64> {
    assert!(
        start < graph.num_vertices(),
        "start vertex outside the graph"
    );
    let mut visits = vec![0u64; graph.num_vertices()];
    let mut current = start;
    visits[current] += 1;
    for _ in 1..steps {
        let neighbours = graph.neighbours(current);
        current = neighbours[rng.gen_range(0..neighbours.len())];
        visits[current] += 1;
    }
    visits
}

/// The largest per-vertex difference between two visit-count vectors,
/// normalised by the total number of steps. Rotor walks are known to stay
/// close to the random-walk expectation; this statistic is what the
/// rotor-walk discrepancy example and bench report.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn visit_discrepancy(a: &[u64], b: &[u64]) -> f64 {
    assert_eq!(a.len(), b.len(), "visit vectors must have the same length");
    let total: u64 = a.iter().sum::<u64>().max(1);
    a.iter()
        .zip(b)
        .map(|(&x, &y)| x.abs_diff(y) as f64 / total as f64)
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validates_the_adjacency_lists() {
        assert!(matches!(RotorGraph::new(vec![]), Err(GraphError::Empty)));
        assert!(matches!(
            RotorGraph::new(vec![vec![1], vec![]]),
            Err(GraphError::Sink { vertex: 1 })
        ));
        assert!(matches!(
            RotorGraph::new(vec![vec![5]]),
            Err(GraphError::EdgeOutOfRange { target: 5, .. })
        ));
    }

    #[test]
    fn rotor_steps_cycle_through_the_neighbours_in_order() {
        let mut rotor = RotorGraph::new(vec![vec![1, 2, 3], vec![0], vec![0], vec![0]]).unwrap();
        assert_eq!(rotor.rotor_position(0), 0);
        assert_eq!(rotor.step(0), 1);
        assert_eq!(rotor.step(0), 2);
        assert_eq!(rotor.step(0), 3);
        assert_eq!(rotor.step(0), 1);
        assert_eq!(rotor.rotor_position(0), 1);
    }

    #[test]
    fn walks_count_every_step_exactly_once() {
        let mut rotor = RotorGraph::complete_binary_tree(4);
        let visits = rotor.walk(0, 10_000);
        assert_eq!(visits.iter().sum::<u64>(), 10_000);
        assert!(visits[0] > 0);
    }

    #[test]
    fn rotor_walk_on_a_cycle_visits_vertices_evenly() {
        // On a directed cycle the rotor walk is the cycle itself.
        let mut rotor = RotorGraph::new(vec![vec![1], vec![2], vec![3], vec![0]]).unwrap();
        let visits = rotor.walk(0, 4_000);
        assert!(visits.iter().all(|&count| count == 1_000));
    }

    #[test]
    fn rotor_and_random_walks_agree_on_long_tree_walks() {
        let mut rotor = RotorGraph::complete_binary_tree(5);
        let reference = rotor.clone();
        let steps = 200_000u64;
        let rotor_visits = rotor.walk(0, steps);
        let mut rng = StdRng::seed_from_u64(7);
        let random_visits = random_walk_visits(&reference, 0, steps, &mut rng);
        let discrepancy = visit_discrepancy(&rotor_visits, &random_visits);
        // Both walks spend roughly the same fraction of time at every vertex.
        assert!(discrepancy < 0.01, "discrepancy {discrepancy}");
    }

    #[test]
    fn discrepancy_is_zero_for_identical_vectors_and_symmetric() {
        let a = vec![5, 10, 15];
        let b = vec![10, 10, 10];
        assert_eq!(visit_discrepancy(&a, &a), 0.0);
        assert!((visit_discrepancy(&a, &b) - visit_discrepancy(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn error_messages_name_the_offending_vertex() {
        assert!(RotorGraph::new(vec![vec![1], vec![]])
            .unwrap_err()
            .to_string()
            .contains("vertex 1"));
        assert!(RotorGraph::new(vec![vec![7]])
            .unwrap_err()
            .to_string()
            .contains("7"));
    }
}
