//! Flip-ranks (Definition 3, Lemmas 2 and 3 of the paper).
//!
//! For a node `u` at level `d`, the flip-rank `frnk(u)` is the smallest number
//! of consecutive `flip(d)` operations after which `u` lies on the global
//! path. Flip-ranks of `d`-level nodes are exactly the numbers
//! `0, …, 2^d − 1`, and they drive the amortized analysis of Rotor-Push.

use crate::pointers::RotorState;
use satn_tree::NodeId;

impl RotorState {
    /// Computes the flip-rank of `node` in the current pointer state.
    ///
    /// This uses the recursion of Lemma 2: descending one edge from a node
    /// `u` to a child `v` contributes `0` if `u`'s pointer aims at `v` and
    /// `2^{ℓ(u)}` otherwise, so
    /// `frnk(v) = Σ_{u strict ancestor of v} b_u · 2^{ℓ(u)}`.
    /// The root has flip-rank 0. The computation is `O(level(node))`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not part of the tree.
    pub fn flip_rank(&self, node: NodeId) -> u64 {
        assert!(
            self.tree().contains(node),
            "node {node} is not part of the tree"
        );
        // Allocation-free ancestor walk: every non-root node on the path
        // contributes 2^{ℓ(parent)} when its parent's pointer misses it.
        let mut rank = 0u64;
        for child in node.ancestors().take_while(|n| !n.is_root()) {
            let ancestor = child.parent().expect("non-root nodes have a parent");
            if self.pointed_child(ancestor) != child {
                rank += 1u64 << ancestor.level();
            }
        }
        rank
    }

    /// Computes the flip-rank of `node` by brute force: repeatedly applying
    /// `flip(level(node))` to a copy of the state and counting how many flips
    /// it takes until `node` is on the global path.
    ///
    /// Exponential in the node's level; intended for tests and verification
    /// of [`RotorState::flip_rank`].
    ///
    /// # Panics
    ///
    /// Panics if `node` is not part of the tree.
    pub fn flip_rank_by_simulation(&self, node: NodeId) -> u64 {
        assert!(
            self.tree().contains(node),
            "node {node} is not part of the tree"
        );
        let d = node.level();
        let mut copy = self.clone();
        let mut count = 0u64;
        loop {
            if copy.global_path_node(d) == node {
                return count;
            }
            copy.flip(d);
            count += 1;
            assert!(
                count <= 1 << d,
                "node {node} unreachable after 2^{d} flips; rotor invariant broken"
            );
        }
    }

    /// Returns the flip-ranks of all nodes of one level, ordered left to
    /// right.
    pub fn level_flip_ranks(&self, level: u32) -> Vec<u64> {
        self.tree()
            .level_nodes(level)
            .map(|n| self.flip_rank(n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use satn_tree::{CompleteTree, Direction};

    fn state(levels: u32) -> RotorState {
        RotorState::new(CompleteTree::with_levels(levels).unwrap())
    }

    #[test]
    fn global_path_nodes_have_rank_zero() {
        let mut s = state(5);
        s.flip(4);
        s.flip(3);
        for node in s.global_path() {
            assert_eq!(s.flip_rank(node), 0, "node {node}");
        }
    }

    #[test]
    fn initial_leaf_ranks_follow_bit_reversal_pattern() {
        // With all pointers left, descending right at level ℓ costs 2^ℓ, so the
        // leaf ranks (left to right) on a 4-level tree are:
        // LLL=0, LLR=4, LRL=2, LRR=6, RLL=1, RLR=5, RRL=3, RRR=7.
        let s = state(4);
        assert_eq!(s.level_flip_ranks(3), vec![0, 4, 2, 6, 1, 5, 3, 7]);
        assert_eq!(s.level_flip_ranks(2), vec![0, 2, 1, 3]);
        assert_eq!(s.level_flip_ranks(1), vec![0, 1]);
        assert_eq!(s.level_flip_ranks(0), vec![0]);
    }

    #[test]
    fn ranks_on_each_level_are_a_permutation() {
        let mut s = state(6);
        // Scramble the pointers deterministically.
        for node in s.tree().nodes() {
            if node.index() % 3 == 0 {
                s.toggle(node).unwrap();
            }
        }
        for level in 0..s.tree().num_levels() {
            let mut ranks = s.level_flip_ranks(level);
            ranks.sort_unstable();
            let expected: Vec<u64> = (0..(1u64 << level)).collect();
            assert_eq!(ranks, expected, "level {level}");
        }
    }

    #[test]
    fn closed_form_matches_simulation_on_small_trees() {
        let mut s = state(5);
        // A few deterministic pointer scrambles.
        for (i, node) in s.tree().nodes().enumerate() {
            if i % 2 == 1 {
                s.toggle(node).unwrap();
            }
        }
        for node in s.tree().nodes() {
            assert_eq!(
                s.flip_rank(node),
                s.flip_rank_by_simulation(node),
                "node {node}"
            );
        }
    }

    #[test]
    fn lemma2_recursion_holds() {
        // frnk_T(v) = frnk_T(u) + frnk_T[u](v) * 2^{ℓ(u)} for every ancestor u.
        // We check the parent case on a scrambled 5-level tree: the subtree
        // rank frnk_T[u](v) of a child is 0 or 1 depending on u's pointer.
        let mut s = state(5);
        for node in s.tree().nodes() {
            if node.index() % 5 < 2 {
                s.toggle(node).unwrap();
            }
        }
        for node in s.tree().nodes() {
            if s.tree().is_leaf(node) {
                continue;
            }
            for child in [node.left_child(), node.right_child()] {
                let subtree_rank = u64::from(s.pointed_child(node) != child);
                assert_eq!(
                    s.flip_rank(child),
                    s.flip_rank(node) + subtree_rank * (1u64 << node.level()),
                    "node {node} child {child}"
                );
            }
        }
    }

    #[test]
    fn lemma3_flip_decrements_ranks_of_shallower_levels() {
        // After flip(d): for a node at level d' <= d, the rank becomes
        // 2^{d'} - 1 if it was 0 and decreases by 1 otherwise.
        let mut s = state(5);
        for node in s.tree().nodes() {
            if node.index() % 7 == 3 {
                s.toggle(node).unwrap();
            }
        }
        let d = 4;
        let before: Vec<(NodeId, u64)> = s
            .tree()
            .nodes()
            .filter(|n| n.level() <= d)
            .map(|n| (n, s.flip_rank(n)))
            .collect();
        s.flip(d);
        for (node, old) in before {
            let new = s.flip_rank(node);
            let level = node.level();
            if old == 0 {
                assert_eq!(new, (1u64 << level) - 1, "node {node}");
            } else {
                assert_eq!(new, old - 1, "node {node}");
            }
        }
    }

    #[test]
    fn lemma3_flip_changes_deeper_ranks_by_allowed_amounts() {
        // For a node at level d' > d, the rank either decreases by 1 or
        // increases by 2^d - 1.
        let mut s = state(6);
        for node in s.tree().nodes() {
            if node.index() % 4 == 1 {
                s.toggle(node).unwrap();
            }
        }
        let d = 3;
        let before: Vec<(NodeId, u64)> = s
            .tree()
            .nodes()
            .filter(|n| n.level() > d)
            .map(|n| (n, s.flip_rank(n)))
            .collect();
        s.flip(d);
        for (node, old) in before {
            let new = s.flip_rank(node);
            let decreased = old >= 1 && new == old - 1;
            let increased = new == old + (1u64 << d) - 1;
            assert!(
                decreased || increased,
                "node {node}: rank {old} -> {new} violates Lemma 3"
            );
        }
    }

    #[test]
    fn explicit_pointer_state_rank_example() {
        // Root points right, its right child points left:
        // the node LL (node 3) then has rank contribution 1 (root mismatch).
        let mut s = state(3);
        s.set_pointer(NodeId::ROOT, Direction::Right).unwrap();
        assert_eq!(s.flip_rank(NodeId::new(3)), 1); // L at level-1 matches, root mismatch
        assert_eq!(s.flip_rank(NodeId::new(5)), 0); // RL: root match, node-2 pointer Left match
        assert_eq!(s.flip_rank(NodeId::new(6)), 2); // RR: root match, node-2 mismatch (2^1)
        assert_eq!(s.flip_rank(NodeId::new(4)), 3); // LR: mismatch at root (1) + level 1 (2)
    }

    #[test]
    #[should_panic(expected = "not part of the tree")]
    fn flip_rank_rejects_foreign_node() {
        state(3).flip_rank(NodeId::new(50));
    }
}
