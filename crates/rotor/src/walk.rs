//! Rotor-router walks ("deterministic random walks", Propp machines) on the
//! complete binary tree, and their randomized counterpart.
//!
//! The Rotor-Push algorithm implicitly replaces the random root-to-level-`d`
//! path of Random-Push by the rotor global path. This module exposes the
//! underlying walk abstraction directly: it dispatches "chips" from the root,
//! each following either the rotor pointers (toggling them as it goes — the
//! classical rotor-router) or independent uniform random choices. The key
//! property, checked by the tests, is that per-node visit counts of the rotor
//! walk stay within a small additive discrepancy of the random walk's
//! expectation — the reason the derandomization works so well in practice.

use crate::pointers::RotorState;
use rand::Rng;
use satn_tree::{CompleteTree, NodeId};

/// Dispatches chips from the root to a target level following the rotor
/// pointers, toggling each pointer right after it is used.
///
/// This is the classical rotor-router ("Eulerian walker") restricted to
/// root-to-level paths, which is exactly the sequence of target nodes that
/// consecutive `flip` operations produce.
#[derive(Debug, Clone)]
pub struct RotorWalk {
    state: RotorState,
    target_level: u32,
}

impl RotorWalk {
    /// Creates a rotor walk dispatching chips to `target_level`.
    ///
    /// # Panics
    ///
    /// Panics if `target_level` exceeds the deepest level of the tree.
    pub fn new(tree: CompleteTree, target_level: u32) -> Self {
        assert!(
            target_level <= tree.max_level(),
            "target level {target_level} exceeds tree depth {}",
            tree.max_level()
        );
        RotorWalk {
            state: RotorState::new(tree),
            target_level,
        }
    }

    /// Creates a rotor walk continuing from an existing pointer state.
    pub fn from_state(state: RotorState, target_level: u32) -> Self {
        assert!(target_level <= state.tree().max_level());
        RotorWalk {
            state,
            target_level,
        }
    }

    /// Returns a reference to the current pointer state.
    pub fn state(&self) -> &RotorState {
        &self.state
    }

    /// Dispatches one chip: returns the node at the target level that the
    /// chip reaches, then toggles every pointer the chip used (this is
    /// `P_{target}` followed by `flip(target_level)`).
    pub fn dispatch(&mut self) -> NodeId {
        let destination = self.state.global_path_node(self.target_level);
        self.state.flip(self.target_level);
        destination
    }

    /// Dispatches `count` chips and returns how many landed on each
    /// target-level node (indexed by the node's offset within its level).
    pub fn visit_counts(&mut self, count: u64) -> Vec<u64> {
        let mut counts = vec![0u64; 1usize << self.target_level];
        for _ in 0..count {
            let node = self.dispatch();
            counts[node.offset_in_level() as usize] += 1;
        }
        counts
    }
}

impl Iterator for RotorWalk {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        Some(self.dispatch())
    }
}

/// Dispatches chips from the root to a target level with independent uniform
/// left/right choices — the randomized counterpart of [`RotorWalk`], used by
/// Random-Push.
#[derive(Debug)]
pub struct RandomWalk<R> {
    tree: CompleteTree,
    target_level: u32,
    rng: R,
}

impl<R: Rng> RandomWalk<R> {
    /// Creates a random walk dispatching chips to `target_level`.
    ///
    /// # Panics
    ///
    /// Panics if `target_level` exceeds the deepest level of the tree.
    pub fn new(tree: CompleteTree, target_level: u32, rng: R) -> Self {
        assert!(target_level <= tree.max_level());
        RandomWalk {
            tree,
            target_level,
            rng,
        }
    }

    /// Dispatches one chip and returns the target-level node it reaches.
    pub fn dispatch(&mut self) -> NodeId {
        let offset = self.rng.gen_range(0..(1u32 << self.target_level));
        NodeId::from_level_offset(self.target_level, offset)
    }

    /// Dispatches `count` chips and returns per-node visit counts.
    pub fn visit_counts(&mut self, count: u64) -> Vec<u64> {
        let mut counts = vec![0u64; 1usize << self.target_level];
        for _ in 0..count {
            let node = self.dispatch();
            counts[node.offset_in_level() as usize] += 1;
        }
        counts
    }

    /// Returns the tree the walk runs on.
    pub fn tree(&self) -> CompleteTree {
        self.tree
    }
}

/// Maximum absolute deviation of per-node visit counts from the ideal uniform
/// share `total / slots`.
pub fn max_discrepancy(counts: &[u64]) -> f64 {
    if counts.is_empty() {
        return 0.0;
    }
    let total: u64 = counts.iter().sum();
    let ideal = total as f64 / counts.len() as f64;
    counts
        .iter()
        .map(|&c| (c as f64 - ideal).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tree(levels: u32) -> CompleteTree {
        CompleteTree::with_levels(levels).unwrap()
    }

    #[test]
    fn rotor_walk_cycles_through_all_level_nodes() {
        let mut walk = RotorWalk::new(tree(5), 4);
        let first_cycle: Vec<NodeId> = (0..16).map(|_| walk.dispatch()).collect();
        let mut sorted = first_cycle.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 16, "each node visited once per 2^d chips");
        // The next cycle repeats the same order (the rotor walk is periodic
        // with period 2^d once pointers return to their initial state).
        let second_cycle: Vec<NodeId> = (0..16).map(|_| walk.dispatch()).collect();
        assert_eq!(first_cycle, second_cycle);
    }

    #[test]
    fn rotor_walk_discrepancy_is_at_most_one_per_node() {
        // Perfect balance up to rounding for any chip count.
        for count in [1u64, 5, 17, 100, 1000] {
            let mut walk = RotorWalk::new(tree(6), 5);
            let counts = walk.visit_counts(count);
            assert!(
                max_discrepancy(&counts) <= 1.0 + 1e-9,
                "count {count}: discrepancy {}",
                max_discrepancy(&counts)
            );
        }
    }

    #[test]
    fn rotor_walk_beats_random_walk_balance() {
        let chips = 4096u64;
        let mut rotor = RotorWalk::new(tree(7), 6);
        let rotor_counts = rotor.visit_counts(chips);
        let mut random = RandomWalk::new(tree(7), 6, StdRng::seed_from_u64(3));
        let random_counts = random.visit_counts(chips);
        assert!(max_discrepancy(&rotor_counts) <= max_discrepancy(&random_counts));
    }

    #[test]
    fn random_walk_counts_sum_to_total_and_hit_valid_nodes() {
        let mut random = RandomWalk::new(tree(4), 3, StdRng::seed_from_u64(11));
        let counts = random.visit_counts(500);
        assert_eq!(counts.iter().sum::<u64>(), 500);
        assert_eq!(counts.len(), 8);
        let node = random.dispatch();
        assert_eq!(node.level(), 3);
        assert!(random.tree().contains(node));
    }

    #[test]
    fn rotor_walk_iterator_interface() {
        let walk = RotorWalk::new(tree(3), 2);
        let nodes: Vec<NodeId> = walk.take(4).collect();
        assert_eq!(nodes.len(), 4);
        let mut unique = nodes.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 4);
    }

    #[test]
    fn dispatch_matches_flip_rank_order() {
        // The k-th dispatched node is exactly the node whose flip-rank is k
        // in the initial state (for k < 2^d).
        let t = tree(5);
        let initial = RotorState::new(t);
        let mut walk = RotorWalk::from_state(initial.clone(), 4);
        for k in 0..16u64 {
            let node = walk.dispatch();
            assert_eq!(initial.flip_rank(node), k, "dispatch {k}");
        }
    }

    #[test]
    fn max_discrepancy_handles_edge_cases() {
        assert_eq!(max_discrepancy(&[]), 0.0);
        assert_eq!(max_discrepancy(&[5]), 0.0);
        assert!((max_discrepancy(&[2, 0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "exceeds tree depth")]
    fn rotor_walk_rejects_too_deep_target() {
        RotorWalk::new(tree(3), 3);
    }
}
