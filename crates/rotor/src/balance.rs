//! Discrete load balancing with rotor walks.
//!
//! Rotor walks were popularised in distributed computing as a deterministic
//! token-distribution mechanism (Akbari & Berenbrink, SPAA 2013 — reference
//! 2 of the paper): every vertex forwards its tokens to its neighbours in
//! round-robin order, and the resulting loads stay within a small additive
//! discrepancy of the idealised continuous diffusion. This module implements
//! that process on the same adjacency-list graphs as
//! [`crate::graph::RotorGraph`], so the examples and benches can demonstrate
//! the load-balancing application the paper cites as motivation for the rotor
//! mechanism.

use crate::graph::GraphError;

/// A rotor-router load balancer: tokens are forwarded along out-edges in
/// round-robin order, one round at a time.
///
/// # Examples
///
/// ```
/// use satn_rotor::balance::RotorBalancer;
///
/// // A 4-cycle with all 100 tokens initially at vertex 0.
/// let adjacency = vec![vec![1, 3], vec![2, 0], vec![3, 1], vec![0, 2]];
/// let mut balancer = RotorBalancer::new(adjacency, vec![100, 0, 0, 0])?;
/// balancer.run(50);
/// assert_eq!(balancer.total_tokens(), 100);
/// assert!(balancer.discrepancy() <= 4);
/// # Ok::<(), satn_rotor::graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RotorBalancer {
    adjacency: Vec<Vec<usize>>,
    pointer: Vec<usize>,
    loads: Vec<u64>,
    rounds: u64,
}

impl RotorBalancer {
    /// Creates a balancer for the given adjacency lists and initial loads.
    ///
    /// # Errors
    ///
    /// Returns the same validation errors as
    /// [`RotorGraph::new`](crate::graph::RotorGraph::new), plus
    /// [`GraphError::EdgeOutOfRange`] if `initial_loads` has the wrong length
    /// (reported with the length as the offending target).
    pub fn new(adjacency: Vec<Vec<usize>>, initial_loads: Vec<u64>) -> Result<Self, GraphError> {
        if adjacency.is_empty() {
            return Err(GraphError::Empty);
        }
        let num_vertices = adjacency.len();
        for (vertex, neighbours) in adjacency.iter().enumerate() {
            if neighbours.is_empty() {
                return Err(GraphError::Sink { vertex });
            }
            for &target in neighbours {
                if target >= num_vertices {
                    return Err(GraphError::EdgeOutOfRange {
                        vertex,
                        target,
                        num_vertices,
                    });
                }
            }
        }
        if initial_loads.len() != num_vertices {
            return Err(GraphError::EdgeOutOfRange {
                vertex: 0,
                target: initial_loads.len(),
                num_vertices,
            });
        }
        Ok(RotorBalancer {
            pointer: vec![0; num_vertices],
            adjacency,
            loads: initial_loads,
            rounds: 0,
        })
    }

    /// The current load of every vertex.
    pub fn loads(&self) -> &[u64] {
        &self.loads
    }

    /// The total number of tokens in the system (invariant across rounds).
    pub fn total_tokens(&self) -> u64 {
        self.loads.iter().sum()
    }

    /// The number of rounds executed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// The difference between the largest and smallest current load.
    pub fn discrepancy(&self) -> u64 {
        let max = self.loads.iter().copied().max().unwrap_or(0);
        let min = self.loads.iter().copied().min().unwrap_or(0);
        max - min
    }

    /// Executes one synchronous round of *lazy* rotor diffusion: every vertex
    /// distributes its tokens round-robin over the slots `(self, n_1, …,
    /// n_d)` — keeping roughly a `1/(d+1)` fraction and forwarding the rest.
    ///
    /// The self-slot is the standard laziness trick that prevents the token
    /// mass from oscillating on bipartite topologies (such as hypercubes and
    /// even cycles); the rotor pointer makes the rounding deterministic and
    /// fair across rounds.
    pub fn round(&mut self) {
        let mut next = vec![0u64; self.loads.len()];
        for vertex in 0..self.loads.len() {
            let neighbours = &self.adjacency[vertex];
            let slots = neighbours.len() + 1; // self + neighbours
            let tokens = self.loads[vertex];
            // Each slot receives ⌊tokens/slots⌋ tokens plus one extra for the
            // first `tokens mod slots` rotor positions; the rotor pointer then
            // advances by `tokens mod slots`.
            let share = tokens / slots as u64;
            let remainder = (tokens % slots as u64) as usize;
            let extra = |offset: usize| -> u64 {
                let position = (offset + slots - self.pointer[vertex]) % slots;
                u64::from(position < remainder)
            };
            next[vertex] += share + extra(0);
            for (index, &neighbour) in neighbours.iter().enumerate() {
                next[neighbour] += share + extra(index + 1);
            }
            self.pointer[vertex] = (self.pointer[vertex] + remainder) % slots;
        }
        self.loads = next;
        self.rounds += 1;
    }

    /// Executes `rounds` rounds.
    pub fn run(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.round();
        }
    }
}

/// Builds the adjacency list of a `d`-dimensional hypercube (`2^d` vertices,
/// each adjacent to the `d` vertices that differ in one bit) — the standard
/// well-connected test topology for load balancing.
///
/// # Panics
///
/// Panics if `dimension` is zero or larger than 20.
pub fn hypercube(dimension: u32) -> Vec<Vec<usize>> {
    assert!(
        (1..=20).contains(&dimension),
        "dimension must be between 1 and 20"
    );
    let n = 1usize << dimension;
    (0..n)
        .map(|v| (0..dimension).map(|bit| v ^ (1 << bit)).collect())
        .collect()
}

/// Builds the adjacency list of a cycle with `n` vertices (each vertex linked
/// to both neighbours) — the standard poorly-connected test topology.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Vec<Vec<usize>> {
    assert!(n >= 3, "a cycle needs at least three vertices");
    (0..n).map(|v| vec![(v + 1) % n, (v + n - 1) % n]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_inputs() {
        assert!(matches!(
            RotorBalancer::new(vec![], vec![]),
            Err(GraphError::Empty)
        ));
        assert!(matches!(
            RotorBalancer::new(vec![vec![0], vec![]], vec![0, 0]),
            Err(GraphError::Sink { vertex: 1 })
        ));
        assert!(RotorBalancer::new(vec![vec![0]], vec![1, 2]).is_err());
    }

    #[test]
    fn tokens_are_conserved_across_rounds() {
        let mut balancer = RotorBalancer::new(hypercube(4), {
            let mut loads = vec![0u64; 16];
            loads[0] = 12_345;
            loads[5] = 678;
            loads
        })
        .unwrap();
        for _ in 0..25 {
            balancer.round();
            assert_eq!(balancer.total_tokens(), 13_023);
        }
        assert_eq!(balancer.rounds(), 25);
    }

    #[test]
    fn hypercubes_balance_to_small_discrepancy() {
        let dimension = 6;
        let n = 1usize << dimension;
        let mut loads = vec![0u64; n];
        loads[0] = (n as u64) * 1_000; // heavily concentrated start
        let mut balancer = RotorBalancer::new(hypercube(dimension), loads).unwrap();
        let initial = balancer.discrepancy();
        balancer.run(60);
        // Akbari–Berenbrink style guarantee: the rotor-router discrepancy on a
        // d-regular well-connected graph is O(d log n) after the mixing time;
        // we only assert the qualitative drop here.
        assert!(balancer.discrepancy() < initial / 100);
        assert!(balancer.discrepancy() <= 64);
    }

    #[test]
    fn cycles_balance_more_slowly_than_hypercubes() {
        let n = 64usize;
        let make = |adjacency: Vec<Vec<usize>>| {
            let mut loads = vec![0u64; n];
            loads[0] = 64_000;
            RotorBalancer::new(adjacency, loads).unwrap()
        };
        let mut cycle_balancer = make(cycle(n));
        let mut cube_balancer = make(hypercube(6));
        cycle_balancer.run(30);
        cube_balancer.run(30);
        assert!(cube_balancer.discrepancy() < cycle_balancer.discrepancy());
    }

    #[test]
    fn balanced_input_stays_balanced() {
        let mut balancer = RotorBalancer::new(hypercube(3), vec![100; 8]).unwrap();
        balancer.run(10);
        assert_eq!(balancer.discrepancy(), 0);
        assert!(balancer.loads().iter().all(|&load| load == 100));
    }

    #[test]
    fn topology_builders_have_the_expected_shape() {
        let cube = hypercube(3);
        assert_eq!(cube.len(), 8);
        assert!(cube.iter().all(|neighbours| neighbours.len() == 3));
        assert!(cube[0].contains(&1) && cube[0].contains(&2) && cube[0].contains(&4));
        let ring = cycle(5);
        assert_eq!(ring.len(), 5);
        assert_eq!(ring[0], vec![1, 4]);
        assert_eq!(ring[4], vec![0, 3]);
    }

    #[test]
    #[should_panic(expected = "at least three")]
    fn tiny_cycles_are_rejected() {
        cycle(2);
    }
}
