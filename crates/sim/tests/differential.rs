//! Differential and property tests for the simulation engine: random request
//! sequences across all seven `AlgorithmKind`s, with the occupancy-bijection
//! and per-request cost invariants enforced at every checkpoint through the
//! `SimRunner` invariant hooks, plus batch-vs-stepwise equivalence.

use proptest::prelude::*;
use satn_core::{AlgorithmKind, SelfAdjustingTree};
use satn_sim::{
    Checkpoints, InvariantObserver, InvariantViolation, Observer, Scenario, SimRunner, StepRecord,
    WorkloadSpec,
};
use satn_tree::{CostSummary, ElementId, Occupancy};
use satn_workloads::Workload;

fn arb_requests(levels: u32, max_len: usize) -> impl Strategy<Value = Vec<ElementId>> {
    let n = (1u32 << levels) - 1;
    proptest::collection::vec((0..n).prop_map(ElementId::new), 1..max_len)
}

/// An observer that additionally cross-checks, at every checkpoint, that the
/// occupancy bijection really is the identity under composition — the
/// explicit `node_of ∘ element_of = id` form of the satellite task.
#[derive(Default)]
struct BijectionProbe {
    checkpoints_seen: u64,
}

impl Observer for BijectionProbe {
    fn on_checkpoint(
        &mut self,
        step: u64,
        network: &dyn SelfAdjustingTree,
    ) -> Result<(), InvariantViolation> {
        self.checkpoints_seen += 1;
        let occupancy = network.occupancy();
        for node in occupancy.tree().nodes() {
            if occupancy.node_of(occupancy.element_at(node)) != node {
                return Err(InvariantViolation {
                    step,
                    algorithm: network.name().to_owned(),
                    detail: format!("node_of(element_at({node})) != {node}"),
                });
            }
        }
        Ok(())
    }
}

/// An observer that recomputes the adjustment cost from occupancy deltas:
/// each swap moves exactly two elements one step, so the number of elements
/// whose node changed during a request is at most `2 × adjustment + 1` (the
/// requested element rides along the swap chain) and a request with zero
/// reported swaps must leave every element in place. The baseline occupancy
/// is captured by `on_start` (after any offline setup such as Static-Opt's
/// layout), so the very first request is checked too.
#[derive(Default)]
struct SwapAccountingProbe {
    before: Option<Occupancy>,
}

impl Observer for SwapAccountingProbe {
    fn wants_steps(&self) -> bool {
        true
    }

    fn on_start(&mut self, network: &dyn SelfAdjustingTree) -> Result<(), InvariantViolation> {
        self.before = Some(network.occupancy().clone());
        Ok(())
    }

    fn on_step(
        &mut self,
        record: &StepRecord,
        network: &dyn SelfAdjustingTree,
    ) -> Result<(), InvariantViolation> {
        let after = network.occupancy();
        let before = self
            .before
            .as_ref()
            .expect("on_start captures the baseline before any step");
        let moved = before
            .iter()
            .filter(|&(node, element)| after.node_of(element) != node)
            .count() as u64;
        let allowed = 2 * record.cost.adjustment;
        if moved > allowed {
            return Err(InvariantViolation {
                step: record.step,
                algorithm: network.name().to_owned(),
                detail: format!(
                    "{moved} elements moved but only {} swaps were reported",
                    record.cost.adjustment
                ),
            });
        }
        self.before = Some(after.clone());
        Ok(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The satellite property: random request sequences across all seven
    /// algorithms keep the occupancy bijection and the per-request cost laws
    /// (`access = level + 1`, adjustment accounting) at every checkpoint.
    #[test]
    fn all_algorithms_respect_invariants_at_every_checkpoint(
        requests in arb_requests(5, 150),
        seed in any::<u64>(),
    ) {
        let n = (1u32 << 5) - 1;
        let workload = Workload::new("random", n, requests.clone());
        for kind in AlgorithmKind::ALL {
            let mut scenario = Scenario::new(
                kind,
                WorkloadSpec::Fixed(workload.clone()),
                5,
                requests.len(),
                seed,
            );
            scenario.checkpoints = Checkpoints::every(16);
            let mut invariants = InvariantObserver::new();
            let mut bijection = BijectionProbe::default();
            let mut accounting = SwapAccountingProbe::default();
            let result = SimRunner::new()
                .run_with(
                    &scenario,
                    &mut [&mut invariants, &mut bijection, &mut accounting],
                )
                .unwrap_or_else(|err| panic!("{kind}: {err}"));
            prop_assert_eq!(result.summary.requests(), requests.len() as u64);
            prop_assert!(invariants.checked_steps() == requests.len() as u64);
            prop_assert!(bijection.checkpoints_seen >= 1);
        }
    }

    /// Batched serving (the `serve_batch` fast paths) and stepwise serving
    /// produce identical summaries and identical final states for every
    /// algorithm on random sequences.
    #[test]
    fn batched_and_stepwise_grid_runs_are_equivalent(
        requests in arb_requests(6, 200),
        seed in any::<u64>(),
    ) {
        let n = (1u32 << 6) - 1;
        let workload = Workload::new("random", n, requests.clone());
        for kind in AlgorithmKind::ALL {
            let scenario = Scenario::new(
                kind,
                WorkloadSpec::Fixed(workload.clone()),
                6,
                requests.len(),
                seed,
            );
            let batched = SimRunner::new().run(&scenario).unwrap();
            let mut invariants = InvariantObserver::new();
            let stepwise = SimRunner::new()
                .run_with(&scenario, &mut [&mut invariants])
                .unwrap_or_else(|err| panic!("{kind}: {err}"));
            prop_assert_eq!(&batched, &stepwise, "{}", kind);
        }
    }

    /// Deterministic replay: the engine's checkpoint fingerprints coincide
    /// across repeated runs of the same scenario for every algorithm and
    /// every generative workload family.
    #[test]
    fn generative_scenarios_replay_deterministically(seed in any::<u64>()) {
        for kind in [AlgorithmKind::RotorPush, AlgorithmKind::RandomPush, AlgorithmKind::MaxPush] {
            for spec in WorkloadSpec::paper_families() {
                let mut scenario = Scenario::new(kind, spec, 5, 400, seed);
                scenario.checkpoints = Checkpoints::every(100);
                prop_assert!(
                    SimRunner::new().replay_matches(&scenario).unwrap(),
                    "{} diverged",
                    scenario.name()
                );
            }
        }
    }
}

/// Serving through `serve_batch` directly (no engine) also matches a manual
/// serve loop — the trait-level contract the engine relies on.
#[test]
fn trait_level_batch_equivalence_on_a_fixed_sequence() {
    let requests: Vec<ElementId> = (0u32..300).map(|i| ElementId::new((i * 13) % 63)).collect();
    for kind in AlgorithmKind::ALL {
        let tree = satn_tree::CompleteTree::with_levels(6).unwrap();
        let mut reference = kind
            .instantiate(Occupancy::identity(tree), 5, &requests)
            .unwrap();
        let mut batched = kind
            .instantiate(Occupancy::identity(tree), 5, &requests)
            .unwrap();
        let mut reference_summary = CostSummary::new();
        for &request in &requests {
            reference_summary.record(reference.serve(request).unwrap());
        }
        let mut batched_summary = CostSummary::new();
        batched
            .serve_batch(&requests, &mut batched_summary)
            .unwrap();
        assert_eq!(reference_summary, batched_summary, "{kind}");
        assert_eq!(reference.occupancy(), batched.occupancy(), "{kind}");
    }
}
