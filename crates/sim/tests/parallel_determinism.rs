//! Regression test for the determinism guarantee of the parallel execution
//! layer: running the sim-smoke scenario grid with 1, 2, and all-core worker
//! pools must produce byte-identical checkpoint fingerprints and cost
//! summaries. Rotor walks are deterministic — parallelism may only change
//! wall-clock time, never a result.

use satn_core::AlgorithmKind;
use satn_sim::{
    Checkpoints, Parallelism, Scenario, ScenarioGrid, ScenarioResult, SimRunner, WorkloadSpec,
};

/// The sim-smoke grid at a test-friendly scale: all 7 algorithms × the four
/// paper workload families × two tree sizes, with interior checkpoints so
/// the fingerprint comparison covers mid-run state, not just the final one.
fn smoke_grid() -> ScenarioGrid {
    let requests = 1_500;
    let mut grid = ScenarioGrid::new(
        AlgorithmKind::ALL,
        WorkloadSpec::paper_families(),
        [5u32, 8],
        requests,
        2022,
    );
    grid.checkpoints = Checkpoints::every(500);
    grid
}

fn run_at(parallelism: Parallelism, check_invariants: bool) -> Vec<(Scenario, ScenarioResult)> {
    SimRunner::new()
        .with_parallelism(parallelism)
        .run_grid(&smoke_grid(), check_invariants)
        .expect("the smoke grid runs clean")
}

#[test]
fn grid_fingerprints_are_identical_at_one_two_and_all_threads() {
    let serial = run_at(Parallelism::Serial, false);
    assert_eq!(serial.len(), smoke_grid().len());
    for parallelism in [Parallelism::Threads(2), Parallelism::Auto] {
        let parallel = run_at(parallelism, false);
        assert_eq!(serial.len(), parallel.len(), "{parallelism:?}");
        for ((serial_scenario, serial_result), (parallel_scenario, parallel_result)) in
            serial.iter().zip(&parallel)
        {
            assert_eq!(
                serial_scenario.name(),
                parallel_scenario.name(),
                "{parallelism:?}: grid order must be preserved"
            );
            assert_eq!(
                serial_result.summary,
                parallel_result.summary,
                "{parallelism:?}: cost summary diverged for {}",
                serial_scenario.name()
            );
            // Checkpoint snapshots are the replay fingerprint of a run:
            // every (step, snapshot-text) pair must match byte for byte.
            assert_eq!(
                serial_result.checkpoints,
                parallel_result.checkpoints,
                "{parallelism:?}: checkpoint fingerprints diverged for {}",
                serial_scenario.name()
            );
        }
    }
}

#[test]
fn invariant_checked_runs_are_equally_deterministic() {
    // The stepwise (observer-driven) engine path takes a different serving
    // route through each cell; it must agree across thread counts too.
    let serial = run_at(Parallelism::Serial, true);
    let parallel = run_at(Parallelism::Threads(2), true);
    assert_eq!(serial, parallel);
}

#[test]
fn erroring_cells_are_reported_in_grid_order_at_any_parallelism() {
    // A fixed workload whose requests fall outside the tree fails every
    // cell it appears in; the reported failing cell must be the grid-order
    // first at every thread count (completion order must not leak through).
    let workload =
        satn_workloads::Workload::new("oversized", 1_000, vec![satn_tree::ElementId::new(999); 10]);
    let grid = ScenarioGrid::new(
        [AlgorithmKind::RotorPush, AlgorithmKind::MoveToFront],
        [WorkloadSpec::Uniform, WorkloadSpec::Fixed(workload)],
        [4u32],
        10,
        7,
    );
    let mut failing_names = Vec::new();
    for parallelism in [
        Parallelism::Serial,
        Parallelism::Threads(2),
        Parallelism::Auto,
    ] {
        let failure = SimRunner::new()
            .with_parallelism(parallelism)
            .run_grid(&grid, false)
            .expect_err("the oversized workload must fail");
        failing_names.push(failure.0.name());
    }
    assert_eq!(failing_names[0], failing_names[1]);
    assert_eq!(failing_names[0], failing_names[2]);
}
