//! Observer hooks: per-step and per-checkpoint callbacks the engine invokes
//! while driving an algorithm, plus the built-in invariant checker and
//! snapshot recorder.

use satn_core::SelfAdjustingTree;
use satn_tree::{ElementId, ServeCost};
use std::fmt;

/// Everything known about one served request at observation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepRecord {
    /// Zero-based index of the request in the scenario's sequence.
    pub step: u64,
    /// The requested element.
    pub element: ElementId,
    /// The cost the algorithm reported for the request.
    pub cost: ServeCost,
    /// The access cost implied by the occupancy *before* the request was
    /// served (`level + 1`), captured by the engine so observers can check
    /// the reported access cost against the model.
    pub access_cost_before: u64,
}

/// A violation reported by an observer; aborts the run that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// The step at which the violation was detected (the number of requests
    /// served so far).
    pub step: u64,
    /// The name of the algorithm under test.
    pub algorithm: String,
    /// Human-readable description of what failed.
    pub detail: String,
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invariant violated at step {} by {}: {}",
            self.step, self.algorithm, self.detail
        )
    }
}

impl std::error::Error for InvariantViolation {}

/// A pluggable observation hook.
///
/// Per-step hooks see every request with its cost; per-checkpoint hooks see
/// the network state at scenario-defined pause points. Observers that only
/// implement `on_checkpoint` keep the engine on its batched fast path;
/// implementing [`Observer::wants_steps`] to return `true` switches the run
/// to request-by-request serving so `on_step` fires.
pub trait Observer {
    /// Whether this observer needs [`Observer::on_step`] to fire (disables
    /// batched serving for the run).
    fn wants_steps(&self) -> bool {
        false
    }

    /// Called once before the first request, with the network in its initial
    /// state (after any offline setup such as Static-Opt's layout).
    ///
    /// # Errors
    ///
    /// Returns an [`InvariantViolation`] to abort the run.
    fn on_start(&mut self, network: &dyn SelfAdjustingTree) -> Result<(), InvariantViolation> {
        let _ = network;
        Ok(())
    }

    /// Called after every served request, if [`Observer::wants_steps`].
    ///
    /// # Errors
    ///
    /// Returns an [`InvariantViolation`] to abort the run.
    fn on_step(
        &mut self,
        record: &StepRecord,
        network: &dyn SelfAdjustingTree,
    ) -> Result<(), InvariantViolation> {
        let _ = (record, network);
        Ok(())
    }

    /// Called at every checkpoint (including the final one), with the number
    /// of requests served so far.
    ///
    /// # Errors
    ///
    /// Returns an [`InvariantViolation`] to abort the run.
    fn on_checkpoint(
        &mut self,
        step: u64,
        network: &dyn SelfAdjustingTree,
    ) -> Result<(), InvariantViolation> {
        let _ = (step, network);
        Ok(())
    }
}

/// The built-in invariant checker enforcing the paper's model:
///
/// * **Occupancy bijection** (checkpoints): `node_of ∘ element_of = id` — the
///   element-to-node mapping stays a bijection.
/// * **Rotor-state invariant** (checkpoints): if the algorithm exposes a
///   rotor state, the flip-ranks of every level form a permutation of
///   `0..2^level` (Definition 3 of the paper).
/// * **Access-cost law** (steps): the reported access cost equals
///   `level + 1` for the element's level *before* serving.
/// * **Adjustment accounting** (steps): static algorithms report zero
///   adjustment; self-adjusting ones stay within the generous global bound
///   `2·depth² + depth + 1` (Max-Push's worst case; the push algorithms stay
///   far below it).
#[derive(Debug, Clone, Copy, Default)]
pub struct InvariantObserver {
    checked_steps: u64,
    checked_checkpoints: u64,
}

impl InvariantObserver {
    /// Creates the checker.
    pub fn new() -> Self {
        Self::default()
    }

    /// How many per-step checks have run.
    pub fn checked_steps(&self) -> u64 {
        self.checked_steps
    }

    /// How many checkpoint checks have run.
    pub fn checked_checkpoints(&self) -> u64 {
        self.checked_checkpoints
    }

    fn violation(
        step: u64,
        network: &dyn SelfAdjustingTree,
        detail: impl Into<String>,
    ) -> InvariantViolation {
        InvariantViolation {
            step,
            algorithm: network.name().to_owned(),
            detail: detail.into(),
        }
    }
}

impl Observer for InvariantObserver {
    fn wants_steps(&self) -> bool {
        true
    }

    fn on_step(
        &mut self,
        record: &StepRecord,
        network: &dyn SelfAdjustingTree,
    ) -> Result<(), InvariantViolation> {
        self.checked_steps += 1;
        if record.cost.access != record.access_cost_before {
            return Err(Self::violation(
                record.step,
                network,
                format!(
                    "request {} reported access cost {}, expected level + 1 = {}",
                    record.element, record.cost.access, record.access_cost_before
                ),
            ));
        }
        if !network.is_self_adjusting() && record.cost.adjustment != 0 {
            return Err(Self::violation(
                record.step,
                network,
                format!(
                    "static algorithm paid adjustment cost {}",
                    record.cost.adjustment
                ),
            ));
        }
        let depth = record.access_cost_before - 1;
        let bound = 2 * depth * depth + depth + 1;
        if record.cost.adjustment > bound {
            return Err(Self::violation(
                record.step,
                network,
                format!(
                    "adjustment cost {} exceeds the depth-{} bound {}",
                    record.cost.adjustment, depth, bound
                ),
            ));
        }
        Ok(())
    }

    fn on_checkpoint(
        &mut self,
        step: u64,
        network: &dyn SelfAdjustingTree,
    ) -> Result<(), InvariantViolation> {
        self.checked_checkpoints += 1;
        if !network.occupancy().is_consistent() {
            return Err(Self::violation(
                step,
                network,
                "occupancy is not a bijection (node_of ∘ element_of ≠ id)",
            ));
        }
        if let Some(rotors) = network.rotors() {
            for level in 0..rotors.tree().num_levels() {
                let mut ranks = rotors.level_flip_ranks(level);
                ranks.sort_unstable();
                let expected: Vec<u64> = (0..(1u64 << level)).collect();
                if ranks != expected {
                    return Err(Self::violation(
                        step,
                        network,
                        format!("level-{level} flip-ranks are not a permutation"),
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Records an occupancy snapshot (the text format of
/// [`satn_tree::snapshot`]) at every checkpoint — the raw material of
/// deterministic replay verification.
#[derive(Debug, Clone, Default)]
pub struct SnapshotObserver {
    snapshots: Vec<(u64, String)>,
}

impl SnapshotObserver {
    /// Creates the recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded `(step, snapshot)` pairs, in checkpoint order.
    pub fn snapshots(&self) -> &[(u64, String)] {
        &self.snapshots
    }

    /// Consumes the recorder, returning the snapshots.
    pub fn into_snapshots(self) -> Vec<(u64, String)> {
        self.snapshots
    }
}

impl Observer for SnapshotObserver {
    fn on_checkpoint(
        &mut self,
        step: u64,
        network: &dyn SelfAdjustingTree,
    ) -> Result<(), InvariantViolation> {
        self.snapshots.push((
            step,
            satn_tree::snapshot::occupancy_to_string(network.occupancy()),
        ));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use satn_core::{RotorPush, StaticOblivious};
    use satn_tree::{CompleteTree, Occupancy};

    fn identity(levels: u32) -> Occupancy {
        Occupancy::identity(CompleteTree::with_levels(levels).unwrap())
    }

    #[test]
    fn invariant_observer_accepts_a_healthy_rotor_push() {
        let mut network = RotorPush::new(identity(4));
        let mut observer = InvariantObserver::new();
        let element = ElementId::new(5);
        let before = network.occupancy().access_cost(element);
        let cost = network.serve(element).unwrap();
        let record = StepRecord {
            step: 0,
            element,
            cost,
            access_cost_before: before,
        };
        observer.on_step(&record, &network).unwrap();
        observer.on_checkpoint(1, &network).unwrap();
        assert_eq!(observer.checked_steps(), 1);
        assert_eq!(observer.checked_checkpoints(), 1);
    }

    #[test]
    fn invariant_observer_rejects_wrong_access_costs() {
        let network = StaticOblivious::new(identity(3));
        let mut observer = InvariantObserver::new();
        let record = StepRecord {
            step: 3,
            element: ElementId::new(4),
            cost: ServeCost::new(9, 0),
            access_cost_before: 3,
        };
        let violation = observer.on_step(&record, &network).unwrap_err();
        assert_eq!(violation.step, 3);
        assert!(violation.to_string().contains("access cost"));
    }

    #[test]
    fn invariant_observer_rejects_adjusting_static_trees() {
        let network = StaticOblivious::new(identity(3));
        let mut observer = InvariantObserver::new();
        let record = StepRecord {
            step: 0,
            element: ElementId::new(4),
            cost: ServeCost::new(3, 2),
            access_cost_before: 3,
        };
        let violation = observer.on_step(&record, &network).unwrap_err();
        assert!(violation.to_string().contains("static algorithm"));
    }

    #[test]
    fn snapshot_observer_records_checkpoints_in_order() {
        let mut network = RotorPush::new(identity(3));
        let mut observer = SnapshotObserver::new();
        observer.on_checkpoint(0, &network).unwrap();
        network.serve(ElementId::new(6)).unwrap();
        observer.on_checkpoint(1, &network).unwrap();
        let snapshots = observer.into_snapshots();
        assert_eq!(snapshots.len(), 2);
        assert_eq!(snapshots[0].0, 0);
        assert_ne!(snapshots[0].1, snapshots[1].1);
        // Snapshots parse back into occupancies.
        satn_tree::snapshot::occupancy_from_str(&snapshots[1].1).unwrap();
    }
}
