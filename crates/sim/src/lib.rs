//! # satn-sim
//!
//! The scenario-simulation engine for self-adjusting tree networks: a
//! declarative `algorithm × workload × tree-size` grid runner with batched
//! serving, streaming request sources, pluggable observers, invariant
//! checking, and deterministic replay.
//!
//! The paper's evaluation (Section 6) — and any scaling experiment beyond
//! it — is a grid of runs. This crate turns each cell of that grid into a
//! value:
//!
//! * [`Scenario`] — one fully determined run: an [`AlgorithmKind`], a
//!   [`WorkloadSpec`] (instantiated lazily as a stream), a tree size in
//!   levels, a request count, a base seed, a [`Checkpoints`] cadence and an
//!   [`InitialPlacement`],
//! * [`ScenarioGrid`] — the cartesian product of the three axes,
//! * [`SimRunner`] — the engine: drives any
//!   [`SelfAdjustingTree`](satn_core::SelfAdjustingTree) through the
//!   scenario's stream, using the allocation-free
//!   [`serve_batch`](satn_core::SelfAdjustingTree::serve_batch) fast path
//!   between checkpoints unless an attached [`Observer`] asks for per-step
//!   records,
//! * [`InvariantObserver`] — the built-in model checker: occupancy
//!   bijection, rotor-state flip-rank permutations, the `access = level + 1`
//!   cost law, and adjustment-cost accounting,
//! * [`SnapshotObserver`] / [`ScenarioResult::checkpoints`] — occupancy
//!   snapshots at every checkpoint, giving every run a replay fingerprint
//!   ([`SimRunner::replay_matches`] verifies determinism end to end).
//!
//! ## Example
//!
//! ```
//! use satn_sim::{Checkpoints, InvariantObserver, Scenario, SimRunner, WorkloadSpec};
//! use satn_core::AlgorithmKind;
//!
//! // Rotor-Push on a 63-node tree, 2000 temporally local requests.
//! let mut scenario = Scenario::new(
//!     AlgorithmKind::RotorPush,
//!     WorkloadSpec::Temporal { p: 0.9 },
//!     6,      // levels => 2^6 - 1 = 63 nodes
//!     2_000,  // requests
//!     42,     // seed
//! );
//! scenario.checkpoints = Checkpoints::every(500);
//!
//! let runner = SimRunner::new();
//! let mut invariants = InvariantObserver::new();
//! let result = runner.run_with(&scenario, &mut [&mut invariants])?;
//!
//! assert_eq!(result.summary.requests(), 2_000);
//! assert_eq!(result.checkpoints.len(), 4); // 500, 1000, 1500, 2000
//! // High temporal locality => far cheaper than the worst case.
//! assert!(result.summary.mean_total() < 12.0);
//! // The same scenario replays to the identical state, snapshot for snapshot.
//! assert!(runner.replay_matches(&scenario)?);
//! # Ok::<(), satn_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod observer;
mod runner;
mod scenario;
mod sharded;

pub use observer::{InvariantObserver, InvariantViolation, Observer, SnapshotObserver, StepRecord};
pub use runner::{ScenarioResult, SimError, SimRunner, DEFAULT_BATCH_SIZE};
pub use scenario::{
    Checkpoints, InitialPlacement, ParseWorkloadError, Scenario, ScenarioGrid, WorkloadSpec,
};
pub use sharded::{ReshardSchedule, ShardedReplay, ShardedScenario};

// Re-exported so sharded scenarios can be configured without a direct
// `satn-workloads` dependency.
pub use satn_workloads::shard::{
    EpochedPartition, PartitionEpoch, ReshardEvent, ReshardPlan, ReshardPolicy, ShardRouter,
};

// Re-exported so scenario construction needs no extra imports.
pub use satn_core::AlgorithmKind;
// Re-exported so callers can configure grid-run parallelism without a
// direct `satn-exec` dependency.
pub use satn_exec::Parallelism;

// Grid cells cross `satn-exec` worker threads as whole values: the scenario
// goes out, the result (or error) comes back. Everything involved must stay
// `Send`; the runner itself must be shareable (`Sync`) since workers borrow
// it for per-cell configuration.
#[allow(dead_code)]
fn _assert_parallel_safe() {
    fn assert_send<T: Send + 'static>() {}
    fn assert_sync<T: Sync + 'static>() {}
    assert_send::<Scenario>();
    assert_sync::<Scenario>();
    assert_send::<ScenarioGrid>();
    assert_send::<ScenarioResult>();
    assert_send::<SimError>();
    assert_sync::<SimRunner>();
    assert_send::<InvariantObserver>();
    assert_send::<SnapshotObserver>();
    assert_send::<ShardedScenario>();
    assert_sync::<ShardedScenario>();
}
