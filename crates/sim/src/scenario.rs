//! The declarative scenario grammar: what to run, on what tree, against
//! which request source, and where to checkpoint.

use rand::rngs::StdRng;
use rand::SeedableRng;
use satn_core::{AlgorithmKind, SelfAdjustingTree, WarmState};
use satn_tree::{placement, CompleteTree, ElementId, LayoutKind, Occupancy, TreeError};
use satn_workloads::stream::{
    CombinedStream, HotBlockStream, MarkovBurstyStream, RoundRobinPathStream,
    ShiftingHotspotStream, TemporalStream, UniformStream, ZipfStream,
};
use satn_workloads::Workload;
use std::fmt;

/// A workload family in declarative form, instantiated lazily as a stream.
///
/// Every generative variant builds on the streaming iterators of
/// [`satn_workloads::stream`], so a scenario never materializes its request
/// sequence unless a caller asks for it ([`WorkloadSpec::materialize`]).
/// Pre-recorded sequences (corpus books, loaded traces) plug in through
/// [`WorkloadSpec::Fixed`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WorkloadSpec {
    /// Uniform requests over the whole element universe.
    Uniform,
    /// Temporal locality: repeat the previous request with probability `p`.
    Temporal {
        /// The repeat probability.
        p: f64,
    },
    /// Spatial locality: Zipf-distributed requests with exponent `a`.
    Zipf {
        /// The Zipf exponent.
        a: f64,
    },
    /// Both kinds of locality at once (the paper's Q4 workload).
    Combined {
        /// The Zipf exponent.
        a: f64,
        /// The repeat probability.
        p: f64,
    },
    /// Round-robin requests to the element ids of the root-to-rightmost-leaf
    /// node path. This reproduces the Move-To-Front lower-bound adversary
    /// only under [`InitialPlacement::Identity`] (element `i` at node `i`);
    /// under the default random placement it is an ordinary cyclic workload
    /// over `levels` elements.
    RoundRobinPath,
    /// A two-state Markov-modulated (calm / burst) source.
    MarkovBursty {
        /// Size of the random hot set used in the burst state.
        hot_set_size: u32,
        /// Probability of entering a burst from the calm state.
        burst_entry: f64,
        /// Probability of staying in the burst state.
        burst_persistence: f64,
    },
    /// A phase-shifting Zipf workload over freshly shuffled rankings.
    ShiftingHotspot {
        /// Number of phases the sequence is split into.
        phases: usize,
        /// The Zipf exponent within each phase.
        a: f64,
    },
    /// A hot-*shard* workload: each phase's entire Zipf distribution is
    /// confined to one of `blocks` contiguous equal blocks of the universe,
    /// the hot block re-drawn per phase. Under range routing with `blocks`
    /// equal to the shard count, whole shards run hot one at a time — the
    /// skewed-routing axis that dynamic resharding reacts to.
    HotShard {
        /// Number of phases the sequence is split into.
        phases: usize,
        /// The Zipf exponent within each phase.
        a: f64,
        /// Number of contiguous blocks (usually the shard count).
        blocks: u32,
    },
    /// A pre-recorded request sequence (corpus book, loaded trace, or any
    /// hand-built [`Workload`]). The scenario's universe must still fit its
    /// tree; the sequence is replayed as-is.
    Fixed(Workload),
}

impl WorkloadSpec {
    /// A short stable label used in reports and scenario names.
    pub fn label(&self) -> String {
        match self {
            WorkloadSpec::Uniform => "uniform".to_owned(),
            WorkloadSpec::Temporal { p } => format!("temporal(p={p})"),
            WorkloadSpec::Zipf { a } => format!("zipf(a={a})"),
            WorkloadSpec::Combined { a, p } => format!("combined(a={a},p={p})"),
            WorkloadSpec::RoundRobinPath => "round-robin-path".to_owned(),
            WorkloadSpec::MarkovBursty { hot_set_size, .. } => {
                format!("markov-bursty(h={hot_set_size})")
            }
            WorkloadSpec::ShiftingHotspot { phases, a } => {
                format!("shifting-hotspot({phases}x,a={a})")
            }
            WorkloadSpec::HotShard { phases, a, blocks } => {
                format!("hot-shard({phases}x{blocks},a={a})")
            }
            WorkloadSpec::Fixed(workload) => workload.name().to_owned(),
        }
    }

    /// Builds the stream of `length` requests over `num_elements` elements,
    /// seeded deterministically: the same arguments always produce the same
    /// sequence. [`WorkloadSpec::Fixed`] streams borrow the stored sequence
    /// instead of copying it.
    ///
    /// The stream is `Send` so scenario cells can be generated and served
    /// inside `satn-exec` worker threads.
    pub fn stream(
        &self,
        num_elements: u32,
        length: usize,
        seed: u64,
    ) -> Box<dyn Iterator<Item = ElementId> + Send + '_> {
        let rng = StdRng::seed_from_u64(seed);
        match self {
            WorkloadSpec::Uniform => Box::new(UniformStream::new(num_elements, rng).take(length)),
            WorkloadSpec::Temporal { p } => {
                Box::new(TemporalStream::new(num_elements, *p, rng).take(length))
            }
            WorkloadSpec::Zipf { a } => {
                Box::new(ZipfStream::new(num_elements, *a, rng).take(length))
            }
            WorkloadSpec::Combined { a, p } => {
                Box::new(CombinedStream::new(num_elements, *a, *p, rng).take(length))
            }
            WorkloadSpec::RoundRobinPath => {
                Box::new(RoundRobinPathStream::new(num_elements - 1).take(length))
            }
            WorkloadSpec::MarkovBursty {
                hot_set_size,
                burst_entry,
                burst_persistence,
            } => Box::new(
                MarkovBurstyStream::new(
                    num_elements,
                    *hot_set_size,
                    *burst_entry,
                    *burst_persistence,
                    rng,
                )
                .take(length),
            ),
            WorkloadSpec::ShiftingHotspot { phases, a } => Box::new(ShiftingHotspotStream::new(
                num_elements,
                length,
                *phases,
                *a,
                rng,
            )),
            WorkloadSpec::HotShard { phases, a, blocks } => Box::new(HotBlockStream::new(
                num_elements,
                length,
                *phases,
                *a,
                *blocks,
                rng,
            )),
            WorkloadSpec::Fixed(workload) => Box::new(workload.iter().take(length)),
        }
    }

    /// Materializes the stream into a [`Workload`] (for statistics such as
    /// empirical entropy that need the whole sequence). Exactly the
    /// `collect` of [`WorkloadSpec::stream`] with the same arguments, so a
    /// [`WorkloadSpec::Fixed`] longer than `length` is truncated here too.
    pub fn materialize(&self, num_elements: u32, length: usize, seed: u64) -> Workload {
        Workload::new(
            self.label(),
            num_elements,
            self.stream(num_elements, length, seed).collect(),
        )
    }

    /// The four stationary synthetic families of the paper's evaluation,
    /// at representative locality levels — the default grid axis.
    pub fn paper_families() -> Vec<WorkloadSpec> {
        vec![
            WorkloadSpec::Uniform,
            WorkloadSpec::Temporal { p: 0.9 },
            WorkloadSpec::Zipf { a: 1.9 },
            WorkloadSpec::Combined { a: 1.9, p: 0.75 },
        ]
    }
}

impl fmt::Display for WorkloadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Error returned when parsing an unrecognised workload spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseWorkloadError {
    input: String,
}

impl fmt::Display for ParseWorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown workload {:?} (expected \"uniform\", \"temporal:P\", \"zipf:A\", \
             \"combined:A,P\", \"round-robin-path\", \"markov-bursty:H,ENTRY,PERSIST\", \
             \"shifting-hotspot:PHASES,A\", or \"hot-shard:PHASES,A,BLOCKS\")",
            self.input
        )
    }
}

impl std::error::Error for ParseWorkloadError {}

impl std::str::FromStr for WorkloadSpec {
    type Err = ParseWorkloadError;

    /// Parses the CLI-style workload grammar used by the server and
    /// load-generator binaries: a family name, optionally followed by `:`
    /// and comma-separated parameters — e.g. `uniform`, `zipf:1.8`,
    /// `combined:1.5,0.6`, `hot-shard:6,1.9,4`. [`WorkloadSpec::Fixed`]
    /// carries a materialized sequence and has no textual form.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let error = || ParseWorkloadError {
            input: s.to_owned(),
        };
        let trimmed = s.trim();
        let (family, params) = match trimmed.split_once(':') {
            Some((family, params)) => (family, params.split(',').collect::<Vec<_>>()),
            None => (trimmed, Vec::new()),
        };
        fn float(token: &str) -> Option<f64> {
            token.trim().parse::<f64>().ok().filter(|v| v.is_finite())
        }
        fn int<T: std::str::FromStr>(token: &str) -> Option<T> {
            token.trim().parse::<T>().ok()
        }
        match (family.trim(), params.as_slice()) {
            ("uniform", []) => Ok(WorkloadSpec::Uniform),
            ("round-robin-path", []) => Ok(WorkloadSpec::RoundRobinPath),
            ("temporal", [p]) => float(p)
                .map(|p| WorkloadSpec::Temporal { p })
                .ok_or_else(error),
            ("zipf", [a]) => float(a).map(|a| WorkloadSpec::Zipf { a }).ok_or_else(error),
            ("combined", [a, p]) => float(a)
                .zip(float(p))
                .map(|(a, p)| WorkloadSpec::Combined { a, p })
                .ok_or_else(error),
            ("markov-bursty", [h, entry, persistence]) => int::<u32>(h)
                .zip(float(entry))
                .zip(float(persistence))
                .map(|((hot_set_size, burst_entry), burst_persistence)| {
                    WorkloadSpec::MarkovBursty {
                        hot_set_size,
                        burst_entry,
                        burst_persistence,
                    }
                })
                .ok_or_else(error),
            ("shifting-hotspot", [phases, a]) => int::<usize>(phases)
                .zip(float(a))
                .map(|(phases, a)| WorkloadSpec::ShiftingHotspot { phases, a })
                .ok_or_else(error),
            ("hot-shard", [phases, a, blocks]) => int::<usize>(phases)
                .zip(float(a))
                .zip(int::<u32>(blocks))
                .map(|((phases, a), blocks)| WorkloadSpec::HotShard { phases, a, blocks })
                .ok_or_else(error),
            _ => Err(error()),
        }
    }
}

/// The initial element placement of a scenario.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub enum InitialPlacement {
    /// Element `i` starts at node `i`.
    Identity,
    /// A seed-derived uniformly random bijection (the paper's methodology).
    #[default]
    Random,
    /// An explicit placement: `placement[v]` is the element stored at node
    /// `v` in heap order. This is how epoch-segmented sharded replays hand a
    /// deterministic post-handover state to the next epoch's standalone
    /// scenario — the placement is part of the scenario value, so the
    /// scenario stays self-contained and reproducible.
    Fixed(Vec<ElementId>),
}

/// When the engine pauses serving to run checkpoint observers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Checkpoints {
    /// Checkpoint every `every` requests (`0` = only the final checkpoint).
    pub every: usize,
}

impl Checkpoints {
    /// Checkpoint every `every` requests plus a final checkpoint.
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero; use [`Checkpoints::final_only`] for that.
    pub fn every(every: usize) -> Self {
        assert!(
            every > 0,
            "use Checkpoints::final_only() for no interior checkpoints"
        );
        Checkpoints { every }
    }

    /// Only one checkpoint, after the last request.
    pub fn final_only() -> Self {
        Checkpoints { every: 0 }
    }

    /// The number of requests to serve before the next checkpoint, given
    /// `served` requests so far out of `total`.
    pub(crate) fn next_span(&self, served: usize, total: usize) -> usize {
        let remaining = total - served;
        if self.every == 0 {
            remaining
        } else {
            self.every.min(remaining)
        }
    }
}

impl Default for Checkpoints {
    fn default() -> Self {
        Checkpoints::final_only()
    }
}

/// One cell of the evaluation grid: a fully determined, reproducible run.
///
/// `seed` drives everything derived: the workload stream, the random initial
/// placement, and the algorithm's internal randomness (Random-Push), each
/// through a distinct derived seed, so scenarios differing in any field
/// produce independent but reproducible runs.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Which algorithm serves the requests.
    pub algorithm: AlgorithmKind,
    /// The request source.
    pub workload: WorkloadSpec,
    /// Number of tree levels (the tree has `2^levels − 1` nodes).
    pub levels: u32,
    /// Number of requests to serve.
    pub requests: usize,
    /// The base random seed.
    pub seed: u64,
    /// Where to pause for checkpoint observers.
    pub checkpoints: Checkpoints,
    /// The initial element placement.
    pub initial: InitialPlacement,
    /// The physical storage layout of the tree's occupancy. Pure
    /// performance knob: every fingerprint and cost is layout-invariant.
    pub layout: LayoutKind,
    /// The imported warm state the algorithm resumes from, or `None` for a
    /// cold start. This is how warm-handover replays hand a shard's carried
    /// rotor/recency/generator state to the next epoch's standalone
    /// scenario: like [`InitialPlacement::Fixed`], the state is part of the
    /// scenario value, so the scenario stays self-contained and
    /// reproducible.
    pub warm: Option<WarmState>,
}

impl Scenario {
    /// Creates a scenario with a random initial placement and a final-only
    /// checkpoint; adjust the public fields for anything else.
    pub fn new(
        algorithm: AlgorithmKind,
        workload: WorkloadSpec,
        levels: u32,
        requests: usize,
        seed: u64,
    ) -> Self {
        Scenario {
            algorithm,
            workload,
            levels,
            requests,
            seed,
            checkpoints: Checkpoints::final_only(),
            initial: InitialPlacement::Random,
            layout: LayoutKind::default(),
            warm: None,
        }
    }

    /// A human-readable name identifying the grid cell.
    pub fn name(&self) -> String {
        format!(
            "{}/{}/L{}/s{}",
            self.algorithm,
            self.workload.label(),
            self.levels,
            self.seed
        )
    }

    /// The tree topology of the scenario.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is zero or exceeds the supported depth.
    pub fn tree(&self) -> CompleteTree {
        CompleteTree::with_levels(self.levels).expect("scenario levels must be a valid tree depth")
    }

    /// The number of tree nodes (and elements).
    pub fn num_elements(&self) -> u32 {
        self.tree().num_nodes()
    }

    /// The seed of the workload stream.
    pub fn workload_seed(&self) -> u64 {
        self.seed
    }

    /// The seed of the random initial placement — decorrelated from the
    /// workload seed so the initial shuffle and the request draws never
    /// consume positionally identical generator output.
    pub fn placement_seed(&self) -> u64 {
        self.seed ^ 0x9E37_79B9_7F4A_7C15
    }

    /// The seed of the algorithm's internal randomness (Random-Push),
    /// derived by the workspace-wide
    /// [`satn_workloads::shard::algorithm_seed`] so the serving engine's
    /// post-handover rebuilds and this scenario's replay always agree.
    pub fn algorithm_seed(&self) -> u64 {
        satn_workloads::shard::algorithm_seed(self.seed)
    }

    /// Builds the initial occupancy.
    ///
    /// # Panics
    ///
    /// Panics if an [`InitialPlacement::Fixed`] placement does not form a
    /// bijection over the scenario's tree.
    pub fn initial_occupancy(&self) -> Occupancy {
        let tree = self.tree();
        let occupancy = match &self.initial {
            InitialPlacement::Identity => Occupancy::identity(tree),
            InitialPlacement::Random => {
                placement::random_occupancy(tree, &mut StdRng::seed_from_u64(self.placement_seed()))
            }
            InitialPlacement::Fixed(placement) => {
                Occupancy::from_placement(tree, placement.clone())
                    .expect("a fixed placement must be a bijection over the scenario's tree")
            }
        };
        occupancy.with_layout(self.layout)
    }

    /// The request stream of this scenario.
    pub fn stream(&self) -> Box<dyn Iterator<Item = ElementId> + Send + '_> {
        self.workload
            .stream(self.num_elements(), self.requests, self.workload_seed())
    }

    /// Instantiates the scenario's algorithm, ready to serve.
    ///
    /// Offline algorithms (Static-Opt) receive the materialized sequence to
    /// compute their layout, exactly as the paper's methodology prescribes.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::ElementOutOfRange`] if the workload mentions an
    /// element outside the tree.
    pub fn instantiate(&self) -> Result<Box<dyn SelfAdjustingTree + Send>, TreeError> {
        self.instantiate_with(&self.offline_sequence().unwrap_or_default())
    }

    /// Instantiates the algorithm from an already-materialized offline
    /// sequence (as returned by [`Scenario::offline_sequence`]), so callers
    /// that also serve from that buffer generate the stream only once.
    /// Online algorithms ignore `sequence`.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::ElementOutOfRange`] if the sequence mentions an
    /// element outside the tree.
    pub fn instantiate_with(
        &self,
        sequence: &[ElementId],
    ) -> Result<Box<dyn SelfAdjustingTree + Send>, TreeError> {
        match &self.warm {
            Some(state) => self.algorithm.instantiate_warm(
                self.initial_occupancy(),
                self.algorithm_seed(),
                sequence,
                state,
            ),
            None => self.algorithm.instantiate(
                self.initial_occupancy(),
                self.algorithm_seed(),
                sequence,
            ),
        }
    }

    /// The materialized request sequence, if the scenario's algorithm needs
    /// the whole sequence up front for offline setup (Static-Opt); `None`
    /// for every online algorithm, which are built without materializing.
    pub fn offline_sequence(&self) -> Option<Vec<ElementId>> {
        (self.algorithm == AlgorithmKind::StaticOpt).then(|| self.stream().collect())
    }
}

/// The cartesian product `algorithms × workloads × levels`: the declarative
/// form of the paper's evaluation grid (and of any custom sweep).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioGrid {
    /// The algorithms axis.
    pub algorithms: Vec<AlgorithmKind>,
    /// The workload-family axis.
    pub workloads: Vec<WorkloadSpec>,
    /// The tree-size axis (in levels).
    pub levels: Vec<u32>,
    /// Requests per scenario.
    pub requests: usize,
    /// Base seed shared by every cell.
    pub seed: u64,
    /// Checkpointing policy of every cell.
    pub checkpoints: Checkpoints,
    /// Initial placement of every cell.
    pub initial: InitialPlacement,
    /// Storage layout of every cell's occupancy.
    pub layout: LayoutKind,
}

impl ScenarioGrid {
    /// A grid over the given axes, with a random initial placement and
    /// final-only checkpoints.
    pub fn new(
        algorithms: impl Into<Vec<AlgorithmKind>>,
        workloads: impl Into<Vec<WorkloadSpec>>,
        levels: impl Into<Vec<u32>>,
        requests: usize,
        seed: u64,
    ) -> Self {
        ScenarioGrid {
            algorithms: algorithms.into(),
            workloads: workloads.into(),
            levels: levels.into(),
            requests,
            seed,
            checkpoints: Checkpoints::final_only(),
            initial: InitialPlacement::Random,
            layout: LayoutKind::default(),
        }
    }

    /// The number of grid cells.
    pub fn len(&self) -> usize {
        self.algorithms.len() * self.workloads.len() * self.levels.len()
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over every cell as a fully determined [`Scenario`], in
    /// size-major (levels, workload, algorithm) order.
    pub fn scenarios(&self) -> impl Iterator<Item = Scenario> + '_ {
        self.levels.iter().flat_map(move |&levels| {
            self.workloads.iter().flat_map(move |workload| {
                self.algorithms.iter().map(move |&algorithm| Scenario {
                    algorithm,
                    workload: workload.clone(),
                    levels,
                    requests: self.requests,
                    seed: self.seed,
                    checkpoints: self.checkpoints,
                    initial: self.initial.clone(),
                    layout: self.layout,
                    warm: None,
                })
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_streams_are_reproducible() {
        let scenario = Scenario::new(
            AlgorithmKind::RotorPush,
            WorkloadSpec::Temporal { p: 0.8 },
            5,
            500,
            42,
        );
        let a: Vec<ElementId> = scenario.stream().collect();
        let b: Vec<ElementId> = scenario.stream().collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 500);
        assert!(a.iter().all(|e| e.index() < scenario.num_elements()));
    }

    #[test]
    fn materialized_spec_matches_its_stream() {
        for spec in [
            WorkloadSpec::Uniform,
            WorkloadSpec::Zipf { a: 1.6 },
            WorkloadSpec::Combined { a: 1.3, p: 0.5 },
            WorkloadSpec::MarkovBursty {
                hot_set_size: 4,
                burst_entry: 0.1,
                burst_persistence: 0.9,
            },
            WorkloadSpec::ShiftingHotspot { phases: 3, a: 2.0 },
            WorkloadSpec::RoundRobinPath,
        ] {
            let streamed: Vec<ElementId> = spec.stream(63, 300, 9).collect();
            let materialized = spec.materialize(63, 300, 9);
            assert_eq!(streamed, materialized.requests(), "{spec}");
        }
    }

    #[test]
    fn fixed_specs_replay_their_workload() {
        let workload = Workload::new("fixed", 7, vec![ElementId::new(3); 10]);
        let spec = WorkloadSpec::Fixed(workload.clone());
        let streamed: Vec<ElementId> = spec.stream(7, 10, 0).collect();
        assert_eq!(streamed, workload.requests());
        assert_eq!(spec.materialize(7, 10, 0), workload);
        assert_eq!(spec.label(), "fixed");
    }

    #[test]
    fn grid_enumerates_the_full_cartesian_product() {
        let grid = ScenarioGrid::new(
            AlgorithmKind::ALL,
            WorkloadSpec::paper_families(),
            [4u32, 6, 8],
            1_000,
            7,
        );
        assert_eq!(grid.len(), 7 * 4 * 3);
        assert!(!grid.is_empty());
        let scenarios: Vec<Scenario> = grid.scenarios().collect();
        assert_eq!(scenarios.len(), grid.len());
        let mut names: Vec<String> = scenarios.iter().map(Scenario::name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), grid.len(), "scenario names must be unique");
    }

    #[test]
    fn checkpoints_partition_the_sequence() {
        let checkpoints = Checkpoints::every(300);
        assert_eq!(checkpoints.next_span(0, 1_000), 300);
        assert_eq!(checkpoints.next_span(900, 1_000), 100);
        assert_eq!(Checkpoints::final_only().next_span(0, 1_000), 1_000);
        assert_eq!(Checkpoints::final_only().next_span(400, 1_000), 600);
    }

    #[test]
    #[should_panic(expected = "final_only")]
    fn zero_interval_checkpoints_are_rejected() {
        Checkpoints::every(0);
    }

    #[test]
    fn workload_specs_parse_from_the_cli_grammar() {
        assert_eq!(
            "uniform".parse::<WorkloadSpec>().unwrap(),
            WorkloadSpec::Uniform
        );
        assert_eq!(
            "round-robin-path".parse::<WorkloadSpec>().unwrap(),
            WorkloadSpec::RoundRobinPath
        );
        assert_eq!(
            "temporal:0.9".parse::<WorkloadSpec>().unwrap(),
            WorkloadSpec::Temporal { p: 0.9 }
        );
        assert_eq!(
            "zipf:1.8".parse::<WorkloadSpec>().unwrap(),
            WorkloadSpec::Zipf { a: 1.8 }
        );
        assert_eq!(
            "combined:1.5,0.6".parse::<WorkloadSpec>().unwrap(),
            WorkloadSpec::Combined { a: 1.5, p: 0.6 }
        );
        assert_eq!(
            "markov-bursty:8,0.05,0.9".parse::<WorkloadSpec>().unwrap(),
            WorkloadSpec::MarkovBursty {
                hot_set_size: 8,
                burst_entry: 0.05,
                burst_persistence: 0.9,
            }
        );
        assert_eq!(
            "shifting-hotspot:4,1.7".parse::<WorkloadSpec>().unwrap(),
            WorkloadSpec::ShiftingHotspot { phases: 4, a: 1.7 }
        );
        assert_eq!(
            "hot-shard:6,1.9,4".parse::<WorkloadSpec>().unwrap(),
            WorkloadSpec::HotShard {
                phases: 6,
                a: 1.9,
                blocks: 4,
            }
        );
        // Whitespace is tolerated around every token.
        assert_eq!(
            " combined: 1.5 , 0.6 ".parse::<WorkloadSpec>().unwrap(),
            WorkloadSpec::Combined { a: 1.5, p: 0.6 }
        );
    }

    #[test]
    fn malformed_workload_specs_are_rejected() {
        for input in [
            "",
            "nope",
            "zipf",
            "zipf:abc",
            "zipf:inf",
            "zipf:1.8,2",
            "combined:1.5",
            "uniform:1",
            "hot-shard:6,1.9",
            "markov-bursty:0.5,0.05,0.9,1",
        ] {
            let err = input.parse::<WorkloadSpec>().unwrap_err();
            assert!(err.to_string().contains("unknown workload"), "{input}");
        }
    }
}
