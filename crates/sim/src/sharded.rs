//! Declarative sharded scenarios: one global workload partitioned across
//! per-shard trees.
//!
//! A [`ShardedScenario`] describes a sharded serving run the same way a
//! [`Scenario`] describes a single-tree run: algorithm, workload family,
//! sizes, seed — plus a shard count and a routing policy. Its key property
//! is that it *derives the serial reference replay*: every shard maps to a
//! standalone [`Scenario`] ([`ShardedScenario::shard_scenarios`]) whose tree,
//! seeds and request subsequence are exactly what the sharded engine
//! (`satn-serve`) builds for that shard, so the existing [`SimRunner`] /
//! observer machinery produces the per-shard cost summaries and checkpoint
//! fingerprints the engine must reproduce byte for byte.

use crate::runner::{ScenarioResult, SimError, SimRunner};
use crate::scenario::{Checkpoints, InitialPlacement, Scenario, WorkloadSpec};
use satn_core::{AlgorithmKind, WarmState};
use satn_tree::{snapshot, CompleteTree, ElementId, LayoutKind, Occupancy, ShardedCostSummary};
use satn_workloads::shard::{
    carry_remap, derive_schedule, handover, handover_touched, shard_epoch_seed, touched_shards,
    EpochedPartition, HandoverMode, Partition, ReshardEvent, ReshardPolicy, ShardRouter,
};
use satn_workloads::Workload;

/// When (and how) a sharded scenario reshards mid-stream.
///
/// (Deliberately exhaustive: the serving engine mirrors every variant
/// online, so a new schedule kind must be handled there too.)
#[derive(Debug, Clone, PartialEq, Default)]
pub enum ReshardSchedule {
    /// Never reshard: the epoch-0 partition serves the whole stream (the
    /// pre-epoch behavior).
    #[default]
    Static,
    /// Explicit handovers: apply each event's plan after its `at`-th global
    /// request. Positions must be strictly increasing.
    Manual(Vec<ReshardEvent>),
    /// Load-adaptive handovers: the policy observes the routed stream and
    /// fires at its cadence. The schedule is a pure function of the stream,
    /// so the engine (applying it online) and the reference replay (deriving
    /// it offline) always agree on every epoch.
    Policy(ReshardPolicy),
}

/// One fully determined sharded serving run.
///
/// The global element universe has `shards × (2^shard_levels − 1)` elements;
/// `router` assigns each element to its owning shard, whose tree is sized to
/// the smallest complete tree fitting its owned set (exactly
/// `shard_levels` levels under [`ShardRouter::Range`], which partitions into
/// equal blocks; possibly one level more or less under the scattering
/// policies).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedScenario {
    /// The algorithm managing every per-shard tree.
    pub algorithm: AlgorithmKind,
    /// The request source, over the global universe.
    pub workload: WorkloadSpec,
    /// Number of shards.
    pub shards: u32,
    /// Baseline per-shard tree depth: each shard nominally owns
    /// `2^shard_levels − 1` elements.
    pub shard_levels: u32,
    /// Number of requests in the global stream.
    pub requests: usize,
    /// The base random seed (workload stream + per-shard derived seeds).
    pub seed: u64,
    /// How requests are assigned to shards.
    pub router: ShardRouter,
    /// The initial element placement of every shard tree.
    pub initial: InitialPlacement,
    /// When (and how) the partition reshards mid-stream.
    pub reshard: ReshardSchedule,
    /// Storage layout of every shard tree's occupancy (performance knob;
    /// all fingerprints are layout-invariant).
    pub layout: LayoutKind,
    /// How shard trees cross epoch boundaries: [`HandoverMode::Cold`]
    /// reseeds every tree fresh per epoch, [`HandoverMode::Warm`] carries
    /// each tree's exported rotor/recency/generator state through the
    /// handover remap so the algorithm resumes exactly where it stopped.
    pub handover: HandoverMode,
}

impl ShardedScenario {
    /// Creates a sharded scenario with hash routing and a random initial
    /// placement; adjust the public fields for anything else.
    pub fn new(
        algorithm: AlgorithmKind,
        workload: WorkloadSpec,
        shards: u32,
        shard_levels: u32,
        requests: usize,
        seed: u64,
    ) -> Self {
        ShardedScenario {
            algorithm,
            workload,
            shards,
            shard_levels,
            requests,
            seed,
            router: ShardRouter::Hash,
            initial: InitialPlacement::Random,
            reshard: ReshardSchedule::Static,
            layout: LayoutKind::default(),
            handover: HandoverMode::Cold,
        }
    }

    /// The skewed-routing preset: range routing plus a
    /// [`WorkloadSpec::HotShard`] stream with one block per shard, so each
    /// phase hammers a single shard and the hot shard moves between phases —
    /// the workload dynamic resharding exists to absorb. Attach a
    /// [`ReshardSchedule::Policy`] to let the engine react.
    pub fn hot_shard(
        algorithm: AlgorithmKind,
        shards: u32,
        shard_levels: u32,
        requests: usize,
        seed: u64,
        phases: usize,
        a: f64,
    ) -> Self {
        let mut scenario = ShardedScenario::new(
            algorithm,
            WorkloadSpec::Uniform,
            shards,
            shard_levels,
            requests,
            seed,
        );
        scenario.workload = WorkloadSpec::HotShard {
            phases,
            a,
            blocks: shards,
        };
        scenario.router = ShardRouter::Range;
        scenario
    }

    /// A human-readable name identifying the sharded run.
    pub fn name(&self) -> String {
        let reshard = match &self.reshard {
            ReshardSchedule::Static => String::new(),
            ReshardSchedule::Manual(events) => format!("/reshard-manual({})", events.len()),
            ReshardSchedule::Policy(policy) => format!("/reshard-every-{}", policy.every()),
        };
        let reshard = match self.handover {
            HandoverMode::Cold => reshard,
            HandoverMode::Warm => format!("{reshard}/warm"),
        };
        format!(
            "sharded/{}/{}/{}/S{}xL{}/s{}{}",
            self.algorithm,
            self.workload.label(),
            self.router,
            self.shards,
            self.shard_levels,
            self.seed,
            reshard
        )
    }

    /// Elements nominally owned per shard (`2^shard_levels − 1`).
    pub fn shard_capacity(&self) -> u32 {
        (1u32 << self.shard_levels) - 1
    }

    /// Size of the global element universe.
    pub fn universe(&self) -> u32 {
        self.shards * self.shard_capacity()
    }

    /// The global request stream (deterministic in the scenario's seed).
    pub fn stream(&self) -> Box<dyn Iterator<Item = ElementId> + Send + '_> {
        self.workload
            .stream(self.universe(), self.requests, self.seed)
    }

    /// The materialized element-to-shard assignment of the router.
    pub fn partition(&self) -> Partition {
        Partition::new(self.router, self.universe(), self.shards)
    }

    /// The derived base seed of one shard in epoch 0: decorrelated per shard
    /// so shard trees never share placement or algorithm randomness, yet
    /// fully determined by the scenario seed.
    pub fn shard_seed(&self, shard: u32) -> u64 {
        self.shard_epoch_seed(shard, 0)
    }

    /// The derived base seed of one `(shard, epoch)` pair — every epoch's
    /// fresh tree instances draw from their own seed, decorrelated across
    /// shards and epochs alike.
    pub fn shard_epoch_seed(&self, shard: u32, epoch: u32) -> u64 {
        shard_epoch_seed(self.seed, shard, epoch)
    }

    /// Derives the standalone per-shard reference scenarios of **epoch 0**:
    /// shard `s`'s scenario serves exactly the localized subsequence of the
    /// global stream that routes to `s` under the initial partition, on a
    /// tree sized by [`Partition::shard_levels`], seeded with
    /// [`ShardedScenario::shard_seed`].
    ///
    /// Running each of these through [`SimRunner`](crate::SimRunner) serially
    /// is the *reference replay* of a static (non-resharding) engine run:
    /// per-shard cost summaries and final checkpoint fingerprints must
    /// coincide byte for byte with the engine's concurrent run (the
    /// `satn-serve` property tests assert exactly this). For a scenario with
    /// a reshard schedule, the full oracle is
    /// [`ShardedScenario::epoch_replay`]; this method still describes epoch 0
    /// as if the whole stream were served there.
    pub fn shard_scenarios(&self) -> Vec<Scenario> {
        let partition = self.partition();
        let split = partition.split_stream(self.stream());
        self.epoch_scenarios(0, &partition, split, None, None)
    }

    /// The epoch log and boundary positions of this scenario's reshard
    /// schedule — derived purely from the scenario value (for
    /// [`ReshardSchedule::Policy`], by running the policy over the stream).
    ///
    /// # Panics
    ///
    /// Panics if a manual schedule's plans do not fit the partition or its
    /// positions are not strictly increasing.
    pub fn epoch_log(&self) -> (EpochedPartition, Vec<usize>) {
        match &self.reshard {
            ReshardSchedule::Static => (
                EpochedPartition::from_partition(self.partition()),
                Vec::new(),
            ),
            ReshardSchedule::Manual(events) => {
                let mut log = EpochedPartition::from_partition(self.partition());
                let mut boundaries = Vec::with_capacity(events.len());
                let mut previous = None;
                for event in events {
                    assert!(
                        previous.is_none_or(|last| event.at > last),
                        "manual reshard positions must be strictly increasing"
                    );
                    previous = Some(event.at);
                    log.apply(event.plan.clone())
                        .expect("manual reshard plans must fit the partition");
                    // An event scheduled at or past the stream end fires at
                    // the end of the run (the engine does the same), so its
                    // effective boundary is the stream length.
                    boundaries.push(event.at.min(self.requests));
                }
                (log, boundaries)
            }
            ReshardSchedule::Policy(policy) => {
                derive_schedule(policy, self.partition(), self.stream())
            }
        }
    }

    /// The standalone per-shard scenarios of one epoch: shard `s` serves its
    /// localized subsequence on a tree sized by the epoch's partition,
    /// seeded with [`ShardedScenario::shard_epoch_seed`]. Epoch 0 starts
    /// from the scenario's initial placement; later epochs start from the
    /// explicit post-handover placements — plus, under
    /// [`HandoverMode::Warm`], the per-shard warm states carried through the
    /// handover remap.
    fn epoch_scenarios(
        &self,
        epoch: u32,
        partition: &Partition,
        split: Vec<Vec<ElementId>>,
        placements: Option<Vec<Vec<ElementId>>>,
        warm: Option<Vec<WarmState>>,
    ) -> Vec<Scenario> {
        split
            .into_iter()
            .enumerate()
            .map(|(shard, subsequence)| {
                let shard = shard as u32;
                let levels = partition.shard_levels(shard);
                let capacity = (1u32 << levels) - 1;
                let requests = subsequence.len();
                let workload = Workload::new(
                    format!("{}#e{}s{}", self.workload.label(), epoch, shard),
                    capacity,
                    subsequence,
                );
                let initial = match &placements {
                    None => self.initial.clone(),
                    Some(placements) => InitialPlacement::Fixed(placements[shard as usize].clone()),
                };
                Scenario {
                    algorithm: self.algorithm,
                    workload: WorkloadSpec::Fixed(workload),
                    levels,
                    requests,
                    seed: self.shard_epoch_seed(shard, epoch),
                    checkpoints: Checkpoints::final_only(),
                    initial,
                    layout: self.layout,
                    warm: warm.as_ref().map(|states| states[shard as usize].clone()),
                }
            })
            .collect()
    }

    /// The epoch-segmented serial reference replay — the byte-exact oracle
    /// of a resharding engine run.
    ///
    /// Derives the epoch log, splits the global stream into per-epoch
    /// per-shard subsequences, and runs every epoch's standalone per-shard
    /// [`Scenario`]s through `runner` in epoch-major shard order. At each
    /// boundary the deterministic [`handover`] is recomputed from the
    /// replayed occupancies — never taken from an engine — so the next
    /// epoch's `InitialPlacement::Fixed` scenarios, the migration costs, and
    /// every fingerprint are *derived*, not hand-kept. An engine run matches
    /// this replay at every thread count, drain cadence, and ingestion
    /// framing, or it has a bug.
    ///
    /// # Errors
    ///
    /// Propagates the first failing per-shard run, in epoch-major shard
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if the scenario reshards with an offline algorithm
    /// (Static-Opt computes its layout from the whole future subsequence,
    /// which no online handover can know), or if a manual schedule is
    /// invalid.
    pub fn epoch_replay(&self, runner: &SimRunner) -> Result<ShardedReplay, SimError> {
        let (log, boundaries) = self.epoch_log();
        assert!(
            log.len() == 1 || self.algorithm != AlgorithmKind::StaticOpt,
            "resharding is not supported for offline algorithms"
        );
        let splits = log.split_stream_epochs(&boundaries, self.stream());
        let mut accounting = ShardedCostSummary::new(self.shards);
        let mut scenarios = Vec::with_capacity(log.len());
        let mut results: Vec<Vec<ScenarioResult>> = Vec::with_capacity(log.len());
        let mut occupancies: Vec<Occupancy> = Vec::new();
        let mut warm_states: Vec<WarmState> = Vec::new();
        for (split, epoch) in splits.into_iter().zip(log.epochs()) {
            let partition = epoch.partition();
            let (placements, warm) = if epoch.epoch() == 0 {
                (None, None)
            } else {
                let previous = log.epoch(epoch.epoch() - 1).partition();
                let refs: Vec<&Occupancy> = occupancies.iter().collect();
                let (placements, warm) = match self.handover {
                    HandoverMode::Cold => {
                        let outcome = handover(previous, partition, &refs);
                        accounting.begin_epoch(outcome.migration);
                        (outcome.placements, None)
                    }
                    HandoverMode::Warm => {
                        let touched = touched_shards(previous, partition);
                        let mut outcome = handover_touched(previous, partition, &refs, &touched);
                        accounting.begin_epoch(outcome.migration);
                        // An untouched shard keeps its live tree verbatim —
                        // including padding elements wherever push-downs
                        // drifted them — because the warm engine never
                        // rebuilds it. The replay therefore seeds those
                        // shards from the live occupancy, not from the
                        // canonical placement a full handover would produce
                        // (which re-packs padding into free nodes).
                        for (shard, placement) in outcome.placements.iter_mut().enumerate() {
                            if !touched[shard] {
                                *placement = occupancies[shard].placement_in_heap_order();
                            }
                        }
                        // Carry every shard's exported state through the
                        // handover remap onto the epoch's (possibly resized)
                        // tree; untouched shards carry under the identity
                        // remap, i.e. verbatim.
                        let warm = (0..self.shards)
                            .map(|shard| {
                                let remap = carry_remap(previous, partition, shard);
                                let tree = CompleteTree::with_levels(partition.shard_levels(shard))
                                    .expect("partitions produce valid shard depths");
                                warm_states[shard as usize].carried_into(tree, &remap)
                            })
                            .collect();
                        (outcome.placements, Some(warm))
                    }
                };
                (Some(placements), warm)
            };
            let epoch_scenarios =
                self.epoch_scenarios(epoch.epoch(), partition, split, placements, warm);
            let mut epoch_results = Vec::with_capacity(epoch_scenarios.len());
            occupancies.clear();
            warm_states.clear();
            for (shard, scenario) in epoch_scenarios.iter().enumerate() {
                let result = runner.run(scenario)?;
                accounting.merge_into_shard(shard as u32, &result.summary);
                occupancies.push(
                    snapshot::occupancy_from_str(result.final_snapshot())
                        .expect("replay fingerprints are valid snapshots"),
                );
                warm_states.push(result.final_warm.clone());
                epoch_results.push(result);
            }
            scenarios.push(epoch_scenarios);
            results.push(epoch_results);
        }
        Ok(ShardedReplay {
            scenarios,
            results,
            accounting,
            boundaries,
            log,
        })
    }

    /// The serial per-shard reference fingerprints after the first `prefix`
    /// global requests — the oracle for **snapshot reads**: a serving
    /// engine's published snapshot stamped with `prefix` accounted requests
    /// must carry exactly these per-shard fingerprints (`satn-serve`'s
    /// `snapshot_reads` property test asserts this at every thread count),
    /// so every lookup answered from that snapshot reflects the serial
    /// replay's state at that checkpoint.
    ///
    /// Each shard's localized subsequence of the first `prefix` requests is
    /// replayed through a standalone per-shard [`Scenario`] — the same
    /// construction as [`ShardedScenario::shard_scenarios`], truncated.
    ///
    /// # Errors
    ///
    /// Propagates the first failing per-shard run, in shard order.
    ///
    /// # Panics
    ///
    /// Panics for a scenario with a reshard schedule: prefixes of a
    /// resharding run are epoch-dependent; its oracle is
    /// [`ShardedScenario::epoch_replay`].
    pub fn prefix_fingerprints(
        &self,
        runner: &SimRunner,
        prefix: usize,
    ) -> Result<Vec<String>, SimError> {
        assert!(
            matches!(self.reshard, ReshardSchedule::Static),
            "prefix fingerprints are defined for static schedules only"
        );
        let partition = self.partition();
        let split = partition.split_stream(self.stream().take(prefix));
        self.epoch_scenarios(0, &partition, split, None, None)
            .iter()
            .map(|scenario| {
                runner
                    .run(scenario)
                    .map(|result| result.final_snapshot().to_owned())
            })
            .collect()
    }
}

/// The outcome of an epoch-segmented serial reference replay
/// ([`ShardedScenario::epoch_replay`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedReplay {
    /// The standalone per-shard scenarios, `scenarios[epoch][shard]` — each
    /// is a self-contained [`Scenario`] value that any `SimRunner` run
    /// reproduces exactly.
    pub scenarios: Vec<Vec<Scenario>>,
    /// The per-shard results, `results[epoch][shard]`.
    pub results: Vec<Vec<ScenarioResult>>,
    /// The full epoch-versioned ledger: per-epoch sub-summaries, migration
    /// costs, and all-time per-shard totals.
    pub accounting: ShardedCostSummary,
    /// `boundaries[k]` = global requests served before epoch `k + 1` began.
    pub boundaries: Vec<usize>,
    /// The epoch log the replay segmented the stream with.
    pub log: EpochedPartition,
}

impl ShardedReplay {
    /// The fingerprint of one shard at the end of one epoch.
    ///
    /// # Panics
    ///
    /// Panics if the epoch or shard is out of range.
    pub fn fingerprint(&self, epoch: u32, shard: u32) -> &str {
        self.results[epoch as usize][shard as usize].final_snapshot()
    }

    /// Number of epochs of the replay (at least one).
    pub fn epochs(&self) -> u32 {
        self.results.len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimRunner;
    use satn_workloads::shard::ReshardPlan;

    fn scenario(router: ShardRouter) -> ShardedScenario {
        let mut s = ShardedScenario::new(
            AlgorithmKind::RotorPush,
            WorkloadSpec::Zipf { a: 1.5 },
            4,
            5,
            2_000,
            7,
        );
        s.router = router;
        s
    }

    #[test]
    fn shard_scenarios_cover_the_whole_stream() {
        for router in ShardRouter::ALL {
            let sharded = scenario(router);
            let shards = sharded.shard_scenarios();
            assert_eq!(shards.len(), 4);
            let total: usize = shards.iter().map(|s| s.requests).sum();
            assert_eq!(total, 2_000, "{router}");
        }
    }

    #[test]
    fn shard_scenarios_are_reproducible_and_runnable() {
        let sharded = scenario(ShardRouter::Hash);
        let first = sharded.shard_scenarios();
        let second = sharded.shard_scenarios();
        assert_eq!(first, second);
        let runner = SimRunner::new();
        for shard_scenario in &first {
            let result = runner.run(shard_scenario).unwrap();
            assert_eq!(result.summary.requests() as usize, shard_scenario.requests);
            assert!(runner.replay_matches(shard_scenario).unwrap());
        }
    }

    #[test]
    fn prefix_fingerprints_interpolate_the_replay() {
        let sharded = scenario(ShardRouter::Hash);
        let runner = SimRunner::new();
        // The full-length prefix is the replay itself, byte for byte.
        let full = sharded
            .prefix_fingerprints(&runner, sharded.requests)
            .unwrap();
        let replay = sharded.epoch_replay(&runner).unwrap();
        for shard in 0..4 {
            assert_eq!(full[shard as usize], replay.fingerprint(0, shard));
        }
        // Mid-stream prefixes are deterministic and genuinely intermediate:
        // at least one shard's tree still differs from its final state.
        let mid = sharded.prefix_fingerprints(&runner, 700).unwrap();
        assert_eq!(mid, sharded.prefix_fingerprints(&runner, 700).unwrap());
        assert_ne!(mid, full);
    }

    #[test]
    #[should_panic(expected = "static schedules only")]
    fn prefix_fingerprints_reject_reshard_schedules() {
        let mut sharded = scenario(ShardRouter::Hash);
        sharded.reshard = ReshardSchedule::Policy(ReshardPolicy::MoveHottest {
            every: 500,
            max_moves: 8,
        });
        let _ = sharded.prefix_fingerprints(&SimRunner::new(), 100);
    }

    #[test]
    fn range_routing_gives_every_shard_the_nominal_depth() {
        let sharded = scenario(ShardRouter::Range);
        for shard_scenario in sharded.shard_scenarios() {
            assert_eq!(shard_scenario.levels, 5);
        }
    }

    #[test]
    fn shard_seeds_are_distinct_and_deterministic() {
        let sharded = scenario(ShardRouter::Hash);
        let seeds: Vec<u64> = (0..4).map(|s| sharded.shard_seed(s)).collect();
        let mut deduped = seeds.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), 4);
        assert_eq!(
            seeds,
            (0..4).map(|s| sharded.shard_seed(s)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn offline_static_opt_shards_receive_their_subsequences() {
        let mut sharded = scenario(ShardRouter::Range);
        sharded.algorithm = AlgorithmKind::StaticOpt;
        let runner = SimRunner::new();
        for shard_scenario in sharded.shard_scenarios() {
            // Static-Opt needs the whole per-shard sequence for its layout;
            // the Fixed workload carries exactly that.
            let result = runner.run(&shard_scenario).unwrap();
            assert_eq!(result.summary.requests() as usize, shard_scenario.requests);
        }
    }

    #[test]
    fn names_identify_the_configuration() {
        let name = scenario(ShardRouter::SourceAffinity).name();
        assert!(name.contains("rotor-push"));
        assert!(name.contains("source-affinity"));
        assert!(name.contains("S4xL5"));

        let mut scheduled = scenario(ShardRouter::Hash);
        scheduled.reshard = ReshardSchedule::Policy(ReshardPolicy::MoveHottest {
            every: 500,
            max_moves: 8,
        });
        assert!(scheduled.name().contains("reshard-every-500"));
    }

    #[test]
    fn static_epoch_replay_reduces_to_the_single_epoch_reference() {
        let sharded = scenario(ShardRouter::Hash);
        let runner = SimRunner::new();
        let replay = sharded.epoch_replay(&runner).unwrap();
        assert_eq!(replay.epochs(), 1);
        assert!(replay.boundaries.is_empty());
        assert_eq!(replay.accounting.current_epoch(), 0);
        // Identical to the flat shard_scenarios() reference, scenario for
        // scenario (epoch-0 workload names use the epoch-tagged labels).
        for (shard, reference) in sharded.shard_scenarios().iter().enumerate() {
            let expected = runner.run(reference).unwrap();
            assert_eq!(replay.results[0][shard].summary, expected.summary);
            assert_eq!(
                replay.fingerprint(0, shard as u32),
                expected.final_snapshot()
            );
        }
    }

    #[test]
    fn manual_reshard_segments_the_replay_and_prices_the_handover() {
        let mut sharded = scenario(ShardRouter::Range);
        // Move the first two elements of shard 0 to shard 3 after 800
        // requests.
        sharded.reshard = ReshardSchedule::Manual(vec![ReshardEvent {
            at: 800,
            plan: ReshardPlan::new([(ElementId::new(0), 3), (ElementId::new(1), 3)]),
        }]);
        let runner = SimRunner::new();
        let replay = sharded.epoch_replay(&runner).unwrap();
        assert_eq!(replay.epochs(), 2);
        assert_eq!(replay.boundaries, vec![800]);

        // The stream is fully covered across epochs and shards.
        let total: u64 = replay.accounting.requests();
        assert_eq!(total, 2_000);
        assert_eq!(replay.accounting.epochs().len(), 2);

        // The handover moved two elements and was not free.
        let migration = replay.accounting.migration_total();
        assert_eq!(migration.moved, 2);
        assert!(
            migration.total() >= 4,
            "delete + insert cost at least 2 each"
        );

        // Every per-epoch scenario is standalone: an independent run of the
        // scenario value reproduces the replay byte for byte.
        for (epoch, scenarios) in replay.scenarios.iter().enumerate() {
            for (shard, reference) in scenarios.iter().enumerate() {
                let rerun = runner.run(reference).unwrap();
                assert_eq!(
                    &rerun, &replay.results[epoch][shard],
                    "epoch {epoch} shard {shard} is not standalone"
                );
            }
        }

        // Epoch 1 scenarios carry explicit fixed placements.
        for reference in &replay.scenarios[1] {
            assert!(matches!(reference.initial, InitialPlacement::Fixed(_)));
        }
    }

    #[test]
    fn policy_replay_reshards_against_the_hot_shard_stream() {
        let mut sharded =
            ShardedScenario::hot_shard(AlgorithmKind::RotorPush, 4, 5, 4_000, 11, 8, 2.0);
        sharded.reshard = ReshardSchedule::Policy(ReshardPolicy::MoveHottest {
            every: 250,
            max_moves: 8,
        });
        let runner = SimRunner::new();
        let replay = sharded.epoch_replay(&runner).unwrap();
        assert!(
            replay.epochs() > 1,
            "the hot-shard stream must trigger the policy"
        );
        assert!(replay.accounting.migration_total().moved > 0);
        // Boundaries fire only at the policy cadence.
        for boundary in &replay.boundaries {
            assert_eq!(boundary % 250, 0);
        }
        // The whole derivation is deterministic.
        let again = sharded.epoch_replay(&runner).unwrap();
        assert_eq!(replay, again);
    }

    #[test]
    fn warm_epoch_replay_carries_state_and_stays_standalone() {
        for algorithm in [
            AlgorithmKind::RotorPush,
            AlgorithmKind::MaxPush,
            AlgorithmKind::RandomPush,
        ] {
            let mut sharded = scenario(ShardRouter::Range);
            sharded.algorithm = algorithm;
            // Moving two elements grows shard 3 past its nominal capacity,
            // so the carried states cross both an identity remap (shards 1
            // and 2) and a genuine resize (shard 3).
            sharded.reshard = ReshardSchedule::Manual(vec![ReshardEvent {
                at: 800,
                plan: ReshardPlan::new([(ElementId::new(0), 3), (ElementId::new(1), 3)]),
            }]);
            sharded.handover = HandoverMode::Warm;
            let runner = SimRunner::new();
            let replay = sharded.epoch_replay(&runner).unwrap();
            assert_eq!(replay.epochs(), 2, "{algorithm}");
            // Epoch-1 scenarios carry warm state and stay standalone: an
            // independent run of the scenario value reproduces the replay.
            for (shard, reference) in replay.scenarios[1].iter().enumerate() {
                assert!(reference.warm.is_some(), "{algorithm} shard {shard}");
                let rerun = runner.run(reference).unwrap();
                assert_eq!(
                    &rerun, &replay.results[1][shard],
                    "{algorithm} epoch 1 shard {shard} is not standalone"
                );
            }
            // The whole warm derivation is deterministic.
            assert_eq!(replay, sharded.epoch_replay(&runner).unwrap());
            // The mode only matters at boundaries: epoch 0 matches the cold
            // replay byte for byte.
            let mut cold = sharded.clone();
            cold.handover = HandoverMode::Cold;
            let cold_replay = cold.epoch_replay(&runner).unwrap();
            assert_eq!(replay.results[0], cold_replay.results[0], "{algorithm}");
            assert_eq!(
                replay.accounting.migration_total(),
                cold_replay.accounting.migration_total(),
                "warm handover prices the same migration work"
            );
        }
    }

    #[test]
    fn warm_mode_shows_up_in_the_name() {
        let mut sharded = scenario(ShardRouter::Hash);
        sharded.handover = HandoverMode::Warm;
        assert!(sharded.name().ends_with("/warm"));
    }

    #[test]
    #[should_panic(expected = "offline algorithms")]
    fn resharding_static_opt_is_rejected() {
        let mut sharded = scenario(ShardRouter::Range);
        sharded.algorithm = AlgorithmKind::StaticOpt;
        sharded.reshard = ReshardSchedule::Manual(vec![ReshardEvent {
            at: 100,
            plan: ReshardPlan::new([(ElementId::new(0), 1)]),
        }]);
        let _ = sharded.epoch_replay(&SimRunner::new());
    }

    #[test]
    fn hot_shard_preset_concentrates_load_per_phase() {
        let sharded = ShardedScenario::hot_shard(AlgorithmKind::MoveHalf, 4, 5, 2_000, 3, 4, 2.2);
        assert_eq!(sharded.router, ShardRouter::Range);
        assert!(sharded.name().contains("hot-shard"));
        let partition = sharded.partition();
        // Within one phase, every request lands on a single shard.
        let stream: Vec<ElementId> = sharded.stream().collect();
        let phase_length = 2_000usize.div_ceil(4);
        let mut hot_shards = Vec::new();
        for phase in stream.chunks(phase_length) {
            let shard = partition.shard_of(phase[0]).unwrap();
            assert!(phase.iter().all(|&e| partition.shard_of(e) == Some(shard)));
            hot_shards.push(shard);
        }
        hot_shards.dedup();
        assert!(hot_shards.len() > 1, "the hot shard never moved");
    }
}
