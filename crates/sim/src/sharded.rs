//! Declarative sharded scenarios: one global workload partitioned across
//! per-shard trees.
//!
//! A [`ShardedScenario`] describes a sharded serving run the same way a
//! [`Scenario`] describes a single-tree run: algorithm, workload family,
//! sizes, seed — plus a shard count and a routing policy. Its key property
//! is that it *derives the serial reference replay*: every shard maps to a
//! standalone [`Scenario`] ([`ShardedScenario::shard_scenarios`]) whose tree,
//! seeds and request subsequence are exactly what the sharded engine
//! (`satn-serve`) builds for that shard, so the existing [`SimRunner`] /
//! observer machinery produces the per-shard cost summaries and checkpoint
//! fingerprints the engine must reproduce byte for byte.

use crate::scenario::{Checkpoints, InitialPlacement, Scenario, WorkloadSpec};
use satn_core::AlgorithmKind;
use satn_tree::ElementId;
use satn_workloads::shard::{Partition, ShardRouter};
use satn_workloads::Workload;

/// One fully determined sharded serving run.
///
/// The global element universe has `shards × (2^shard_levels − 1)` elements;
/// `router` assigns each element to its owning shard, whose tree is sized to
/// the smallest complete tree fitting its owned set (exactly
/// `shard_levels` levels under [`ShardRouter::Range`], which partitions into
/// equal blocks; possibly one level more or less under the scattering
/// policies).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedScenario {
    /// The algorithm managing every per-shard tree.
    pub algorithm: AlgorithmKind,
    /// The request source, over the global universe.
    pub workload: WorkloadSpec,
    /// Number of shards.
    pub shards: u32,
    /// Baseline per-shard tree depth: each shard nominally owns
    /// `2^shard_levels − 1` elements.
    pub shard_levels: u32,
    /// Number of requests in the global stream.
    pub requests: usize,
    /// The base random seed (workload stream + per-shard derived seeds).
    pub seed: u64,
    /// How requests are assigned to shards.
    pub router: ShardRouter,
    /// The initial element placement of every shard tree.
    pub initial: InitialPlacement,
}

impl ShardedScenario {
    /// Creates a sharded scenario with hash routing and a random initial
    /// placement; adjust the public fields for anything else.
    pub fn new(
        algorithm: AlgorithmKind,
        workload: WorkloadSpec,
        shards: u32,
        shard_levels: u32,
        requests: usize,
        seed: u64,
    ) -> Self {
        ShardedScenario {
            algorithm,
            workload,
            shards,
            shard_levels,
            requests,
            seed,
            router: ShardRouter::Hash,
            initial: InitialPlacement::Random,
        }
    }

    /// A human-readable name identifying the sharded run.
    pub fn name(&self) -> String {
        format!(
            "sharded/{}/{}/{}/S{}xL{}/s{}",
            self.algorithm,
            self.workload.label(),
            self.router,
            self.shards,
            self.shard_levels,
            self.seed
        )
    }

    /// Elements nominally owned per shard (`2^shard_levels − 1`).
    pub fn shard_capacity(&self) -> u32 {
        (1u32 << self.shard_levels) - 1
    }

    /// Size of the global element universe.
    pub fn universe(&self) -> u32 {
        self.shards * self.shard_capacity()
    }

    /// The global request stream (deterministic in the scenario's seed).
    pub fn stream(&self) -> Box<dyn Iterator<Item = ElementId> + Send + '_> {
        self.workload
            .stream(self.universe(), self.requests, self.seed)
    }

    /// The materialized element-to-shard assignment of the router.
    pub fn partition(&self) -> Partition {
        Partition::new(self.router, self.universe(), self.shards)
    }

    /// The derived base seed of one shard: decorrelated per shard so shard
    /// trees never share placement or algorithm randomness, yet fully
    /// determined by the scenario seed.
    pub fn shard_seed(&self, shard: u32) -> u64 {
        self.seed.wrapping_add(
            u64::from(shard)
                .wrapping_add(1)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15),
        )
    }

    /// Derives the standalone per-shard reference scenarios: shard `s`'s
    /// scenario serves exactly the localized subsequence of the global
    /// stream that routes to `s`, on a tree sized by
    /// [`Partition::shard_levels`], seeded with [`ShardedScenario::shard_seed`].
    ///
    /// Running each of these through [`SimRunner`](crate::SimRunner) serially
    /// is the *reference replay* of the sharded engine: per-shard cost
    /// summaries and final checkpoint fingerprints must coincide byte for
    /// byte with the engine's concurrent run (the `satn-serve` property
    /// tests assert exactly this).
    pub fn shard_scenarios(&self) -> Vec<Scenario> {
        let partition = self.partition();
        let split = partition.split_stream(self.stream());
        split
            .into_iter()
            .enumerate()
            .map(|(shard, subsequence)| {
                let shard = shard as u32;
                let levels = partition.shard_levels(shard);
                let capacity = (1u32 << levels) - 1;
                let requests = subsequence.len();
                let workload = Workload::new(
                    format!("{}#shard{}", self.workload.label(), shard),
                    capacity,
                    subsequence,
                );
                Scenario {
                    algorithm: self.algorithm,
                    workload: WorkloadSpec::Fixed(workload),
                    levels,
                    requests,
                    seed: self.shard_seed(shard),
                    checkpoints: Checkpoints::final_only(),
                    initial: self.initial,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimRunner;

    fn scenario(router: ShardRouter) -> ShardedScenario {
        let mut s = ShardedScenario::new(
            AlgorithmKind::RotorPush,
            WorkloadSpec::Zipf { a: 1.5 },
            4,
            5,
            2_000,
            7,
        );
        s.router = router;
        s
    }

    #[test]
    fn shard_scenarios_cover_the_whole_stream() {
        for router in ShardRouter::ALL {
            let sharded = scenario(router);
            let shards = sharded.shard_scenarios();
            assert_eq!(shards.len(), 4);
            let total: usize = shards.iter().map(|s| s.requests).sum();
            assert_eq!(total, 2_000, "{router}");
        }
    }

    #[test]
    fn shard_scenarios_are_reproducible_and_runnable() {
        let sharded = scenario(ShardRouter::Hash);
        let first = sharded.shard_scenarios();
        let second = sharded.shard_scenarios();
        assert_eq!(first, second);
        let runner = SimRunner::new();
        for shard_scenario in &first {
            let result = runner.run(shard_scenario).unwrap();
            assert_eq!(result.summary.requests() as usize, shard_scenario.requests);
            assert!(runner.replay_matches(shard_scenario).unwrap());
        }
    }

    #[test]
    fn range_routing_gives_every_shard_the_nominal_depth() {
        let sharded = scenario(ShardRouter::Range);
        for shard_scenario in sharded.shard_scenarios() {
            assert_eq!(shard_scenario.levels, 5);
        }
    }

    #[test]
    fn shard_seeds_are_distinct_and_deterministic() {
        let sharded = scenario(ShardRouter::Hash);
        let seeds: Vec<u64> = (0..4).map(|s| sharded.shard_seed(s)).collect();
        let mut deduped = seeds.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), 4);
        assert_eq!(
            seeds,
            (0..4).map(|s| sharded.shard_seed(s)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn offline_static_opt_shards_receive_their_subsequences() {
        let mut sharded = scenario(ShardRouter::Range);
        sharded.algorithm = AlgorithmKind::StaticOpt;
        let runner = SimRunner::new();
        for shard_scenario in sharded.shard_scenarios() {
            // Static-Opt needs the whole per-shard sequence for its layout;
            // the Fixed workload carries exactly that.
            let result = runner.run(&shard_scenario).unwrap();
            assert_eq!(result.summary.requests() as usize, shard_scenario.requests);
        }
    }

    #[test]
    fn names_identify_the_configuration() {
        let name = scenario(ShardRouter::SourceAffinity).name();
        assert!(name.contains("rotor-push"));
        assert!(name.contains("source-affinity"));
        assert!(name.contains("S4xL5"));
    }
}
