//! The simulation engine: drives any [`SelfAdjustingTree`] through a
//! streaming request source, batching between checkpoints and invoking
//! observers.

use crate::observer::{InvariantViolation, Observer, StepRecord};
use crate::scenario::{Checkpoints, Scenario, ScenarioGrid};
use satn_core::{SelfAdjustingTree, WarmState};
use satn_exec::{ordered_map, Parallelism};
use satn_tree::{CostSummary, ElementId, TreeError};
use std::fmt;

/// An error produced while running a scenario.
#[derive(Debug)]
#[non_exhaustive]
pub enum SimError {
    /// The underlying tree operation failed (e.g. a request to an element
    /// outside the universe).
    Tree(TreeError),
    /// An observer reported an invariant violation.
    Invariant(InvariantViolation),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Tree(err) => write!(f, "tree error: {err}"),
            SimError::Invariant(violation) => violation.fmt(f),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Tree(err) => Some(err),
            SimError::Invariant(violation) => Some(violation),
        }
    }
}

impl From<TreeError> for SimError {
    fn from(err: TreeError) -> Self {
        SimError::Tree(err)
    }
}

impl From<InvariantViolation> for SimError {
    fn from(violation: InvariantViolation) -> Self {
        SimError::Invariant(violation)
    }
}

/// The outcome of one scenario run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioResult {
    /// Aggregated per-request costs.
    pub summary: CostSummary,
    /// Occupancy snapshots captured at every checkpoint, as
    /// `(requests served, snapshot text)` pairs — the replay fingerprint of
    /// the run.
    pub checkpoints: Vec<(u64, String)>,
    /// The algorithm's exported warm state at the end of the run — rotor
    /// pointers, recency metadata, generator state. A follow-on scenario
    /// carrying this state (see [`Scenario`]'s `warm` field) resumes the
    /// algorithm exactly where this run left it, which is how the warm
    /// reshard-handover oracle chains epochs.
    pub final_warm: WarmState,
}

impl ScenarioResult {
    /// The snapshot of the final checkpoint.
    pub fn final_snapshot(&self) -> &str {
        &self
            .checkpoints
            .last()
            .expect("every run has a final checkpoint")
            .1
    }
}

/// The scenario-simulation engine.
///
/// `SimRunner` serves requests in batches between checkpoints through
/// [`SelfAdjustingTree::serve_batch`] — the fast path — unless an attached
/// observer asks for per-step records, in which case it serves one request at
/// a time and surrounds each with the observation bookkeeping.
///
/// Grid runs ([`SimRunner::run_grid`]) fan scenario cells out over the
/// `satn-exec` worker pool (default: one worker per core). Every cell
/// constructs its own algorithm instance, workload stream, and observers, so
/// nothing is shared mutably between workers, and
/// [`satn_exec::ordered_map`]'s in-order merge makes the parallel grid
/// bit-identical to the serial one — checkpoint fingerprints included.
///
/// The engine is stateless between runs; all per-run state lives in the
/// scenario, the algorithm instance, and the observers.
#[derive(Debug, Clone, Copy)]
pub struct SimRunner {
    /// Upper bound on the number of requests buffered per serving batch.
    batch_size: usize,
    /// Worker budget for grid runs (never affects results, only wall-clock).
    parallelism: Parallelism,
}

/// The default serving batch size (requests buffered per `serve_batch` call).
pub const DEFAULT_BATCH_SIZE: usize = 1_024;

impl Default for SimRunner {
    fn default() -> Self {
        Self::new()
    }
}

impl SimRunner {
    /// Creates an engine with the default batch size, using all available
    /// cores for grid runs.
    pub fn new() -> Self {
        SimRunner {
            batch_size: DEFAULT_BATCH_SIZE,
            parallelism: Parallelism::Auto,
        }
    }

    /// Overrides the serving batch size.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn with_batch_size(batch_size: usize) -> Self {
        assert!(batch_size > 0, "the batch size must be positive");
        SimRunner {
            batch_size,
            parallelism: Parallelism::Auto,
        }
    }

    /// Sets the worker budget for grid runs (builder style). The choice
    /// never changes results — only how many cells run concurrently.
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// The configured grid-run worker budget.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Runs a scenario with no custom observers: serves the whole stream on
    /// the batched fast path and captures a snapshot at every checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Tree`] if the workload does not fit the tree.
    pub fn run(&self, scenario: &Scenario) -> Result<ScenarioResult, SimError> {
        self.run_with(scenario, &mut [])
    }

    /// Runs a scenario with the given observers attached.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Tree`] for tree-level failures and
    /// [`SimError::Invariant`] as soon as any observer reports a violation.
    pub fn run_with(
        &self,
        scenario: &Scenario,
        observers: &mut [&mut dyn Observer],
    ) -> Result<ScenarioResult, SimError> {
        // Offline algorithms need the whole sequence for their layout;
        // materialize it once and serve from the same buffer instead of
        // regenerating the stream a second time.
        let materialized = scenario.offline_sequence();
        let mut network = match &materialized {
            Some(sequence) => scenario.instantiate_with(sequence)?,
            None => scenario.instantiate()?,
        };
        let mut checkpoints = Vec::new();
        let summary = match &materialized {
            Some(sequence) => self.drive(
                network.as_mut(),
                sequence.iter().copied(),
                scenario.requests,
                scenario.checkpoints,
                observers,
                Some(&mut checkpoints),
            )?,
            None => self.drive(
                network.as_mut(),
                scenario.stream(),
                scenario.requests,
                scenario.checkpoints,
                observers,
                Some(&mut checkpoints),
            )?,
        };
        Ok(ScenarioResult {
            summary,
            checkpoints,
            final_warm: network.export_state(),
        })
    }

    /// Drives an already-instantiated network through an arbitrary request
    /// stream — the escape hatch for sources outside the scenario grammar
    /// (corpus books, loaded traces, live feeds).
    ///
    /// `length` bounds the number of requests taken from the stream;
    /// checkpoints fire per `checkpoints` plus once at the end.
    ///
    /// # Errors
    ///
    /// Same contract as [`SimRunner::run_with`].
    pub fn run_stream(
        &self,
        network: &mut dyn SelfAdjustingTree,
        stream: impl Iterator<Item = ElementId>,
        length: usize,
        checkpoints: Checkpoints,
        observers: &mut [&mut dyn Observer],
    ) -> Result<CostSummary, SimError> {
        self.drive(network, stream, length, checkpoints, observers, None)
    }

    /// Runs every cell of a grid on the worker pool, returning
    /// `(scenario, result)` pairs in grid order; `check_invariants` attaches
    /// a fresh [`crate::InvariantObserver`] to every cell.
    ///
    /// Cells are independent by construction — each worker instantiates its
    /// own algorithm, stream, and observer from the scenario value — and the
    /// pool merges results in grid order, so the outcome is byte-identical
    /// at every [`Parallelism`] (the `parallel_determinism` regression test
    /// and the `bench-report` harness both assert this).
    ///
    /// # Errors
    ///
    /// Returns the erroring cell that comes first in grid order, identifying
    /// it by the returned scenario (boxed: scenarios can carry whole fixed
    /// workloads). A one-worker run fails fast at that cell; a parallel run
    /// lets in-flight cells finish but still reports by grid order, not
    /// completion order, so the reported cell is identical either way.
    #[allow(clippy::type_complexity)]
    pub fn run_grid(
        &self,
        grid: &ScenarioGrid,
        check_invariants: bool,
    ) -> Result<Vec<(Scenario, ScenarioResult)>, Box<(Scenario, SimError)>> {
        let run_cell = |scenario: &Scenario| {
            if check_invariants {
                let mut invariants = crate::InvariantObserver::new();
                self.run_with(scenario, &mut [&mut invariants])
            } else {
                self.run(scenario)
            }
        };
        if self.parallelism.threads() <= 1 {
            // Serial: preserve fail-fast — stop at the first erroring cell
            // instead of running the rest of the grid.
            let mut results = Vec::with_capacity(grid.len());
            for scenario in grid.scenarios() {
                match run_cell(&scenario) {
                    Ok(result) => results.push((scenario, result)),
                    Err(err) => return Err(Box::new((scenario, err))),
                }
            }
            return Ok(results);
        }
        let scenarios: Vec<Scenario> = grid.scenarios().collect();
        let outcomes = ordered_map(&scenarios, self.parallelism, run_cell);
        let mut results = Vec::with_capacity(scenarios.len());
        for (scenario, outcome) in scenarios.into_iter().zip(outcomes) {
            match outcome {
                Ok(result) => results.push((scenario, result)),
                Err(err) => return Err(Box::new((scenario, err))),
            }
        }
        Ok(results)
    }

    /// Verifies deterministic replay: runs `scenario` twice and checks that
    /// every checkpoint snapshot and the cost summary coincide. All
    /// algorithms are seed-deterministic, so any divergence indicates
    /// hidden state outside the scenario's control.
    ///
    /// # Errors
    ///
    /// Propagates run errors; `Ok(false)` means the runs diverged.
    pub fn replay_matches(&self, scenario: &Scenario) -> Result<bool, SimError> {
        let first = self.run(scenario)?;
        let second = self.run(scenario)?;
        Ok(first == second)
    }

    fn drive(
        &self,
        network: &mut dyn SelfAdjustingTree,
        mut stream: impl Iterator<Item = ElementId>,
        length: usize,
        checkpoints: Checkpoints,
        observers: &mut [&mut dyn Observer],
        mut snapshots: Option<&mut Vec<(u64, String)>>,
    ) -> Result<CostSummary, SimError> {
        let stepwise = observers.iter().any(|observer| observer.wants_steps());
        for observer in observers.iter_mut() {
            observer.on_start(network)?;
        }
        let mut summary = CostSummary::new();
        let mut served = 0usize;
        let mut batch: Vec<ElementId> = Vec::with_capacity(self.batch_size.min(length));

        loop {
            let span = checkpoints.next_span(served, length);
            let mut remaining_in_span = span;
            while remaining_in_span > 0 {
                batch.clear();
                batch.extend(stream.by_ref().take(remaining_in_span.min(self.batch_size)));
                if batch.is_empty() {
                    // The stream ran dry before `length`; close out early.
                    served = length;
                    break;
                }
                if stepwise {
                    for &element in &batch {
                        let access_cost_before = network
                            .occupancy()
                            .check_element(element)
                            .map(|()| network.occupancy().access_cost(element))?;
                        let cost = network.serve(element)?;
                        summary.record(cost);
                        let record = StepRecord {
                            step: summary.requests() - 1,
                            element,
                            cost,
                            access_cost_before,
                        };
                        for observer in observers.iter_mut() {
                            observer.on_step(&record, network)?;
                        }
                    }
                } else {
                    network.serve_batch(&batch, &mut summary)?;
                }
                served += batch.len();
                remaining_in_span -= batch.len();
            }

            let step = summary.requests();
            for observer in observers.iter_mut() {
                observer.on_checkpoint(step, network)?;
            }
            if let Some(snapshots) = snapshots.as_deref_mut() {
                snapshots.push((
                    step,
                    satn_tree::snapshot::occupancy_to_string(network.occupancy()),
                ));
            }
            if served >= length {
                return Ok(summary);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::{InvariantObserver, SnapshotObserver};
    use crate::scenario::{InitialPlacement, WorkloadSpec};
    use satn_core::AlgorithmKind;

    fn scenario(kind: AlgorithmKind) -> Scenario {
        Scenario::new(kind, WorkloadSpec::Temporal { p: 0.7 }, 6, 2_000, 11)
    }

    #[test]
    fn batched_and_stepwise_runs_agree() {
        for kind in AlgorithmKind::ALL {
            let scenario = scenario(kind);
            let batched = SimRunner::new().run(&scenario).unwrap();
            let mut invariants = InvariantObserver::new();
            let stepwise = SimRunner::new()
                .run_with(&scenario, &mut [&mut invariants])
                .unwrap();
            assert_eq!(batched, stepwise, "{kind}");
            assert_eq!(invariants.checked_steps(), 2_000);
        }
    }

    #[test]
    fn checkpoints_fire_at_the_configured_cadence() {
        let mut s = scenario(AlgorithmKind::RotorPush);
        s.checkpoints = Checkpoints::every(600);
        let result = SimRunner::new().run(&s).unwrap();
        let steps: Vec<u64> = result.checkpoints.iter().map(|&(step, _)| step).collect();
        assert_eq!(steps, vec![600, 1_200, 1_800, 2_000]);
        assert_eq!(result.summary.requests(), 2_000);
    }

    #[test]
    fn snapshot_observer_and_engine_snapshots_agree() {
        let mut s = scenario(AlgorithmKind::MaxPush);
        s.checkpoints = Checkpoints::every(500);
        let mut recorder = SnapshotObserver::new();
        let result = SimRunner::new().run_with(&s, &mut [&mut recorder]).unwrap();
        assert_eq!(recorder.snapshots(), result.checkpoints.as_slice());
    }

    #[test]
    fn replay_is_deterministic_for_every_algorithm() {
        for kind in AlgorithmKind::ALL {
            let mut s = scenario(kind);
            s.checkpoints = Checkpoints::every(700);
            assert!(
                SimRunner::new().replay_matches(&s).unwrap(),
                "{kind} diverged between identical runs"
            );
        }
    }

    #[test]
    fn run_stream_drives_external_sources() {
        let s = scenario(AlgorithmKind::RotorPush);
        let mut network = s.instantiate().unwrap();
        let requests: Vec<ElementId> = s.stream().collect();
        let summary = SimRunner::with_batch_size(64)
            .run_stream(
                network.as_mut(),
                requests.iter().copied(),
                requests.len(),
                Checkpoints::final_only(),
                &mut [],
            )
            .unwrap();
        assert_eq!(summary, SimRunner::new().run(&s).unwrap().summary);
    }

    #[test]
    fn short_streams_end_the_run_early() {
        let s = scenario(AlgorithmKind::StaticOblivious);
        let mut network = s.instantiate().unwrap();
        let summary = SimRunner::new()
            .run_stream(
                network.as_mut(),
                s.stream().take(123),
                10_000,
                Checkpoints::every(50),
                &mut [],
            )
            .unwrap();
        assert_eq!(summary.requests(), 123);
    }

    #[test]
    fn grid_runs_cover_every_cell_with_invariants() {
        let grid = ScenarioGrid {
            algorithms: vec![AlgorithmKind::RotorPush, AlgorithmKind::MoveHalf],
            workloads: vec![WorkloadSpec::Uniform, WorkloadSpec::Zipf { a: 2.0 }],
            levels: vec![4, 5],
            requests: 300,
            seed: 3,
            checkpoints: Checkpoints::every(100),
            initial: InitialPlacement::Random,
            layout: satn_tree::LayoutKind::default(),
        };
        let results = SimRunner::new().run_grid(&grid, true).unwrap();
        assert_eq!(results.len(), 8);
        for (scenario, result) in &results {
            assert_eq!(result.summary.requests(), 300, "{}", scenario.name());
        }
    }

    #[test]
    fn out_of_range_requests_surface_as_tree_errors() {
        let s = scenario(AlgorithmKind::RotorPush);
        let mut network = s.instantiate().unwrap();
        let err = SimRunner::new()
            .run_stream(
                network.as_mut(),
                std::iter::once(ElementId::new(60_000)),
                1,
                Checkpoints::final_only(),
                &mut [],
            )
            .unwrap_err();
        assert!(matches!(err, SimError::Tree(_)));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_batch_size_is_rejected() {
        SimRunner::with_batch_size(0);
    }

    #[test]
    fn default_runner_actually_serves() {
        let s = scenario(AlgorithmKind::StaticOblivious);
        let result = SimRunner::default().run(&s).unwrap();
        assert_eq!(result.summary.requests(), 2_000);
    }
}
