//! CI smoke test: runs the reduced scenario grid — every algorithm × four
//! workload families × three tree sizes — twice: once stepwise with the
//! invariant checks enabled, once on the batched `serve_batch` fast paths,
//! and exits non-zero on any invariant violation or any divergence between
//! the two serving modes.
//!
//! Both passes run on the `satn-exec` worker pool; `--threads` bounds the
//! pool (default: all cores, `--threads 1` = serial) and never changes any
//! result, only the per-phase wall-clock times printed at the end.
//!
//! ```text
//! sim-smoke [--requests N] [--seed S] [--threads N|auto|serial]
//! ```

use satn_core::AlgorithmKind;
use satn_sim::{Checkpoints, Parallelism, ScenarioGrid, SimRunner, WorkloadSpec};
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let mut requests = 5_000usize;
    let mut seed = 2022u64;
    let mut parallelism = Parallelism::Auto;
    let mut args = std::env::args().skip(1);
    while let Some(argument) = args.next() {
        match argument.as_str() {
            "--requests" => match args.next().and_then(|v| v.parse().ok()) {
                Some(value) => requests = value,
                None => return usage(),
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(value) => seed = value,
                None => return usage(),
            },
            "--threads" => match args.next().and_then(|v| v.parse().ok()) {
                Some(value) => parallelism = value,
                None => return usage(),
            },
            "--help" | "-h" => {
                println!("usage: sim-smoke [--requests N] [--seed S] [--threads N|auto|serial]");
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }

    let mut grid = ScenarioGrid::new(
        AlgorithmKind::ALL,
        WorkloadSpec::paper_families(),
        [5u32, 8, 10],
        requests,
        seed,
    );
    grid.checkpoints = Checkpoints::every(requests.div_ceil(4).max(1));

    println!(
        "# sim-smoke — {} scenarios ({} algorithms × {} workloads × {} sizes), {} requests each, {} workers",
        grid.len(),
        grid.algorithms.len(),
        grid.workloads.len(),
        grid.levels.len(),
        requests,
        parallelism.threads()
    );

    let runner = SimRunner::new().with_parallelism(parallelism);
    // Pass 1: stepwise serving with every invariant check attached.
    let checked_started = Instant::now();
    let checked = match runner.run_grid(&grid, true) {
        Ok(results) => results,
        Err(failure) => {
            let (scenario, error) = *failure;
            eprintln!("scenario {} FAILED: {error}", scenario.name());
            return ExitCode::FAILURE;
        }
    };
    let checked_elapsed = checked_started.elapsed();
    // Pass 2: the batched serve_batch fast paths, no observers — must be
    // observationally identical to the checked stepwise pass.
    let batched_started = Instant::now();
    let batched = match runner.run_grid(&grid, false) {
        Ok(results) => results,
        Err(failure) => {
            let (scenario, error) = *failure;
            eprintln!("scenario {} FAILED (batched): {error}", scenario.name());
            return ExitCode::FAILURE;
        }
    };
    let batched_elapsed = batched_started.elapsed();

    for ((scenario, checked_result), (_, batched_result)) in checked.iter().zip(&batched) {
        if checked_result != batched_result {
            eprintln!(
                "scenario {} DIVERGED between stepwise and batched serving",
                scenario.name()
            );
            return ExitCode::FAILURE;
        }
        println!(
            "{:<45} mean access {:>7.3}  mean adjust {:>7.3}",
            scenario.name(),
            checked_result.summary.mean_access(),
            checked_result.summary.mean_adjustment()
        );
    }
    println!(
        "# phase 1 (stepwise + invariants): {checked_elapsed:.1?}   phase 2 (batched): {batched_elapsed:.1?}"
    );
    println!(
        "# all {} scenarios passed invariant checks and batched/stepwise agreement in {:.1?}",
        checked.len(),
        checked_elapsed + batched_elapsed
    );
    ExitCode::SUCCESS
}

fn usage() -> ExitCode {
    eprintln!("usage: sim-smoke [--requests N] [--seed S] [--threads N|auto|serial]");
    ExitCode::FAILURE
}
