//! CI smoke test: runs the reduced scenario grid — every algorithm × four
//! workload families × three tree sizes — twice: once stepwise with the
//! invariant checks enabled, once on the batched `serve_batch` fast paths,
//! and exits non-zero on any invariant violation or any divergence between
//! the two serving modes.
//!
//! ```text
//! sim-smoke [--requests N] [--seed S]
//! ```

use satn_core::AlgorithmKind;
use satn_sim::{Checkpoints, ScenarioGrid, SimRunner, WorkloadSpec};
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let mut requests = 5_000usize;
    let mut seed = 2022u64;
    let mut args = std::env::args().skip(1);
    while let Some(argument) = args.next() {
        match argument.as_str() {
            "--requests" => match args.next().and_then(|v| v.parse().ok()) {
                Some(value) => requests = value,
                None => return usage(),
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(value) => seed = value,
                None => return usage(),
            },
            "--help" | "-h" => {
                println!("usage: sim-smoke [--requests N] [--seed S]");
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }

    let mut grid = ScenarioGrid::new(
        AlgorithmKind::ALL,
        WorkloadSpec::paper_families(),
        [5u32, 8, 10],
        requests,
        seed,
    );
    grid.checkpoints = Checkpoints::every(requests.div_ceil(4).max(1));

    println!(
        "# sim-smoke — {} scenarios ({} algorithms × {} workloads × {} sizes), {} requests each",
        grid.len(),
        grid.algorithms.len(),
        grid.workloads.len(),
        grid.levels.len(),
        requests
    );

    let start = Instant::now();
    let runner = SimRunner::new();
    // Pass 1: stepwise serving with every invariant check attached.
    let checked = match runner.run_grid(&grid, true) {
        Ok(results) => results,
        Err(failure) => {
            let (scenario, error) = *failure;
            eprintln!("scenario {} FAILED: {error}", scenario.name());
            return ExitCode::FAILURE;
        }
    };
    // Pass 2: the batched serve_batch fast paths, no observers — must be
    // observationally identical to the checked stepwise pass.
    let batched = match runner.run_grid(&grid, false) {
        Ok(results) => results,
        Err(failure) => {
            let (scenario, error) = *failure;
            eprintln!("scenario {} FAILED (batched): {error}", scenario.name());
            return ExitCode::FAILURE;
        }
    };

    for ((scenario, checked_result), (_, batched_result)) in checked.iter().zip(&batched) {
        if checked_result != batched_result {
            eprintln!(
                "scenario {} DIVERGED between stepwise and batched serving",
                scenario.name()
            );
            return ExitCode::FAILURE;
        }
        println!(
            "{:<45} mean access {:>7.3}  mean adjust {:>7.3}",
            scenario.name(),
            checked_result.summary.mean_access(),
            checked_result.summary.mean_adjustment()
        );
    }
    println!(
        "# all {} scenarios passed invariant checks and batched/stepwise agreement in {:.1?}",
        checked.len(),
        start.elapsed()
    );
    ExitCode::SUCCESS
}

fn usage() -> ExitCode {
    eprintln!("usage: sim-smoke [--requests N] [--seed S]");
    ExitCode::FAILURE
}
